"""Parallel batch analysis over a {program × variant × model} matrix.

The paper pitches synchronization-read detection as a *practical*
compiler pass; practicality at corpus scale means not re-analyzing 17
workloads serially from scratch on every experiment run. This module
provides:

* :func:`execute_job` — one picklable unit of work: compile a program
  from source, run the fence-placement pipeline with a shared
  :class:`~repro.engine.context.AnalysisContext`, and reduce the result
  to a plain-data :class:`BatchResult`;
* :class:`ResultCache` — a content-keyed cache (in memory, optionally
  backed by a directory of JSON files) so repeated runs over unchanged
  sources reuse prior analyses;
* :class:`BatchRunner` — fans a job matrix out over a
  ``concurrent.futures`` process pool with a deterministic serial
  fallback; results always come back in job-submission order.

Workers return compact summaries rather than IR-bearing analyses so
results cross the process boundary (and the JSON cache) cheaply.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Sequence, TypeVar

from repro.core.pipeline import PipelineVariant
from repro.frontend import compile_source
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.registry.models import backend_for_model, get_model, model_keys
from repro.registry.variants import get_variant, pipeline_variant_keys

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Bump when analysis semantics change so stale cache entries miss.
ENGINE_VERSION = "4"


@dataclass(frozen=True)
class BatchJob:
    """One cell of the analysis matrix.

    ``program`` names a registry workload unless ``source`` carries
    explicit mini-C text (then ``program`` is just a display name).
    """

    program: str
    variant: str = PipelineVariant.CONTROL.value
    model: str = "x86-tso"
    source: str | None = None
    #: Arch backend override for lowering costs; None = the model's
    #: registered default arch.
    arch: str | None = None
    #: Which synthesis strategy's cost lands in ``fence_cost``/
    #: ``flavors`` ("greedy" or "optimal"); both costs are always
    #: reported side by side when an arch backend applies.
    synthesis: str = "greedy"

    def resolve_source(self) -> str:
        if self.source is not None:
            return self.source
        from repro.programs.registry import get_program

        return get_program(self.program).source

    def content_key(self) -> str:
        """Digest of everything that determines the analysis result."""
        payload = "\x00".join(
            (ENGINE_VERSION, self.program, self.variant, self.model,
             self.arch or "", self.synthesis, self.resolve_source())
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class FunctionResult:
    """Per-function analysis summary (plain data, JSON/pickle friendly)."""

    name: str
    escaping_reads: int
    sync_reads: int
    orderings: int
    pruned: int
    full_fences: int
    compiler_fences: int


@dataclass(frozen=True)
class BatchResult:
    """One analyzed matrix cell, reduced to aggregate counts."""

    program: str
    variant: str
    model: str
    key: str
    functions: tuple[FunctionResult, ...]
    ordering_kinds: dict[str, int]  # pruned counts by OrderKind value
    elapsed: float
    cached: bool = False
    #: Lowered fence cost + flavor histogram under the model's arch
    #: backend; None/{} when the model has no registered arch (rmo).
    #: ``fence_cost`` reflects the job's selected synthesis strategy;
    #: ``greedy_cost``/``optimal_cost`` always carry both for
    #: comparison (``optimal_cost <= greedy_cost`` by construction).
    fence_cost: int | None = None
    flavors: dict[str, int] = field(default_factory=dict)
    greedy_cost: int | None = None
    optimal_cost: int | None = None
    #: Shared-context memo counters for this cell (cross the process
    #: boundary as plain ints so reports can aggregate them).
    context_hits: int = 0
    context_misses: int = 0
    context_by_fact: dict[str, int] = field(default_factory=dict)

    # --- aggregates -------------------------------------------------------
    @property
    def escaping_reads(self) -> int:
        return sum(f.escaping_reads for f in self.functions)

    @property
    def sync_reads(self) -> int:
        return sum(f.sync_reads for f in self.functions)

    @property
    def orderings(self) -> int:
        return sum(f.orderings for f in self.functions)

    @property
    def pruned_orderings(self) -> int:
        return sum(f.pruned for f in self.functions)

    @property
    def surviving_fraction(self) -> float:
        """Ordering-count-weighted (vacuous functions carry no weight)."""
        if self.orderings == 0:
            return 1.0
        return self.pruned_orderings / self.orderings

    @property
    def full_fences(self) -> int:
        return sum(f.full_fences for f in self.functions)

    @property
    def compiler_fences(self) -> int:
        return sum(f.compiler_fences for f in self.functions)

    # --- (de)serialization for the on-disk cache --------------------------
    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    def to_payload(self) -> dict:
        """Fields plus every aggregate — the machine-readable surface
        (``batch --json``). New aggregates belong here, not in the CLI."""
        return {
            **asdict(self),
            "escaping_reads": self.escaping_reads,
            "sync_reads": self.sync_reads,
            "orderings": self.orderings,
            "pruned_orderings": self.pruned_orderings,
            "surviving_fraction": self.surviving_fraction,
            "full_fences": self.full_fences,
            "compiler_fences": self.compiler_fences,
        }

    @staticmethod
    def from_json(text: str) -> "BatchResult":
        data = json.loads(text)
        data["functions"] = tuple(
            FunctionResult(**f) for f in data["functions"]
        )
        return BatchResult(**data)


def execute_job(job: BatchJob) -> BatchResult:
    """Run one matrix cell; top-level so process pools can pickle it."""
    from repro.engine.context import AnalysisContext

    ir = compile_source(job.resolve_source(), job.program)
    return _execute_cell(job, ir, AnalysisContext(ir))


def execute_job_group(jobs: "tuple[BatchJob, ...]") -> list[BatchResult]:
    """Run several cells of the *same program source* in one worker.

    Compiles once and shares one :class:`AnalysisContext`, so the
    variant/model cells of a program reuse the variant-independent
    facts instead of rebuilding them per cell.
    """
    from repro.engine.context import AnalysisContext

    ir = compile_source(jobs[0].resolve_source(), jobs[0].program)
    ctx = AnalysisContext(ir)
    return [_execute_cell(job, ir, ctx) for job in jobs]


def _execute_cell(job: BatchJob, ir, context) -> BatchResult:
    start = time.perf_counter()
    cell_span = obs_trace.span(
        "batch.cell",
        cat="batch",
        program=job.program,
        variant=job.variant,
        model=job.model,
    )
    with cell_span:
        return _run_cell(job, ir, context, start)


def _run_cell(job: BatchJob, ir, context, start: float) -> BatchResult:
    from contextlib import nullcontext

    recording = (
        context.collect_stats() if context is not None else nullcontext(None)
    )
    with recording as recorded:
        analysis = get_variant(job.variant).analyze(
            ir, get_model(job.model).model, context=context
        )
    context_hits = recorded.hits if recorded is not None else 0
    context_misses = recorded.misses if recorded is not None else 0
    context_by_fact = dict(recorded.by_fact) if recorded is not None else {}
    functions = tuple(
        FunctionResult(
            name=name,
            escaping_reads=len(fa.escape_info.escaping_reads),
            sync_reads=len(fa.sync_reads),
            orderings=len(fa.orderings),
            pruned=len(fa.pruned),
            full_fences=fa.plan.full_count,
            compiler_fences=fa.plan.compiler_count,
        )
        for name, fa in analysis.functions.items()
    )
    kinds = {
        kind.value: count
        for kind, count in analysis.ordering_counts(pruned=True).items()
    }
    fence_cost: int | None = None
    flavors: dict[str, int] = {}
    greedy_cost: int | None = None
    optimal_cost: int | None = None
    if job.arch is not None:
        from repro.arch.backend import get_backend

        backend = get_backend(job.arch)
    else:
        backend = backend_for_model(job.model)
    if backend is not None:
        from repro.arch.lowering import lower_analysis
        from repro.synth import synthesize_analysis

        _, greedy_summary = lower_analysis(analysis, backend)
        _, optimal_summary = synthesize_analysis(analysis, backend)
        greedy_cost = greedy_summary.cost
        optimal_cost = optimal_summary.cost
        summary = (
            optimal_summary if job.synthesis == "optimal" else greedy_summary
        )
        fence_cost = summary.cost
        flavors = dict(summary.flavors)
    elapsed = time.perf_counter() - start
    obs_metrics.REGISTRY.observe(
        "repro_batch_cell_seconds", elapsed, variant=job.variant, model=job.model
    )
    return BatchResult(
        program=job.program,
        variant=job.variant,
        model=job.model,
        key=job.content_key(),
        functions=functions,
        ordering_kinds=kinds,
        elapsed=elapsed,
        context_hits=context_hits,
        context_misses=context_misses,
        context_by_fact=context_by_fact,
        fence_cost=fence_cost,
        flavors=flavors,
        greedy_cost=greedy_cost,
        optimal_cost=optimal_cost,
    )


class ResultCache:
    """Content-keyed result cache: in-memory, optionally disk-backed.

    Disk entries are one JSON file per content key under ``directory``;
    corrupt or unreadable files are treated as misses.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, BatchResult] = {}

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def get(self, key: str) -> BatchResult | None:
        result = self._memory.get(key)
        if result is not None:
            return result
        if self.directory is not None:
            path = self._path(key)
            if path.is_file():
                try:
                    result = BatchResult.from_json(
                        path.read_text(encoding="utf-8")
                    )
                except (ValueError, TypeError, KeyError, OSError):
                    return None
                self._memory[key] = result
                return result
        return None

    def put(self, result: BatchResult) -> None:
        self._memory[result.key] = result
        if self.directory is not None:
            # The disk layer is an optimization: a full disk or
            # unwritable directory must not abort a finished run.
            # (get() likewise tolerates torn/corrupt entries.)
            try:
                self._path(result.key).write_text(
                    result.to_json(), encoding="utf-8"
                )
            except OSError:
                pass

    def __len__(self) -> int:
        return len(self._memory)


def _map_with_report(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    max_workers: int | None = None,
    parallel: bool = True,
) -> tuple[list[_R], bool]:
    """Order-preserving map; second element reports pool usage.

    Uses a process pool when ``parallel`` and there is more than one
    item; falls back to a deterministic serial loop when parallelism is
    disabled, pointless (0-1 items, one worker), or unavailable in the
    host environment (sandboxes without fork/semaphore support).
    """
    items = list(items)
    workers = max_workers if max_workers is not None else os.cpu_count() or 1
    workers = min(workers, len(items)) if items else 0
    if not parallel or workers < 1 or len(items) <= 1:
        return [fn(item) for item in items], False
    # Fallback covers both environments where pools can't start (no
    # fork/semaphores: OSError) and pools whose workers die mid-run
    # (BrokenProcessPool). Completed futures are discarded on
    # fallback — jobs must be idempotent, which analysis jobs are.
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(fn, item) for item in items]
            return [f.result() for f in futures], True
    except (OSError, BrokenProcessPool):
        return [fn(item) for item in items], False


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    max_workers: int | None = None,
    parallel: bool = True,
) -> list[_R]:
    """Map ``fn`` over ``items`` on the process pool, preserving order."""
    return _map_with_report(fn, items, max_workers, parallel)[0]


def budgeted_parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    budget: float | None = None,
    max_workers: int | None = None,
    parallel: bool = True,
    chunk_size: int | None = None,
) -> tuple[list[_R], bool, bool]:
    """Order-preserving parallel map under a wall-clock budget.

    Items are dispatched in chunks (default: two pool-fulls) so a
    budget check can run between chunks; chunks already dispatched run
    to completion, which keeps results deterministic for a given
    (items, budget-crossing chunk) pair. Returns ``(results,
    budget_exhausted, used_pool)`` — ``results`` covers the completed
    prefix of ``items`` only. ``budget=None`` processes everything.

    The validator's fuzz runner uses this for its {seed x shape x
    model} matrix; any idempotent job list works.
    """
    items = list(items)
    workers = max_workers if max_workers is not None else os.cpu_count() or 1
    chunk = chunk_size if chunk_size is not None else max(4, 2 * workers)
    results: list[_R] = []
    used_pool = False
    start = time.perf_counter()
    for offset in range(0, len(items), chunk):
        chunk_results, chunk_pool = _map_with_report(
            fn, items[offset : offset + chunk], max_workers, parallel
        )
        results.extend(chunk_results)
        used_pool = used_pool or chunk_pool
        if (
            budget is not None
            and time.perf_counter() - start >= budget
            and offset + chunk < len(items)
        ):
            return results, True, used_pool
    return results, False, used_pool


class BatchRunner:
    """Analyze a job matrix in parallel with result caching.

    ``max_workers=None`` uses the host CPU count. ``parallel=False``
    forces the deterministic serial path. Either way the returned list
    matches job-submission order. ``used_pool`` reports whether the
    most recent :meth:`run` actually dispatched to a process pool.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        parallel: bool = True,
        cache: ResultCache | None = None,
    ) -> None:
        self.max_workers = max_workers
        self.parallel = parallel
        self.cache = cache if cache is not None else ResultCache()
        self.used_pool = False

    def run(self, jobs: Sequence[BatchJob]) -> list[BatchResult]:
        jobs = list(jobs)
        results: list[BatchResult | None] = [None] * len(jobs)
        pending: list[tuple[int, BatchJob]] = []
        for i, job in enumerate(jobs):
            hit = self.cache.get(job.content_key())
            if hit is not None:
                results[i] = replace(hit, cached=True)
            else:
                pending.append((i, job))

        # One worker invocation per program source, not per cell: the
        # variant/model cells of a program share one compile and one
        # AnalysisContext inside the worker.
        groups: dict[tuple[str, str | None], list[tuple[int, BatchJob]]] = {}
        for i, job in pending:
            groups.setdefault((job.program, job.source), []).append((i, job))
        group_list = list(groups.values())
        computed, self.used_pool = _map_with_report(
            execute_job_group,
            [tuple(job for _, job in group) for group in group_list],
            max_workers=self.max_workers,
            parallel=self.parallel,
        )
        for group, group_results in zip(group_list, computed):
            for (i, _), result in zip(group, group_results):
                self.cache.put(result)
                results[i] = result
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def run_matrix(
        self,
        programs: Iterable[str] | None = None,
        variants: Iterable[str | PipelineVariant] | None = None,
        models: Iterable[str] | None = None,
        arch: str | None = None,
        synthesis: str = "greedy",
    ) -> list[BatchResult]:
        """Cross product in stable (program, variant, model) order.

        Defaults: all 17 registry programs × all three variants ×
        x86-TSO. ``arch`` overrides the per-model default backend used
        for flavored lowering costs; ``synthesis`` selects which
        strategy's cost lands in each cell's ``fence_cost`` (both are
        reported regardless).
        """
        from repro.programs.registry import all_programs

        program_names = (
            list(programs) if programs is not None else list(all_programs())
        )
        known_variants = pipeline_variant_keys()
        variant_values = [
            v.value if isinstance(v, PipelineVariant) else v
            for v in (variants if variants is not None else list(known_variants))
        ]
        model_names = list(models) if models is not None else ["x86-tso"]
        for value in variant_values:
            if value not in known_variants:
                raise KeyError(
                    f"unknown variant {value!r}; "
                    f"known: {', '.join(known_variants)}"
                )
        for name in model_names:
            if name not in model_keys():
                raise KeyError(
                    f"unknown model {name!r}; known: {', '.join(model_keys())}"
                )
        from repro.core.pipeline import SYNTHESIS_MODES

        if synthesis not in SYNTHESIS_MODES:
            raise KeyError(
                f"unknown synthesis {synthesis!r}; "
                f"known: {', '.join(SYNTHESIS_MODES)}"
            )
        jobs = [
            BatchJob(program=p, variant=v, model=m, arch=arch, synthesis=synthesis)
            for p in program_names
            for v in variant_values
            for m in model_names
        ]
        return self.run(jobs)
