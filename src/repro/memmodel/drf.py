"""Well-synchronizedness (legacy DRF) checking.

Paper Section 3: a program is (legacy) data-race-free iff in all
executions, all conflicting data actions are ordered by happens-before.
This module enumerates SC traces (bounded) and checks the property
under a given data/synchronization marking — either the programmer's
intended marking or the marking induced by detected acquires.

Used by tests to validate two things:

* the evaluation workloads are well-synchronized under their intended
  markings (the paper's prerequisite), and
* the *detected* acquire sets are sufficient markings — no data race
  survives when detected acquires + all escaping writes synchronize —
  which is the operational content of Theorem 3.1's conservatism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Program
from repro.ir.instructions import Instruction
from repro.memmodel.hb import Race, SyncPredicate, find_races, sync_from_instructions
from repro.memmodel.sc import Trace, enumerate_sc_traces


@dataclass
class DRFReport:
    """Result of checking a program against a marking."""

    program: Program
    races: list[Race] = field(default_factory=list)
    traces_checked: int = 0
    complete: bool = True  # False if trace enumeration hit its bound

    @property
    def is_race_free(self) -> bool:
        return not self.races


def check_drf(
    program: Program,
    is_sync: SyncPredicate,
    max_traces: int = 2_000,
    max_actions: int = 200,
) -> DRFReport:
    """Enumerate SC traces and report all data races under the marking."""
    traces = enumerate_sc_traces(
        program, max_traces=max_traces, max_actions=max_actions
    )
    report = DRFReport(program)
    report.traces_checked = len(traces)
    report.complete = len(traces) < max_traces and all(t.complete for t in traces)
    seen: set[tuple] = set()
    for trace in traces:
        for race in find_races(trace, is_sync):
            key = (
                id(race.first.inst),
                id(race.second.inst),
                race.first.addr,
            )
            if key not in seen:
                seen.add(key)
                report.races.append(race)
    return report


def check_drf_with_detected_acquires(
    program: Program,
    sync_reads: list[Instruction],
    max_traces: int = 2_000,
    max_actions: int = 200,
) -> DRFReport:
    """Check DRF with detected acquires + every escaping write as sync.

    This is the paper's marking: acquire reads come from signature
    detection; all escaping writes are conservatively releases.
    """
    from repro.analysis.escape import EscapeInfo

    sync_insts: list[Instruction] = list(sync_reads)
    for func in program.functions.values():
        sync_insts.extend(EscapeInfo(func).escaping_writes)
    return check_drf(
        program,
        sync_from_instructions(sync_insts),
        max_traces=max_traces,
        max_actions=max_actions,
    )
