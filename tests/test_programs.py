"""Tests for the workload suite: kernels, models, and the generator."""

import pytest

from repro.core.signatures import signature_breakdown
from repro.frontend import compile_source
from repro.ir import verify_program
from repro.programs import SYNC_KERNELS, all_programs, get_program
from repro.programs.datagen import (
    compute_section,
    gather_kernel,
    guarded_kernel,
    stream_kernel,
)
from repro.simulator import simulate


# --- Table II kernels -----------------------------------------------------


@pytest.mark.parametrize("name", sorted(SYNC_KERNELS))
def test_kernel_compiles_and_verifies(name):
    kernel = SYNC_KERNELS[name]
    verify_program(kernel.compile())
    verify_program(kernel.compile(include_manual_fences=True))


@pytest.mark.parametrize("name", sorted(SYNC_KERNELS))
def test_kernel_signature_matches_paper(name):
    kernel = SYNC_KERNELS[name]
    program = kernel.compile()
    has_addr = has_ctrl = has_pure = False
    for fn in kernel.kernel_functions:
        bd = signature_breakdown(program.functions[fn])
        has_addr |= bd.has_address
        has_ctrl |= bd.has_control
        has_pure |= bd.has_pure_address
    assert has_addr == kernel.paper_addr, f"{name}: addr"
    assert has_ctrl == kernel.paper_ctrl, f"{name}: ctrl"
    assert has_pure == kernel.paper_pure_addr, f"{name}: pure addr"


def test_no_kernel_has_pure_address_acquires():
    # The paper's headline Table II observation.
    for kernel in SYNC_KERNELS.values():
        assert not kernel.paper_pure_addr


@pytest.mark.parametrize(
    "name,counter,expected",
    [
        ("dekker", "d_counter", 6),
        ("peterson", "p_counter", 6),
        ("lamport", "l_counter", 4),
        ("szymanski", "s_counter", 4),
        ("clh-lock", "clh_counter", 4),
        ("mcs-lock", "mcs_counter", 4),
        ("michael-scott-q", "msq_popped", 6),
    ],
)
def test_kernel_executes_correctly_under_manual_fences(name, counter, expected):
    stats = simulate(SYNC_KERNELS[name].compile(include_manual_fences=True))
    assert stats.final_globals[counter] == expected


def test_chase_lev_conserves_tasks():
    stats = simulate(SYNC_KERNELS["chase-lev-wsq"].compile(include_manual_fences=True))
    total = stats.final_globals["cl_taken"] + stats.final_globals["cl_stolen"]
    assert total == 1 + 2 + 3


def test_cilk5_conserves_tasks():
    stats = simulate(SYNC_KERNELS["cilk5-wsq"].compile(include_manual_fences=True))
    total = stats.final_globals["c_done_work"] + stats.final_globals["c_stolen"]
    assert total == 3


# --- benchmark models ------------------------------------------------------------


def test_registry_has_17_programs():
    programs = all_programs()
    assert len(programs) == 17
    assert sum(1 for p in programs.values() if p.suite == "splash2") == 14
    assert sum(1 for p in programs.values() if p.suite == "lockfree") == 3


def test_registry_unknown_name():
    with pytest.raises(KeyError, match="unknown program"):
        get_program("nonexistent")


@pytest.mark.parametrize("name", sorted(all_programs()))
def test_model_compiles_both_variants(name):
    program = get_program(name)
    verify_program(program.compile())
    verify_program(program.compile(manual_fences=True))


@pytest.mark.parametrize("name", sorted(all_programs()))
def test_model_runs_to_completion(name):
    stats = simulate(get_program(name).compile(manual_fences=True))
    assert stats.cycles > 0


def test_manual_fence_counts_match_paper():
    from repro.experiments.expected import MANUAL_FENCES

    for name, expected in MANUAL_FENCES.items():
        assert get_program(name).manual_fence_count == expected, name


def test_library_synced_programs_have_no_manual_fences():
    for name, program in all_programs().items():
        if name not in ("canneal", "fmm", "volrend", "matrix", "spanningtree"):
            assert program.manual_fence_count == 0, name


def test_matrix_computes_product():
    stats = simulate(get_program("matrix").compile(manual_fences=True))
    a = [stats.final_globals[f"mx_a[{i}]"] for i in range(64)]
    b = [stats.final_globals[f"mx_b[{i}]"] for i in range(64)]
    c = [stats.final_globals[f"mx_c[{i}]"] for i in range(64)]
    for r in range(8):
        for col in range(8):
            assert c[r * 8 + col] == sum(a[r * 8 + k] * b[k * 8 + col] for k in range(8))


def test_spanningtree_reaches_all_nodes():
    stats = simulate(get_program("spanningtree").compile(manual_fences=True))
    assert stats.final_globals["st_claimed"] == 16
    assert all(stats.final_globals[f"st_parent[{i}]"] != 0 for i in range(16))


def test_radix_produces_permutation():
    stats = simulate(get_program("radix").compile(manual_fences=True))
    keys = sorted(stats.final_globals[f"rx_keys[{i}]"] for i in range(32))
    out = sorted(stats.final_globals[f"rx_out[{i}]"] for i in range(32))
    assert keys == out


def test_fmm_handshakes_complete():
    stats = simulate(get_program("fmm").compile(manual_fences=True))
    for t in range(4):
        assert stats.final_globals[f"fmm_ack[{t}]"] == 3


# --- workload generator -----------------------------------------------------------


def _marking_counts(decls: str, fns: str, call: str):
    from repro.analysis.escape import EscapeInfo

    src = decls + "\n" + fns + f"\nfn w(tid) {{ {call}(tid); }}\nthread w(0);\n"
    prog = compile_source(src, "gen")
    func = prog.functions[call]
    esc = EscapeInfo(func)
    bd = signature_breakdown(func)
    return len(esc.escaping_reads), len(bd.control), len(bd.all_acquires)


def test_stream_kernel_reads_unmarked():
    decls, fns = stream_kernel("k_stream", "k", reads=12)
    total, ctrl, ac = _marking_counts(decls, fns, "k_stream")
    assert total == 12
    assert ctrl == 0
    assert ac == 0


def test_gather_kernel_marks_index_reads_only():
    decls, fns = gather_kernel("k_gather", "k", index_reads=6)
    total, ctrl, ac = _marking_counts(decls, fns, "k_gather")
    assert ctrl == 0
    assert ac == 6
    assert total == 12  # each gather adds one unmarked table read


def test_scatter_reads_marked_without_companions():
    decls, fns = gather_kernel("k_sc", "k", index_reads=1, scatter_reads=5)
    total, ctrl, ac = _marking_counts(decls, fns, "k_sc")
    assert ac == 6
    assert total == 7


def test_guarded_kernel_marks_control():
    decls, fns = guarded_kernel("k_guard", "k", guard_reads=5)
    total, ctrl, ac = _marking_counts(decls, fns, "k_guard")
    assert total == 5
    assert ctrl == 5
    assert ac == 5


def test_compute_section_composition():
    decls, fns, calls = compute_section(
        "zz", stream_reads=4, gather_reads=2, scatter_reads=2, guard_reads=1
    )
    assert set(calls) == {"zz_stream", "zz_gather", "zz_guard"}
    assert "zz_init" in fns


def test_generator_validates_inputs():
    with pytest.raises(ValueError):
        stream_kernel("f", "p", reads=0)
    with pytest.raises(ValueError):
        gather_kernel("f", "p", index_reads=0, scatter_reads=0)
    with pytest.raises(ValueError):
        guarded_kernel("f", "p", guard_reads=0)


def test_manual_fence_count_compiles_at_most_once(monkeypatch):
    """Accessing the cached count twice triggers at most one compile."""
    import repro.programs.registry as registry_mod
    from repro.programs.registry import BenchProgram

    program = BenchProgram(
        name="cache-probe",
        suite="lockfree",
        description="compile-count probe",
        source="global g; fn f(tid) { fence; g = 1; } thread f(0);",
    )
    compiles = []
    original = registry_mod.compile_source

    def counting(*args, **kwargs):
        compiles.append(1)
        return original(*args, **kwargs)

    monkeypatch.setattr(registry_mod, "compile_source", counting)
    first = program.manual_fence_count
    second = program.manual_fence_count
    assert first == second == 1
    assert len(compiles) == 1
