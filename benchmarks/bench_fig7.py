"""Regenerates Fig. 7: % of escaping reads marked acquire, 17 programs."""

from repro.experiments import expected, fig7


def test_fig7(benchmark, programs, report_sink):
    result = benchmark.pedantic(
        fig7.run, args=(programs,), rounds=1, iterations=1
    )
    assert len(result.rows) == 17
    # Shape assertions (see EXPERIMENTS.md for paper-vs-measured):
    assert abs(result.geomean_control - expected.FIG7_GEOMEAN_CONTROL) < 0.06
    assert (
        abs(result.geomean_address_control - expected.FIG7_GEOMEAN_ADDRESS_CONTROL)
        < 0.10
    )
    report_sink["fig7"] = fig7.render(result)
