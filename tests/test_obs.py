"""Tests for the repro.obs observability layer (trace + metrics + top)."""

import importlib.util
import json
import time
from pathlib import Path

import pytest

from repro.api import AnalyzeRequest, ProgramSpec, Session
from repro.obs import metrics, trace
from repro.obs.top import (
    render_frame,
    render_ops_table,
    render_slow_queries,
    render_workers_table,
)
from repro.serve import ServeDispatcher

MP = """
global int flag;
global int data;

fn producer(tid) { data = 1; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""

SPEC = ProgramSpec.inline(MP, name="mp")


def _load_prom_checker():
    path = Path(__file__).resolve().parent.parent / "tools" / "check_prom_format.py"
    spec = importlib.util.spec_from_file_location("check_prom_format", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def tracer():
    """A clean enabled tracer; always disabled afterwards."""
    trace.disable()
    t = trace.enable()
    yield t
    trace.disable()


@pytest.fixture(autouse=True)
def _clean_state():
    """Tests never observe another test's global samples or tracer."""
    metrics.REGISTRY.reset()
    trace.SLOW_QUERIES.clear()
    saved_threshold = trace.SLOW_QUERIES.threshold
    yield
    trace.disable()
    metrics.REGISTRY.reset()
    trace.SLOW_QUERIES.clear()
    trace.SLOW_QUERIES.threshold = saved_threshold


# --- tracer ---------------------------------------------------------------
def test_span_disabled_is_shared_noop_singleton():
    assert not trace.enabled()
    first = trace.span("anything", cat="x", irrelevant=1)
    second = trace.span("else")
    assert first is second is trace.NOOP_SPAN
    with first as sp:
        sp.set(late=True)  # discarded, no error


def test_span_records_complete_events(tracer):
    with trace.span("outer", cat="test", a=1):
        time.sleep(0.001)
        with trace.span("inner", cat="test"):
            pass
    events = tracer.events()
    assert [e["name"] for e in events] == ["inner", "outer"]  # exit order
    for event in events:
        assert event["ph"] == "X"
        assert set(event) == {
            "name", "cat", "ph", "ts", "dur", "pid", "tid", "args"
        }
    inner, outer = events
    # Nesting is ts/dur containment on the same pid/tid row.
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1
    assert tracer.started == 2


def test_span_error_and_late_args(tracer):
    with pytest.raises(ValueError):
        with trace.span("boom", cat="test"):
            raise ValueError("x")
    with trace.span("late", cat="test") as sp:
        sp.set(answer=42)
    boom, late = tracer.events()
    assert boom["args"]["error"] == "ValueError"
    assert late["args"]["answer"] == 42


def test_request_scope_binds_and_propagates(tracer):
    assert trace.current_trace_id() is None
    with trace.request_scope("cafe") as tid:
        assert tid == "cafe"
        with trace.span("inside", cat="test"):
            pass
        with trace.request_scope() as inherited:
            assert inherited == "cafe"  # reuse, don't remint
    assert trace.current_trace_id() is None
    (event,) = tracer.events()
    assert event["args"]["trace"] == "cafe"


def test_request_scope_noop_when_disabled():
    with trace.request_scope("ignored") as tid:
        assert tid is None


def test_chrome_export_schema(tracer, tmp_path):
    with trace.span("b", cat="test"):
        pass
    with trace.span("a", cat="test"):
        pass
    out = tmp_path / "trace.json"
    trace.export_chrome(out, tracer.events())
    data = json.loads(out.read_text(encoding="utf-8"))
    assert data["displayTimeUnit"] == "ms"
    events = data["traceEvents"]
    assert all(e["ph"] == "X" for e in events)
    assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)


def test_tracer_ingest_and_drain(tracer):
    tracer.ingest([{"name": "remote", "ph": "X"}, "not-a-dict"])
    assert len(tracer) == 1
    drained = tracer.drain()
    assert [e["name"] for e in drained] == ["remote"]
    assert len(tracer) == 0


# --- slow-query log -------------------------------------------------------
def test_slow_query_log_works_without_tracer():
    assert not trace.enabled()
    trace.SLOW_QUERIES.threshold = 0.0
    session = Session()
    session.analyze(AnalyzeRequest(program=SPEC))
    entries = trace.SLOW_QUERIES.entries()
    assert entries, "a zero threshold must log every evaluation"
    assert {"query", "key", "fingerprint", "seconds"} <= set(entries[0])


def test_query_eval_spans_nest_under_engine(tracer):
    session = Session()
    session.analyze(AnalyzeRequest(program=SPEC))
    evals = [e for e in tracer.events() if e["name"] == "query.eval"]
    assert evals
    assert all(e["args"]["query"] for e in evals)


# --- metrics registry -----------------------------------------------------
def test_counters_gauges_and_histograms():
    registry = metrics.MetricsRegistry()
    registry.inc("repro_x_total", kind="a")
    registry.inc("repro_x_total", 2, kind="a")
    registry.set_gauge("repro_depth", 7)
    for value in (0.003, 0.003, 0.02):
        registry.observe("repro_lat_seconds", value, op="q")
    payload = registry.to_payload()
    assert payload["counters"]['repro_x_total{kind="a"}'] == 3
    assert payload["gauges"]["repro_depth"] == 7
    hist = payload["histograms"]['repro_lat_seconds{op="q"}']
    assert hist["count"] == 3
    assert hist["sum"] == pytest.approx(0.026)
    assert 0.0025 <= hist["p50"] <= 0.005
    assert 0.01 <= hist["p99"] <= 0.025


def test_histogram_overflow_reports_ladder_top():
    registry = metrics.MetricsRegistry()
    registry.observe("repro_lat_seconds", 1e6)
    hist = registry.to_payload()["histograms"]["repro_lat_seconds"]
    assert hist["p50"] == metrics.DEFAULT_BUCKETS[-1]


def test_merge_payloads_sums_and_rederives_percentiles():
    a, b = metrics.MetricsRegistry(), metrics.MetricsRegistry()
    a.inc("repro_x_total", 2)
    b.inc("repro_x_total", 3)
    a.observe("repro_lat_seconds", 0.003)
    b.observe("repro_lat_seconds", 0.2)
    merged = metrics.merge_payloads([a.to_payload(), b.to_payload(), None])
    assert merged["counters"]["repro_x_total"] == 5
    hist = merged["histograms"]["repro_lat_seconds"]
    assert hist["count"] == 2
    assert hist["sum"] == pytest.approx(0.203)
    assert hist["p99"] > 0.1  # the slow worker's tail survives the merge


def test_sample_name_round_trip():
    sample = metrics.sample_name("repro_x_total", {"b": "2", "a": "1"})
    assert sample == 'repro_x_total{a="1",b="2"}'
    assert metrics.split_sample(sample) == ("repro_x_total", 'a="1",b="2"')
    assert metrics.split_sample("bare") == ("bare", "")


# --- Prometheus text format -----------------------------------------------
def test_render_prometheus_passes_the_checker():
    checker = _load_prom_checker()
    registry = metrics.MetricsRegistry()
    registry.inc("repro_x_total", 3, kind="a")
    registry.set_gauge("repro_depth", 2)
    registry.observe("repro_lat_seconds", 0.004, op="q")
    registry.observe("repro_lat_seconds", 50.0, op="q")  # overflow bucket
    text = metrics.render_prometheus(registry.to_payload())
    assert checker.check_text(text) == []
    assert "# TYPE repro_x_total counter" in text
    assert "# TYPE repro_lat_seconds histogram" in text
    assert 'repro_lat_seconds_bucket{op="q",le="+Inf"} 2' in text


def test_checker_rejects_broken_expositions():
    checker = _load_prom_checker()
    assert checker.check_text("orphan_sample 1\n")  # no TYPE line
    non_cumulative = (
        "# TYPE repro_lat_seconds histogram\n"
        'repro_lat_seconds_bucket{le="0.1"} 5\n'
        'repro_lat_seconds_bucket{le="+Inf"} 3\n'
        "repro_lat_seconds_sum 1\n"
        "repro_lat_seconds_count 3\n"
    )
    assert any(
        "cumulative" in p for p in checker.check_text(non_cumulative)
    )
    missing_inf = (
        "# TYPE repro_lat_seconds histogram\n"
        'repro_lat_seconds_bucket{le="0.1"} 5\n'
        "repro_lat_seconds_sum 1\n"
        "repro_lat_seconds_count 5\n"
    )
    assert any("+Inf" in p for p in checker.check_text(missing_inf))


# --- query-engine counters vs Session.stats -------------------------------
def test_metrics_op_matches_session_stats_exactly():
    dispatcher = ServeDispatcher(Session())
    request = AnalyzeRequest(program=SPEC).to_payload()
    dispatcher.handle_line(json.dumps(request))
    dispatcher.handle_line(json.dumps(request))  # warm pass: hits

    response, stop = dispatcher._handle_op({"op": "metrics"})
    assert response["ok"] and not stop
    counters = response["metrics"]["counters"]
    query_stats = dispatcher.session.stats()["query_stats"]

    for total in ("lookups", "hits", "misses", "computes"):
        assert counters[f"repro_query_{total}_total"] == query_stats[total]
    assert query_stats["by_query_hits"], "warm pass must produce hits"
    for kind, count in query_stats["by_query_hits"].items():
        assert counters[f'repro_query_hits_total{{query="{kind}"}}'] == count
    for kind, count in query_stats["by_query_misses"].items():
        assert counters[f'repro_query_misses_total{{query="{kind}"}}'] == count

    checker = _load_prom_checker()
    assert checker.check_text(response["text"]) == []


def test_serve_request_metrics_and_explorer_counters():
    dispatcher = ServeDispatcher(Session())
    dispatcher.handle_line(json.dumps(AnalyzeRequest(program=SPEC).to_payload()))
    dispatcher.handle_line('{"kind": "analyze-request"}')  # schema error
    payload = metrics.REGISTRY.to_payload()
    assert payload["counters"]['repro_serve_requests_total{kind="analyze-request",ok="true"}'] == 1
    assert payload["counters"]['repro_serve_requests_total{kind="analyze-request",ok="false"}'] == 1
    hist = payload["histograms"]['repro_serve_request_seconds{kind="analyze-request"}']
    assert hist["count"] == 2


def test_explorer_counters_flush_per_model():
    from repro.frontend import compile_source
    from repro.memmodel.sc import SCExplorer

    program = compile_source(MP, "mp")
    explorer = SCExplorer(program)
    result = explorer.explore()
    payload = metrics.REGISTRY.to_payload()
    states = payload["counters"]['repro_explore_states_total{model="sc"}']
    # The counter accumulates across deepening rounds; the result holds
    # the final round's count.
    assert states >= result.states_explored > 0
    assert 'repro_explore_sleep_blocked_total{model="sc"}' in payload["counters"]
    assert 'repro_explore_pruned_total{model="sc"}' in payload["counters"]


# --- top renderings -------------------------------------------------------
def test_top_renderings():
    registry = metrics.MetricsRegistry()
    registry.observe("repro_serve_request_seconds", 0.004, kind="analyze-request")
    registry.inc("repro_serve_requests_total", kind="analyze-request", ok="false")
    payload = registry.to_payload()
    table = render_ops_table(payload)
    assert "analyze-request" in table
    assert render_ops_table({"histograms": {}}) is None

    stats = {"cluster": {"workers": [
        {"worker": 0, "pid": 123, "queue_depth": 1, "inflight": 0,
         "answered": 4, "restarts": 0, "session": None},
        {"worker": 1, "restarting": True, "restarts": 2},
    ]}}
    workers = render_workers_table(stats)
    assert "(restarting)" in workers
    assert "123" in workers

    slow = render_slow_queries([
        {"query": "escape_info", "key": "f", "fingerprint": None, "seconds": 1.5},
    ])
    assert "escape_info" in slow

    frame = render_frame(
        {"metrics": payload, "slow_queries": []}, stats_response=stats
    )
    assert "analyze-request" in frame and "(restarting)" in frame
    empty = render_frame({"metrics": {}, "slow_queries": []}, None)
    assert "no samples" in empty
