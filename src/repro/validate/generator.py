"""Seeded randomized program generator for the differential validator.

Every generated program is a *synchronization scaffold* — one of the
five shapes below — optionally mixed with tiny stream/gather/guarded
compute kernels from :mod:`repro.programs.datagen`. Shapes are chosen
so the programs are well-synchronized **by construction** under their
recorded ``sync_globals`` marking (the paper's legacy-DRF
precondition), while still covering the delay patterns that matter:

``handoff``
    flag-guarded message passing (spin-loop or guarded-if consumer,
    1-2 payload variables, 2-3 threads). Safe on TSO unfenced; breaks
    on PSO unfenced (the data store can drain after the flag store).
``publish``
    pointer publication (paper Fig. 5): the reader's pointer load is a
    *pure address* acquire — no branch ever depends on it.
``dekker``
    store-then-read-other mutual exclusion, per-side consumption either
    a branch (control acquire) or a pointer dereference (address
    acquire). The canonical w->r cycle: breaks on TSO unfenced, and a
    detection variant that misses either side's acquire leaves it
    broken — the validator's built-in unsoundness demo.
``barrier``
    sense-reversing barrier over ``fadd``: exercises RMW fence
    semantics; no placement is ever needed beyond the RMW itself.
``queue``
    a minimal Chase-Lev deque (owner push/take, thief steal with CAS):
    the owner's unfenced ``bottom``-store / ``top``-load pair allows
    the classic double-take on TSO.

Expected properties are recorded on the :class:`GeneratedProgram` so
the oracle's verdicts can themselves be validated (see
``expected_unsound_tso``): a fuzzer whose oracle never fires is
indistinguishable from a fuzzer that works.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.frontend import compile_source
from repro.ir.function import Program
from repro.programs.datagen import fuzz_compute_section

#: Scaffold shapes the fuzzer knows how to build.
SHAPES = ("handoff", "publish", "dekker", "barrier", "queue")


@dataclass(frozen=True)
class GeneratedProgram:
    """One fuzzed program plus its by-construction ground truth."""

    name: str
    seed: int
    shape: str
    source: str
    # The intended synchronization marking (legacy-DRF ground truth).
    sync_globals: frozenset[str]
    threads: int
    # Does the unfenced program show non-SC observations on the model?
    # None = the shape does not pin this down (value-coincidence can
    # mask weak behaviours), so the oracle just records what it finds.
    expect_tso_break: bool | None = None
    expect_pso_break: bool | None = None
    # Detection variants expected to yield a soundness violation under
    # x86-TSO (used to prove the oracle actually fires).
    expected_unsound_tso: frozenset[str] = frozenset()
    notes: str = ""

    def compile(self) -> Program:
        return compile_source(self.source, self.name)

    @property
    def source_lines(self) -> int:
        return sum(1 for line in self.source.splitlines() if line.strip())


def _maybe_kernel(
    rng: random.Random, prefix: str, probability: float = 0.5
) -> tuple[str, str, list[str]]:
    """Attach a tiny compute section with an rng-chosen read mix.

    Kernels are only ever called from scaffold worker functions; their
    strided loops write thread-disjoint slots, so they add escaping
    reads of every signature mix without adding races.
    """
    if rng.random() >= probability:
        return "", "", []
    flavor = rng.choice(("stream", "gather", "guard"))
    return fuzz_compute_section(
        rng, prefix, size=4, **{f"{flavor}_reads": rng.randint(1, 2)}
    )


def _with_kernels(lines: list[str], calls: list[str]) -> list[str]:
    return lines + [f"  {call}(tid);" for call in calls]


def _build_handoff(rng: random.Random, seed: int) -> GeneratedProgram:
    payloads = rng.randint(1, 2)
    consumers = rng.choice((1, 1, 2))
    style = rng.choice(("spin", "guard"))
    values = [rng.randint(1, 9) for _ in range(payloads)]
    kernel_decls, kernel_fns, kernel_calls = _maybe_kernel(rng, "hk")

    decls = ["global int h_flag;"]
    decls += [f"global int h_data{i};" for i in range(payloads)]

    producer = ["fn h_producer(tid) {"]
    producer += [f"  h_data{i} = {v};" for i, v in enumerate(values)]
    producer.append("  h_flag = 1;")
    producer.append("}")

    consumer = ["fn h_consumer(tid) {"]
    consumer += [f"  local r{i} = 0;" for i in range(payloads)]
    if style == "spin":
        consumer.append("  while (h_flag == 0) { }")
        for i in range(payloads):
            consumer.append(f"  r{i} = h_data{i};")
            consumer.append(f'  observe("r{i}", r{i});')
    else:
        consumer.append("  local g = 0;")
        consumer.append("  g = h_flag;")
        consumer.append("  if (g == 1) {")
        for i in range(payloads):
            consumer.append(f"    r{i} = h_data{i};")
            consumer.append(f'    observe("r{i}", r{i});')
        consumer.append("  }")
    consumer = _with_kernels(consumer, kernel_calls)
    consumer.append("}")

    threads = ["thread h_producer(0);"]
    threads += [f"thread h_consumer({i + 1});" for i in range(consumers)]

    parts = ["\n".join(decls)]
    if kernel_decls:
        parts.append(kernel_decls)
    parts.append("\n".join(producer))
    parts.append("\n".join(consumer))
    if kernel_fns:
        parts.append(kernel_fns)
    parts.append("\n".join(threads))
    return GeneratedProgram(
        name=f"fuzz-handoff-{seed:04d}",
        seed=seed,
        shape="handoff",
        source="\n\n".join(parts) + "\n",
        sync_globals=frozenset({"h_flag"}),
        threads=1 + consumers,
        expect_tso_break=False,  # w->w and r->r suffice; TSO keeps both
        expect_pso_break=True,  # the data store can drain after the flag
        notes=f"{style} consumer, {payloads} payload(s), "
        f"{consumers} consumer(s), kernels={kernel_calls or 'none'}",
    )


def _build_publish(rng: random.Random, seed: int) -> GeneratedProgram:
    value = rng.randint(1, 9)
    # The pre-publication target holds a distinct nonzero value:
    # a stale dereference of the *new* box (PSO draining the pointer
    # before the payload) then reads 0, which neither legal SC outcome
    # (old target's value, new payload) can produce — without this the
    # weak behaviour is value-masked.
    init_value = value + rng.randint(1, 9)
    guarded = rng.random() < 0.4
    kernel_decls, kernel_fns, kernel_calls = _maybe_kernel(rng, "pk", 0.4)

    decls = [
        "global int p_box;",
        f"global int p_init = {init_value};",
        "global int p_ptr = &p_init;",
    ]
    writer = [
        "fn p_writer(tid) {",
        f"  p_box = {value};",
        "  p_ptr = &p_box;",
        "}",
    ]
    reader = ["fn p_reader(tid) {", "  local r = 0;", "  local v = 0;"]
    reader.append("  r = p_ptr;")
    if guarded:
        # Double-check shape: the pointer read feeds the branch *and*
        # the dereference, matching both signatures.
        reader.append("  if (r != &p_init) {")
        reader.append("    v = *r;")
        reader.append('    observe("v", v);')
        reader.append("  }")
    else:
        # Paper Fig. 5: a pure address acquire; no branch depends on r.
        reader.append("  v = *r;")
        reader.append('  observe("v", v);')
    reader = _with_kernels(reader, kernel_calls)
    reader.append("}")

    parts = ["\n".join(decls)]
    if kernel_decls:
        parts.append(kernel_decls)
    parts.append("\n".join(writer))
    parts.append("\n".join(reader))
    if kernel_fns:
        parts.append(kernel_fns)
    parts.append("thread p_writer(0);\nthread p_reader(1);")
    return GeneratedProgram(
        name=f"fuzz-publish-{seed:04d}",
        seed=seed,
        shape="publish",
        source="\n\n".join(parts) + "\n",
        sync_globals=frozenset({"p_ptr"}),
        threads=2,
        expect_tso_break=False,
        expect_pso_break=True,  # the box store can drain after the pointer
        notes=f"{'double-check' if guarded else 'pure-address'} reader, "
        f"kernels={kernel_calls or 'none'}",
    )


def _build_dekker(rng: random.Random, seed: int) -> GeneratedProgram:
    # flavors[i] is how side i *consumes* the value it reads; the
    # variable side i reads (written by the other side) is an int flag
    # for a control consumer and a published pointer for an address
    # consumer.
    flavors = (
        rng.choice(("control", "address")),
        rng.choice(("control", "address")),
    )
    cell_value = rng.randint(1, 9)
    any_address = "address" in flavors

    decls = []
    if any_address:
        decls.append("global int d_c0;")
        decls.append(f"global int d_c1 = {cell_value};")
    # d_a is written by side 0 and read by side 1; d_b the reverse.
    decls.append(
        "global int d_a = &d_c0;" if flavors[1] == "address" else "global int d_a;"
    )
    decls.append(
        "global int d_b = &d_c0;" if flavors[0] == "address" else "global int d_b;"
    )

    def side(index: int, fn_name: str, own: str, other: str) -> list[str]:
        flavor = flavors[index]
        new_value = "&d_c1" if flavors[1 - index] == "address" else "1"
        lines = [f"fn {fn_name}(tid) {{", "  local r = 0;"]
        if flavor == "address":
            lines.append("  local v = 0;")
        lines.append(f"  {own} = {new_value};")
        lines.append(f"  r = {other};")
        if flavor == "control":
            lines.append("  if (r == 0) {")
            lines.append(f'    observe("in{index}", 1);')
            lines.append("  }")
        else:
            lines.append("  v = *r;")
            lines.append(f'  observe("v{index}", v);')
        lines.append("}")
        return lines

    parts = ["\n".join(decls)]
    parts.append("\n".join(side(0, "d_left", "d_a", "d_b")))
    parts.append("\n".join(side(1, "d_right", "d_b", "d_a")))
    parts.append("thread d_left(0);\nthread d_right(1);")

    unsound = {"vanilla"}
    if any_address:
        # The address-flavored side's read is invisible to Control, so
        # its w->r delay goes unfenced: the built-in Control
        # counterexample the acceptance criteria call for.
        unsound.add("control")
    return GeneratedProgram(
        name=f"fuzz-dekker-{seed:04d}",
        seed=seed,
        shape="dekker",
        source="\n\n".join(parts) + "\n",
        sync_globals=frozenset({"d_a", "d_b"}),
        threads=2,
        expect_tso_break=True,  # the canonical w->r cycle
        expect_pso_break=True,
        expected_unsound_tso=frozenset(unsound),
        notes=f"consumption flavors {flavors[0]}/{flavors[1]}",
    )


def _build_barrier(rng: random.Random, seed: int) -> GeneratedProgram:
    n = rng.choice((2, 3))
    base = rng.randint(1, 5)
    offset = rng.randint(1, n - 1) if n > 2 else 1
    lines = [
        "global int bar_count;",
        "global int bar_sense;",
        f"global int bar_slot[{n}];",
        "",
        "fn bar_worker(tid) {",
        "  local s = 0;",
        "  local v = 0;",
        f"  bar_slot[tid] = tid + {base};",
        "  s = fadd(&bar_count, 1);",
        f"  if (s == {n - 1}) {{",
        "    bar_sense = 1;",
        "  } else {",
        "    while (bar_sense == 0) { }",
        "  }",
        f"  v = bar_slot[(tid + {offset}) % {n}];",
        '  observe("v", v);',
        "}",
        "",
    ]
    lines += [f"thread bar_worker({tid});" for tid in range(n)]
    return GeneratedProgram(
        name=f"fuzz-barrier-{seed:04d}",
        seed=seed,
        shape="barrier",
        source="\n".join(lines) + "\n",
        sync_globals=frozenset({"bar_count", "bar_sense"}),
        threads=n,
        expect_tso_break=False,  # the locked fadd drains the buffer
        expect_pso_break=False,
        notes=f"{n} threads, neighbour offset {offset}",
    )


def _build_queue(rng: random.Random, seed: int) -> GeneratedProgram:
    v1 = rng.randint(1, 4)
    v2 = rng.randint(5, 9)  # distinct from v1 so outcomes distinguish
    source = f"""
global int q_top;
global int q_bottom;
global int q_buf[4];
global int q_taken;
global int q_stolen;

fn q_push(v) {{
  local b = 0;
  b = q_bottom;
  q_buf[b % 4] = v;
  q_bottom = b + 1;
}}

fn q_take(tid) {{
  local b = 0;
  local t = 0;
  local task = 0;
  local won = 0;
  b = q_bottom;
  b = b - 1;
  q_bottom = b;
  t = q_top;
  if (t <= b) {{
    task = q_buf[b % 4];
    if (t == b) {{
      won = cas(&q_top, t, t + 1);
      if (won != t) {{
        task = 0;
      }}
      q_bottom = b + 1;
    }}
    q_taken = q_taken + task;
  }} else {{
    q_bottom = b + 1;
  }}
}}

fn q_steal(tid) {{
  local t = 0;
  local b = 0;
  local task = 0;
  local won = 0;
  t = q_top;
  b = q_bottom;
  if (t < b) {{
    task = q_buf[t % 4];
    won = cas(&q_top, t, t + 1);
    if (won == t) {{
      q_stolen = q_stolen + task;
    }}
  }}
}}

fn q_owner(tid) {{
  q_push({v1});
  q_push({v2});
  q_take(tid);
  observe("taken", q_taken);
}}

fn q_thief(tid) {{
  q_steal(tid);
  q_steal(tid);
  observe("stolen", q_stolen);
}}

thread q_owner(0);
thread q_thief(1);
"""
    return GeneratedProgram(
        name=f"fuzz-queue-{seed:04d}",
        seed=seed,
        shape="queue",
        source=source,
        sync_globals=frozenset({"q_top", "q_bottom"}),
        threads=2,
        # Owner's bottom-store / top-load pair: stale top lets take and
        # steal both consume the same element (the classic bug the
        # take-side fence exists to prevent).
        expect_tso_break=True,
        expect_pso_break=None,  # extra PSO staleness can be value-masked
        expected_unsound_tso=frozenset({"vanilla"}),
        notes=f"push {v1},{v2}; 1 take vs 2 steals",
    )


_BUILDERS = {
    "handoff": _build_handoff,
    "publish": _build_publish,
    "dekker": _build_dekker,
    "barrier": _build_barrier,
    "queue": _build_queue,
}


def generate_program(seed: int, shape: str) -> GeneratedProgram:
    """Deterministically generate the program for ``(seed, shape)``."""
    if shape not in _BUILDERS:
        raise ValueError(f"unknown shape {shape!r}; known: {', '.join(SHAPES)}")
    rng = random.Random(f"repro-fuzz:{shape}:{seed}")
    return _BUILDERS[shape](rng, seed)
