"""The long-lived analysis daemon behind ``repro serve``.

One :class:`~repro.api.session.Session` serves every client, so the
shared query cache stays warm across requests: re-analyzing an edited
program touches only the changed functions' query subgraph. The wire
protocol is JSON lines — one request per line, one response per line:

* a bare schema-versioned request payload (any ``*-request`` kind from
  :mod:`repro.api.reports`), or an envelope ``{"id": ..., "request":
  {...}}`` when the client wants responses correlated;
* control operations ``{"op": "ping"}``, ``{"op": "stats"}`` and
  ``{"op": "shutdown"}``;
* responses are ``{"ok": true, "id": ..., "report": <payload>}`` with
  the *identical* payload the one-shot CLI would serialize, or
  ``{"ok": false, "id": ..., "error": "..."}``.

Two transports share one dispatcher: a threading TCP server (each
connection gets a thread; concurrent requests interleave through the
thread-safe session) and a stdio loop for subprocess embedding.
"""

from __future__ import annotations

import contextlib
import json
import socket
import socketserver
import sys
import threading
import time
from typing import IO

import repro
from repro.api.reports import (
    REPORT_KINDS,
    AnalyzeRequest,
    BatchRequest,
    CheckRequest,
    FuzzRequest,
    LintRequest,
    SchemaError,
    SimulateRequest,
)
from repro.api.session import Session
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: request kind -> the Session method that answers it.
REQUEST_DISPATCH = {
    AnalyzeRequest.KIND: "analyze",
    CheckRequest.KIND: "check",
    SimulateRequest.KIND: "simulate",
    BatchRequest.KIND: "batch",
    FuzzRequest.KIND: "fuzz",
    LintRequest.KIND: "lint",
}


def encode_response(response: dict) -> str:
    """One wire line (no trailing newline), key-sorted for stability."""
    return json.dumps(response, sort_keys=True)


class ServeDispatcher:
    """Maps one decoded request line to one response dict.

    Stateless apart from served/error counters; safe to share across
    handler threads because the session itself is thread-safe.
    """

    def __init__(self, session: Session) -> None:
        self.session = session
        self._lock = threading.Lock()
        self.served = 0
        self.errors = 0

    def _error(self, message: str, req_id=None) -> dict:
        with self._lock:
            self.errors += 1
        return {"ok": False, "id": req_id, "error": message}

    def handle_line(self, line: str) -> tuple[dict, bool]:
        """Answer one request line; returns ``(response, shutdown)``."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            return self._error(f"request line is not valid JSON: {exc}"), False
        if not isinstance(payload, dict):
            return self._error("request line must be a JSON object"), False

        if "op" in payload:
            return self._handle_op(payload)

        req_id = None
        if "request" in payload:
            req_id = payload.get("id")
            payload = payload["request"]
            if not isinstance(payload, dict):
                return self._error("'request' must be a JSON object", req_id), False

        kind = payload.get("kind")
        method = REQUEST_DISPATCH.get(kind)
        if method is None:
            known = ", ".join(sorted(REQUEST_DISPATCH))
            return self._error(
                f"not a servable request kind: {kind!r}; known: {known}", req_id
            ), False
        started = time.perf_counter()
        request_span = obs_trace.span("serve.request", cat="serve", kind=kind)
        with obs_trace.request_scope(), request_span:
            try:
                request = REPORT_KINDS.get(kind).from_payload(payload)
                report = getattr(self.session, method)(request)
            except Exception as exc:  # noqa: BLE001 - daemon boundary: a
                # bad request (e.g. type-confused field values that pass
                # the name-level schema gate) must answer {"ok": false},
                # never kill the handler thread or the stdio loop.
                request_span.set(ok=False)
                self._observe_request(kind, started, ok=False)
                detail = exc.args[0] if exc.args else exc
                return self._error(f"{type(exc).__name__}: {detail}", req_id), False
        with self._lock:
            self.served += 1
        self._observe_request(kind, started, ok=True)
        return {"ok": True, "id": req_id, "report": report.to_payload()}, False

    @staticmethod
    def _observe_request(kind: str, started: float, ok: bool) -> None:
        registry = obs_metrics.REGISTRY
        registry.observe(
            "repro_serve_request_seconds", time.perf_counter() - started, kind=kind
        )
        registry.inc(
            "repro_serve_requests_total", kind=kind, ok="true" if ok else "false"
        )

    def metrics_payload(self) -> dict:
        """Registry snapshot with query-engine counters derived from
        :meth:`Session.stats` at scrape time — the derived counts match
        the session's own accounting exactly, by construction."""
        payload = obs_metrics.REGISTRY.to_payload()
        obs_metrics.merge_counters(
            payload, obs_metrics.query_engine_counters(self.session.stats())
        )
        return payload

    def _handle_op(self, payload: dict) -> tuple[dict, bool]:
        op = payload.get("op")
        req_id = payload.get("id")
        if op == "ping":
            return {
                "ok": True, "id": req_id, "pong": True,
                "version": repro.__version__,
            }, False
        if op == "stats":
            with self._lock:
                counters = {"served": self.served, "errors": self.errors}
            try:
                session_stats = self.session.stats()
            except Exception as exc:  # noqa: BLE001 - same daemon
                # boundary as the request path: never kill the loop.
                detail = exc.args[0] if exc.args else exc
                return self._error(f"{type(exc).__name__}: {detail}", req_id), False
            return {
                "ok": True, "id": req_id,
                "server": counters,
                "session": session_stats,
            }, False
        if op == "metrics":
            try:
                metrics = self.metrics_payload()
            except Exception as exc:  # noqa: BLE001 - same daemon
                # boundary as the request path: never kill the loop.
                detail = exc.args[0] if exc.args else exc
                return self._error(f"{type(exc).__name__}: {detail}", req_id), False
            return {
                "ok": True, "id": req_id,
                "metrics": metrics,
                "text": obs_metrics.render_prometheus(metrics),
                "slow_queries": obs_trace.SLOW_QUERIES.entries(),
            }, False
        if op == "shutdown":
            return {"ok": True, "id": req_id, "bye": True}, True
        return self._error(f"unknown op {op!r}", req_id), False


class _LineHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        self.server.track_handler(self)
        self.busy = False
        try:
            for raw in self.rfile:
                if len(raw) > self.server.max_line:
                    # The line-buffered reader cannot resynchronize
                    # after an over-long line: answer, then close.
                    self._reply(self.server.dispatcher._error(
                        f"request line exceeds {self.server.max_line} bytes"
                    ))
                    return
                line = raw.decode("utf-8", "replace").strip()
                if not line:
                    continue
                self.busy = True
                try:
                    response, stop = self.server.dispatcher.handle_line(line)
                finally:
                    self.busy = False
                if not self._reply(response):
                    return  # client went away mid-response
                if stop:
                    self.server.request_drain()
                    return
                if self.server.draining:
                    return
        finally:
            self.server.forget_handler(self)

    def _reply(self, response: dict) -> bool:  # pragma: no cover - above
        try:
            self.wfile.write((encode_response(response) + "\n").encode("utf-8"))
            self.wfile.flush()
        except OSError:
            return False
        return True


class ReproServer(socketserver.ThreadingTCPServer):
    """Threaded JSON-lines analysis server over TCP.

    ``port=0`` binds an ephemeral port; read the chosen one back from
    :attr:`port`. Every connection is handled in its own thread, so
    N clients analyze concurrently against the shared warm session.

    Shutdown is graceful: :meth:`request_drain` stops the accept loop
    and nudges idle connections closed, then :meth:`drain` waits (with
    a bounded deadline) for in-flight requests to finish answering
    before force-closing whatever remains.
    """

    allow_reuse_address = True
    daemon_threads = True

    #: Longest accepted request line, in bytes.
    max_line = 8 * 1024 * 1024

    def __init__(
        self,
        session: Session | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.dispatcher = ServeDispatcher(
            session if session is not None else Session()
        )
        self.draining = False
        self._handlers: set[_LineHandler] = set()
        self._handlers_lock = threading.Lock()
        super().__init__((host, port), _LineHandler)

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    # --- connection tracking (for drain) ---------------------------------
    def track_handler(self, handler: _LineHandler) -> None:
        with self._handlers_lock:
            self._handlers.add(handler)

    def forget_handler(self, handler: _LineHandler) -> None:
        with self._handlers_lock:
            self._handlers.discard(handler)

    def begin_shutdown(self) -> None:
        """Stop ``serve_forever`` without deadlocking a handler thread."""
        threading.Thread(target=self.shutdown, daemon=True).start()

    def request_drain(self) -> None:
        """Begin graceful shutdown: stop accepting and wake idle
        connections (idempotent; safe from signal handlers and handler
        threads alike)."""
        if self.draining:
            return
        self.draining = True
        self.begin_shutdown()
        with self._handlers_lock:
            handlers = list(self._handlers)
        for handler in handlers:
            # An idle handler is blocked reading; shutting down the read
            # side delivers EOF so its loop exits. Busy handlers keep
            # their sockets: they still owe the client a response.
            if not getattr(handler, "busy", False):
                with contextlib.suppress(OSError):  # already closing
                    handler.connection.shutdown(socket.SHUT_RD)

    def drain(self, timeout: float = 10.0) -> bool:
        """Wait for in-flight requests to finish after
        :meth:`request_drain`; force-close stragglers past ``timeout``.
        Returns ``True`` when everything finished in time."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._handlers_lock:
                if not self._handlers:
                    return True
            time.sleep(0.02)
        with self._handlers_lock:
            stragglers = list(self._handlers)
        for handler in stragglers:  # pragma: no cover - deadline overrun
            with contextlib.suppress(OSError):
                handler.connection.close()
        return not stragglers

    def close(self) -> None:
        self.server_close()


def serve_stdio(
    session: Session | None = None,
    stdin: IO[str] | None = None,
    stdout: IO[str] | None = None,
) -> int:
    """Serve one client over stdin/stdout (for subprocess embedding).

    Requests are answered in arrival order; the loop ends on EOF or a
    ``shutdown`` op. Returns a process exit code.
    """
    dispatcher = ServeDispatcher(session if session is not None else Session())
    inp = stdin if stdin is not None else sys.stdin
    out = stdout if stdout is not None else sys.stdout
    for raw in inp:
        line = raw.strip()
        if not line:
            continue
        response, stop = dispatcher.handle_line(line)
        try:
            out.write(encode_response(response) + "\n")
            out.flush()
        except OSError:
            return 1
        if stop:
            break
    return 0
