"""Schema-versioned request/report dataclasses — the wire format.

Every :class:`~repro.api.session.Session` operation is described by a
request and answered by a report; both are frozen dataclasses that
round-trip through JSON byte-identically (``to_json -> from_json ->
to_json`` is stable) and carry a ``kind`` plus ``schema_version``
envelope. Decoding rejects unknown kinds, unknown schema versions, and
unknown or missing fields with a :class:`SchemaError`, so serialized
reports are durable artifacts: a report written by one build either
reads back exactly or fails loudly, never silently reinterpreted.

``REPORT_KINDS`` is a registry of every wire type by its ``kind``
string; :func:`load_report` dispatches any serialized payload through
it (the ``repro report`` command is a thin wrapper). Reports also know
how to :meth:`render` themselves as the human-readable tables the CLI
prints, so the CLI, saved artifacts, and diffs share one rendering
path.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, ClassVar, Mapping

from repro.registry.core import Registry
from repro.registry.sources import ProgramSpec
from repro.util.text import format_table

if TYPE_CHECKING:  # runtime-lazy: repro.diagnostics reaches repro.core
    from repro.diagnostics.findings import Finding


class SchemaError(ValueError):
    """A serialized payload this build cannot (or must not) read."""


#: kind string -> wire dataclass; ``load_report`` dispatches through it.
REPORT_KINDS: Registry[type] = Registry("report kind")


def register_report(cls: type) -> type:
    """Class decorator: register a wire type under its ``KIND``."""
    REPORT_KINDS.register(cls.KIND, cls)
    return cls


def _encode(value: Any) -> Any:
    if isinstance(value, ProgramSpec):
        return value.to_payload()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _encode(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        return {k: _encode(v) for k, v in value.items()}
    return value


def _decode_plain(value: Any) -> Any:
    """Default decode: JSON arrays become tuples (dataclass equality)."""
    if isinstance(value, list):
        return tuple(_decode_plain(v) for v in value)
    if isinstance(value, dict):
        return {k: _decode_plain(v) for k, v in value.items()}
    return value


def _construct(cls: type, item: Any) -> Any:
    """Build a nested dataclass from payload data, failing with
    :class:`SchemaError` (not a raw TypeError) on malformed shapes."""
    if not isinstance(item, dict):
        raise SchemaError(
            f"expected an object for {cls.__name__}, "
            f"got {type(item).__name__}"
        )
    try:
        return cls(**item)
    except TypeError as exc:
        raise SchemaError(
            f"malformed {cls.__name__} payload: {exc}"
        ) from None


def _tuple_of(cls: type) -> Callable[[Any], tuple]:
    def decode(value: Any) -> tuple:
        if not isinstance(value, list):
            raise SchemaError(
                f"expected an array of {cls.__name__} objects, "
                f"got {type(value).__name__}"
            )
        return tuple(_construct(cls, item) for item in value)

    return decode


def _decode_spec(value: Any) -> ProgramSpec:
    return _construct(ProgramSpec, value)


def _optional(decode: Callable[[Any], Any]) -> Callable[[Any], Any]:
    """Wrap a field decoder so JSON ``null`` stays ``None``."""

    def wrapped(value: Any) -> Any:
        return None if value is None else decode(value)

    return wrapped


@dataclass(frozen=True)
class CacheStats:
    """Analysis-cache counters for one request (opt-in via ``stats``).

    ``hits``/``misses`` are the shared analysis context's memo counters
    for the facts served while answering the request; ``by_fact`` breaks
    the misses down per fact kind. A warm query cache shows up as a
    high hit count and an empty ``by_fact``.
    """

    hits: int
    misses: int
    by_fact: dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        detail = ", ".join(
            f"{name}: {count}" for name, count in sorted(self.by_fact.items())
        )
        return (
            f"cache: {self.hits} hits, {self.misses} misses"
            + (f" ({detail})" if detail else "")
        )


class WirePayload:
    """Mixin giving a frozen dataclass the versioned JSON envelope."""

    KIND: ClassVar[str]
    SCHEMA_VERSION: ClassVar[int]
    #: field name -> decoder for nested dataclass fields.
    _DECODERS: ClassVar[dict[str, Callable[[Any], Any]]] = {}

    def to_payload(self) -> dict:
        payload: dict[str, Any] = {
            "kind": self.KIND,
            "schema_version": self.SCHEMA_VERSION,
        }
        for f in dataclasses.fields(self):
            payload[f.name] = _encode(getattr(self, f.name))
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True)

    @classmethod
    def check_envelope(cls, payload: Mapping) -> None:
        kind = payload.get("kind")
        if kind != cls.KIND:
            raise SchemaError(
                f"payload kind {kind!r} cannot be read as {cls.KIND!r}"
            )
        version = payload.get("schema_version")
        if version != cls.SCHEMA_VERSION:
            raise SchemaError(
                f"unsupported {cls.KIND} schema_version {version!r}: this "
                f"build reads version {cls.SCHEMA_VERSION}; regenerate the "
                "report or upgrade the reader"
            )

    @classmethod
    def from_payload(cls, payload: Mapping):
        cls.check_envelope(payload)
        names = {f.name for f in dataclasses.fields(cls)}
        data = {k: v for k, v in payload.items() if k not in ("kind", "schema_version")}
        unknown = sorted(set(data) - names)
        if unknown:
            raise SchemaError(
                f"{cls.KIND} payload carries unknown fields: {', '.join(unknown)}"
            )
        missing = sorted(names - set(data))
        if missing:
            raise SchemaError(
                f"{cls.KIND} payload is missing fields: {', '.join(missing)}"
            )
        decoded = {
            name: cls._DECODERS.get(name, _decode_plain)(value)
            for name, value in data.items()
        }
        return cls(**decoded)

    @classmethod
    def from_json(cls, text: str):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"payload is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise SchemaError("payload must be a JSON object")
        return cls.from_payload(payload)

    def render(self) -> str:
        """Human-readable form; requests default to pretty JSON."""
        return self.to_json()


def load_report(text: str) -> WirePayload:
    """Deserialize any wire payload, dispatching on its ``kind``."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"payload is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or "kind" not in payload:
        raise SchemaError("payload must be a JSON object with a 'kind' field")
    try:
        cls = REPORT_KINDS.get(payload["kind"])
    except KeyError as exc:
        # The documented contract: every unreadable payload raises
        # SchemaError — unknown kinds included.
        raise SchemaError(exc.args[0]) from None
    return cls.from_payload(payload)


def _diff_values(a: Any, b: Any, path: str) -> list[str]:
    if isinstance(a, dict) and isinstance(b, dict):
        return diff_payloads(a, b, prefix=f"{path}.")
    if isinstance(a, list) and isinstance(b, list):
        lines: list[str] = []
        for i in range(max(len(a), len(b))):
            item = f"{path}[{i}]"
            if i >= len(a):
                lines.append(f"+ {item}: {json.dumps(b[i], sort_keys=True)}")
            elif i >= len(b):
                lines.append(f"- {item}: {json.dumps(a[i], sort_keys=True)}")
            else:
                lines.extend(_diff_values(a[i], b[i], item))
        return lines
    if a != b:
        return [
            f"~ {path}: {json.dumps(a, sort_keys=True)} -> "
            f"{json.dumps(b, sort_keys=True)}"
        ]
    return []


def diff_payloads(a: Mapping, b: Mapping, prefix: str = "") -> list[str]:
    """Recursive field-level diff of two payloads, as readable lines."""
    lines: list[str] = []
    for key in sorted(set(a) | set(b)):
        path = f"{prefix}{key}"
        if key not in a:
            lines.append(f"+ {path}: {json.dumps(b[key], sort_keys=True)}")
        elif key not in b:
            lines.append(f"- {path}: {json.dumps(a[key], sort_keys=True)}")
        else:
            lines.extend(_diff_values(a[key], b[key], path))
    return lines


def _model_display(key: str) -> str:
    from repro.registry.models import MODELS

    return MODELS.get(key).display if key in MODELS else key


# =========================================================================
# analyze
# =========================================================================


@register_report
@dataclass(frozen=True)
class AnalyzeRequest(WirePayload):
    """Run the fence-placement pipeline on one program."""

    KIND: ClassVar[str] = "analyze-request"
    SCHEMA_VERSION: ClassVar[int] = 4
    _DECODERS: ClassVar[dict] = {"program": _decode_spec}

    program: ProgramSpec
    variant: str = "control"
    model: str = "x86-tso"
    #: None = use the session's setting.
    interprocedural: bool | None = None
    annotations: bool = False
    emit_ir: bool = False
    #: Attach this request's analysis-cache counters to the report.
    stats: bool = False
    #: Arch backend key for flavored fence lowering; None = generic
    #: full fences (the pre-arch behaviour, byte-identical output).
    arch: str | None = None
    #: "greedy" (count-minimizing, the paper's planner) or "optimal"
    #: (min-cost synthesis via repro.synth; needs an arch).
    synthesis: str = "greedy"


@dataclass(frozen=True)
class FunctionFences:
    """Per-function pipeline summary inside an :class:`AnalyzeReport`."""

    name: str
    escaping_reads: int
    sync_reads: int
    orderings: int
    pruned: int
    full_fences: int
    compiler_fences: int


@register_report
@dataclass(frozen=True)
class AnalyzeReport(WirePayload):
    """The pipeline's whole-program result as a wire artifact."""

    KIND: ClassVar[str] = "analyze-report"
    SCHEMA_VERSION: ClassVar[int] = 4
    _DECODERS: ClassVar[dict] = {
        "functions": _tuple_of(FunctionFences),
        "cache_stats": _optional(lambda value: _construct(CacheStats, value)),
    }

    program: str
    variant: str
    model: str
    interprocedural: bool
    functions: tuple[FunctionFences, ...]
    escaping_reads: int
    sync_reads: int
    orderings: int
    pruned_orderings: int
    surviving_fraction: float
    full_fences: int
    compiler_fences: int
    annotations: str | None = None
    fenced_ir: str | None = None
    #: Filled only when the request asked for ``stats``.
    cache_stats: CacheStats | None = None
    #: Flavored-lowering summary, filled when the request named an arch.
    arch: str | None = None
    fence_cost: int | None = None
    #: flavor name -> count across the program (entry fences included).
    flavors: dict[str, int] | None = None
    #: Synthesis strategy behind ``fence_cost``/``flavors``.
    synthesis: str = "greedy"
    #: The greedy plan's lowered cost, filled alongside an "optimal"
    #: ``fence_cost`` so reports show the saving.
    greedy_cost: int | None = None

    def render(self) -> str:
        rows = [
            [
                f.name,
                f.escaping_reads,
                f.sync_reads,
                f.orderings,
                f.pruned,
                f.full_fences,
                f.compiler_fences,
            ]
            for f in self.functions
        ]
        parts = [
            format_table(
                ["function", "esc reads", "acquires", "orderings", "pruned",
                 "mfences", "directives"],
                rows,
                title=f"{self.program}: {self.variant} on {self.model}",
            ),
            f"\ntotal: {self.sync_reads}/{self.escaping_reads} "
            f"reads marked acquire, {self.full_fences} full fences, "
            f"{self.compiler_fences} compiler directives",
        ]
        if self.arch is not None:
            detail = ", ".join(
                f"{name}: {count}"
                for name, count in sorted((self.flavors or {}).items())
            )
            line = (
                f"arch {self.arch}: lowered cost {self.fence_cost} cycles"
                + (f" ({detail})" if detail else "")
            )
            if self.synthesis == "optimal" and self.greedy_cost is not None:
                line += (
                    f" [optimal; greedy would cost {self.greedy_cost}]"
                )
            parts.append(line)
        if self.cache_stats is not None:
            parts.append(self.cache_stats.render())
        if self.annotations is not None:
            parts.append("\n" + self.annotations)
        if self.fenced_ir is not None:
            parts.append("\n--- fenced IR ---\n" + self.fenced_ir)
        return "\n".join(parts)


# =========================================================================
# check
# =========================================================================


@register_report
@dataclass(frozen=True)
class CheckRequest(WirePayload):
    """Model-check SC vs a weak model, unfenced and per variant."""

    KIND: ClassVar[str] = "check-request"
    SCHEMA_VERSION: ClassVar[int] = 3
    _DECODERS: ClassVar[dict] = {"program": _decode_spec}

    program: ProgramSpec
    model: str = "x86-tso"
    #: () = every non-null registry variant, in registration order.
    variants: tuple[str, ...] = ()
    #: None = use the session's state bound.
    max_states: int | None = None
    #: None = use the session's setting.
    interprocedural: bool | None = None
    #: Arch backend lowering the variant placements before exploration.
    #: None = the model's default (its own catalog on flavor-honoring
    #: explorers like arm/power, generic FULL elsewhere). Naming a
    #: catalog the model's explorer cannot give kill-set semantics to
    #: is refused with a ValueError.
    arch: str | None = None
    #: Fence synthesis strategy the checked placements use ("greedy"
    #: or "optimal"); "optimal" only changes flavored placements.
    synthesis: str = "greedy"


@dataclass(frozen=True)
class VariantCheck:
    """One variant's fenced exploration inside a :class:`CheckReport`."""

    variant: str
    full_fences: int
    weak_outcomes: int
    restored_sc: bool
    #: Whether this variant's fenced exploration exhausted the state
    #: space. A bounded run proves nothing: ``restored_sc`` is then
    #: False by construction, never a truncated-set comparison.
    complete: bool = True


@register_report
@dataclass(frozen=True)
class CheckReport(WirePayload):
    """Differential model-checking verdicts as a wire artifact."""

    KIND: ClassVar[str] = "check-report"
    SCHEMA_VERSION: ClassVar[int] = 4
    _DECODERS: ClassVar[dict] = {"variants": _tuple_of(VariantCheck)}

    program: str
    model: str
    max_states: int
    complete: bool
    skipped: str | None
    sc_outcomes: int
    weak_outcomes_unfenced: int
    weak_breaks_unfenced: bool
    variants: tuple[VariantCheck, ...]
    #: Arch backend the placements were lowered with (None = generic).
    arch: str | None = None
    #: Synthesis strategy behind the checked placements.
    synthesis: str = "greedy"

    @property
    def failures(self) -> int:
        return sum(
            1 for v in self.variants if not (v.complete and v.restored_sc)
        )

    @property
    def all_restored(self) -> bool:
        return (
            self.complete
            and all(v.complete for v in self.variants)
            and self.failures == 0
        )

    @property
    def exit_code(self) -> int:
        if not self.complete or any(not v.complete for v in self.variants):
            return 2
        return 0 if self.failures == 0 else 1

    def render(self) -> str:
        if not self.complete:
            return "state space exceeded --max-states; results incomplete"
        display = _model_display(self.model)
        lines = [
            f"SC outcomes: {self.sc_outcomes}",
            f"{display} unfenced: {self.weak_outcomes_unfenced} outcomes "
            f"({'NON-SC BEHAVIOUR' if self.weak_breaks_unfenced else 'SC-equal'})",
        ]
        for v in self.variants:
            line = (
                f"{display} + {v.variant:16s}: {v.full_fences} mfences, "
                f"SC restored: {v.restored_sc}"
            )
            if not v.complete:
                line += " (BOUNDED: state space exceeded --max-states)"
            lines.append(line)
        return "\n".join(lines)


# =========================================================================
# simulate
# =========================================================================


@register_report
@dataclass(frozen=True)
class SimulateRequest(WirePayload):
    """Run the timed TSO simulator under one fence placement."""

    KIND: ClassVar[str] = "simulate-request"
    SCHEMA_VERSION: ClassVar[int] = 3
    _DECODERS: ClassVar[dict] = {"program": _decode_spec}

    program: ProgramSpec
    #: A registry variant key, or "manual" for the expert placement.
    placement: str = "control"
    #: Memory model driving fence *placement* (the timed machine is TSO).
    model: str = "x86-tso"
    #: Global names (array prefixes included) to report after the run.
    observe_globals: tuple[str, ...] = ()
    #: Arch backend: placements are lowered to its flavors and the
    #: timed machine prices fences with its cost model.
    arch: str | None = None
    #: Fence synthesis strategy for the simulated placement.
    synthesis: str = "greedy"


@register_report
@dataclass(frozen=True)
class SimulateReport(WirePayload):
    """One timed simulation's counters as a wire artifact."""

    KIND: ClassVar[str] = "simulate-report"
    SCHEMA_VERSION: ClassVar[int] = 3

    program: str
    placement: str
    model: str
    cycles: int
    instructions: int
    full_fences_executed: int
    compiler_fences_executed: int
    fence_stall_cycles: int
    #: (tid, ((label, value), ...)) per thread, tid-sorted.
    observations: tuple[tuple[int, tuple[tuple[str, int], ...]], ...]
    #: Every scalar/array slot's final value, name-sorted.
    final_globals: tuple[tuple[str, int], ...]
    observe_globals: tuple[str, ...] = ()
    #: Arch backend whose flavors/costs drove the run (None = x86 TSO
    #: defaults).
    arch: str | None = None
    #: Synthesis strategy behind the simulated placement.
    synthesis: str = "greedy"

    def render(self) -> str:
        arch_note = ""
        if self.arch is not None:
            arch_note = f" (arch {self.arch}, {self.synthesis})"
        lines = [
            f"placement      : {self.placement}" + arch_note,
            f"cycles         : {self.cycles}",
            f"instructions   : {self.instructions}",
            f"mfences run    : {self.full_fences_executed}",
            f"fence stalls   : {self.fence_stall_cycles} cycles",
        ]
        for tid, obs in self.observations:
            if obs:
                rendered = ", ".join(f"{k}={v}" for k, v in obs)
                lines.append(f"observations T{tid}: {rendered}")
        for name in self.observe_globals:
            for k, v in self.final_globals:
                if k == name or k.startswith(name + "["):
                    lines.append(f"{k} = {v}")
        return "\n".join(lines)


# =========================================================================
# batch
# =========================================================================


@register_report
@dataclass(frozen=True)
class BatchRequest(WirePayload):
    """Analyze a {program x variant x model} matrix."""

    KIND: ClassVar[str] = "batch-request"
    SCHEMA_VERSION: ClassVar[int] = 4

    #: () = every corpus program / every non-null variant.
    programs: tuple[str, ...] = ()
    variants: tuple[str, ...] = ()
    models: tuple[str, ...] = ("x86-tso",)
    #: Attach aggregated analysis-cache counters to the report.
    stats: bool = False
    #: Arch backend overriding the per-model default for flavored
    #: lowering costs; None = each model's own registered arch.
    arch: str | None = None
    #: Which strategy's cost lands in each cell's ``fence_cost``
    #: ("greedy" or "optimal"); both costs are reported per cell.
    synthesis: str = "greedy"


@dataclass(frozen=True)
class BatchCell:
    """One analyzed matrix cell inside a :class:`BatchReport`."""

    program: str
    variant: str
    model: str
    key: str
    functions: int
    escaping_reads: int
    sync_reads: int
    orderings: int
    pruned_orderings: int
    surviving_fraction: float
    full_fences: int
    compiler_fences: int
    elapsed: float
    cached: bool
    #: Flavored-lowering cost under the cell's arch backend (None when
    #: the model has no registered arch) and its flavor histogram.
    #: ``fence_cost`` follows the request's synthesis strategy;
    #: ``greedy_cost``/``optimal_cost`` carry both for comparison.
    fence_cost: int | None = None
    flavors: dict[str, int] = field(default_factory=dict)
    greedy_cost: int | None = None
    optimal_cost: int | None = None


@register_report
@dataclass(frozen=True)
class BatchReport(WirePayload):
    """A whole batch run's cells as one wire artifact."""

    KIND: ClassVar[str] = "batch-report"
    SCHEMA_VERSION: ClassVar[int] = 4
    _DECODERS: ClassVar[dict] = {
        "cells": _tuple_of(BatchCell),
        "cache_stats": _optional(lambda value: _construct(CacheStats, value)),
    }

    programs: tuple[str, ...]
    variants: tuple[str, ...]
    models: tuple[str, ...]
    used_pool: bool
    wall: float
    cells: tuple[BatchCell, ...]
    #: Filled only when the request asked for ``stats``.
    cache_stats: CacheStats | None = None
    #: Arch override the request named (None = per-model defaults).
    arch: str | None = None
    #: Synthesis strategy behind each cell's ``fence_cost``.
    synthesis: str = "greedy"

    @property
    def total_full_fences(self) -> int:
        return sum(c.full_fences for c in self.cells)

    @property
    def total_fence_cost(self) -> int:
        return sum(c.fence_cost or 0 for c in self.cells)

    @property
    def total_greedy_cost(self) -> int:
        return sum(c.greedy_cost or 0 for c in self.cells)

    @property
    def total_optimal_cost(self) -> int:
        return sum(c.optimal_cost or 0 for c in self.cells)

    @property
    def cache_hits(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    def render(self) -> str:
        rows = [
            [
                c.program,
                c.variant,
                c.model,
                c.functions,
                c.escaping_reads,
                c.sync_reads,
                f"{c.orderings}->{c.pruned_orderings}",
                f"{c.surviving_fraction:.1%}",
                c.full_fences,
                c.compiler_fences,
                "-" if c.greedy_cost is None else str(c.greedy_cost),
                "-" if c.optimal_cost is None else str(c.optimal_cost),
                f"{c.elapsed * 1000:.0f}ms",
                "hit" if c.cached else "",
            ]
            for c in self.cells
        ]
        table = format_table(
            ["program", "variant", "model", "fns", "esc reads", "acquires",
             "orderings", "surv", "fences", "directives", "greedy",
             "optimal", "time", "cache"],
            rows,
            title=f"batch: {len(self.cells)} analyses "
            f"({'pool' if self.used_pool else 'serial'}, {self.wall:.2f}s wall)",
        )
        saved = self.total_greedy_cost - self.total_optimal_cost
        text = (
            f"{table}\n\ntotal: {self.total_full_fences} full fences "
            f"({self.total_fence_cost} cycles lowered via {self.synthesis}; "
            f"greedy {self.total_greedy_cost} vs optimal "
            f"{self.total_optimal_cost}, {saved} cycles saved) across "
            f"{len(self.cells)} cells, {self.cache_hits} cache hits"
        )
        if self.cache_stats is not None:
            text += f"\nanalysis {self.cache_stats.render()}"
        return text


# =========================================================================
# lint
# =========================================================================


def _decode_finding(value: Any) -> "Finding":
    # Runtime-lazy import: repro.diagnostics reaches repro.core, which
    # must finish initializing before this module's import chain runs.
    from repro.diagnostics.findings import Finding, SourceSpan

    if not isinstance(value, dict):
        raise SchemaError(
            f"expected an object for Finding, got {type(value).__name__}"
        )
    data = dict(value)
    if "spans" in data:
        data["spans"] = _tuple_of(SourceSpan)(data["spans"])
    return _construct(Finding, data)


def _decode_findings(value: Any) -> tuple:
    if not isinstance(value, list):
        raise SchemaError(
            f"expected an array of Finding objects, got {type(value).__name__}"
        )
    return tuple(_decode_finding(item) for item in value)


@register_report
@dataclass(frozen=True)
class LintRequest(WirePayload):
    """Run the static DRF gate and lint passes on one program."""

    KIND: ClassVar[str] = "lint-request"
    SCHEMA_VERSION: ClassVar[int] = 1
    _DECODERS: ClassVar[dict] = {"program": _decode_spec}

    program: ProgramSpec
    #: Detection variant whose sync reads refine the race candidates.
    variant: str = "address+control"
    model: str = "x86-tso"
    #: Arch backend resolving fence flavors (enables FENCE102).
    arch: str | None = None
    #: () = every registered lint pass, in registration order.
    passes: tuple[str, ...] = ()
    #: Audit race candidates against the bounded SC explorer.
    confirm: bool = True
    max_traces: int = 400
    max_actions: int = 400
    #: Severity threshold for the report's exit code; "never" = always 0.
    fail_on: str = "error"
    #: Attach this request's analysis-cache counters to the report.
    stats: bool = False


@register_report
@dataclass(frozen=True)
class LintReport(WirePayload):
    """One program's findings — the DRF verdict — as a wire artifact."""

    KIND: ClassVar[str] = "lint-report"
    SCHEMA_VERSION: ClassVar[int] = 2
    _DECODERS: ClassVar[dict] = {
        "findings": _decode_findings,
        "cache_stats": _optional(lambda value: _construct(CacheStats, value)),
    }

    program: str
    variant: str
    model: str
    passes: tuple[str, ...]
    findings: tuple[Finding, ...]
    notes: int
    warnings: int
    errors: int
    #: Explorer verdict tally over the race candidates (confirmed
    #: includes RACE002 missed races).
    confirmed_races: int
    refuted_candidates: int
    unknown_candidates: int
    #: Whether the witness search exhausted the interleavings; None
    #: when confirmation was off.
    explorer_complete: bool | None
    #: How many SC traces the witness search actually enumerated; None
    #: when confirmation was off. Distinguishes "bounded after 400
    #: traces" from "bounded after 2" when reading saved reports.
    traces_checked: int | None
    #: The linted source, attached when the explorer found a race the
    #: static gate missed — ready to feed the fuzz harness.
    fuzz_seed: str | None
    fail_on: str = "error"
    arch: str | None = None
    #: Filled only when the request asked for ``stats``.
    cache_stats: CacheStats | None = None

    @property
    def exit_code(self) -> int:
        from repro.diagnostics.findings import severity_rank

        if self.fail_on == "never":
            return 0
        floor = severity_rank(self.fail_on)
        tally = (("note", self.notes), ("warning", self.warnings),
                 ("error", self.errors))
        over = sum(n for s, n in tally if severity_rank(s) >= floor)
        return 1 if over else 0

    def render(self) -> str:
        total = self.notes + self.warnings + self.errors
        header = (
            f"{self.program}: {total} finding{'s' if total != 1 else ''} "
            f"({self.errors} errors, {self.warnings} warnings, "
            f"{self.notes} notes) [{self.variant} on {self.model}]"
        )
        lines = [header]
        if self.explorer_complete is not None:
            verdict = "exhaustive" if self.explorer_complete else "bounded"
            traces = (
                f", {self.traces_checked} traces"
                if self.traces_checked is not None
                else ""
            )
            lines.append(
                f"explorer ({verdict}{traces}): "
                f"{self.confirmed_races} confirmed, "
                f"{self.refuted_candidates} refuted, "
                f"{self.unknown_candidates} unknown"
            )
        if total == 0:
            lines.append("clean: no lint findings; static DRF gate passed")
        for finding in self.findings:
            lines.append(finding.render())
        if self.fuzz_seed is not None:
            lines.append(
                "detector gap: program recorded as a fuzz seed "
                "(see repro.validate.seeds)"
            )
        if self.cache_stats is not None:
            lines.append(self.cache_stats.render())
        return "\n".join(lines)


# =========================================================================
# fuzz
# =========================================================================


@register_report
@dataclass(frozen=True)
class FuzzRequest(WirePayload):
    """Differential fence-validation fuzzing over a seed matrix."""

    KIND: ClassVar[str] = "fuzz-request"
    SCHEMA_VERSION: ClassVar[int] = 1

    seeds: int = 16
    #: () = every generator shape.
    shapes: tuple[str, ...] = ()
    #: () = the trusted variants.
    variants: tuple[str, ...] = ()
    models: tuple[str, ...] = ("x86-tso",)
    budget: float | None = None
    shrink: bool = True
    #: None = use the session's state bound.
    max_states: int | None = None


@dataclass(frozen=True)
class FuzzViolation:
    """One shrunk soundness violation inside a :class:`FuzzReport`."""

    seed: int
    shape: str
    model: str
    variant: str
    source: str
    source_lines: int
    snippet: str
    shrink_checks: int


@dataclass(frozen=True)
class FuzzProblem:
    """A case that errored or blew the state bound (soundness unknown)."""

    status: str  # "error" | "incomplete"
    shape: str
    seed: int
    model: str
    detail: str


@register_report
@dataclass(frozen=True)
class FuzzReport(WirePayload):
    """A fuzzing run's aggregate verdicts as a wire artifact.

    The payload keeps the historical ``config`` / ``summary`` /
    ``violations`` / ``cases`` layout of ``repro fuzz --json`` (now
    wrapped in the kind/schema_version envelope), so existing consumers
    of that output keep parsing it.
    """

    KIND: ClassVar[str] = "fuzz-report"
    SCHEMA_VERSION: ClassVar[int] = 1

    seeds: int
    shapes: tuple[str, ...]
    variants: tuple[str, ...]
    models: tuple[str, ...]
    budget: float | None
    cases_run: int
    cases_skipped: int
    errors: int
    incomplete: int
    budget_exhausted: bool
    used_pool: bool
    wall: float
    variant_summary: dict[str, dict]
    violations: tuple[FuzzViolation, ...]
    problems: tuple[FuzzProblem, ...]
    #: Full per-case oracle payloads, already in wire form.
    cases: tuple[dict, ...]

    @property
    def problem_count(self) -> int:
        return self.errors + self.incomplete

    def to_payload(self) -> dict:
        # This layout mirrors repro.validate.runner.FuzzReport
        # .to_payload (the pre-facade ``fuzz --json`` shape); the
        # parity test in tests/test_api_session.py guards the two
        # against drifting apart.
        return {
            "kind": self.KIND,
            "schema_version": self.SCHEMA_VERSION,
            "config": {
                "seeds": self.seeds,
                "shapes": _encode(self.shapes),
                "variants": _encode(self.variants),
                "models": _encode(self.models),
                "budget": self.budget,
            },
            "summary": {
                "cases_run": self.cases_run,
                "cases_skipped_for_budget": self.cases_skipped,
                "errors": self.errors,
                "incomplete": self.incomplete,
                "budget_exhausted": self.budget_exhausted,
                "used_pool": self.used_pool,
                "wall_seconds": self.wall,
                "violations": len(self.violations),
                "variants": _encode(self.variant_summary),
            },
            "problems": _encode(self.problems),
            "violations": _encode(self.violations),
            "cases": _encode(self.cases),
        }

    _TOP_KEYS = frozenset(
        ("kind", "schema_version", "config", "summary", "problems",
         "violations", "cases")
    )
    _CONFIG_KEYS = frozenset(("seeds", "shapes", "variants", "models", "budget"))
    _SUMMARY_KEYS = frozenset(
        ("cases_run", "cases_skipped_for_budget", "errors", "incomplete",
         "budget_exhausted", "used_pool", "wall_seconds", "violations",
         "variants")
    )

    @classmethod
    def _reject_unknown(cls, mapping: Mapping, allowed: frozenset, where: str) -> None:
        unknown = sorted(set(mapping) - allowed)
        if unknown:
            raise SchemaError(
                f"{cls.KIND} {where} carries unknown fields: "
                f"{', '.join(unknown)}"
            )

    @classmethod
    def from_payload(cls, payload: Mapping) -> "FuzzReport":
        cls.check_envelope(payload)
        cls._reject_unknown(payload, cls._TOP_KEYS, "payload")
        try:
            config = payload["config"]
            summary = payload["summary"]
            cls._reject_unknown(config, cls._CONFIG_KEYS, "config")
            cls._reject_unknown(summary, cls._SUMMARY_KEYS, "summary")
            return cls(
                seeds=config["seeds"],
                shapes=tuple(config["shapes"]),
                variants=tuple(config["variants"]),
                models=tuple(config["models"]),
                budget=config["budget"],
                cases_run=summary["cases_run"],
                cases_skipped=summary["cases_skipped_for_budget"],
                errors=summary["errors"],
                incomplete=summary["incomplete"],
                budget_exhausted=summary["budget_exhausted"],
                used_pool=summary["used_pool"],
                wall=summary["wall_seconds"],
                variant_summary=summary["variants"],
                violations=_tuple_of(FuzzViolation)(payload["violations"]),
                problems=_tuple_of(FuzzProblem)(payload["problems"]),
                cases=tuple(payload["cases"]),
            )
        except (KeyError, TypeError) as exc:
            raise SchemaError(
                f"malformed {cls.KIND} payload: {exc}"
            ) from None

    def render(self) -> str:
        rows = [
            [
                variant,
                row["checked"],
                row["restored_sc"],
                row["violations"],
                row["full_fences"],
                f"{row['mean_fences_saved']:.1f}",
            ]
            for variant, row in (
                (v, self.variant_summary[v]) for v in self.variants
            )
        ]
        parts = [
            format_table(
                ["variant", "checked", "SC restored", "violations",
                 "mfences", "saved vs full"],
                rows,
                title=f"fuzz: {self.cases_run} cases "
                f"({self.seeds} seeds x {len(self.shapes)} shapes x "
                f"{len(self.models)} models; "
                f"{'pool' if self.used_pool else 'serial'}, "
                f"{self.wall:.1f}s wall"
                + (", budget exhausted" if self.budget_exhausted else "")
                + f", {self.cases_skipped} skipped)",
            )
        ]
        for p in self.problems:
            label = "ERROR" if p.status == "error" else "INCOMPLETE"
            parts.append(f"\n{label} {p.shape} seed {p.seed}: {p.detail}")
        for v in self.violations:
            parts.append(
                f"\nSOUNDNESS VIOLATION: variant {v.variant!r} on "
                f"{v.shape} seed {v.seed} ({v.model}), "
                f"shrunk to {v.source_lines} lines:"
            )
            parts.append(v.snippet)
        return "\n".join(parts)
