"""`repro.diagnostics` — the structured lint/diagnostics framework.

Findings (:class:`Finding`) carry stable codes, severities, and IR
source spans; lint passes are registered in :data:`LINT_PASSES` (the
same :class:`~repro.registry.core.Registry` machinery as detectors,
models, and arch backends) and orchestrated by :func:`run_lint`. The
flagship pass is the static DRF gate from :mod:`repro.races`; the
fence hygiene passes (redundant fence, weak flavor, unfenced publish)
ride the same framework. Wire form: ``LintRequest``/``LintReport`` in
:mod:`repro.api`; CLI: ``repro lint``.
"""

from repro.diagnostics.findings import (
    SEVERITIES,
    Finding,
    FindingCounts,
    SourceSpan,
    severity_rank,
    sort_findings,
    span_of,
)
from repro.diagnostics.lint import LintResult, run_lint
from repro.diagnostics.passes import LINT_PASSES, LintContext, LintPass, lint_pass

__all__ = [
    "SEVERITIES",
    "Finding",
    "FindingCounts",
    "LINT_PASSES",
    "LintContext",
    "LintPass",
    "LintResult",
    "SourceSpan",
    "lint_pass",
    "run_lint",
    "severity_rank",
    "sort_findings",
    "span_of",
]
