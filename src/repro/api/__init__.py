"""`repro.api` — the stable public surface of the reproduction.

One :class:`Session` fronts the entire pipeline; schema-versioned
request/report dataclasses are the wire format every surface (CLI,
batch engine, fuzz oracle, experiments, future services) speaks::

    from repro.api import AnalyzeRequest, ProgramSpec, Session

    session = Session()
    report = session.analyze(
        AnalyzeRequest(program=ProgramSpec.corpus("fft"), variant="control")
    )
    print(report.full_fences, report.surviving_fraction)
    payload = report.to_json()          # durable, versioned artifact
    AnalyzeReport.from_json(payload)    # exact round trip

Anything importable from this package is covered by the API-stability
snapshot in ``tests/data/api_surface.json``: additions and schema-
version bumps must update the snapshot deliberately
(``python tools/check_api_surface.py --update``).
"""

from repro.api.reports import (
    REPORT_KINDS,
    AnalyzeReport,
    AnalyzeRequest,
    BatchCell,
    BatchReport,
    BatchRequest,
    CacheStats,
    CheckReport,
    CheckRequest,
    FunctionFences,
    FuzzProblem,
    FuzzReport,
    FuzzRequest,
    FuzzViolation,
    LintReport,
    LintRequest,
    SchemaError,
    SimulateReport,
    SimulateRequest,
    VariantCheck,
    diff_payloads,
    load_report,
)
from repro.api.session import Session
from repro.diagnostics.findings import Finding, SourceSpan
from repro.registry.sources import ProgramSpec

__all__ = [
    "AnalyzeReport",
    "AnalyzeRequest",
    "BatchCell",
    "BatchReport",
    "BatchRequest",
    "CacheStats",
    "CheckReport",
    "CheckRequest",
    "Finding",
    "FunctionFences",
    "FuzzProblem",
    "FuzzReport",
    "FuzzRequest",
    "FuzzViolation",
    "LintReport",
    "LintRequest",
    "ProgramSpec",
    "REPORT_KINDS",
    "SchemaError",
    "Session",
    "SimulateReport",
    "SimulateRequest",
    "SourceSpan",
    "VariantCheck",
    "diff_payloads",
    "load_report",
]
