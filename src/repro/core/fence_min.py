"""Locally-optimized fence minimization (after Fang et al. 2003).

Given the surviving orderings of one function, place as few fences as
possible so that every ordering (u, v) has an enforcement point on
every path from u to v (paper Section 4.4).

Reconstruction of the locally-optimized algorithm:

* Every ordering becomes an *interval* of legal fence gaps inside u's
  basic block. A "gap" ``g`` in a block is the insertion point before
  the instruction at index ``g``. For a same-block ordering with
  ``u`` at index ``iu`` and ``v`` at ``iv > iu``, the interval is
  ``[iu+1, iv]``. For a cross-block (or loop wrap-around) ordering the
  source-side projection is used: ``[iu+1, t]``, where ``t`` is the
  terminator's index — sound, because every path from u to v leaves
  through the end of u's block.
* Per block, minimum-cardinality stabbing of the intervals is the
  classic greedy: sort by right endpoint, place a fence at the right
  endpoint of the first uncovered interval. This is optimal per block
  ("locally optimized").
* A placed fence is a **full** fence if it covers at least one interval
  whose ordering kind the machine model does not enforce in hardware
  (on x86-TSO: only ``w->r``); otherwise it is a zero-cost compiler
  directive. This mirrors the paper exactly: "the decision as to
  whether to place a full fence or a compiler directive determined by
  whether the set of orderings that would be enforced contains one of
  the form w -> r".
* Pre-existing full fences and (on models where they are locked
  instructions) atomic RMWs act as enforcement points: intervals
  already containing one are dropped before stabbing.
* Function-entry fences enforce interprocedural ``w->r`` orderings.
  Pensieve places one in every function with escaping reads; the
  paper's modification places one only if the function contains
  *synchronizing* reads (Section 4.4). The pipeline passes the
  appropriate read set in via ``entry_fence``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.machine_models import MemoryModel, OrderKind
from repro.core.orderings import Ordering, OrderingSet
from repro.ir.function import Function
from repro.ir.instructions import (
    Fence,
    FenceKind,
    FenceOrigin,
    Instruction,
    Load,
    Store,
)


@dataclass(frozen=True)
class PlannedFence:
    """A fence to insert: before instruction index ``gap`` of a block.

    ``covers`` records the ordering kinds this fence is relied on to
    enforce (the kinds of every interval the greedy stabbing assigned to
    this gap). Flavored lowering (:mod:`repro.arch.lowering`) uses it to
    pick the cheapest ISA fence flavor that kills exactly those kinds;
    plain :func:`apply_plan` ignores it and inserts generic full fences.
    """

    block_label: str
    gap: int
    kind: FenceKind
    covers: frozenset[OrderKind] = frozenset()


@dataclass
class DelayInterval:
    """Gap interval [lo, hi] in one block, tagged with its ordering kind.

    The shared currency of the greedy planner below and the optimal
    synthesizer (:mod:`repro.synth`): both consume the exact same
    intervals via :func:`collect_intervals`, so their plans differ only
    in *where* they stab, never in *what* must be stabbed.
    """

    block_index: int
    lo: int
    hi: int
    needs_full: bool
    kind: OrderKind


@dataclass
class FencePlan:
    """The minimized fence placement for one function."""

    function: Function
    fences: list[PlannedFence] = field(default_factory=list)
    entry_fence: bool = False

    @property
    def full_fences(self) -> list[PlannedFence]:
        return [f for f in self.fences if f.kind is FenceKind.FULL]

    @property
    def compiler_fences(self) -> list[PlannedFence]:
        return [f for f in self.fences if f.kind is FenceKind.COMPILER]

    @property
    def full_count(self) -> int:
        """Full fences including the function-entry fence, if any."""
        return len(self.full_fences) + (1 if self.entry_fence else 0)

    @property
    def compiler_count(self) -> int:
        return len(self.compiler_fences)


def _ordering_interval(
    func: Function, ordering: Ordering, model: MemoryModel, projection: str
) -> DelayInterval:
    u_block, u_index = func.position(ordering.src.inst)
    v_block, v_index = func.position(ordering.dst.inst)
    kind = ordering.kind
    needs_full = model.needs_full_fence(kind)
    if u_block == v_block and u_index < v_index:
        return DelayInterval(u_block, u_index + 1, v_index, needs_full, kind)
    if projection == "source":
        # Fence between u and its block's end: sound, since every path
        # from u to v leaves through the end of u's block.
        terminator_index = len(func.blocks[u_block].instructions) - 1
        return DelayInterval(u_block, u_index + 1, terminator_index, needs_full, kind)
    # Target-side projection: fence between v's block entry and v —
    # equally sound (every path into v enters through its block start).
    return DelayInterval(v_block, 0, v_index, needs_full, kind)


def barrier_indices(
    block_insts: list[Instruction], model: MemoryModel, for_full: bool
) -> list[int]:
    """Indices of instructions that already act as enforcement points.

    Full enforcement: existing *unflavored* full fences, plus RMWs when
    the model gives them fence semantics. A flavored fence (a manual
    ``fence eieio;``) kills only its declared subset of ordering kinds,
    which this backend-agnostic planner cannot resolve — crediting it
    as a full barrier would let a weak store fence silently satisfy a
    ``w->r`` delay cut, so flavored fences are conservatively not
    credited (the worst case is a redundant fence next to them, never
    a missing one). Compiler-level enforcement: any fence (every
    hardware fence is at least a compiler barrier) plus RMWs.
    """
    indices = []
    for i, inst in enumerate(block_insts):
        if isinstance(inst, Fence):
            if not for_full:
                indices.append(i)
            elif inst.kind is FenceKind.FULL and inst.flavor is None:
                indices.append(i)
        elif inst.is_atomic_rmw():
            if model.rmw_is_full_fence or not for_full:
                indices.append(i)
    return indices


def satisfied_by_instruction(interval: DelayInterval, barrier_index: int) -> bool:
    # An instruction at index k separates indices < k from indices > k,
    # which covers gap interval [lo, hi] iff lo <= k <= hi - 1.
    return interval.lo <= barrier_index <= interval.hi - 1


def discharged_by_qualifier(ordering: Ordering) -> bool:
    """True when a C11-style access qualifier already enforces ``ordering``.

    A ``release`` store kills every ordering *into* its write part
    (those are exactly the ``r->w``/``w->w`` obligations a store-release
    discharges); an ``acquire`` load kills every ordering *out of* its
    read part (``r->r``/``r->w``). Discharged orderings never reach the
    delay graph, so qualified code needs fewer (often zero) fences —
    this is an analysis-level fact shared by the greedy planner and the
    optimal synthesizer alike.
    """
    dst = ordering.dst
    if (
        isinstance(dst.inst, Store)
        and dst.inst.ordering == "release"
        and dst.part == "w"
    ):
        return True
    src = ordering.src
    if (
        isinstance(src.inst, Load)
        and src.inst.ordering == "acquire"
        and src.part == "r"
    ):
        return True
    return False


def collect_intervals(
    func: Function,
    orderings: OrderingSet,
    model: MemoryModel,
    projection: str = "source",
) -> dict[int, list[DelayInterval]]:
    """Project the surviving orderings onto per-block gap intervals.

    This is the single delay-graph construction both planners share:
    RMW-enforced and qualifier-discharged orderings are filtered out,
    each survivor is projected to a :class:`DelayInterval`, and
    duplicates (distinct orderings landing on the same span *and* kind)
    are collapsed. Returns ``{block_index: [intervals]}``.
    """
    if projection not in ("source", "target"):
        raise ValueError(f"unknown projection {projection!r}")
    # An ordering whose endpoint is itself a locked RMW is enforced by
    # that instruction's own barrier semantics (x86 LOCK prefix); one
    # whose endpoint is a suitably-qualified atomic access is enforced
    # by the access itself.
    relevant = [
        o
        for o in orderings
        if not (
            model.rmw_is_full_fence
            and (o.src.inst.is_atomic_rmw() or o.dst.inst.is_atomic_rmw())
        )
        and not discharged_by_qualifier(o)
    ]
    intervals = [_ordering_interval(func, o, model, projection) for o in relevant]
    # Deduplicate: distinct orderings frequently project to one interval.
    # The ordering kind stays in the key — same-span intervals of
    # different kinds place the same fences (spans drive the stabbing)
    # but each kind must be recorded in the fence's ``covers`` set.
    unique: dict[tuple[int, int, int, OrderKind], DelayInterval] = {}
    for iv in intervals:
        unique.setdefault((iv.block_index, iv.lo, iv.hi, iv.kind), iv)

    by_block: dict[int, list[DelayInterval]] = {}
    for iv in unique.values():
        by_block.setdefault(iv.block_index, []).append(iv)
    return by_block


def plan_fences(
    func: Function,
    orderings: OrderingSet,
    model: MemoryModel,
    entry_fence: bool = False,
    projection: str = "source",
) -> FencePlan:
    """Run locally-optimized minimization; returns the plan (no mutation).

    ``projection`` picks which block a cross-block ordering's interval
    lands in: ``"source"`` (Fang-style, the default) or ``"target"`` —
    both sound; the ablation benchmark compares the static counts.
    """
    plan = FencePlan(func, entry_fence=entry_fence)
    by_block = collect_intervals(func, orderings, model, projection)

    for block_index in sorted(by_block):
        block = func.blocks[block_index]
        block_intervals = by_block[block_index]

        full_barriers = barrier_indices(block.instructions, model, for_full=True)
        any_barriers = barrier_indices(block.instructions, model, for_full=False)

        def uncovered(ivs: list[DelayInterval], barriers: list[int]) -> list[DelayInterval]:
            return [
                iv
                for iv in ivs
                if not any(satisfied_by_instruction(iv, k) for k in barriers)
            ]

        # Round 1: intervals that require hardware enforcement. Each
        # interval is assigned to the placed gap that covers it (the
        # greedy guarantees one), and that gap's fence accumulates the
        # interval's ordering kind in its ``covers`` set — the exact
        # kill-set a lowered ISA fence flavor must provide.
        full_needed = uncovered(
            [iv for iv in block_intervals if iv.needs_full], full_barriers
        )
        placed_full_gaps: list[int] = []
        full_covers: dict[int, set[OrderKind]] = {}
        for iv in sorted(full_needed, key=lambda iv: (iv.hi, iv.lo)):
            covering = [g for g in placed_full_gaps if iv.lo <= g <= iv.hi]
            if covering:
                full_covers[covering[0]].add(iv.kind)
                continue
            placed_full_gaps.append(iv.hi)
            full_covers[iv.hi] = {iv.kind}
        for gap in placed_full_gaps:
            plan.fences.append(
                PlannedFence(
                    block.label, gap, FenceKind.FULL,
                    covers=frozenset(full_covers[gap]),
                )
            )

        # Round 2: compiler-only intervals; full fences placed above and
        # existing compiler barriers both count as coverage. (Their
        # kinds are hardware-enforced already, so they never widen a
        # full fence's ``covers`` set.)
        compiler_needed = uncovered(
            [iv for iv in block_intervals if not iv.needs_full], any_barriers
        )
        placed_compiler_gaps: list[int] = []
        compiler_covers: dict[int, set[OrderKind]] = {}
        for iv in sorted(compiler_needed, key=lambda iv: (iv.hi, iv.lo)):
            if any(iv.lo <= g <= iv.hi for g in placed_full_gaps):
                continue
            covering = [g for g in placed_compiler_gaps if iv.lo <= g <= iv.hi]
            if covering:
                compiler_covers[covering[0]].add(iv.kind)
                continue
            placed_compiler_gaps.append(iv.hi)
            compiler_covers[iv.hi] = {iv.kind}
        for gap in placed_compiler_gaps:
            plan.fences.append(
                PlannedFence(
                    block.label, gap, FenceKind.COMPILER,
                    covers=frozenset(compiler_covers[gap]),
                )
            )

    return plan


def plan_every_delay_fences(func: Function) -> FencePlan:
    """The maximally conservative placement: a full fence before every
    memory access, plus a function-entry fence.

    Every ordered pair of accesses then has a full fence between them on
    every path (the fence in front of the later access), so a weak
    machine collapses to SC regardless of which orderings actually
    matter. This is the "every delay enforced" upper bound the
    differential validator (:mod:`repro.validate`) compares detected
    placements against, both for soundness (if even this placement
    cannot restore SC, no fence placement can) and for precision
    (fences saved = this plan's count minus the variant's).
    """
    plan = FencePlan(func, entry_fence=True)
    for block in func.blocks:
        for index, inst in enumerate(block.instructions):
            if inst.is_memory_access():
                plan.fences.append(
                    PlannedFence(block.label, index, FenceKind.FULL)
                )
    return plan


def apply_plan(func: Function, plan: FencePlan) -> int:
    """Insert the planned fences into ``func``; returns fences inserted.

    The function is re-finalized afterwards (instruction uids shift).
    """
    inserted = 0
    by_block: dict[str, list[PlannedFence]] = {}
    for fence in plan.fences:
        by_block.setdefault(fence.block_label, []).append(fence)
    for label, fences in by_block.items():
        block = func.block(label)
        # Insert from the highest gap down so indices stay valid.
        for fence in sorted(fences, key=lambda f: f.gap, reverse=True):
            block.insert(fence.gap, Fence(fence.kind, FenceOrigin.INSERTED))
            inserted += 1
    if plan.entry_fence:
        func.entry.insert(0, Fence(FenceKind.FULL, FenceOrigin.INSERTED))
        inserted += 1
    func.finalize()
    return inserted
