"""The nine synchronization primitives of the paper's Table II.

Each kernel is written as a runnable mini-C program (protocol code plus
a small driver), modeled after the implementations the paper examined:
CLH and MCS from David et al. 2013, the rest from the Alglave et al.
2014 benchmark collection — which are protocol skeletons (in
particular, the Cilk-5 THE kernel exercises the T/H/E handshake on a
scalar task slot rather than a full deque; that is why Table II shows
no address acquires for it).

The ground truth asserted by the Table II experiment:

==================  ====  ====  =========
kernel              Addr  Ctrl  Pure Addr
==================  ====  ====  =========
chase-lev-wsq        yes   yes    no
cilk5-wsq            no    yes    no
clh-lock             yes   yes    no
dekker               no    yes    no
lamport              no    yes    no
mcs-lock             yes   yes    no
michael-scott-q      yes   yes    no
peterson             no    yes    no
szymanski            no    yes    no
==================  ====  ====  =========
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend import compile_source
from repro.ir.function import Program


@dataclass(frozen=True)
class SyncKernel:
    """One Table II row: source plus the paper's ground truth."""

    name: str
    description: str
    source: str
    # Functions making up the primitive itself (drivers excluded from
    # the Table II classification, as in the paper's kernel study).
    kernel_functions: tuple[str, ...]
    paper_addr: bool
    paper_ctrl: bool
    paper_pure_addr: bool
    citation: str

    def compile(self, include_manual_fences: bool = False) -> Program:
        return compile_source(self.source, self.name, include_manual_fences)


DEKKER = SyncKernel(
    name="dekker",
    description="Dekker's mutual exclusion: intent flags plus a turn "
    "variable; every shared read feeds a branch.",
    citation="Dijkstra 1965",
    kernel_functions=("dekker_enter", "dekker_exit"),
    paper_addr=False,
    paper_ctrl=True,
    paper_pure_addr=False,
    source="""
global int d_flag[2];
global int d_turn;
global int d_counter;

fn dekker_enter(me) {
  local other = 1 - me;
  d_flag[me] = 1;
  fence;
  while (d_flag[other] == 1) {
    if (d_turn != me) {
      d_flag[me] = 0;
      while (d_turn != me) { }
      d_flag[me] = 1;
      fence;
    }
  }
}

fn dekker_exit(me) {
  d_turn = 1 - me;
  d_flag[me] = 0;
}

fn dekker_worker(me) {
  local i = 0;
  while (i < 3) {
    dekker_enter(me);
    d_counter = d_counter + 1;
    dekker_exit(me);
    i = i + 1;
  }
}

thread dekker_worker(0);
thread dekker_worker(1);
""",
)


PETERSON = SyncKernel(
    name="peterson",
    description="Peterson's 2-thread lock: flag[other] and turn reads "
    "guard the spin condition.",
    citation="Peterson 1981",
    kernel_functions=("peterson_enter", "peterson_exit"),
    paper_addr=False,
    paper_ctrl=True,
    paper_pure_addr=False,
    source="""
global int p_flag[2];
global int p_turn;
global int p_counter;

fn peterson_enter(me) {
  local other = 1 - me;
  p_flag[me] = 1;
  p_turn = other;
  fence;
  while (p_flag[other] == 1 && p_turn == other) { }
}

fn peterson_exit(me) {
  p_flag[me] = 0;
}

fn peterson_worker(me) {
  local i = 0;
  while (i < 3) {
    peterson_enter(me);
    p_counter = p_counter + 1;
    peterson_exit(me);
    i = i + 1;
  }
}

thread peterson_worker(0);
thread peterson_worker(1);
""",
)


LAMPORT = SyncKernel(
    name="lamport",
    description="Lamport's fast mutual exclusion (two-variable fast "
    "path with per-thread flags).",
    citation="Lamport 1987",
    kernel_functions=("lamport_enter", "lamport_exit"),
    paper_addr=False,
    paper_ctrl=True,
    paper_pure_addr=False,
    source="""
global int l_x;
global int l_y;
global int l_b[2];
global int l_counter;

fn lamport_enter(me) {
  local id = me + 1;
  local other = 0;
  local done = 0;
  while (done == 0) {
    l_b[me] = 1;
    l_x = id;
    fence;
    if (l_y != 0) {
      l_b[me] = 0;
      while (l_y != 0) { }
    } else {
      l_y = id;
      fence;
      if (l_x == id) {
        done = 1;
      } else {
        l_b[me] = 0;
        other = 1 - me;
        while (l_b[other] != 0) { }
        if (l_y == id) {
          done = 1;
        } else {
          while (l_y != 0) { }
        }
      }
    }
  }
}

fn lamport_exit(me) {
  l_y = 0;
  l_b[me] = 0;
}

fn lamport_worker(me) {
  local i = 0;
  while (i < 2) {
    lamport_enter(me);
    l_counter = l_counter + 1;
    lamport_exit(me);
    i = i + 1;
  }
}

thread lamport_worker(0);
thread lamport_worker(1);
""",
)


SZYMANSKI = SyncKernel(
    name="szymanski",
    description="Szymanski's linear-wait mutual exclusion; flag state "
    "machine read in many guards.",
    citation="Szymanski 1988",
    kernel_functions=("szymanski_enter", "szymanski_exit"),
    paper_addr=False,
    paper_ctrl=True,
    paper_pure_addr=False,
    source="""
global int s_flag[2];
global int s_counter;

fn szymanski_enter(me) {
  local other = 1 - me;
  s_flag[me] = 1;
  fence;
  while (s_flag[other] >= 3) { }
  s_flag[me] = 3;
  fence;
  if (s_flag[other] == 1) {
    s_flag[me] = 2;
    while (s_flag[other] != 4) { }
  }
  s_flag[me] = 4;
  fence;
  if (me == 1) {
    while (s_flag[other] >= 2) { }
  }
}

fn szymanski_exit(me) {
  s_flag[me] = 0;
}

fn szymanski_worker(me) {
  local i = 0;
  while (i < 2) {
    szymanski_enter(me);
    s_counter = s_counter + 1;
    szymanski_exit(me);
    i = i + 1;
  }
}

thread szymanski_worker(0);
thread szymanski_worker(1);
""",
)


CILK5_WSQ = SyncKernel(
    name="cilk5-wsq",
    description="Cilk-5 THE work-stealing protocol skeleton: the "
    "tail/head/exception handshake on a scalar task slot, with the "
    "lock-protected slow path (as in the Alglave et al. collection).",
    citation="Frigo et al. 1998",
    kernel_functions=("cilk_push", "cilk_pop", "cilk_steal"),
    paper_addr=False,
    paper_ctrl=True,
    paper_pure_addr=False,
    source="""
global int c_T;
global int c_H;
global int c_lock;
global int c_task;
global int c_done_work;
global int c_stolen;

fn cilk_push(v) {
  local t = 0;
  c_task = v;
  t = c_T;
  c_T = t + 1;
}

fn cilk_pop(tid) {
  local t = 0;
  local h = 0;
  local got = 0;
  t = c_T;
  t = t - 1;
  c_T = t;
  fence;
  h = c_H;
  if (h > t) {
    c_T = t + 1;
    lock_acquire(&c_lock);
    h = c_H;
    if (h > t) {
      got = 0;
    } else {
      c_T = t;
      got = c_task;
      c_done_work = c_done_work + got;
    }
    lock_release(&c_lock);
  } else {
    got = c_task;
    c_done_work = c_done_work + got;
  }
}

fn cilk_steal(tid) {
  local h = 0;
  local t = 0;
  local got = 0;
  lock_acquire(&c_lock);
  h = c_H;
  c_H = h + 1;
  fence;
  t = c_T;
  if (h >= t) {
    c_H = h;
  } else {
    got = c_task;
    c_stolen = c_stolen + got;
  }
  lock_release(&c_lock);
}

fn cilk_owner(tid) {
  local i = 0;
  while (i < 3) {
    cilk_push(1);
    cilk_pop(tid);
    i = i + 1;
  }
}

fn cilk_thief(tid) {
  local i = 0;
  while (i < 2) {
    cilk_steal(tid);
    i = i + 1;
  }
}

thread cilk_owner(0);
thread cilk_thief(1);
""",
)
# cilk5 needs the lock runtime prepended; done below.


CHASE_LEV_WSQ = SyncKernel(
    name="chase-lev-wsq",
    description="Chase-Lev work-stealing deque over a circular buffer; "
    "bottom/top reads guard emptiness checks *and* index the buffer, so "
    "they match both signatures.",
    citation="Chase and Lev 2005",
    kernel_functions=("cl_push", "cl_take", "cl_steal"),
    paper_addr=True,
    paper_ctrl=True,
    paper_pure_addr=False,
    source="""
global int cl_top;
global int cl_bottom;
global int cl_buf[16];
global int cl_taken;
global int cl_stolen;

fn cl_push(v) {
  local b = 0;
  local t = 0;
  b = cl_bottom;
  t = cl_top;
  if (b - t < 16) {
    cl_buf[b % 16] = v;
    fence;
    cl_bottom = b + 1;
  }
}

fn cl_take(tid) {
  local b = 0;
  local t = 0;
  local task = 0;
  local won = 0;
  b = cl_bottom;
  b = b - 1;
  cl_bottom = b;
  fence;
  t = cl_top;
  if (t <= b) {
    task = cl_buf[b % 16];
    if (t == b) {
      won = cas(&cl_top, t, t + 1);
      if (won != t) {
        task = 0;
      }
      cl_bottom = b + 1;
    }
    cl_taken = cl_taken + task;
  } else {
    cl_bottom = b + 1;
  }
}

fn cl_steal(tid) {
  local t = 0;
  local b = 0;
  local task = 0;
  local won = 0;
  t = cl_top;
  fence;
  b = cl_bottom;
  if (t < b) {
    task = cl_buf[t % 16];
    won = cas(&cl_top, t, t + 1);
    if (won == t) {
      cl_stolen = cl_stolen + task;
    }
  }
}

fn cl_owner(tid) {
  local i = 0;
  while (i < 3) {
    cl_push(i + 1);
    i = i + 1;
  }
  i = 0;
  while (i < 3) {
    cl_take(tid);
    i = i + 1;
  }
}

fn cl_thief(tid) {
  local i = 0;
  while (i < 2) {
    cl_steal(tid);
    i = i + 1;
  }
}

thread cl_owner(0);
thread cl_thief(1);
""",
)


CLH_LOCK = SyncKernel(
    name="clh-lock",
    description="CLH queue lock: xchg on the tail returns the "
    "predecessor node, dereferenced in the spin — the xchg read feeds "
    "an address (and, through the spin slice, a branch).",
    citation="Craig 1994",
    kernel_functions=("clh_acquire", "clh_release"),
    paper_addr=True,
    paper_ctrl=True,
    paper_pure_addr=False,
    source="""
global int clh_nodes[8];
global int clh_tail = &clh_nodes;
global int clh_counter;

fn clh_acquire(me) {
  local mynode = 0;
  local pred = 0;
  mynode = &clh_nodes[me + 1];
  *mynode = 1;
  pred = xchg(&clh_tail, mynode);
  while (*pred == 1) { }
}

fn clh_release(me) {
  local mynode = 0;
  mynode = &clh_nodes[me + 1];
  *mynode = 0;
}

fn clh_worker(me) {
  local i = 0;
  while (i < 2) {
    clh_acquire(me * 2 + i);
    clh_counter = clh_counter + 1;
    clh_release(me * 2 + i);
    i = i + 1;
  }
}

thread clh_worker(0);
thread clh_worker(1);
""",
)


MCS_LOCK = SyncKernel(
    name="mcs-lock",
    description="MCS queue lock: xchg returns the predecessor, whose "
    "next field is written through the returned pointer; the handoff "
    "read of next both branches and dereferences.",
    citation="Mellor-Crummey and Scott 1991",
    kernel_functions=("mcs_acquire", "mcs_release"),
    paper_addr=True,
    paper_ctrl=True,
    paper_pure_addr=False,
    source="""
// Node layout: nodes[2*i] = locked flag, nodes[2*i + 1] = next pointer.
global int mcs_nodes[8];
global int mcs_tail;
global int mcs_counter;

fn mcs_acquire(me) {
  local mynode = 0;
  local pred = 0;
  mynode = &mcs_nodes[2 * me];
  mcs_nodes[2 * me + 1] = 0;
  pred = xchg(&mcs_tail, mynode);
  if (pred != 0) {
    *mynode = 1;
    *(pred + 1) = mynode;
    while (*mynode == 1) { }
  }
}

fn mcs_release(me) {
  local mynode = 0;
  local next = 0;
  local won = 0;
  mynode = &mcs_nodes[2 * me];
  next = *(mynode + 1);
  if (next == 0) {
    won = cas(&mcs_tail, mynode, 0);
    if (won != mynode) {
      while (*(mynode + 1) == 0) { }
      next = *(mynode + 1);
      *next = 0;
    }
  } else {
    *next = 0;
  }
}

fn mcs_worker(me) {
  local i = 0;
  while (i < 2) {
    mcs_acquire(me);
    mcs_counter = mcs_counter + 1;
    mcs_release(me);
    i = i + 1;
  }
}

thread mcs_worker(0);
thread mcs_worker(1);
""",
)


MICHAEL_SCOTT_Q = SyncKernel(
    name="michael-scott-q",
    description="Michael & Scott two-lock-free FIFO queue over a node "
    "pool: head/tail/next loads guard CAS retries and are dereferenced "
    "to reach values, matching both signatures.",
    citation="Michael and Scott 1996",
    kernel_functions=("msq_enqueue", "msq_dequeue"),
    paper_addr=True,
    paper_ctrl=True,
    paper_pure_addr=False,
    source="""
// Node layout: pool[2*i] = value, pool[2*i + 1] = next pointer.
global int msq_pool[32];
global int msq_alloc;
global int msq_head = &msq_pool;
global int msq_tail = &msq_pool;
global int msq_popped;

fn msq_enqueue(v) {
  local idx = 0;
  local node = 0;
  local tail = 0;
  local next = 0;
  local won = 0;
  idx = fadd(&msq_alloc, 1);
  node = &msq_pool[2 * (idx + 1)];
  *node = v;
  *(node + 1) = 0;
  won = 0;
  while (won == 0) {
    tail = msq_tail;
    next = *(tail + 1);
    if (tail == msq_tail) {
      if (next == 0) {
        won = cas(tail + 1, 0, node);
        if (won == 0) {
          won = 1;
          cas(&msq_tail, tail, node);
        } else {
          won = 0;
        }
      } else {
        cas(&msq_tail, tail, next);
      }
    }
  }
}

fn msq_dequeue(tid) {
  local head = 0;
  local tail = 0;
  local next = 0;
  local value = 0;
  local done = 0;
  local old = 0;
  local got = 0;
  while (done == 0) {
    head = msq_head;
    tail = msq_tail;
    next = *(head + 1);
    if (head == msq_head) {
      if (head == tail) {
        if (next == 0) {
          done = 1;  // empty: report failure
        } else {
          cas(&msq_tail, tail, next);
        }
      } else {
        value = *next;
        old = cas(&msq_head, head, next);
        if (old == head) {
          msq_popped = msq_popped + value;
          got = 1;
          done = 1;
        }
      }
    }
  }
  return got;
}

fn msq_producer(tid) {
  local i = 0;
  while (i < 3) {
    msq_enqueue(i + 1);
    i = i + 1;
  }
}

fn msq_consumer(tid) {
  local got = 0;
  local popped = 0;
  while (popped < 3) {
    got = msq_dequeue(tid);
    popped = popped + got;
  }
}

thread msq_producer(0);
thread msq_consumer(1);
""",
)


def _with_lock_lib(kernel: SyncKernel) -> SyncKernel:
    from repro.programs.runtime import LOCK_LIB

    return SyncKernel(
        name=kernel.name,
        description=kernel.description,
        source=LOCK_LIB + kernel.source,
        kernel_functions=kernel.kernel_functions,
        paper_addr=kernel.paper_addr,
        paper_ctrl=kernel.paper_ctrl,
        paper_pure_addr=kernel.paper_pure_addr,
        citation=kernel.citation,
    )


CILK5_WSQ = _with_lock_lib(CILK5_WSQ)


SYNC_KERNELS: dict[str, SyncKernel] = {
    k.name: k
    for k in (
        CHASE_LEV_WSQ,
        CILK5_WSQ,
        CLH_LOCK,
        DEKKER,
        LAMPORT,
        MCS_LOCK,
        MICHAEL_SCOTT_Q,
        PETERSON,
        SZYMANSKI,
    )
}
