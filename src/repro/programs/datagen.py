"""Workload generator: compute kernels with a controlled read mix.

The paper's Figs 7-9 are driven by the *static composition* of each
benchmark: how many potentially-escaping reads exist, and what fraction
feed branches (control acquires), feed addresses (address acquires), or
feed pure arithmetic (neither). Real SPLASH-2 programs are dominated by
data code with long runs of loads that never touch a branch; the models
reproduce that by composing a hand-written synchronization scaffold
with generated compute kernels of three flavours:

* **stream** — ``out[i] = f(a[i], b[i], ...)`` with local loop indices:
  these reads match *neither* signature (the bulk of real code);
* **gather** — ``out[i] = table[key[i] % size]``: the ``key`` reads
  feed address computations, so they are *address* acquires (visible
  only to Address+Control), like index/permutation arrays in Radix or
  neighbour lists in Water-Spatial;
* **guarded** — ``if (mask[i] > c) {...}``: the ``mask`` reads feed a
  branch, i.e. *control* acquires, like Raytrace's intersection tests.

Every generated expression varies coefficients with the statement
index, so kernels are formulaic but not copy-identical. Generated
arrays are private to their kernel (never branched on elsewhere), so
the backwards slicer's transitive pull cannot leak markings between
kernels — each kernel contributes exactly its designed read mix.
"""

from __future__ import annotations


def _loop(body_lines: list[str], bound: int, stride_threads: bool) -> list[str]:
    """Wrap body lines in the standard strided worker loop."""
    lines = ["  local i = 0;", "  local t0 = 0;"]
    if stride_threads:
        lines.append("  i = tid;")
        step = "4"
    else:
        lines.append("  i = 0;")
        step = "1"
    lines.append(f"  while (i < {bound}) {{")
    lines.extend("    " + line for line in body_lines)
    lines.append(f"    i = i + {step};")
    lines.append("  }")
    return lines


def stream_kernel(
    fn_name: str,
    prefix: str,
    reads: int,
    size: int = 32,
    stride_threads: bool = True,
) -> tuple[str, str]:
    """A streaming kernel with ``reads`` static array loads feeding
    arithmetic only. Returns (global decls, function source)."""
    if reads < 1:
        raise ValueError("reads must be >= 1")
    n_arrays = max(2, min(4, (reads + 3) // 4))
    arrays = [f"{prefix}_s{k}" for k in range(n_arrays)]
    decls = "\n".join(f"global int {a}[{size}];" for a in arrays)
    decls += f"\nglobal int {prefix}_sout[{size}];"

    body: list[str] = ["t0 = 0;"]
    emitted = 0
    stmt = 0
    while emitted < reads:
        take = min(reads - emitted, 3)
        terms = []
        for k in range(take):
            arr = arrays[(stmt + k) % n_arrays]
            coeff = 2 + (stmt * 3 + k) % 5
            off = (stmt + k) % 2
            if off:
                terms.append(f"{arr}[(i + 1) % {size}] * {coeff}")
            else:
                terms.append(f"{arr}[i] * {coeff}")
            emitted += 1
        body.append(f"t0 = t0 + {' + '.join(terms)};")
        stmt += 1
    body.append(f"{prefix}_sout[i] = t0 - t0 / 3;")

    lines = [f"fn {fn_name}(tid) {{"]
    lines += _loop(body, size, stride_threads)
    lines.append("}")
    return decls, "\n".join(lines)


def gather_kernel(
    fn_name: str,
    prefix: str,
    index_reads: int,
    scatter_reads: int = 0,
    size: int = 32,
    stride_threads: bool = True,
) -> tuple[str, str]:
    """A gather/scatter kernel.

    ``index_reads`` loads of index arrays feed the address of a table
    *read* (each adds one unmarked table read alongside the marked
    index read); ``scatter_reads`` feed the address of a table *write*
    (marked index read, no companion read) — the permutation-store
    pattern of Radix. Together they set the address-acquire fraction.
    """
    if index_reads < 1 and scatter_reads < 1:
        raise ValueError("need at least one gather or scatter read")
    n_keys = max(1, min(3, (max(index_reads, scatter_reads) + 3) // 4))
    keys = [f"{prefix}_k{k}" for k in range(n_keys)]
    decls = "\n".join(f"global int {a}[{size}];" for a in keys)
    decls += f"\nglobal int {prefix}_tab[{size}];"
    decls += f"\nglobal int {prefix}_gout[{size}];"

    body: list[str] = ["t0 = 0;"]
    emitted = 0
    stmt = 0
    while emitted < index_reads:
        take = min(index_reads - emitted, 2)
        terms = []
        for k in range(take):
            key = keys[(stmt + k) % n_keys]
            shift = (stmt * 2 + k) % 3
            terms.append(f"{prefix}_tab[({key}[(i + {shift}) % {size}] + {k}) % {size}]")
            emitted += 1
        body.append(f"t0 = t0 + {' + '.join(terms)};")
        stmt += 1
    for s in range(scatter_reads):
        key = keys[s % n_keys]
        shift = s % 5
        body.append(
            f"{prefix}_gout[({key}[(i + {shift}) % {size}] + {s}) % {size}] = t0 + {s};"
        )
    body.append(f"{prefix}_gout[i % {size}] = t0 + i;")

    lines = [f"fn {fn_name}(tid) {{"]
    lines += _loop(body, size, stride_threads)
    lines.append("}")
    return decls, "\n".join(lines)


def guarded_kernel(
    fn_name: str,
    prefix: str,
    guard_reads: int,
    size: int = 32,
    stride_threads: bool = True,
) -> tuple[str, str]:
    """A branch-heavy kernel: ``guard_reads`` static loads feed
    comparisons (control acquires), as in intersection/visibility
    tests."""
    if guard_reads < 1:
        raise ValueError("guard_reads must be >= 1")
    n_masks = max(1, min(3, (guard_reads + 3) // 4))
    masks = [f"{prefix}_m{k}" for k in range(n_masks)]
    decls = "\n".join(f"global int {a}[{size}];" for a in masks)
    decls += f"\nglobal int {prefix}_hout[{size}];"

    body: list[str] = ["t0 = 0;"]
    for stmt in range(guard_reads):
        mask = masks[stmt % n_masks]
        threshold = (stmt * 7) % 11
        shift = stmt % 3
        body.append(
            f"if ({mask}[(i + {shift}) % {size}] > {threshold}) {{ t0 = t0 + {stmt + 1}; }}"
        )
    body.append(f"{prefix}_hout[i] = t0;")

    lines = [f"fn {fn_name}(tid) {{"]
    lines += _loop(body, size, stride_threads)
    lines.append("}")
    return decls, "\n".join(lines)


def init_kernel(
    fn_name: str,
    prefix: str,
    arrays: list[str],
    size: int = 32,
) -> str:
    """Thread-0 initialization of generated arrays (pure stores)."""
    body = []
    for k, arr in enumerate(arrays):
        body.append(f"{arr}[i] = (i * {3 + 2 * k} + {k + 1}) % {17 + k};")
    lines = [f"fn {fn_name}(tid) {{", "  local i = 0;", "  if (tid == 0) {",
             f"    while (i < {size}) {{"]
    lines.extend("      " + line for line in body)
    lines.append("      i = i + 1;")
    lines.append("    }")
    lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def compute_section(
    prefix: str,
    stream_reads: int = 0,
    gather_reads: int = 0,
    scatter_reads: int = 0,
    guard_reads: int = 0,
    size: int = 32,
) -> tuple[str, str, list[str]]:
    """Assemble a full generated section for one benchmark.

    Returns ``(decls, functions_source, phase_call_names)`` — the
    caller embeds the decls and functions into its source and calls the
    phase functions (plus ``{prefix}_init``) from its worker.
    """
    decls_parts: list[str] = []
    fn_parts: list[str] = []
    calls: list[str] = []
    init_arrays: list[str] = []

    if stream_reads:
        d, f = stream_kernel(f"{prefix}_stream", prefix, stream_reads, size)
        decls_parts.append(d)
        fn_parts.append(f)
        calls.append(f"{prefix}_stream")
        init_arrays += [f"{prefix}_s{k}" for k in range(max(2, min(4, (stream_reads + 3) // 4)))]
    if gather_reads or scatter_reads:
        d, f = gather_kernel(
            f"{prefix}_gather", prefix, gather_reads, scatter_reads, size
        )
        decls_parts.append(d)
        fn_parts.append(f)
        calls.append(f"{prefix}_gather")
        n_keys = max(1, min(3, (max(gather_reads, scatter_reads) + 3) // 4))
        init_arrays += [f"{prefix}_k{k}" for k in range(n_keys)]
        init_arrays.append(f"{prefix}_tab")
    if guard_reads:
        d, f = guarded_kernel(f"{prefix}_guard", prefix, guard_reads, size)
        decls_parts.append(d)
        fn_parts.append(f)
        calls.append(f"{prefix}_guard")
        init_arrays += [f"{prefix}_m{k}" for k in range(max(1, min(3, (guard_reads + 3) // 4)))]

    fn_parts.append(init_kernel(f"{prefix}_init", prefix, init_arrays, size))
    return "\n".join(decls_parts), "\n\n".join(fn_parts), calls


def fuzz_compute_section(
    rng,
    prefix: str,
    stream_reads: int = 0,
    gather_reads: int = 0,
    guard_reads: int = 0,
    size: int = 4,
) -> tuple[str, str, list[str]]:
    """A model-checkable compute section with an rng-chosen read mix.

    The validator's fuzzer (:mod:`repro.validate.generator`) attaches
    these to its synchronization scaffolds, so they differ from
    :func:`compute_section` in two ways dictated by exhaustive
    exploration: sizes stay tiny (the explorers enumerate every
    interleaving of every access) and there is **no** init kernel —
    thread-0 initialization would race with other workers' kernel reads
    under the scaffold's marking, and all-zero arrays change nothing the
    static analyses or the outcome comparison care about. Writes stay
    per-thread disjoint (the strided loop), so kernels never add races.

    ``rng`` jitters each requested read count by ±1 (never below 1), so
    seeds vary the static composition, not just the values. Returns
    ``(decls, functions_source, call_names)`` like
    :func:`compute_section`.
    """

    def jitter(reads: int) -> int:
        return max(1, reads + rng.choice((-1, 0, 1))) if reads else 0

    decls_parts: list[str] = []
    fn_parts: list[str] = []
    calls: list[str] = []
    stream_reads = jitter(stream_reads)
    gather_reads = jitter(gather_reads)
    guard_reads = jitter(guard_reads)
    if stream_reads:
        d, f = stream_kernel(f"{prefix}_stream", prefix, stream_reads, size)
        decls_parts.append(d)
        fn_parts.append(f)
        calls.append(f"{prefix}_stream")
    if gather_reads:
        d, f = gather_kernel(f"{prefix}_gather", prefix, gather_reads, 0, size)
        decls_parts.append(d)
        fn_parts.append(f)
        calls.append(f"{prefix}_gather")
    if guard_reads:
        d, f = guarded_kernel(f"{prefix}_guard", prefix, guard_reads, size)
        decls_parts.append(d)
        fn_parts.append(f)
        calls.append(f"{prefix}_guard")
    return "\n".join(decls_parts), "\n\n".join(fn_parts), calls
