"""Analyze a lock-free workload end to end: the Michael-Scott queue.

Walks the paper's whole story on one realistic kernel, driving every
pipeline step through the :class:`repro.api.Session` facade:

1. signature breakdown (which protocol reads are acquires, and why);
2. ordering generation and pruning (what the Control analysis saves);
3. fence placement on x86-TSO;
4. timed simulation of all four placements (the Fig. 10 measurement);
5. a DRF check that the detected marking is race-free.

Run:  python examples/lockfree_queue_analysis.py
"""

from repro.api import Session, SimulateRequest, ProgramSpec
from repro.core.signatures import Variant, detect_acquires, signature_breakdown
from repro.memmodel.drf import check_drf_with_detected_acquires
from repro.programs.sync_kernels import SYNC_KERNELS
from repro.registry import pipeline_variant_keys
from repro.util.text import format_table


def main() -> None:
    session = Session()
    kernel = SYNC_KERNELS["michael-scott-q"]
    program = kernel.compile()

    # 1. Signature breakdown per protocol function.
    rows = []
    for fn_name in kernel.kernel_functions:
        bd = signature_breakdown(program.functions[fn_name])
        rows.append(
            [
                fn_name,
                len(bd.control),
                len(bd.address),
                len(bd.pure_address),
            ]
        )
    print(
        format_table(
            ["function", "control acquires", "address acquires", "pure address"],
            rows,
            title="Michael-Scott queue: acquire signatures",
        )
    )

    # 2+3. Orderings and fences per variant (shared session context).
    print()
    rows = []
    for variant in pipeline_variant_keys():
        analysis = session.analysis(program, variant)
        rows.append(
            [
                variant,
                analysis.total_sync_reads,
                analysis.total_orderings,
                analysis.full_fence_count,
                analysis.compiler_fence_count,
            ]
        )
    print(
        format_table(
            ["variant", "acquires", "orderings", "mfences", "directives"],
            rows,
            title="Pipeline comparison (x86-TSO)",
        )
    )

    # 4. Timed simulation, normalized to the expert manual placement.
    # The simulate requests reference the kernel source inline, so each
    # placement runs on a fresh compile.
    print()
    spec = ProgramSpec.inline(kernel.source, name=kernel.name)
    manual = session.simulate(SimulateRequest(program=spec, placement="manual"))
    rows = [["manual", manual.cycles, "1.00x"]]
    for variant in pipeline_variant_keys():
        stats = session.simulate(
            SimulateRequest(program=spec, placement=variant)
        )
        rows.append(
            [variant, stats.cycles, f"{stats.cycles / manual.cycles:.2f}x"]
        )
    print(
        format_table(
            ["placement", "simulated cycles", "vs manual"],
            rows,
            title="Timed TSO simulation",
        )
    )

    # 5. The detected marking makes the program data-race-free.
    sync_reads = []
    for func in program.functions.values():
        sync_reads.extend(detect_acquires(func, Variant.CONTROL).sync_reads)
    report = check_drf_with_detected_acquires(
        program, sync_reads, max_traces=400
    )
    print(
        f"\nDRF check under detected marking: races={len(report.races)} "
        f"(traces checked: {report.traces_checked})"
    )


if __name__ == "__main__":
    main()
