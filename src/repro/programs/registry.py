"""The benchmark-program registry (the paper's Section 5 workloads).

17 programs: 14 SPLASH-2 models plus the three lock-free programs of
Table III (Canneal, Matrix, SpanningTree). Each entry knows its source,
its suite, and the paper's manual-fence count where one was reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache

from repro.frontend import compile_source
from repro.ir.function import Program


@dataclass(frozen=True)
class BenchProgram:
    """One evaluation workload."""

    name: str
    suite: str  # "splash2" | "lockfree"
    description: str
    source: str
    manual_fences_paper: int = 0  # Section 5.3's expert counts (0 = library-sync'd)

    def compile(self, manual_fences: bool = False) -> Program:
        """Fresh IR for this program; ``manual_fences`` keeps the expert
        ``fence;`` placements (the Fig. 10 baseline)."""
        return compile_source(
            self.source, self.name, include_manual_fences=manual_fences
        )

    @cached_property
    def manual_fence_count(self) -> int:
        """Static full fences in this model's expert placement.

        Counting requires a full compile, so the result is memoized —
        ``cached_property`` writes straight into ``__dict__``, which
        works on a frozen dataclass (it bypasses the frozen
        ``__setattr__``), and the count is immutable like every other
        field.
        """
        return sum(
            1 for f in self.compile(manual_fences=True).fences()
            if f.kind.value == "full"
        )


@lru_cache(maxsize=1)
def _load() -> dict[str, BenchProgram]:
    # Imported lazily: the part modules import BenchProgram from here.
    from repro.programs.lockfree import LOCKFREE_PROGRAMS
    from repro.programs.splash2_part1 import (
        BARNES,
        CHOLESKY,
        FFT,
        FMM,
        LU_CON,
        LU_NONCON,
        OCEAN_CON,
    )
    from repro.programs.splash2_part2 import (
        OCEAN_NONCON,
        RADIOSITY,
        RADIX,
        RAYTRACE,
        VOLREND,
        WATER_NSQUARED,
        WATER_SPATIAL,
    )

    ordered = [
        BARNES,
        CHOLESKY,
        FFT,
        FMM,
        LU_CON,
        LU_NONCON,
        OCEAN_CON,
        OCEAN_NONCON,
        RADIOSITY,
        RADIX,
        RAYTRACE,
        VOLREND,
        WATER_NSQUARED,
        WATER_SPATIAL,
    ] + list(LOCKFREE_PROGRAMS)
    return {p.name: p for p in ordered}


def all_programs() -> dict[str, BenchProgram]:
    """Every registered workload, in the paper's figure order."""
    return dict(_load())


def get_program(name: str) -> BenchProgram:
    try:
        return _load()[name]
    except KeyError:
        raise KeyError(
            f"unknown program {name!r}; known: {', '.join(_load())}"
        ) from None


def splash2_programs() -> dict[str, BenchProgram]:
    return {k: v for k, v in _load().items() if v.suite == "splash2"}


def lockfree_programs() -> dict[str, BenchProgram]:
    return {k: v for k, v in _load().items() if v.suite == "lockfree"}
