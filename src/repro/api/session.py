"""The `Session` facade: one stable entry point over the whole pipeline.

A :class:`Session` owns everything the pre-facade surfaces wired by
hand — compilation of :class:`~repro.registry.sources.ProgramSpec`
inputs, one shared :class:`~repro.engine.context.AnalysisContext` per
compiled program, registry dispatch over detection variants, memory
models, and explorers, the timed simulator, the batch engine, and the
differential fuzzer. Execution knobs (worker processes, serial
fallback, state bounds, result cache) live on the session; *what* to
run lives in the schema-versioned requests of
:mod:`repro.api.reports`, so a request serialized on one machine
replays on another.

Two API levels:

* **wire level** — ``analyze``/``check``/``simulate``/``batch``/
  ``fuzz`` consume a request dataclass and return a serializable
  report; this is the surface the CLI and any future service sit on.
* **mid level** — ``load``/``analysis``/``place``/``explore``/
  ``timed_simulation`` operate on IR ``Program`` objects with the
  session's shared analysis context; the experiments and examples use
  these for in-process composition.
"""

from __future__ import annotations

import time

from repro.core.machine_models import MemoryModel
from repro.core.pipeline import PipelineVariant, ProgramAnalysis
from repro.engine.context import AnalysisContext
from repro.frontend import compile_source
from repro.ir.function import Program
from repro.memmodel.sc import ExplorationResult
from repro.registry.models import get_model, weak_explorer_for
from repro.registry.sources import ProgramSpec, resolve_spec
from repro.registry.variants import get_variant, pipeline_variant_keys
from repro.api.reports import (
    AnalyzeReport,
    AnalyzeRequest,
    BatchCell,
    BatchReport,
    BatchRequest,
    CheckReport,
    CheckRequest,
    FunctionFences,
    FuzzProblem,
    FuzzReport,
    FuzzRequest,
    FuzzViolation,
    SimulateReport,
    SimulateRequest,
    VariantCheck,
)


class Session:
    """A configured analysis session (see module docstring).

    ``variant`` and ``model`` are the registry-key defaults used when a
    mid-level call does not name one; requests always carry their own.
    """

    def __init__(
        self,
        variant: str = "control",
        model: str = "x86-tso",
        max_states: int = 1_000_000,
        jobs: int | None = None,
        parallel: bool = True,
        interprocedural: bool = False,
        cache_dir: str | None = None,
    ) -> None:
        get_variant(variant)  # validate eagerly: fail at construction
        get_model(model)
        self.variant = variant
        self.model = model
        self.max_states = max_states
        self.jobs = jobs
        self.parallel = parallel
        self.interprocedural = interprocedural
        self.cache_dir = cache_dir
        # Identity-keyed per-program fact cache, LRU-bounded so a
        # long-lived session serving many one-shot requests does not
        # retain every compiled program it ever saw.
        self._contexts: dict[Program, AnalysisContext] = {}
        self._context_cap = 32
        self._batch_runner = None

    # --- program loading --------------------------------------------------
    def load(self, program: ProgramSpec | Program) -> Program:
        """Resolve and compile a spec (a compiled ``Program`` passes
        through); the session tracks an analysis context for it."""
        if isinstance(program, Program):
            return program
        resolved = resolve_spec(program)
        ir = compile_source(
            resolved.source, resolved.name,
            include_manual_fences=program.manual_fences,
        )
        self.context(ir)
        return ir

    def context(self, program: Program) -> AnalysisContext:
        """The session's shared (memoized) facts for ``program``."""
        ctx = self._contexts.pop(program, None)
        if ctx is None:
            ctx = AnalysisContext(program)
            while len(self._contexts) >= self._context_cap:
                self._contexts.pop(next(iter(self._contexts)))
        self._contexts[program] = ctx  # (re)insert as most recent
        return ctx

    def forget(self, program: Program) -> None:
        """Drop the context for ``program`` (stale after IR mutation)."""
        self._contexts.pop(program, None)

    # --- mid-level operations ---------------------------------------------
    def _variant_key(self, variant: str | PipelineVariant | None) -> str:
        if variant is None:
            return self.variant
        if isinstance(variant, PipelineVariant):
            return variant.value
        return variant

    def _machine(self, model: str | None) -> MemoryModel:
        return get_model(model if model is not None else self.model).model

    def analysis(
        self,
        program: Program,
        variant: str | PipelineVariant | None = None,
        model: str | None = None,
        interprocedural: bool | None = None,
    ) -> ProgramAnalysis:
        """Run a variant's pipeline on ``program`` (no IR mutation),
        sharing the session's analysis context."""
        entry = get_variant(self._variant_key(variant))
        inter = self.interprocedural if interprocedural is None else interprocedural
        return entry.analyze(
            program, self._machine(model),
            context=self.context(program), interprocedural=inter,
        )

    def place(
        self,
        program: Program,
        variant: str | PipelineVariant | None = None,
        model: str | None = None,
        interprocedural: bool | None = None,
    ) -> ProgramAnalysis:
        """Run the pipeline and insert the fences (mutates ``program``;
        the session's context for it is invalidated)."""
        entry = get_variant(self._variant_key(variant))
        inter = self.interprocedural if interprocedural is None else interprocedural
        result = entry.place(
            program, self._machine(model),
            context=self.context(program), interprocedural=inter,
        )
        self.forget(program)
        return result

    def explore(
        self,
        program: Program,
        model: str | None = None,
        max_states: int | None = None,
    ) -> ExplorationResult:
        """Exhaustively explore ``program`` under a model's explorer.

        ``model="sc"`` gives the reference semantics; weak models give
        the differencing side. Models without explorer coverage (RMO)
        raise ``KeyError``.
        """
        entry = get_model(model if model is not None else self.model)
        explorer_cls = entry.explorer_cls()
        bound = max_states if max_states is not None else self.max_states
        return explorer_cls(program, max_states=bound).explore()

    def timed_simulation(self, program: Program, costs=None):
        """Run the deterministic timed TSO simulator on ``program``."""
        from repro.simulator.costmodel import DEFAULT_COSTS
        from repro.simulator.machine import TSOSimulator

        return TSOSimulator(
            program, costs if costs is not None else DEFAULT_COSTS
        ).run()

    # --- wire-level operations --------------------------------------------
    def analyze(self, request: AnalyzeRequest) -> AnalyzeReport:
        program = self.load(request.program)
        interprocedural = (
            request.interprocedural
            if request.interprocedural is not None
            else self.interprocedural
        )
        if request.emit_ir:
            analysis = self.place(
                program, request.variant, request.model,
                interprocedural=interprocedural,
            )
        else:
            analysis = self.analysis(
                program, request.variant, request.model,
                interprocedural=interprocedural,
            )
        annotations = None
        if request.annotations:
            from repro.core.annotations import (
                render_annotations,
                suggest_annotations,
            )

            annotations = render_annotations(suggest_annotations(analysis))
        fenced_ir = None
        if request.emit_ir:
            from repro.ir.printer import format_program

            fenced_ir = format_program(program)
        functions = tuple(
            FunctionFences(
                name=name,
                escaping_reads=len(fa.escape_info.escaping_reads),
                sync_reads=len(fa.sync_reads),
                orderings=len(fa.orderings),
                pruned=len(fa.pruned),
                full_fences=fa.plan.full_count,
                compiler_fences=fa.plan.compiler_count,
            )
            for name, fa in analysis.functions.items()
        )
        return AnalyzeReport(
            program=program.name,
            variant=request.variant,
            model=request.model,
            interprocedural=interprocedural,
            functions=functions,
            escaping_reads=analysis.total_escaping_reads,
            sync_reads=analysis.total_sync_reads,
            orderings=sum(len(fa.orderings) for fa in analysis.functions.values()),
            pruned_orderings=analysis.total_orderings,
            surviving_fraction=analysis.surviving_fraction,
            full_fences=analysis.full_fence_count,
            compiler_fences=analysis.compiler_fence_count,
            annotations=annotations,
            fenced_ir=fenced_ir,
        )

    def check(self, request: CheckRequest) -> CheckReport:
        resolved = resolve_spec(request.program)
        explorer_cls, machine = weak_explorer_for(request.model)
        bound = (
            request.max_states
            if request.max_states is not None
            else self.max_states
        )

        def fresh() -> Program:
            # The spec describes the baseline program: with
            # manual_fences=True the expert fences ARE the program
            # under check, and the SC reference includes them.
            return compile_source(
                resolved.source, resolved.name,
                include_manual_fences=request.program.manual_fences,
            )

        def skipped(reason: str) -> CheckReport:
            return CheckReport(
                program=resolved.name,
                model=request.model,
                max_states=bound,
                complete=False,
                skipped=reason,
                sc_outcomes=0,
                weak_outcomes_unfenced=0,
                weak_breaks_unfenced=False,
                variants=(),
            )

        from repro.registry.models import EXPLORERS

        sc = EXPLORERS.get("sc")(fresh(), max_states=bound).explore()
        weak = explorer_cls(fresh(), max_states=bound).explore()
        if not (sc.complete and weak.complete):
            return skipped("state space exceeded max_states")
        sc_obs = sc.observation_sets()
        weak_obs = weak.observation_sets()

        interprocedural = (
            request.interprocedural
            if request.interprocedural is not None
            else self.interprocedural
        )
        variant_keys = request.variants or pipeline_variant_keys()
        verdicts = []
        for key in variant_keys:
            entry = get_variant(key)
            fenced = fresh()
            analysis = entry.place(
                fenced, machine, interprocedural=interprocedural
            )
            fenced_weak = explorer_cls(fenced, max_states=bound).explore()
            verdicts.append(
                VariantCheck(
                    variant=key,
                    full_fences=analysis.full_fence_count,
                    weak_outcomes=len(fenced_weak.observation_sets()),
                    restored_sc=fenced_weak.observation_sets() == sc_obs,
                )
            )
        return CheckReport(
            program=resolved.name,
            model=request.model,
            max_states=bound,
            complete=True,
            skipped=None,
            sc_outcomes=len(sc_obs),
            weak_outcomes_unfenced=len(weak_obs),
            weak_breaks_unfenced=weak_obs != sc_obs,
            variants=tuple(verdicts),
        )

    def simulate(self, request: SimulateRequest) -> SimulateReport:
        resolved = resolve_spec(request.program)
        manual = request.placement == "manual" or request.program.manual_fences
        program = compile_source(
            resolved.source, resolved.name, include_manual_fences=manual
        )
        if request.placement != "manual":
            self.place(program, request.placement, request.model)
        stats = self.timed_simulation(program)
        observations = tuple(
            (tid, tuple(obs))
            for tid, obs in sorted(stats.observations.items())
        )
        return SimulateReport(
            program=resolved.name,
            placement=request.placement,
            model=request.model,
            cycles=stats.cycles,
            instructions=stats.instructions,
            full_fences_executed=stats.full_fences_executed,
            compiler_fences_executed=stats.compiler_fences_executed,
            fence_stall_cycles=stats.fence_stall_cycles,
            observations=observations,
            final_globals=tuple(sorted(stats.final_globals.items())),
            observe_globals=tuple(request.observe_globals),
        )

    def batch(self, request: BatchRequest) -> BatchReport:
        from repro.engine.batch import BatchRunner, ResultCache
        from repro.programs.registry import all_programs, get_program

        programs = list(request.programs) if request.programs else list(all_programs())
        for name in programs:
            get_program(name)  # KeyError("unknown program ...") early
        variants = list(request.variants) if request.variants else None
        models = list(request.models) if request.models else None
        if self._batch_runner is None:
            cache = ResultCache(self.cache_dir) if self.cache_dir else None
            self._batch_runner = BatchRunner(
                max_workers=self.jobs, parallel=self.parallel, cache=cache
            )
        start = time.perf_counter()
        results = self._batch_runner.run_matrix(programs, variants, models)
        wall = time.perf_counter() - start
        cells = tuple(
            BatchCell(
                program=r.program,
                variant=r.variant,
                model=r.model,
                key=r.key,
                functions=len(r.functions),
                escaping_reads=r.escaping_reads,
                sync_reads=r.sync_reads,
                orderings=r.orderings,
                pruned_orderings=r.pruned_orderings,
                surviving_fraction=r.surviving_fraction,
                full_fences=r.full_fences,
                compiler_fences=r.compiler_fences,
                elapsed=r.elapsed,
                cached=r.cached,
            )
            for r in results
        )
        return BatchReport(
            programs=tuple(programs),
            variants=tuple(variants) if variants else tuple(pipeline_variant_keys()),
            models=tuple(models) if models else ("x86-tso",),
            used_pool=self._batch_runner.used_pool,
            wall=wall,
            cells=cells,
        )

    def fuzz(self, request: FuzzRequest) -> FuzzReport:
        from dataclasses import asdict

        from repro.registry.variants import trusted_variant_keys
        from repro.validate.generator import SHAPES
        from repro.validate.runner import run_fuzz

        shapes = tuple(request.shapes) if request.shapes else tuple(SHAPES)
        variants = (
            tuple(request.variants) if request.variants
            else trusted_variant_keys()
        )
        raw = run_fuzz(
            seeds=request.seeds,
            shapes=shapes,
            variants=variants,
            models=tuple(request.models),
            budget=request.budget,
            jobs=self.jobs,
            parallel=self.parallel,
            shrink=request.shrink,
            max_states=(
                request.max_states
                if request.max_states is not None
                else self.max_states
            ),
        )
        problems = tuple(
            [
                FuzzProblem("error", c.shape, c.seed, c.model, c.error or "")
                for c in raw.errors
            ]
            + [
                FuzzProblem(
                    "incomplete", c.shape, c.seed, c.model,
                    (c.report.skipped if c.report is not None else None) or "",
                )
                for c in raw.incomplete
            ]
        )
        return FuzzReport(
            seeds=raw.seeds,
            shapes=tuple(raw.shapes),
            variants=tuple(raw.variants),
            models=tuple(raw.models),
            budget=raw.budget,
            cases_run=len(raw.cases),
            cases_skipped=raw.cases_skipped,
            errors=len(raw.errors),
            incomplete=len(raw.incomplete),
            budget_exhausted=raw.budget_exhausted,
            used_pool=raw.used_pool,
            wall=raw.wall,
            variant_summary=raw.variant_summary(),
            violations=tuple(
                FuzzViolation(**asdict(v)) for v in raw.violations
            ),
            problems=problems,
            cases=tuple(c.to_payload() for c in raw.cases),
        )
