"""Single-thread IR execution machinery shared by all executors.

The SC explorer, the x86-TSO explorer, and the timed performance
simulator all need to run threads instruction by instruction while
owning shared memory themselves. The :class:`ThreadExecutor` therefore
uses a two-phase protocol:

1. ``next_action(state)`` advances the thread through *invisible*
   instructions (arithmetic, branches, calls, accesses to the thread's
   own stack, observations) and stops at the next *visible* action —
   a shared-memory load/store/RMW or a fence — returning a
   :class:`PendingAction` describing it without performing it.
2. The caller performs the memory side per its own model (SC memory,
   TSO store buffer, timed machine) and calls ``commit`` with the load
   result, which completes the instruction and advances the thread.

Addresses are word-granular integers. Globals live at ``GLOBAL_BASE``;
each thread's stack occupies a disjoint window, so "own stack" checks
are range tests. Cross-thread stack sharing is treated as visible
(escaped locals published through globals remain correctly modeled).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.function import Function, Program, ThreadSpec
from repro.ir.instructions import (
    Alloca,
    AtomicAdd,
    AtomicXchg,
    BinOp,
    Br,
    Call,
    Cmp,
    CmpXchg,
    Fence,
    FenceKind,
    Gep,
    Instruction,
    Jump,
    Load,
    Observe,
    Ret,
    Store,
)
from repro.ir.values import Constant, GlobalRef, Register, Value

GLOBAL_BASE = 0x100000
STACK_BASE = 0x4000000
STACK_STRIDE = 0x100000


class ExecutionError(Exception):
    """Runtime error in interpreted IR (bad address, div by zero, ...)."""


def _cdiv(a: int, b: int) -> int:
    """C-style truncating division."""
    if b == 0:
        raise ExecutionError("division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _cmod(a: int, b: int) -> int:
    if b == 0:
        raise ExecutionError("modulo by zero")
    return a - _cdiv(a, b) * b


_BINOP_FNS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _cdiv,
    "%": _cmod,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << (b & 63),
    ">>": lambda a, b: a >> (b & 63),
}

_CMP_FNS = {
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
}


class GlobalLayout:
    """Word addresses for every global variable of a program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.base: dict[str, int] = {}
        addr = GLOBAL_BASE
        for name, var in program.globals.items():
            self.base[name] = addr
            addr += var.size
        self.end = addr

    def initial_memory(self) -> dict[int, int]:
        memory: dict[int, int] = {}
        for name, var in self.program.globals.items():
            base = self.base[name]
            for offset, value in enumerate(var.init):
                if isinstance(value, tuple):  # ("&", other_global)
                    target = value[1]
                    if target not in self.base:
                        raise ExecutionError(
                            f"global {name}: initializer &{target} is undefined"
                        )
                    memory[base + offset] = self.base[target]
                else:
                    memory[base + offset] = value
        return memory

    def is_global(self, addr: int) -> bool:
        return GLOBAL_BASE <= addr < self.end

    def name_of(self, addr: int) -> Optional[str]:
        """Debugging helper: global name + offset at ``addr``."""
        for name, base in self.base.items():
            size = self.program.globals[name].size
            if base <= addr < base + size:
                return name if size == 1 else f"{name}[{addr - base}]"
        return None

    def final_globals(self, memory: dict[int, int]) -> dict[str, int]:
        """Named view of scalar globals (arrays reported element-wise)."""
        result = {}
        for name, var in self.program.globals.items():
            base = self.base[name]
            if var.size == 1:
                result[name] = memory.get(base, 0)
            else:
                for i in range(var.size):
                    result[f"{name}[{i}]"] = memory.get(base + i, 0)
        return result


def stack_range(tid: int) -> tuple[int, int]:
    base = STACK_BASE + tid * STACK_STRIDE
    return base, base + STACK_STRIDE


@dataclass
class Frame:
    """One call frame."""

    func: Function
    block_index: int = 0
    inst_index: int = 0
    regs: dict[str, int] = field(default_factory=dict)
    saved_sp: int = 0
    call_dest: Optional[str] = None  # caller register awaiting our return

    def clone(self) -> "Frame":
        return Frame(
            self.func,
            self.block_index,
            self.inst_index,
            dict(self.regs),
            self.saved_sp,
            self.call_dest,
        )


@dataclass
class ThreadState:
    """Complete state of one thread (control + registers + stack)."""

    tid: int
    frames: list[Frame] = field(default_factory=list)
    local_mem: dict[int, int] = field(default_factory=dict)
    sp: int = 0
    observations: tuple[tuple[str, int], ...] = ()
    done: bool = False
    steps: int = 0

    def clone(self) -> "ThreadState":
        return ThreadState(
            self.tid,
            [f.clone() for f in self.frames],
            dict(self.local_mem),
            self.sp,
            self.observations,
            self.done,
            self.steps,
        )

    def key(self) -> tuple:
        """Hashable state fingerprint (for explorer memoization)."""
        return (
            self.tid,
            tuple(
                (
                    f.func.name,
                    f.block_index,
                    f.inst_index,
                    tuple(sorted(f.regs.items())),
                    f.call_dest,
                )
                for f in self.frames
            ),
            tuple(sorted(self.local_mem.items())),
            self.observations,
            self.done,
        )


@dataclass
class PendingAction:
    """A visible action about to be performed by a thread.

    ``kind``: "load" | "store" | "rmw" | "fence".
    For loads: ``addr``. For stores: ``addr`` and ``value``. For RMWs:
    ``addr`` plus the instruction's operands resolved (``rmw_args``).
    For fences: ``fence_kind``.
    """

    kind: str
    inst: Instruction
    addr: Optional[int] = None
    value: Optional[int] = None
    rmw_args: tuple[int, ...] = ()
    fence_kind: Optional[FenceKind] = None

    def rmw_result(self, old: int) -> tuple[int, Optional[int]]:
        """(value returned to dest, new memory value or None if no write)."""
        inst = self.inst
        if isinstance(inst, CmpXchg):
            expected, new = self.rmw_args
            return old, (new if old == expected else None)
        if isinstance(inst, AtomicXchg):
            (value,) = self.rmw_args
            return old, value
        if isinstance(inst, AtomicAdd):
            (value,) = self.rmw_args
            return old, old + value
        raise ExecutionError(f"not an RMW: {inst!r}")


class ThreadExecutor:
    """Advances :class:`ThreadState`s over a program's IR."""

    def __init__(self, program: Program, layout: GlobalLayout | None = None) -> None:
        self.program = program
        self.layout = layout if layout is not None else GlobalLayout(program)

    # --- thread setup ------------------------------------------------------
    def start_thread(self, tid: int, spec: ThreadSpec) -> ThreadState:
        func = self.program.functions[spec.func_name]
        if len(spec.args) != len(func.params):
            raise ExecutionError(
                f"thread {spec.func_name}: argument count mismatch"
            )
        base, _ = stack_range(tid)
        frame = Frame(func, regs={p.name: a for p, a in zip(func.params, spec.args)})
        frame.saved_sp = base
        return ThreadState(tid=tid, frames=[frame], sp=base)

    def start_all(self) -> list[ThreadState]:
        return [
            self.start_thread(tid, spec)
            for tid, spec in enumerate(self.program.threads)
        ]

    # --- value evaluation ------------------------------------------------------
    @staticmethod
    def _eval(value: Value, frame: Frame, layout: GlobalLayout) -> int:
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, GlobalRef):
            return layout.base[value.name]
        if isinstance(value, Register):
            try:
                return frame.regs[value.name]
            except KeyError:
                raise ExecutionError(
                    f"read of unset register %{value.name} in {frame.func.name}"
                ) from None
        raise ExecutionError(f"cannot evaluate {value!r}")

    def _is_own_stack(self, ts: ThreadState, addr: int) -> bool:
        lo, hi = stack_range(ts.tid)
        return lo <= addr < hi

    # --- the two-phase protocol ---------------------------------------------
    def next_action(self, ts: ThreadState, max_steps: int = 1_000_000) -> Optional[PendingAction]:
        """Run invisible instructions; stop at the next visible action.

        Returns ``None`` once the thread has finished. Raises
        :class:`ExecutionError` if ``max_steps`` invisible+visible steps
        are exceeded (runaway loop guard).
        """
        layout = self.layout
        while True:
            if not ts.frames:
                ts.done = True
                return None
            if ts.steps >= max_steps:
                raise ExecutionError(
                    f"thread {ts.tid}: exceeded {max_steps} steps"
                )
            frame = ts.frames[-1]
            block = frame.func.blocks[frame.block_index]
            inst = block.instructions[frame.inst_index]
            ts.steps += 1

            if isinstance(inst, (Load, CmpXchg, AtomicXchg, AtomicAdd)):
                addr = self._eval(inst.addr, frame, layout)
                if self._is_own_stack(ts, addr):
                    self._execute_local_memory(ts, frame, inst, addr)
                    continue
                if isinstance(inst, Load):
                    return PendingAction("load", inst, addr=addr)
                if isinstance(inst, CmpXchg):
                    args = (
                        self._eval(inst.expected, frame, layout),
                        self._eval(inst.new, frame, layout),
                    )
                elif isinstance(inst, AtomicXchg):
                    args = (self._eval(inst.value, frame, layout),)
                else:
                    args = (self._eval(inst.value, frame, layout),)
                return PendingAction("rmw", inst, addr=addr, rmw_args=args)

            if isinstance(inst, Store):
                addr = self._eval(inst.addr, frame, layout)
                value = self._eval(inst.value, frame, layout)
                if self._is_own_stack(ts, addr):
                    ts.local_mem[addr] = value
                    self._advance(ts)
                    continue
                return PendingAction("store", inst, addr=addr, value=value)

            if isinstance(inst, Fence):
                return PendingAction("fence", inst, fence_kind=inst.kind)

            self._execute_invisible(ts, frame, inst)

    def commit(
        self,
        ts: ThreadState,
        pending: PendingAction,
        load_result: Optional[int] = None,
    ) -> None:
        """Complete a visible action and advance past its instruction."""
        inst = pending.inst
        frame = ts.frames[-1]
        if pending.kind in ("load", "rmw"):
            if load_result is None:
                raise ExecutionError("load/rmw commit requires a value")
            if inst.dest is not None:
                frame.regs[inst.dest.name] = load_result
        self._advance(ts)

    # --- execution helpers ------------------------------------------------------
    def _execute_local_memory(
        self, ts: ThreadState, frame: Frame, inst: Instruction, addr: int
    ) -> None:
        old = ts.local_mem.get(addr, 0)
        if isinstance(inst, Load):
            frame.regs[inst.dest.name] = old
        else:
            layout = self.layout
            if isinstance(inst, CmpXchg):
                pending = PendingAction(
                    "rmw",
                    inst,
                    addr=addr,
                    rmw_args=(
                        self._eval(inst.expected, frame, layout),
                        self._eval(inst.new, frame, layout),
                    ),
                )
            elif isinstance(inst, AtomicXchg):
                pending = PendingAction(
                    "rmw", inst, addr=addr,
                    rmw_args=(self._eval(inst.value, frame, layout),),
                )
            else:
                pending = PendingAction(
                    "rmw", inst, addr=addr,
                    rmw_args=(self._eval(inst.value, frame, layout),),
                )
            result, new = pending.rmw_result(old)
            if new is not None:
                ts.local_mem[addr] = new
            frame.regs[inst.dest.name] = result
        self._advance(ts)

    def _execute_invisible(
        self, ts: ThreadState, frame: Frame, inst: Instruction
    ) -> None:
        layout = self.layout
        if isinstance(inst, Alloca):
            frame.regs[inst.dest.name] = ts.sp
            ts.sp += inst.size
            _, hi = stack_range(ts.tid)
            if ts.sp > hi:
                raise ExecutionError(f"thread {ts.tid}: stack overflow")
            self._advance(ts)
        elif isinstance(inst, BinOp):
            a = self._eval(inst.lhs, frame, layout)
            b = self._eval(inst.rhs, frame, layout)
            frame.regs[inst.dest.name] = _BINOP_FNS[inst.op](a, b)
            self._advance(ts)
        elif isinstance(inst, Cmp):
            a = self._eval(inst.lhs, frame, layout)
            b = self._eval(inst.rhs, frame, layout)
            frame.regs[inst.dest.name] = _CMP_FNS[inst.op](a, b)
            self._advance(ts)
        elif isinstance(inst, Gep):
            base = self._eval(inst.base, frame, layout)
            offset = self._eval(inst.offset, frame, layout)
            frame.regs[inst.dest.name] = base + offset
            self._advance(ts)
        elif isinstance(inst, Br):
            cond = self._eval(inst.cond, frame, layout)
            target = inst.true_label if cond != 0 else inst.false_label
            self._jump(frame, target)
        elif isinstance(inst, Jump):
            self._jump(frame, inst.target)
        elif isinstance(inst, Observe):
            value = self._eval(inst.value, frame, layout)
            ts.observations = ts.observations + ((inst.label, value),)
            self._advance(ts)
        elif isinstance(inst, Call):
            callee = self.program.functions.get(inst.callee)
            if callee is None:
                raise ExecutionError(f"call to unknown function {inst.callee!r}")
            args = [self._eval(a, frame, layout) for a in inst.args]
            new_frame = Frame(
                callee,
                regs={p.name: v for p, v in zip(callee.params, args)},
                saved_sp=ts.sp,
                call_dest=inst.dest.name if inst.dest is not None else None,
            )
            ts.frames.append(new_frame)
        elif isinstance(inst, Ret):
            value = (
                self._eval(inst.value, frame, layout)
                if inst.value is not None
                else None
            )
            # Reclaim this frame's stack window.
            for addr in [a for a in ts.local_mem if a >= frame.saved_sp]:
                del ts.local_mem[addr]
            ts.sp = frame.saved_sp
            dest = frame.call_dest
            ts.frames.pop()
            if ts.frames:
                caller = ts.frames[-1]
                if dest is not None:
                    caller.regs[dest] = value if value is not None else 0
                self._advance(ts)
            else:
                ts.done = True
        else:
            raise ExecutionError(f"cannot execute {inst!r}")

    @staticmethod
    def _advance(ts: ThreadState) -> None:
        frame = ts.frames[-1]
        frame.inst_index += 1

    @staticmethod
    def _jump(frame: Frame, label: str) -> None:
        func = frame.func
        frame.block_index = func.block(label).index
        frame.inst_index = 0
