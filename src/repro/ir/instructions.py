"""IR instruction set.

The instruction vocabulary mirrors what the paper's algorithms inspect:

* ``Load`` / ``Store`` — the shared-memory accesses that escape analysis
  classifies and ordering generation pairs up;
* ``Br`` — conditional branches, the anchors of the *control* acquire
  signature (Listing 1);
* ``Gep`` — explicit address calculation (the paper names LLVM's
  ``GetElementPtr``), the anchor of the *address* acquire signature
  (Listing 3), which slices from the **offset** operand;
* dereferences — any load/store whose address operand is itself computed,
  the other anchor of Listing 3 (slices from the address operand);
* ``CmpXchg`` / ``AtomicXchg`` / ``AtomicAdd`` — read-modify-writes, which
  Section 3 of the paper treats as a read followed by a write to the same
  location (and which are implicit full fences on x86);
* ``Fence`` — a full memory fence or a zero-cost compiler directive, the
  two enforcement mechanisms of Section 4.4.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.ir.values import Constant, GlobalRef, Register, Value


class FenceKind(enum.Enum):
    """Full hardware fence (x86 ``mfence``) vs compiler-only directive."""

    FULL = "full"
    COMPILER = "compiler"


class FenceOrigin(enum.Enum):
    """Whether a fence came from the source program or from a tool."""

    MANUAL = "manual"
    INSERTED = "inserted"


_BINARY_OPS = {"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"}
_CMP_OPS = {"==", "!=", "<", "<=", ">", ">="}

#: C11-style ordering qualifiers an atomic load may carry.
LOAD_ORDERINGS = ("relaxed", "acquire")
#: C11-style ordering qualifiers an atomic store may carry.
STORE_ORDERINGS = ("relaxed", "release")


class Instruction:
    """Base instruction. Subclasses define ``operands`` and flags.

    ``parent`` (basic block) and ``uid`` (stable per-function id) are
    assigned when the instruction is appended to a block / the function
    is finalized.
    """

    __slots__ = ("dest", "parent", "uid")

    def __init__(self, dest: Optional[Register] = None) -> None:
        self.dest = dest
        self.parent = None  # type: ignore[assignment]
        self.uid: int = -1
        if dest is not None:
            if dest.defining_inst is not None:
                raise ValueError(f"register {dest} already defined")
            dest.defining_inst = self

    # --- operand access -------------------------------------------------
    @property
    def operands(self) -> Sequence[Value]:
        """All value operands (excluding ``dest``)."""
        return ()

    # --- classification flags used by the paper's algorithms ------------
    def is_load(self) -> bool:
        return False

    def is_store(self) -> bool:
        return False

    def is_atomic_rmw(self) -> bool:
        return False

    def is_memory_access(self) -> bool:
        """Shared-memory-capable access: load, store, or RMW."""
        return self.is_load() or self.is_store() or self.is_atomic_rmw()

    def reads_memory(self) -> bool:
        return self.is_load() or self.is_atomic_rmw()

    def writes_memory(self) -> bool:
        return self.is_store() or self.is_atomic_rmw()

    def is_cond_branch(self) -> bool:
        return False

    def is_address_calculation(self) -> bool:
        return False

    def is_dereference(self) -> bool:
        """A load/store whose address operand is not a bare global.

        Listing 3 slices from the address of every dereference; direct
        accesses to a named global contribute nothing to such a slice
        (their address is a constant), so treating only computed
        addresses as dereferences is an exact optimization, not an
        approximation.
        """
        addr = self.address_operand()
        return addr is not None and not isinstance(addr, (GlobalRef, Constant))

    def is_terminator(self) -> bool:
        return False

    def is_fence(self) -> bool:
        return False

    def address_operand(self) -> Optional[Value]:
        """The address this instruction dereferences, if any."""
        return None

    def mnemonic(self) -> str:
        return type(self).__name__.lower()

    def __repr__(self) -> str:
        dest = f"{self.dest} = " if self.dest is not None else ""
        ops = ", ".join(str(op) for op in self.operands)
        return f"<{dest}{self.mnemonic()} {ops}>".strip()


class Alloca(Instruction):
    """Allocate ``size`` thread-local words; defines their base address."""

    __slots__ = ("size", "var_name")

    def __init__(self, dest: Register, size: int = 1, var_name: str = "") -> None:
        super().__init__(dest)
        if size < 1:
            raise ValueError("alloca size must be >= 1")
        self.size = size
        self.var_name = var_name

    def mnemonic(self) -> str:
        return "alloca"


class Load(Instruction):
    """``dest = *addr``.

    ``ordering`` is the C11-style atomic qualifier: ``None`` for a
    plain (non-atomic) load, ``"relaxed"`` for an atomic load with no
    ordering obligations, ``"acquire"`` for one that orders itself
    before every later access of its thread (kills the ``r->r`` and
    ``r->w`` delays out of it; see :mod:`repro.core.fence_min`).
    """

    __slots__ = ("addr", "ordering")

    def __init__(
        self, dest: Register, addr: Value, ordering: Optional[str] = None
    ) -> None:
        super().__init__(dest)
        self.addr = addr
        self.ordering = ordering

    @property
    def operands(self) -> Sequence[Value]:
        return (self.addr,)

    def is_load(self) -> bool:
        return True

    def address_operand(self) -> Optional[Value]:
        return self.addr

    def mnemonic(self) -> str:
        return "load" if self.ordering is None else f"load.{self.ordering}"


class Store(Instruction):
    """``*addr = value``.

    ``ordering`` mirrors :class:`Load`: ``None`` for a plain store,
    ``"relaxed"`` for an atomic store with no ordering obligations,
    ``"release"`` for one that orders every earlier access of its
    thread before itself (kills the ``r->w`` and ``w->w`` delays into
    it).
    """

    __slots__ = ("addr", "value", "ordering")

    def __init__(
        self, addr: Value, value: Value, ordering: Optional[str] = None
    ) -> None:
        super().__init__(None)
        self.addr = addr
        self.value = value
        self.ordering = ordering

    @property
    def operands(self) -> Sequence[Value]:
        return (self.addr, self.value)

    def is_store(self) -> bool:
        return True

    def address_operand(self) -> Optional[Value]:
        return self.addr

    def mnemonic(self) -> str:
        return "store" if self.ordering is None else f"store.{self.ordering}"


class BinOp(Instruction):
    """``dest = lhs <op> rhs`` for arithmetic/bitwise ops."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, dest: Register, op: str, lhs: Value, rhs: Value) -> None:
        if op not in _BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        super().__init__(dest)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    @property
    def operands(self) -> Sequence[Value]:
        return (self.lhs, self.rhs)

    def mnemonic(self) -> str:
        return f"binop.{self.op}"


class Cmp(Instruction):
    """``dest = lhs <relop> rhs`` producing 0/1."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, dest: Register, op: str, lhs: Value, rhs: Value) -> None:
        if op not in _CMP_OPS:
            raise ValueError(f"unknown comparison op {op!r}")
        super().__init__(dest)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    @property
    def operands(self) -> Sequence[Value]:
        return (self.lhs, self.rhs)

    def mnemonic(self) -> str:
        return f"cmp.{self.op}"


class Gep(Instruction):
    """``dest = base + offset`` — an explicit address calculation.

    Kept distinct from :class:`BinOp` because Listing 3 anchors address
    slices at address calculations specifically (slicing their offset).
    """

    __slots__ = ("base", "offset")

    def __init__(self, dest: Register, base: Value, offset: Value) -> None:
        super().__init__(dest)
        self.base = base
        self.offset = offset

    @property
    def operands(self) -> Sequence[Value]:
        return (self.base, self.offset)

    def is_address_calculation(self) -> bool:
        return True

    def mnemonic(self) -> str:
        return "gep"


class Br(Instruction):
    """Conditional branch on ``cond != 0``."""

    __slots__ = ("cond", "true_label", "false_label")

    def __init__(self, cond: Value, true_label: str, false_label: str) -> None:
        super().__init__(None)
        self.cond = cond
        self.true_label = true_label
        self.false_label = false_label

    @property
    def operands(self) -> Sequence[Value]:
        return (self.cond,)

    def is_cond_branch(self) -> bool:
        return True

    def is_terminator(self) -> bool:
        return True

    def mnemonic(self) -> str:
        return "br"


class Jump(Instruction):
    """Unconditional branch."""

    __slots__ = ("target",)

    def __init__(self, target: str) -> None:
        super().__init__(None)
        self.target = target

    def is_terminator(self) -> bool:
        return True

    def mnemonic(self) -> str:
        return "jump"


class Ret(Instruction):
    """Function return, optionally with a value."""

    __slots__ = ("value",)

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__(None)
        self.value = value

    @property
    def operands(self) -> Sequence[Value]:
        return () if self.value is None else (self.value,)

    def is_terminator(self) -> bool:
        return True

    def mnemonic(self) -> str:
        return "ret"


class Call(Instruction):
    """Direct call. Analyses are intraprocedural (paper Section 4) and
    treat calls conservatively; the interpreter executes them."""

    __slots__ = ("callee", "args")

    def __init__(self, dest: Optional[Register], callee: str, args: Sequence[Value]) -> None:
        super().__init__(dest)
        self.callee = callee
        self.args = tuple(args)

    @property
    def operands(self) -> Sequence[Value]:
        return self.args

    def mnemonic(self) -> str:
        return f"call @{self.callee}"


class Fence(Instruction):
    """Memory fence: ``FULL`` (mfence) or ``COMPILER`` (directive).

    ``flavor`` names the ISA fence mnemonic a full fence lowers to
    (e.g. ``"lwsync"``, ``"dmb"``; see :mod:`repro.arch`). ``None`` is
    the generic full fence — strongest semantics, and the only shape
    the pre-arch pipeline ever emitted, so unflavored programs print
    and behave exactly as before. Compiler directives never carry a
    flavor (they have no hardware presence to name).
    """

    __slots__ = ("kind", "origin", "flavor")

    def __init__(
        self,
        kind: FenceKind = FenceKind.FULL,
        origin: FenceOrigin = FenceOrigin.INSERTED,
        flavor: Optional[str] = None,
    ) -> None:
        super().__init__(None)
        self.kind = kind
        self.origin = origin
        self.flavor = flavor

    def is_fence(self) -> bool:
        return True

    def mnemonic(self) -> str:
        if self.flavor is not None:
            return f"fence.{self.kind.value}[{self.flavor}]"
        return f"fence.{self.kind.value}"


class CmpXchg(Instruction):
    """``dest = CAS(addr, expected, new)``; returns the old value.

    A read-modify-write: reads and (possibly) writes ``*addr``
    atomically. On x86 this is a locked instruction and acts as a full
    fence, which the fence-minimization machinery exploits.
    """

    __slots__ = ("addr", "expected", "new")

    def __init__(self, dest: Register, addr: Value, expected: Value, new: Value) -> None:
        super().__init__(dest)
        self.addr = addr
        self.expected = expected
        self.new = new

    @property
    def operands(self) -> Sequence[Value]:
        return (self.addr, self.expected, self.new)

    def is_atomic_rmw(self) -> bool:
        return True

    def address_operand(self) -> Optional[Value]:
        return self.addr

    def mnemonic(self) -> str:
        return "cmpxchg"


class AtomicXchg(Instruction):
    """``dest = atomic swap(*addr, value)``; returns the old value."""

    __slots__ = ("addr", "value")

    def __init__(self, dest: Register, addr: Value, value: Value) -> None:
        super().__init__(dest)
        self.addr = addr
        self.value = value

    @property
    def operands(self) -> Sequence[Value]:
        return (self.addr, self.value)

    def is_atomic_rmw(self) -> bool:
        return True

    def address_operand(self) -> Optional[Value]:
        return self.addr

    def mnemonic(self) -> str:
        return "xchg"


class AtomicAdd(Instruction):
    """``dest = fetch_and_add(*addr, value)``; returns the old value."""

    __slots__ = ("addr", "value")

    def __init__(self, dest: Register, addr: Value, value: Value) -> None:
        super().__init__(dest)
        self.addr = addr
        self.value = value

    @property
    def operands(self) -> Sequence[Value]:
        return (self.addr, self.value)

    def is_atomic_rmw(self) -> bool:
        return True

    def address_operand(self) -> Optional[Value]:
        return self.addr

    def mnemonic(self) -> str:
        return "fadd"


class Observe(Instruction):
    """Record a named value in the executing thread's observation log.

    Used by litmus tests and examples to expose data-read results (the
    paper's notion of program behaviour is "the values returned by the
    data reads", Section 3) without routing them through shared memory.
    """

    __slots__ = ("label", "value")

    def __init__(self, label: str, value: Value) -> None:
        super().__init__(None)
        self.label = label
        self.value = value

    @property
    def operands(self) -> Sequence[Value]:
        return (self.value,)

    def mnemonic(self) -> str:
        return f"observe[{self.label}]"
