"""Multi-architecture fence backends and flavored lowering.

``repro.arch`` owns the target-architecture axis of the reproduction:

* :mod:`repro.arch.backend` — the :class:`ArchBackend` registry: per
  arch, which ordering kinds its hardware reorders, its fence ISA as a
  set of :class:`FenceFlavor` kill-sets, and per-flavor costs;
* :mod:`repro.arch.lowering` — the pass mapping each minimized delay
  cut to the cheapest sufficient flavor (``lwsync`` over ``sync``,
  ``dmbst``/``eieio`` for pure store ordering) instead of always-FULL.
"""

from repro.arch.backend import (
    ALL_KINDS,
    BACKENDS,
    ArchBackend,
    FenceFlavor,
    backend_keys,
    get_backend,
    register_backend,
)
from repro.arch.lowering import (
    ArchLoweringSummary,
    LoweredFence,
    LoweredPlan,
    apply_lowered_plan,
    lower_analysis,
    lower_fence,
    lower_plan,
    summarize_lowerings,
)

__all__ = [
    "ALL_KINDS",
    "BACKENDS",
    "ArchBackend",
    "ArchLoweringSummary",
    "FenceFlavor",
    "LoweredFence",
    "LoweredPlan",
    "apply_lowered_plan",
    "backend_keys",
    "get_backend",
    "lower_analysis",
    "lower_fence",
    "lower_plan",
    "register_backend",
    "summarize_lowerings",
]
