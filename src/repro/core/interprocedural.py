"""Interprocedural acquire detection — the paper's future-work step.

The shipped algorithms are intraprocedural (paper Section 4): an
acquire whose read and consuming branch/address live in *different*
functions is missed. The paper argues the split is contrived in
practice ("we never see such a split") but notes an interprocedural
algorithm "would be a necessary step to achieving soundness". This
module closes that gap with a summary-based fixpoint built on the same
backwards slicer:

* **result rule** — if a call's result feeds an anchor slice in the
  caller, the callee's return value becomes an anchor: escaping reads
  feeding the callee's ``return`` are acquires;
* **parameter rule** — if a callee's parameter feeds an anchor slice in
  the callee, the corresponding argument at *every call site* becomes
  an anchor seed in that caller.

Both rules iterate to a fixpoint (call chains of any depth, recursion
included, terminated by seen-sets). The result is a conservative
superset of the intraprocedural detection — verified as a property in
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.signatures import Variant
from repro.engine.context import AnalysisContext
from repro.ir.function import Function, Program
from repro.ir.instructions import Call, Instruction, Ret
from repro.ir.values import Register, Value, get_def
from repro.util.orderedset import OrderedSet


@dataclass
class _SliceResult:
    """What one anchor slice of a function touched."""

    escaping_reads: OrderedSet[Instruction] = field(default_factory=OrderedSet)
    calls: OrderedSet[Instruction] = field(default_factory=OrderedSet)
    params: OrderedSet[str] = field(default_factory=OrderedSet)  # param names


class _FunctionContext:
    """Per-function analysis state shared across slices."""

    def __init__(self, func: Function, analysis_context: AnalysisContext) -> None:
        self.function = func
        self.points_to = analysis_context.points_to(func)
        self.escape_info = analysis_context.escape_info(func)
        self.param_names = {p.name for p in func.params}
        self.seen: set[Instruction] = set()
        self.seen_params: set[str] = set()
        # Shared with every other slicer over this function.
        self._writers_cache = analysis_context.writers_cache(func)

    def potential_writers(self, inst: Instruction) -> list[Instruction]:
        cached = self._writers_cache.get(id(inst))
        if cached is None:
            cached = self.points_to.potential_writers(inst)
            self._writers_cache[id(inst)] = cached
        return cached

    def slice_from(self, seeds: list[Value]) -> _SliceResult:
        """Backwards slice recording reads, calls, and parameters hit.

        The ``seen`` set persists across slices of this function, so
        the returned result only contains *newly* visited items — which
        is exactly what the fixpoint needs.
        """
        result = _SliceResult()
        work: OrderedSet[Instruction] = OrderedSet()
        for seed in seeds:
            self._enqueue_value(seed, work, result)
        while work:
            inst = work.pop_first()
            if inst in self.seen:
                continue
            self.seen.add(inst)
            if inst.reads_memory():
                if self.escape_info.is_escaping(inst):
                    result.escaping_reads.add(inst)
                for writer in self.potential_writers(inst):
                    work.add(writer)
            else:
                if isinstance(inst, Call):
                    result.calls.add(inst)
                for operand in inst.operands:
                    self._enqueue_value(operand, work, result)
        return result

    def _enqueue_value(
        self, value: Value, work: OrderedSet[Instruction], result: _SliceResult
    ) -> None:
        defining = get_def(value)
        if defining is not None:
            work.add(defining)
        elif isinstance(value, Register) and value.name in self.param_names:
            if value.name not in self.seen_params:
                self.seen_params.add(value.name)
                result.params.add(value.name)

    def anchor_seeds(self, variant: Variant) -> list[Value]:
        """Initial slice seeds: branch operands; plus dereference
        addresses and address-calculation offsets for ADDRESS_CONTROL."""
        seeds: list[Value] = []
        for inst in self.function.instructions():
            if inst.is_cond_branch():
                seeds.extend(inst.operands)
            elif variant is Variant.ADDRESS_CONTROL:
                if inst.is_address_calculation():
                    seeds.append(inst.offset)
                elif inst.is_dereference():
                    addr = inst.address_operand()
                    if addr is not None:
                        seeds.append(addr)
        return seeds

    def return_seeds(self) -> list[Value]:
        return [
            inst.value
            for inst in self.function.instructions()
            if isinstance(inst, Ret) and inst.value is not None
        ]


@dataclass
class InterproceduralResult:
    """Acquires per function, plus the intraprocedural baseline."""

    program: Program
    variant: Variant
    acquires: dict[str, OrderedSet[Instruction]]
    intraprocedural: dict[str, OrderedSet[Instruction]]

    def extra_acquires(self) -> dict[str, OrderedSet[Instruction]]:
        """Acquires found only by the interprocedural rules."""
        return {
            name: self.acquires[name] - self.intraprocedural.get(name, OrderedSet())
            for name in self.acquires
            if self.acquires[name] - self.intraprocedural.get(name, OrderedSet())
        }


def detect_acquires_interprocedural(
    program: Program,
    variant: Variant = Variant.CONTROL,
    context: AnalysisContext | None = None,
) -> InterproceduralResult:
    """Whole-program acquire detection with cross-function propagation.

    With a ``context``, per-function facts are drawn from the shared
    :class:`~repro.engine.context.AnalysisContext` instead of rebuilt.
    """
    actx = context if context is not None else AnalysisContext(program)
    contexts = {
        name: _FunctionContext(f, actx) for name, f in program.functions.items()
    }
    call_sites: dict[str, list[tuple[str, Call]]] = {}
    for name, func in program.functions.items():
        for inst in func.instructions():
            if isinstance(inst, Call):
                call_sites.setdefault(inst.callee, []).append((name, inst))

    acquires: dict[str, OrderedSet[Instruction]] = {
        name: OrderedSet() for name in program.functions
    }
    intra: dict[str, OrderedSet[Instruction]] = {}

    # Work queue of (function name, seed values) slice requests.
    queue: list[tuple[str, list[Value]]] = []
    # Functions whose return value has become an anchor already.
    return_anchored: set[str] = set()

    for name, ctx in contexts.items():
        queue.append((name, ctx.anchor_seeds(variant)))

    first_pass: dict[str, _SliceResult] = {}

    def handle(name: str, result: _SliceResult) -> None:
        acquires[name].update(result.escaping_reads)
        # Result rule: callees whose results feed this slice.
        for call in result.calls:
            callee = call.callee
            if callee in contexts and callee not in return_anchored:
                return_anchored.add(callee)
                queue.append((callee, contexts[callee].return_seeds()))
        # Parameter rule: arguments at every call site of this function.
        for param_name in result.params:
            func = contexts[name].function
            index = next(
                i for i, p in enumerate(func.params) if p.name == param_name
            )
            for caller_name, call in call_sites.get(name, []):
                if index < len(call.args):
                    queue.append((caller_name, [call.args[index]]))

    while queue:
        name, seeds = queue.pop(0)
        if name not in contexts:
            continue
        result = contexts[name].slice_from(seeds)
        if name not in first_pass:
            first_pass[name] = result
            intra[name] = OrderedSet(result.escaping_reads)
        handle(name, result)

    return InterproceduralResult(program, variant, acquires, intra)
