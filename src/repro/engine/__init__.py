"""Shared analysis engine: memoized per-program facts + parallel batch runs.

``repro.engine.batch`` is exported lazily (PEP 562): it imports the
pipeline, while the pipeline imports :mod:`repro.engine.context` — an
eager import here would close that cycle.
"""

from repro.engine.context import AnalysisContext, ContextStats

_BATCH_EXPORTS = (
    "BatchJob",
    "BatchResult",
    "BatchRunner",
    "ENGINE_VERSION",
    "FunctionResult",
    "ResultCache",
    "execute_job",
    "execute_job_group",
    "parallel_map",
)

__all__ = ["AnalysisContext", "ContextStats", *_BATCH_EXPORTS]


def __getattr__(name: str):
    if name in _BATCH_EXPORTS:
        from repro.engine import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
