"""Cross-arch benchmarks: per-arch analyze+lower time and fence costs.

For every backend (x86, arm, power) this measures, over the 17-program
corpus with the address+control variant:

* **analyze_s** — pipeline time under the backend's native machine
  model (fully relaxed models generate/stab many more intervals);
* **lower_s** — flavored-lowering time (cheapest-sufficient-flavor
  selection over every planned fence);
* **full_fences / fence_cost** — static counts and the lowered cycle
  total, plus the per-flavor histogram.

Runs two ways: under pytest-benchmark like the other bench modules, or
as a script emitting the machine-readable trajectory artifact::

    PYTHONPATH=src python benchmarks/bench_arch.py --out BENCH_arch.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.arch import backend_keys, get_backend, lower_analysis  # noqa: E402
from repro.core.machine_models import MODELS  # noqa: E402
from repro.core.pipeline import PipelineVariant, analyze_program  # noqa: E402
from repro.frontend import compile_source  # noqa: E402
from repro.programs import all_programs  # noqa: E402

VARIANT = PipelineVariant.ADDRESS_CONTROL


def run_arch(arch: str) -> dict:
    """Analyze + lower the whole corpus on one backend."""
    backend = get_backend(arch)
    model = MODELS[backend.model_key]
    analyze_s = 0.0
    lower_s = 0.0
    full_fences = 0
    compiler_fences = 0
    fence_cost = 0
    flavors: dict[str, int] = {}
    for name, entry in sorted(all_programs().items()):
        program = compile_source(entry.source, name)

        start = time.perf_counter()
        analysis = analyze_program(program, VARIANT, model)
        analyze_s += time.perf_counter() - start

        start = time.perf_counter()
        _, summary = lower_analysis(analysis, backend)
        lower_s += time.perf_counter() - start

        full_fences += summary.full_fences
        compiler_fences += summary.compiler_fences
        fence_cost += summary.cost
        for flavor, count in summary.flavors.items():
            flavors[flavor] = flavors.get(flavor, 0) + count
    return {
        "arch": arch,
        "model": backend.model_key,
        "programs": len(all_programs()),
        "analyze_s": round(analyze_s, 4),
        "lower_s": round(lower_s, 4),
        "full_fences": full_fences,
        "compiler_fences": compiler_fences,
        "fence_cost": fence_cost,
        "flavors": dict(sorted(flavors.items())),
    }


def run_suite() -> dict:
    return {"variant": VARIANT.value, "archs": [run_arch(a) for a in backend_keys()]}


# --- pytest-benchmark entry points ------------------------------------------


def test_bench_analyze_and_lower_power(benchmark):
    benchmark(run_arch, "power")


def test_bench_analyze_and_lower_x86(benchmark):
    benchmark(run_arch, "x86")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_arch.json",
                        help="path for the JSON artifact")
    args = parser.parse_args()
    report = run_suite()
    Path(args.out).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    for row in report["archs"]:
        print(
            f"{row['arch']:6s} analyze {row['analyze_s']:.2f}s "
            f"lower {row['lower_s']:.3f}s  {row['full_fences']} fences "
            f"@ {row['fence_cost']} cycles  {row['flavors']}"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
