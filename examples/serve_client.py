"""Drive the `repro serve` daemon end to end over stdio.

The daemon speaks JSON lines: one schema-versioned request envelope in,
one response out, against a single long-lived session whose query cache
stays warm across requests. This client:

1. spawns ``repro serve --stdio`` as a subprocess;
2. pings it and round-trips an :class:`~repro.api.AnalyzeRequest` and a
   :class:`~repro.api.CheckRequest` (with ``id`` correlation);
3. re-sends the analyze request to show the warm second hit;
4. asks for server/session stats, then shuts the daemon down cleanly
   and verifies a zero exit status.

Run:  python examples/serve_client.py
"""

import json
import os
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro  # noqa: E402
from repro.api import AnalyzeRequest, CheckRequest, ProgramSpec  # noqa: E402

SOURCE = """
global int flag;
global int data;

fn producer(tid) { data = 1; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""


def main() -> int:
    # Make the subprocess import the same repro tree as this script.
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p
    )
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--stdio", "--serial"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )

    def call(payload: dict) -> dict:
        daemon.stdin.write(json.dumps(payload) + "\n")
        daemon.stdin.flush()
        return json.loads(daemon.stdout.readline())

    spec = ProgramSpec.inline(SOURCE, name="mp")

    pong = call({"op": "ping"})
    assert pong["ok"] and pong["pong"], pong
    print(f"daemon up (repro {pong['version']})")

    analyze = call(
        {"id": 1, "request": AnalyzeRequest(program=spec, stats=True).to_payload()}
    )
    assert analyze["ok"] and analyze["id"] == 1, analyze
    report = analyze["report"]
    print(
        f"analyze: {report['sync_reads']}/{report['escaping_reads']} reads "
        f"marked acquire, {report['full_fences']} full fences "
        f"(cold: {report['cache_stats']['misses']} fact misses)"
    )

    check = call(
        {"id": 2, "request": CheckRequest(program=spec, model="x86-tso").to_payload()}
    )
    assert check["ok"] and check["id"] == 2, check
    verdicts = {v["variant"]: v["restored_sc"] for v in check["report"]["variants"]}
    print(f"check on x86-tso: SC restored per variant -> {verdicts}")

    again = call({"id": 3, "request": AnalyzeRequest(program=spec).to_payload()})
    assert again["ok"], again
    assert {k: v for k, v in again["report"].items() if k != "cache_stats"} == {
        k: v for k, v in report.items() if k != "cache_stats"
    }, "warm re-analysis must match the cold report"
    print("warm re-analysis: byte-identical report")

    stats = call({"op": "stats"})
    assert stats["ok"] and stats["server"]["served"] == 3, stats
    print(
        f"server stats: {stats['server']['served']} served, "
        f"{stats['session']['query_stats']['hits']} query hits / "
        f"{stats['session']['query_stats']['computes']} computes"
    )

    bye = call({"op": "shutdown"})
    assert bye["ok"] and bye["bye"], bye
    daemon.stdin.close()
    returncode = daemon.wait(timeout=30)
    assert returncode == 0, f"daemon exited with {returncode}"
    print("daemon shut down cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
