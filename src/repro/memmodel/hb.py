"""Happens-before and data-race analysis over execution traces.

Follows the paper's Section 3 definitions (after Gharachorloo):

* conflict order: ``w`` is conflict-ordered before ``r`` when both
  access the same address, the write precedes the read in the trace;
* ``u`` happens-before ``v`` iff ``u po v`` or
  ``u po w1 con r1 po w2 con r2 ... po v`` — i.e. reachability in the
  graph whose edges are program order plus write->read conflict edges
  *through synchronization accesses*.

The paper's chains run through synchronization operations; which
accesses count as synchronization is supplied by the caller (ground
truth or detected acquires + conservative releases), so the same
machinery checks both "is this program well-synchronized under the
intended marking" and "is the detected marking sufficient".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.ir.instructions import Instruction
from repro.memmodel.sc import Trace, TraceAction

SyncPredicate = Callable[[TraceAction], bool]


def all_sync(_: TraceAction) -> bool:
    """Marking where every access synchronizes (trivially race-free)."""
    return True


def sync_from_instructions(
    sync_insts: Iterable[Instruction],
) -> SyncPredicate:
    """Marking from a static instruction set (e.g. detected acquires +
    escaping writes)."""
    ids = {id(i) for i in sync_insts}

    def predicate(action: TraceAction) -> bool:
        return id(action.inst) in ids

    return predicate


@dataclass(frozen=True)
class Race:
    """Two conflicting, hb-unordered data actions."""

    first: TraceAction
    second: TraceAction

    def __repr__(self) -> str:
        return (
            f"Race(addr={self.first.addr:#x}, "
            f"T{self.first.tid}#{self.first.index} vs "
            f"T{self.second.tid}#{self.second.index})"
        )


class HappensBefore:
    """Happens-before reachability for one trace under a sync marking."""

    def __init__(self, trace: Trace, is_sync: SyncPredicate) -> None:
        self.trace = trace
        self.is_sync = is_sync
        self.actions = trace.actions
        n = len(self.actions)
        # Adjacency as bitsets over action indices; n is trace length.
        self._succ: list[int] = [0] * n
        self._build_edges()
        self._reach: list[int] | None = None

    def _build_edges(self) -> None:
        actions = self.actions
        # Program order: successive actions of the same thread.
        last_of_thread: dict[int, int] = {}
        for i, a in enumerate(actions):
            prev = last_of_thread.get(a.tid)
            if prev is not None:
                self._succ[prev] |= 1 << i
            last_of_thread[a.tid] = i
        # Synchronization conflict edges: sync write -> later sync read,
        # same address. (The paper's ordering chains run through
        # synchronization operations: wi con ri links.)
        for i, w in enumerate(actions):
            if not w.is_write or not self.is_sync(w):
                continue
            for j in range(i + 1, len(actions)):
                r = actions[j]
                if (
                    not r.is_write
                    and r.addr == w.addr
                    and r.tid != w.tid
                    and self.is_sync(r)
                ):
                    self._succ[i] |= 1 << j

    def _transitive_closure(self) -> list[int]:
        if self._reach is not None:
            return self._reach
        n = len(self.actions)
        reach = list(self._succ)
        # Process in reverse trace order: edges always point forward in
        # the trace, so one backward pass completes the closure.
        for i in range(n - 1, -1, -1):
            successors = reach[i]
            combined = successors
            j = 0
            while successors:
                if successors & 1:
                    combined |= reach[j]
                successors >>= 1
                j += 1
            reach[i] = combined
        self._reach = reach
        return reach

    def happens_before(self, i: int, j: int) -> bool:
        """Does action ``i`` happen-before action ``j``?"""
        if i == j:
            return False
        if i > j:
            return False  # edges only point forward in an SC trace
        return bool(self._transitive_closure()[i] & (1 << j))

    def races(self) -> list[Race]:
        """All conflicting, hb-unordered pairs of *data* (non-sync) actions.

        Following the paper's data-race definition: two accesses to the
        same address from different threads, at least one a write,
        neither ordered by happens-before, where both are data accesses
        under the marking.
        """
        races: list[Race] = []
        actions = self.actions
        for i, a in enumerate(actions):
            if self.is_sync(a):
                continue
            for j in range(i + 1, len(actions)):
                b = actions[j]
                if self.is_sync(b):
                    continue
                if a.tid == b.tid or a.addr != b.addr:
                    continue
                if not (a.is_write or b.is_write):
                    continue
                if not self.happens_before(i, j):
                    races.append(Race(a, b))
        return races


def find_races(trace: Trace, is_sync: SyncPredicate) -> list[Race]:
    """Convenience wrapper: races of one trace under a marking."""
    return HappensBefore(trace, is_sync).races()
