"""Minimal ``wheel`` shim for offline environments.

This offline machine has setuptools but not the ``wheel`` package, and
setuptools < 70 delegates ``bdist_wheel`` / PEP 660 editable wheel
creation to it. The shim provides exactly the two pieces setuptools'
``editable_wheel`` command uses: :class:`wheel.wheelfile.WheelFile` and
the ``bdist_wheel`` command's ``get_tag`` / ``write_wheelfile``.

Install it with ``python tools/wheel_shim/install.py`` (the repo README
documents this); after that ``pip install -e .`` works normally.
"""

__version__ = "0.38.0+repro.shim"
