"""Unit tests for machine models, the pipeline, and annotations."""

import pytest

from repro.core.annotations import render_annotations, suggest_annotations
from repro.core.machine_models import MODELS, PSO, RMO, SC, X86_TSO, OrderKind
from repro.core.pipeline import (
    FencePlacer,
    PipelineVariant,
    analyze_program,
    place_fences,
)
from repro.frontend import compile_source
from repro.ir import Fence, FenceKind


# --- machine models --------------------------------------------------------


def test_orderkind_of():
    assert OrderKind.of(False, False) is OrderKind.RR
    assert OrderKind.of(False, True) is OrderKind.RW
    assert OrderKind.of(True, False) is OrderKind.WR
    assert OrderKind.of(True, True) is OrderKind.WW


def test_tso_enforcement_matrix():
    assert X86_TSO.needs_full_fence(OrderKind.WR)
    assert not X86_TSO.needs_full_fence(OrderKind.RR)
    assert not X86_TSO.needs_full_fence(OrderKind.WW)


def test_model_strength_ordering():
    # SC ⊇ TSO ⊇ PSO ⊇ RMO in enforced orderings
    assert RMO.enforced < PSO.enforced < X86_TSO.enforced < SC.enforced


def test_models_registry():
    assert set(MODELS) == {"sc", "x86-tso", "pso", "rmo", "arm", "power"}


def test_needs_any_full_fence():
    assert X86_TSO.needs_any_full_fence({OrderKind.WR, OrderKind.RR})
    assert not X86_TSO.needs_any_full_fence({OrderKind.RR, OrderKind.WW})


# --- pipeline ----------------------------------------------------------------


def test_pensieve_marks_all_escaping_reads(mp_program):
    analysis = analyze_program(mp_program, PipelineVariant.PENSIEVE)
    assert analysis.total_sync_reads == analysis.total_escaping_reads


def test_control_marks_fewer(mp_program):
    pensieve = analyze_program(mp_program, PipelineVariant.PENSIEVE)
    control = analyze_program(mp_program, PipelineVariant.CONTROL)
    assert control.total_sync_reads < pensieve.total_sync_reads


def test_variant_monotonicity(mp_program):
    control = analyze_program(mp_program, PipelineVariant.CONTROL)
    ac = analyze_program(mp_program, PipelineVariant.ADDRESS_CONTROL)
    pen = analyze_program(mp_program, PipelineVariant.PENSIEVE)
    assert control.total_sync_reads <= ac.total_sync_reads <= pen.total_sync_reads
    assert control.total_orderings <= ac.total_orderings <= pen.total_orderings
    assert control.full_fence_count <= pen.full_fence_count


def test_analyze_does_not_mutate(mp_program):
    before = sum(1 for f in mp_program.functions.values() for _ in f.instructions())
    analyze_program(mp_program, PipelineVariant.CONTROL)
    after = sum(1 for f in mp_program.functions.values() for _ in f.instructions())
    assert before == after
    assert not mp_program.fences()


def test_place_mutates_and_counts_match(sb_program):
    analysis = place_fences(sb_program, PipelineVariant.PENSIEVE)
    fences = sb_program.fences()
    full = [f for f in fences if f.kind is FenceKind.FULL]
    assert len(full) == analysis.full_fence_count
    assert len(fences) - len(full) == analysis.compiler_fence_count


def test_entry_fence_policy_tso_only(mp_program):
    tso = analyze_program(mp_program, PipelineVariant.CONTROL, X86_TSO)
    consumer_plan = tso.functions["consumer"].plan
    assert consumer_plan.entry_fence  # has sync reads on TSO
    sc_analysis = analyze_program(mp_program, PipelineVariant.CONTROL, SC)
    assert not sc_analysis.functions["consumer"].plan.entry_fence


def test_entry_fence_requires_sync_reads(mp_program):
    analysis = analyze_program(mp_program, PipelineVariant.CONTROL)
    producer_plan = analysis.functions["producer"].plan
    assert not producer_plan.entry_fence  # producer has no reads at all


def test_ordering_counts_by_kind(mp_program):
    analysis = analyze_program(mp_program, PipelineVariant.PENSIEVE)
    counts = analysis.ordering_counts(pruned=False)
    assert counts[OrderKind.WW] >= 1  # producer: data before flag
    assert counts[OrderKind.RR] >= 1  # consumer: flag before data


def test_acquire_fraction_bounds(mp_program):
    analysis = analyze_program(mp_program, PipelineVariant.CONTROL)
    assert 0.0 <= analysis.acquire_fraction <= 1.0


def test_empty_function_program():
    prog = compile_source("fn f() { }", "t")
    analysis = analyze_program(prog, PipelineVariant.CONTROL)
    assert analysis.total_escaping_reads == 0
    assert analysis.acquire_fraction == 0.0
    assert analysis.full_fence_count == 0


def test_placer_is_reusable(mp_source):
    placer = FencePlacer(PipelineVariant.CONTROL)
    a1 = placer.analyze(compile_source(mp_source, "a"))
    a2 = placer.analyze(compile_source(mp_source, "b"))
    assert a1.total_sync_reads == a2.total_sync_reads


def test_pso_places_more_full_fences_than_tso(mp_program):
    tso = analyze_program(mp_program, PipelineVariant.PENSIEVE, X86_TSO)
    import copy

    pso = analyze_program(
        compile_source(
            __import__("tests.conftest", fromlist=["MP_SOURCE"]).MP_SOURCE, "mp2"
        ),
        PipelineVariant.PENSIEVE,
        PSO,
    )
    assert pso.full_fence_count >= tso.full_fence_count


# --- annotations -----------------------------------------------------------------


def test_annotations_for_mp(mp_program):
    analysis = analyze_program(mp_program, PipelineVariant.CONTROL)
    annotations = suggest_annotations(analysis)
    orders = {(a.function, a.order) for a in annotations}
    assert ("consumer", "acquire") in orders
    assert ("producer", "release") in orders


def test_annotations_rmw_is_acq_rel():
    src = "global l; fn f(t) { local o = cas(&l, 0, 1); while (o != 0) { o = cas(&l, 0, 1); } } thread f(0);"
    prog = compile_source(src, "t")
    analysis = analyze_program(prog, PipelineVariant.CONTROL)
    annotations = suggest_annotations(analysis)
    assert any(a.order == "acq_rel" for a in annotations)


def test_annotations_render(mp_program):
    analysis = analyze_program(mp_program, PipelineVariant.CONTROL)
    text = render_annotations(suggest_annotations(analysis))
    assert "memory_order" in text
    assert "acquire" in text
