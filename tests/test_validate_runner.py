"""Tests for the budgeted fuzz runner."""

from __future__ import annotations

import json

import pytest

from repro.validate.runner import FuzzCase, execute_fuzz_case, run_fuzz


def test_run_fuzz_serial_matrix_and_payload():
    report = run_fuzz(
        seeds=2,
        shapes=("publish", "dekker"),
        variants=("vanilla", "address+control"),
        parallel=False,
    )
    assert len(report.cases) == 4
    assert report.cases_skipped == 0
    assert not report.budget_exhausted
    # dekker trips vanilla on every seed; address+control never trips.
    violating = {v.variant for v in report.violations}
    assert violating == {"vanilla"}
    assert all(v.shape == "dekker" for v in report.violations)
    assert all(v.source_lines < 25 for v in report.violations)
    assert all("LitmusTest(" in v.snippet for v in report.violations)

    summary = report.variant_summary()
    assert summary["address+control"]["violations"] == 0
    assert summary["vanilla"]["violations"] == len(report.violations)
    assert summary["address+control"]["checked"] == 4

    payload = report.to_payload()
    json.dumps(payload)  # the whole report must be JSON-serializable
    assert payload["summary"]["cases_run"] == 4
    assert payload["summary"]["violations"] == len(report.violations)
    assert payload["config"]["shapes"] == ["publish", "dekker"]


def test_run_fuzz_budget_cuts_the_tail():
    report = run_fuzz(
        seeds=20,
        shapes=("publish",),
        variants=("address+control",),
        budget=0.0,
        jobs=1,
        parallel=False,
        shrink=False,
    )
    assert report.budget_exhausted
    assert report.cases_skipped > 0
    assert len(report.cases) + report.cases_skipped == 20
    # The completed prefix is deterministic: seeds in order from 0.
    assert [case.seed for case in report.cases] == list(
        range(len(report.cases))
    )


def test_run_fuzz_validates_arguments():
    with pytest.raises(KeyError, match="unknown shape"):
        run_fuzz(seeds=1, shapes=("nope",))
    with pytest.raises(KeyError, match="unknown variant"):
        run_fuzz(seeds=1, variants=("nope",))
    with pytest.raises(KeyError, match="unknown model"):
        run_fuzz(seeds=1, models=("nope",))


def test_execute_fuzz_case_records_errors_instead_of_raising():
    result = execute_fuzz_case(FuzzCase(seed=0, shape="not-a-shape"))
    assert result.error is not None
    assert "unknown shape" in result.error
    assert result.report is None
    assert result.violations == ()


def test_execute_fuzz_case_without_shrinking_keeps_original_source():
    result = execute_fuzz_case(
        FuzzCase(
            seed=2, shape="dekker", variants=("vanilla",), shrink=False
        )
    )
    assert result.error is None
    assert len(result.violations) == 1
    violation = result.violations[0]
    assert violation.shrink_checks == 0
    assert violation.source_lines == result.source_lines
