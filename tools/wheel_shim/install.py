"""Install the minimal wheel shim into the active site-packages.

Needed once on offline machines that have setuptools but not ``wheel``,
so that ``pip install -e .`` (PEP 660 editable install) works. Safe to
skip when the real ``wheel`` package is available — the script refuses
to overwrite it.
"""

from __future__ import annotations

import os
import shutil
import site
import sys


def main() -> int:
    # sys.path[0] is this script's directory, which contains the shim
    # itself — drop it so we only detect a *real* installed wheel.
    script_dir = os.path.dirname(os.path.abspath(__file__))
    sys.path = [p for p in sys.path if os.path.abspath(p or os.getcwd()) != script_dir]
    try:
        import wheel  # noqa: F401

        print(f"a 'wheel' package is already importable ({wheel.__file__}); nothing to do")
        return 0
    except ImportError:
        pass

    site_dir = site.getsitepackages()[0]
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "wheel")
    dst = os.path.join(site_dir, "wheel")
    if os.path.exists(dst):
        print(f"refusing to overwrite existing {dst}")
        return 1
    shutil.copytree(src, dst)

    # A dist-info with the distutils.commands entry point is what lets
    # setuptools discover the bdist_wheel command by name.
    dist_info = os.path.join(site_dir, "wheel-0.38.0.dist-info")
    os.makedirs(dist_info, exist_ok=True)
    with open(os.path.join(dist_info, "METADATA"), "w", encoding="utf-8") as f:
        f.write(
            "Metadata-Version: 2.1\n"
            "Name: wheel\n"
            "Version: 0.38.0+repro.shim\n"
            "Summary: Minimal wheel shim for offline editable installs\n"
        )
    with open(os.path.join(dist_info, "entry_points.txt"), "w", encoding="utf-8") as f:
        f.write("[distutils.commands]\nbdist_wheel = wheel.bdist_wheel:bdist_wheel\n")
    with open(os.path.join(dist_info, "RECORD"), "w", encoding="utf-8") as f:
        f.write("")
    print(f"installed wheel shim into {site_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
