"""Tests for the optimal min-cost fence synthesizer (repro.synth).

Pins the three claims the synthesizer makes:

* on single-cut interval families (and on functions greedy already
  fences with at most one full fence) the optimal and greedy plans
  cost the same — the greedy stab is a feasible DP point, and one
  cheapest covering flavor cannot be beaten by a split;
* on a hand-built multi-cut family the count-first greedy stab is
  strictly costlier (exact cycle costs pinned), with the min-cut
  certificate agreeing with the DP;
* optimal placements are sound: they pass the SC-vs-weak differential
  oracle on every explorer model, and never cost more than greedy on
  any (program, arch) corpus cell.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import backend_keys, get_backend
from repro.arch.lowering import lower_plan
from repro.core.fence_min import DelayInterval
from repro.core.machine_models import MODELS, OrderKind
from repro.memmodel.litmus import LITMUS_TESTS
from repro.programs import get_program
from repro.registry.variants import get_variant
from repro.synth import block_cut, synthesize_analysis
from repro.synth.optimal import _solve_block
from repro.validate.oracle import EXPLORERS, run_oracle

POWER = get_backend("power")
WEAK_MODELS = tuple(k for k in sorted(EXPLORERS) if k != "sc")


def iv(lo: int, hi: int, kind: OrderKind) -> DelayInterval:
    return DelayInterval(
        block_index=0, lo=lo, hi=hi, needs_full=True, kind=kind
    )


# --- hand-built multi-cut fixture -------------------------------------------

#: Two w->w intervals interleaved with two w->r intervals so that the
#: earliest-deadline greedy stab merges a w->r into *both* groups
#: (two ``sync``s, 160 cycles on Power), while the optimum routes both
#: w->r intervals through the single gap they share (gap 6) and covers
#: the first w->w with an ``eieio``: 25 + 80 = 105 cycles.
MULTI_CUT = [
    iv(0, 2, OrderKind.WW),
    iv(2, 6, OrderKind.WR),
    iv(4, 6, OrderKind.WW),
    iv(6, 9, OrderKind.WR),
]


def greedy_stab_cost(intervals, backend) -> int:
    """The count-first planner's stab (earliest deadline, credit
    existing stabs) lowered at each stab's cheapest covering flavor —
    the exact policy of ``plan_fences`` + ``lower_plan``."""
    gaps: dict[int, set[OrderKind]] = {}
    for interval in sorted(intervals, key=lambda i: (i.hi, i.lo)):
        covering = [g for g in gaps if interval.lo <= g <= interval.hi]
        if covering:
            gaps[covering[0]].add(interval.kind)
        else:
            gaps[interval.hi] = {interval.kind}
    return sum(
        backend.cheapest_flavor(frozenset(kinds)).cost
        for kinds in gaps.values()
    )


def test_multi_cut_fixture_optimal_strictly_beats_greedy():
    cost, placements = _solve_block(MULTI_CUT, POWER)
    assert cost == 105
    assert [(gap, flavor.name) for gap, flavor in placements] == [
        (2, "eieio"),
        (6, "sync"),
    ]
    assert greedy_stab_cost(MULTI_CUT, POWER) == 160


def test_multi_cut_fixture_mincut_bounds_the_dp():
    """The flow network prices each gap at the cheapest flavor covering
    *every* kind crossing it, so on this crossing (non-laminar) family
    the cut overcharges: it lands on the greedy stab's 160, a sound
    upper bound the DP beats. The certificate contract is only
    ``dp <= cut``, with equality on laminar families."""
    value, gaps = block_cut(MULTI_CUT, POWER)
    assert value == 160 == greedy_stab_cost(MULTI_CUT, POWER)
    assert gaps == [2, 6]
    dp_cost, _placements = _solve_block(MULTI_CUT, POWER)
    assert dp_cost <= value


# --- single-cut property ----------------------------------------------------

KINDS = st.sampled_from(list(OrderKind))


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(st.integers(0, 6), st.integers(6, 12), KINDS),
        min_size=1,
        max_size=8,
    ),
    st.sampled_from(sorted(backend_keys())),
)
def test_single_cut_families_cost_one_cheapest_fence(spans, arch_key):
    """Every interval contains gap 6, so one fence of the cheapest
    flavor covering the union of kinds is feasible — and on every
    shipped catalog no split of that kill-set is cheaper, so the DP
    must land exactly there (the greedy plan for a single cut)."""
    backend = get_backend(arch_key)
    intervals = [iv(lo, hi, kind) for lo, hi, kind in spans]
    cost, _placements = _solve_block(intervals, backend)
    union = frozenset(kind for _lo, _hi, kind in spans)
    assert cost == backend.cheapest_flavor(union).cost


@pytest.mark.parametrize("arch_key", sorted(backend_keys()))
def test_single_fence_functions_match_greedy(arch_key):
    """Functions greedy fences with <= 1 full fence cost the same under
    optimal synthesis, and optimal never costs more anywhere."""
    backend = get_backend(arch_key)
    model = MODELS[backend.model_key]
    variant = get_variant("address+control")
    single_cut_seen = 0
    for name in sorted(LITMUS_TESTS):
        program = LITMUS_TESTS[name].compile()
        analysis = variant.analyze(program, model)
        plans, _summary = synthesize_analysis(analysis, backend)
        for fname, plan in plans.items():
            greedy = lower_plan(analysis.functions[fname].plan, backend)
            assert plan.cost <= greedy.cost
            assert plan.cost <= plan.mincut_value
            if greedy.full_count <= 1:
                single_cut_seen += 1
                assert plan.cost == greedy.cost, (name, fname)
    assert single_cut_seen > 0


# --- corpus sweep: optimal <= greedy, strictly cheaper somewhere ------------

SWEEP_PROGRAMS = ("fft", "matrix", "raytrace")


def test_corpus_cells_optimal_never_costlier():
    strict: dict[str, int] = {}
    for arch_key in sorted(backend_keys()):
        backend = get_backend(arch_key)
        model = MODELS[backend.model_key]
        for name in SWEEP_PROGRAMS:
            analysis = get_variant("address+control").analyze(
                get_program(name).compile(), model
            )
            plans, summary = synthesize_analysis(analysis, backend)
            greedy_cost = sum(
                lower_plan(fa.plan, backend).cost
                for fa in analysis.functions.values()
            )
            assert summary.cost <= greedy_cost, (name, arch_key)
            for plan in plans.values():
                assert plan.cost <= plan.greedy_cost
            if summary.cost < greedy_cost:
                strict[arch_key] = strict.get(arch_key, 0) + 1
    # Flavored ISAs leave money on the table for greedy; x86's two-entry
    # catalog (mfence/sfence) never does on these programs.
    assert strict.get("arm", 0) > 0
    assert strict.get("power", 0) > 0
    assert "x86" not in strict


def test_matrix_power_exact_costs_pinned():
    """The corpus's flagship strict-improvement cell, by function."""
    backend = get_backend("power")
    analysis = get_variant("address+control").analyze(
        get_program("matrix").compile(), MODELS["power"]
    )
    plans, _summary = synthesize_analysis(analysis, backend)
    pinned = {
        "mxx_gather": (3249, 3194),
        "mx_enqueue": (659, 557),
        "mx_worker": (386, 331),
    }
    for fname, (greedy, optimal) in pinned.items():
        plan = plans[fname]
        assert (plan.greedy_cost, plan.cost) == (greedy, optimal), fname
        assert plan.witness_cut  # certificate travels with the plan


# --- oracle gating ----------------------------------------------------------

@pytest.mark.parametrize("model", WEAK_MODELS)
@pytest.mark.parametrize("name", ("mp", "dekker", "mp-chain"))
def test_optimal_placements_pass_differential_oracle(model, name):
    test = LITMUS_TESTS[name]
    report = run_oracle(
        test.source,
        test.name,
        model=model,
        sync_globals=test.sync_globals,
        synthesis="optimal",
    )
    assert report.complete, report.skipped
    assert report.violations == ()
    assert report.full_restores_sc
