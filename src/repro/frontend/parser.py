"""Recursive-descent parser for the mini-C source language.

Grammar (informal):

    module   := (global_decl | func_decl | thread_decl)*
    global   := "global" "int"? IDENT ("[" NUM "]")? ("=" init)? ";"
    func     := "fn" IDENT "(" params? ")" block
    thread   := "thread" IDENT "(" int_args? ")" ";"
    stmt     := local | assign | if | while | for | return | break
              | continue | fence | cfence | observe | atomic_store
              | expr ";" | block
    atomic_store := "atomic_store" "(" expr "," expr "," IDENT ")" ";"
    expr     := precedence-climbing over || && | ^ & == != < <= > >=
                << >> + - * / % with unary - ! * & and postfix [..] (..)
                and atomic_load "(" expr "," IDENT ")"
"""

from __future__ import annotations

from typing import Optional

from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import Token, tokenize


class ParseError(Exception):
    """Raised on malformed source."""


_LOAD_QUALIFIERS = ("acquire", "relaxed")
_STORE_QUALIFIERS = ("release", "relaxed")

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # --- token helpers -------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.check(kind, text):
            want = text or kind
            raise ParseError(f"line {tok.line}: expected {want!r}, got {tok.text!r}")
        return self.advance()

    # --- top level --------------------------------------------------------
    def parse_module(self) -> ast.Module:
        globals_: list[ast.GlobalDecl] = []
        functions: list[ast.FuncDecl] = []
        threads: list[ast.ThreadDecl] = []
        start_line = self.peek().line
        while not self.check("eof"):
            if self.check("kw", "global"):
                globals_.append(self.parse_global())
            elif self.check("kw", "fn"):
                functions.append(self.parse_function())
            elif self.check("kw", "thread"):
                threads.append(self.parse_thread())
            else:
                tok = self.peek()
                raise ParseError(
                    f"line {tok.line}: expected global/fn/thread, got {tok.text!r}"
                )
        return ast.Module(start_line, tuple(globals_), tuple(functions), tuple(threads))

    def parse_global(self) -> ast.GlobalDecl:
        line = self.expect("kw", "global").line
        self.accept("kw", "int")  # optional noise word
        name = self.expect("ident").text
        size = 1
        if self.accept("op", "["):
            size = self._parse_int_literal()
            self.expect("op", "]")
        init: tuple[object, ...] = tuple([0] * size)
        if self.accept("op", "="):
            if self.accept("op", "{"):
                values = [self._parse_init_value()]
                while self.accept("op", ","):
                    values.append(self._parse_init_value())
                self.expect("op", "}")
                if len(values) != size:
                    raise ParseError(
                        f"line {line}: {len(values)} initializers for size {size}"
                    )
                init = tuple(values)
            else:
                value = self._parse_init_value()
                init = tuple([value] * size) if size > 1 else (value,)
        self.expect("op", ";")
        return ast.GlobalDecl(line, name, size, init)

    def parse_function(self) -> ast.FuncDecl:
        line = self.expect("kw", "fn").line
        name = self.expect("ident").text
        self.expect("op", "(")
        params: list[str] = []
        if not self.check("op", ")"):
            self.accept("kw", "int")
            params.append(self.expect("ident").text)
            while self.accept("op", ","):
                self.accept("kw", "int")
                params.append(self.expect("ident").text)
        self.expect("op", ")")
        body = self.parse_block()
        return ast.FuncDecl(line, name, tuple(params), body)

    def parse_thread(self) -> ast.ThreadDecl:
        line = self.expect("kw", "thread").line
        name = self.expect("ident").text
        self.expect("op", "(")
        args: list[int] = []
        if not self.check("op", ")"):
            args.append(self._parse_signed_int())
            while self.accept("op", ","):
                args.append(self._parse_signed_int())
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.ThreadDecl(line, name, tuple(args))

    def _parse_int_literal(self) -> int:
        tok = self.expect("num")
        try:
            return int(tok.text, 0)
        except ValueError:
            raise ParseError(f"line {tok.line}: bad integer {tok.text!r}") from None

    def _parse_signed_int(self) -> int:
        if self.accept("op", "-"):
            return -self._parse_int_literal()
        return self._parse_int_literal()

    def _parse_init_value(self) -> object:
        """An integer, or ``&name`` (address of a global) in an initializer."""
        if self.accept("op", "&"):
            return ("&", self.expect("ident").text)
        return self._parse_signed_int()

    # --- statements --------------------------------------------------------
    def parse_block(self) -> ast.Block:
        line = self.expect("op", "{").line
        stmts: list[ast.Stmt] = []
        while not self.check("op", "}"):
            stmts.append(self.parse_statement())
        self.expect("op", "}")
        return ast.Block(line, tuple(stmts))

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        if tok.kind == "op" and tok.text == "{":
            return self.parse_block()
        if tok.kind == "kw":
            if tok.text == "local":
                return self.parse_local()
            if tok.text == "if":
                return self.parse_if()
            if tok.text == "while":
                return self.parse_while()
            if tok.text == "for":
                return self.parse_for()
            if tok.text == "return":
                self.advance()
                value = None
                if not self.check("op", ";"):
                    value = self.parse_expression()
                self.expect("op", ";")
                return ast.Return(tok.line, value)
            if tok.text == "break":
                self.advance()
                self.expect("op", ";")
                return ast.Break(tok.line)
            if tok.text == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.Continue(tok.line)
            if tok.text == "fence":
                self.advance()
                flavor = None
                if self.check("ident"):
                    flavor = self.advance().text
                self.expect("op", ";")
                return ast.FenceStmt(tok.line, full=True, flavor=flavor)
            if tok.text == "cfence":
                self.advance()
                self.expect("op", ";")
                return ast.FenceStmt(tok.line, full=False)
            if tok.text == "observe":
                self.advance()
                self.expect("op", "(")
                label = self.expect("str").text
                self.expect("op", ",")
                expr = self.parse_expression()
                self.expect("op", ")")
                self.expect("op", ";")
                return ast.ObserveStmt(tok.line, label, expr)
            if tok.text == "atomic_store":
                self.advance()
                self.expect("op", "(")
                addr = self.parse_expression()
                self.expect("op", ",")
                value = self.parse_expression()
                self.expect("op", ",")
                ordering = self._parse_qualifier(_STORE_QUALIFIERS)
                self.expect("op", ")")
                self.expect("op", ";")
                return ast.AtomicStoreStmt(tok.line, addr, value, ordering)
        return self.parse_simple_statement()

    def _parse_qualifier(self, allowed: tuple[str, ...]) -> str:
        tok = self.expect("ident")
        if tok.text not in allowed:
            raise ParseError(
                f"line {tok.line}: bad ordering qualifier {tok.text!r} "
                f"(want one of {', '.join(allowed)})"
            )
        return tok.text

    def parse_local(self) -> ast.LocalDecl:
        line = self.expect("kw", "local").line
        self.accept("kw", "int")
        name = self.expect("ident").text
        size = 1
        init: Optional[ast.Expr] = None
        if self.accept("op", "["):
            size = self._parse_int_literal()
            self.expect("op", "]")
        elif self.accept("op", "="):
            init = self.parse_expression()
        self.expect("op", ";")
        return ast.LocalDecl(line, name, size, init)

    def parse_if(self) -> ast.If:
        line = self.expect("kw", "if").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then = self._block_or_single()
        els: Optional[ast.Block] = None
        if self.accept("kw", "else"):
            if self.check("kw", "if"):
                nested = self.parse_if()
                els = ast.Block(nested.line, (nested,))
            else:
                els = self._block_or_single()
        return ast.If(line, cond, then, els)

    def parse_while(self) -> ast.While:
        line = self.expect("kw", "while").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        if self.accept("op", ";"):  # busy-wait: while (e);
            body = ast.Block(line, ())
        else:
            body = self._block_or_single()
        return ast.While(line, cond, body)

    def parse_for(self) -> ast.For:
        line = self.expect("kw", "for").line
        self.expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self.check("op", ";"):
            init = self._parse_assign_or_expr(consume_semi=False)
        self.expect("op", ";")
        cond: Optional[ast.Expr] = None
        if not self.check("op", ";"):
            cond = self.parse_expression()
        self.expect("op", ";")
        step: Optional[ast.Stmt] = None
        if not self.check("op", ")"):
            step = self._parse_assign_or_expr(consume_semi=False)
        self.expect("op", ")")
        body = self._block_or_single()
        return ast.For(line, init, cond, step, body)

    def _block_or_single(self) -> ast.Block:
        if self.check("op", "{"):
            return self.parse_block()
        stmt = self.parse_statement()
        return ast.Block(stmt.line, (stmt,))

    def parse_simple_statement(self) -> ast.Stmt:
        return self._parse_assign_or_expr(consume_semi=True)

    def _parse_assign_or_expr(self, consume_semi: bool) -> ast.Stmt:
        line = self.peek().line
        expr = self.parse_expression()
        if self.accept("op", "="):
            value = self.parse_expression()
            if consume_semi:
                self.expect("op", ";")
            if not isinstance(expr, (ast.Var, ast.Index)) and not (
                isinstance(expr, ast.Unary) and expr.op == "*"
            ):
                raise ParseError(f"line {line}: invalid assignment target")
            return ast.Assign(line, expr, value)
        if consume_semi:
            self.expect("op", ";")
        return ast.ExprStmt(line, expr)

    # --- expressions -----------------------------------------------------------
    def parse_expression(self, min_prec: int = 1) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            tok = self.peek()
            if tok.kind != "op":
                break
            prec = _PRECEDENCE.get(tok.text)
            if prec is None or prec < min_prec:
                break
            self.advance()
            rhs = self.parse_expression(prec + 1)
            lhs = ast.Binary(tok.line, tok.text, lhs, rhs)
        return lhs

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "!", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(tok.line, tok.text, operand)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.accept("op", "["):
                index = self.parse_expression()
                self.expect("op", "]")
                expr = ast.Index(self.peek().line, expr, index)
            else:
                break
        return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "num":
            self.advance()
            try:
                return ast.Num(tok.line, int(tok.text, 0))
            except ValueError:
                raise ParseError(f"line {tok.line}: bad integer {tok.text!r}") from None
        if tok.kind == "kw" and tok.text in ("cas", "xchg", "fadd"):
            self.advance()
            self.expect("op", "(")
            args = [self.parse_expression()]
            while self.accept("op", ","):
                args.append(self.parse_expression())
            self.expect("op", ")")
            if tok.text == "cas":
                if len(args) != 3:
                    raise ParseError(f"line {tok.line}: cas takes 3 arguments")
                return ast.CasExpr(tok.line, args[0], args[1], args[2])
            if len(args) != 2:
                raise ParseError(f"line {tok.line}: {tok.text} takes 2 arguments")
            if tok.text == "xchg":
                return ast.XchgExpr(tok.line, args[0], args[1])
            return ast.FaddExpr(tok.line, args[0], args[1])
        if tok.kind == "kw" and tok.text == "atomic_load":
            self.advance()
            self.expect("op", "(")
            addr = self.parse_expression()
            self.expect("op", ",")
            ordering = self._parse_qualifier(_LOAD_QUALIFIERS)
            self.expect("op", ")")
            return ast.AtomicLoadExpr(tok.line, addr, ordering)
        if tok.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args: list[ast.Expr] = []
                if not self.check("op", ")"):
                    args.append(self.parse_expression())
                    while self.accept("op", ","):
                        args.append(self.parse_expression())
                self.expect("op", ")")
                return ast.CallExpr(tok.line, tok.text, tuple(args))
            return ast.Var(tok.line, tok.text)
        if tok.kind == "op" and tok.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise ParseError(f"line {tok.line}: unexpected token {tok.text!r}")


def parse(source: str) -> ast.Module:
    """Parse mini-C source text into a module AST."""
    return Parser(source).parse_module()
