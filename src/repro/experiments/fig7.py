"""Fig. 7: static % of potentially-escaping reads marked acquire."""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.session import Session
from repro.experiments import expected
from repro.programs.registry import BenchProgram, all_programs
from repro.util.stats import geomean
from repro.util.text import ascii_bar_chart, format_table


@dataclass(frozen=True)
class Fig7Row:
    program: str
    escaping_reads: int
    control_acquires: int
    address_control_acquires: int

    @property
    def control_fraction(self) -> float:
        return self.control_acquires / max(1, self.escaping_reads)

    @property
    def address_control_fraction(self) -> float:
        return self.address_control_acquires / max(1, self.escaping_reads)


@dataclass
class Fig7Result:
    rows: list[Fig7Row]

    @property
    def geomean_control(self) -> float:
        return geomean([r.control_fraction for r in self.rows])

    @property
    def geomean_address_control(self) -> float:
        return geomean([r.address_control_fraction for r in self.rows])


def run_program(program: BenchProgram, ir=None, session=None) -> Fig7Row:
    # One compile + one session: both variants share the session
    # context's variant-independent facts (points-to, escape,
    # reachability). Callers sweeping several figures pass both in to
    # share across figures too.
    session = session if session is not None else Session()
    ir = ir if ir is not None else program.compile()
    control = session.analysis(ir, "control")
    addr_ctrl = session.analysis(ir, "address+control")
    return Fig7Row(
        program=program.name,
        escaping_reads=control.total_escaping_reads,
        control_acquires=control.total_sync_reads,
        address_control_acquires=addr_ctrl.total_sync_reads,
    )


def run(programs: dict[str, BenchProgram] | None = None) -> Fig7Result:
    programs = programs if programs is not None else all_programs()
    return Fig7Result([run_program(p) for p in programs.values()])


def render(result: Fig7Result | None = None) -> str:
    result = result if result is not None else run()
    rows = [
        [
            r.program,
            r.escaping_reads,
            f"{r.control_fraction:.1%}",
            f"{r.address_control_fraction:.1%}",
        ]
        for r in result.rows
    ]
    rows.append(
        [
            "geomean",
            "",
            f"{result.geomean_control:.1%}",
            f"{result.geomean_address_control:.1%}",
        ]
    )
    table = format_table(
        ["program", "escaping reads", "Control", "Address+Control"],
        rows,
        title="Fig. 7: % of potentially thread-escaping reads marked acquire",
    )
    chart = ascii_bar_chart(
        {
            r.program: {
                "Control": r.control_fraction,
                "Addr+Ctrl": r.address_control_fraction,
            }
            for r in result.rows
        },
        value_format="{:.1%}",
    )
    footer = (
        f"\npaper geomeans: Control {expected.FIG7_GEOMEAN_CONTROL:.0%}, "
        f"Address+Control {expected.FIG7_GEOMEAN_ADDRESS_CONTROL:.0%}"
    )
    return table + "\n\n" + chart + footer
