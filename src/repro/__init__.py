"""repro — fence placement for legacy data-race-free programs.

A from-scratch reproduction of McPherson, Nagarajan, Sarkar & Cintra,
"Fence Placement for Legacy Data-Race-Free Programs via Synchronization
Read Detection" (PPoPP 2015 / extended TACO version), including every
substrate the paper depends on: a load/store IR and mini-C frontend,
alias/escape analyses, Pensieve-style ordering generation, exact
Shasha-Snir delay sets, Fang-style fence minimization, SC and x86-TSO
model checkers, a timed TSO performance simulator, and the full
Section-5 workload suite.

Quick start::

    from repro import compile_source, place_fences, PipelineVariant

    program = compile_source(source_text, "my-program")
    analysis = place_fences(program, PipelineVariant.CONTROL)
    print(analysis.full_fence_count, "full fences inserted")

See ``examples/`` for runnable walkthroughs and ``repro.experiments``
for the paper's tables and figures.
"""

from repro.core.machine_models import MODELS, PSO, RMO, SC, X86_TSO, MemoryModel, OrderKind
from repro.core.pipeline import (
    FencePlacer,
    PipelineVariant,
    ProgramAnalysis,
    analyze_program,
    place_fences,
)
from repro.core.signatures import (
    SignatureBreakdown,
    Variant,
    detect_acquires,
    signature_breakdown,
)
from repro.frontend import compile_source
from repro.ir.function import Program
from repro.core.interprocedural import detect_acquires_interprocedural
from repro.memmodel.pso import PSOExplorer
from repro.memmodel.sc import SCExplorer
from repro.memmodel.tso import TSOExplorer
from repro.simulator.machine import TSOSimulator, simulate

__version__ = "1.0.0"

__all__ = [
    "FencePlacer",
    "MODELS",
    "MemoryModel",
    "OrderKind",
    "PSO",
    "PSOExplorer",
    "PipelineVariant",
    "Program",
    "ProgramAnalysis",
    "RMO",
    "SC",
    "SCExplorer",
    "SignatureBreakdown",
    "TSOExplorer",
    "TSOSimulator",
    "Variant",
    "X86_TSO",
    "analyze_program",
    "compile_source",
    "detect_acquires",
    "detect_acquires_interprocedural",
    "place_fences",
    "signature_breakdown",
    "simulate",
]
