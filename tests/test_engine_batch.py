"""Tests for the parallel batch engine (repro.engine.batch) and CLI."""

import json

import pytest

from repro.cli import main
from repro.core.machine_models import MODELS
from repro.core.pipeline import PipelineVariant, analyze_program
from repro.engine.batch import (
    BatchJob,
    BatchResult,
    BatchRunner,
    ResultCache,
    execute_job,
    parallel_map,
)
from repro.programs import all_programs, get_program

ALL_VARIANTS = [v.value for v in PipelineVariant]


# --- jobs and content keys --------------------------------------------------


def test_content_key_sensitivity():
    base = BatchJob("fft", "control", "x86-tso")
    assert base.content_key() == BatchJob("fft", "control", "x86-tso").content_key()
    assert base.content_key() != BatchJob("fft", "pensieve", "x86-tso").content_key()
    assert base.content_key() != BatchJob("fft", "control", "rmo").content_key()
    explicit = BatchJob("fft", "control", "x86-tso", source="global g; fn f() { g = 1; }")
    assert explicit.content_key() != base.content_key()


def test_execute_job_matches_serial_pipeline_all_programs():
    """Acceptance: batch per-program fence counts == serial pipeline, all 17."""
    for name, bench in all_programs().items():
        serial = analyze_program(bench.compile(), PipelineVariant.CONTROL)
        batch = execute_job(BatchJob(name, "control", "x86-tso"))
        assert batch.full_fences == serial.full_fence_count, name
        assert batch.compiler_fences == serial.compiler_fence_count, name
        assert batch.sync_reads == serial.total_sync_reads, name
        assert batch.escaping_reads == serial.total_escaping_reads, name
        assert batch.pruned_orderings == serial.total_orderings, name
        assert batch.surviving_fraction == pytest.approx(
            serial.surviving_fraction
        ), name


def test_execute_job_explicit_source():
    result = execute_job(
        BatchJob("inline", "control", "x86-tso",
                 source="global g; fn f(tid) { g = 1; } thread f(0);")
    )
    assert [f.name for f in result.functions] == ["f"]


def test_batch_result_json_roundtrip():
    result = execute_job(BatchJob("matrix", "control", "x86-tso"))
    clone = BatchResult.from_json(result.to_json())
    assert clone == result


# --- runner: ordering, pool, fallback ---------------------------------------


def test_run_matrix_stable_order():
    runner = BatchRunner(parallel=False)
    results = runner.run_matrix(["fft", "barnes"], ["control", "pensieve"])
    assert [(r.program, r.variant) for r in results] == [
        ("fft", "control"),
        ("fft", "pensieve"),
        ("barnes", "control"),
        ("barnes", "pensieve"),
    ]


def test_pool_and_serial_agree():
    programs = ["fft", "matrix", "spanningtree"]
    serial = BatchRunner(parallel=False).run_matrix(programs, ["control"])
    pooled_runner = BatchRunner(parallel=True, max_workers=2)
    pooled = pooled_runner.run_matrix(programs, ["control"])
    strip = lambda r: (r.program, r.variant, r.model, r.functions)  # noqa: E731
    assert [strip(r) for r in serial] == [strip(r) for r in pooled]


def test_pool_path_actually_used():
    runner = BatchRunner(parallel=True, max_workers=2)
    runner.run_matrix(["fft", "matrix"], ["control"])
    if not runner.used_pool:  # pragma: no cover - constrained sandboxes
        pytest.skip("process pool unavailable in this environment")
    assert runner.used_pool


def test_parallel_map_preserves_order():
    assert parallel_map(abs, [-3, -1, -2], max_workers=2) == [3, 1, 2]
    assert parallel_map(abs, [], max_workers=2) == []
    assert parallel_map(abs, [-7], max_workers=2) == [7]


def test_unknown_variant_and_model_rejected():
    runner = BatchRunner(parallel=False)
    with pytest.raises(KeyError):
        runner.run_matrix(["fft"], ["bogus"])
    with pytest.raises(KeyError):
        runner.run_matrix(["fft"], ["control"], ["bogus-model"])


def test_default_matrix_covers_all_programs():
    runner = BatchRunner(parallel=False)
    results = runner.run_matrix(variants=["control"])
    assert [r.program for r in results] == list(all_programs())


# --- caching ----------------------------------------------------------------


def test_memory_cache_hits_on_second_run():
    runner = BatchRunner(parallel=False)
    first = runner.run_matrix(["fft"], ["control"])
    second = runner.run_matrix(["fft"], ["control"])
    assert not first[0].cached
    assert second[0].cached
    assert second[0].full_fences == first[0].full_fences


def test_disk_cache_survives_new_runner(tmp_path):
    first = BatchRunner(parallel=False, cache=ResultCache(tmp_path)).run_matrix(
        ["matrix"], ["control"]
    )
    second = BatchRunner(parallel=False, cache=ResultCache(tmp_path)).run_matrix(
        ["matrix"], ["control"]
    )
    assert second[0].cached
    assert second[0].functions == first[0].functions


def test_corrupt_disk_cache_entry_recomputes(tmp_path):
    cache = ResultCache(tmp_path)
    key = BatchJob("fft", "control", "x86-tso").content_key()
    (tmp_path / f"{key}.json").write_text("{not json", encoding="utf-8")
    results = BatchRunner(parallel=False, cache=cache).run_matrix(
        ["fft"], ["control"]
    )
    assert not results[0].cached
    assert results[0].full_fences > 0


def test_model_is_part_of_cache_key():
    runner = BatchRunner(parallel=False)
    tso = runner.run_matrix(["fft"], ["control"], ["x86-tso"])
    rmo = runner.run_matrix(["fft"], ["control"], ["rmo"])
    assert not rmo[0].cached
    assert rmo[0].full_fences >= tso[0].full_fences


# --- CLI --------------------------------------------------------------------


def test_cli_batch_table(capsys):
    assert main(["batch", "--programs", "fft", "--variants", "control",
                 "--serial"]) == 0
    out = capsys.readouterr().out
    assert "fft" in out
    assert "fences" in out
    assert "greedy" in out
    assert "optimal" in out
    assert "full fences" in out
    assert "cycles lowered" in out


def test_cli_batch_json(capsys):
    assert main(["batch", "--programs", "fft", "matrix",
                 "--variants", "control", "--serial", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "batch-report"
    assert payload["schema_version"] == 4
    cells = payload["cells"]
    assert [cell["program"] for cell in cells] == ["fft", "matrix"]
    serial = analyze_program(get_program("fft").compile(), PipelineVariant.CONTROL)
    assert cells[0]["full_fences"] == serial.full_fence_count


def test_cli_batch_pool_matches_serial_pipeline(capsys):
    """The CLI pool path reports the same counts as the serial pipeline."""
    assert main(["batch", "--programs", "fft", "canneal",
                 "--variants", "control", "--jobs", "2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    for cell in payload["cells"]:
        serial = analyze_program(
            get_program(cell["program"]).compile(), PipelineVariant.CONTROL
        )
        assert cell["full_fences"] == serial.full_fence_count


def test_cli_batch_cache_dir(tmp_path, capsys):
    argv = ["batch", "--programs", "fft", "--variants", "control",
            "--serial", "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv) == 0
    assert "1 cache hits" in capsys.readouterr().out


def test_cli_batch_unknown_program(capsys):
    assert main(["batch", "--programs", "nope", "--serial"]) == 2
    assert "unknown program" in capsys.readouterr().out


def test_cli_batch_all_models_accepted():
    assert main(["batch", "--programs", "fft", "--variants", "control",
                 "--models", "all", "--serial", "--json"]) == 0


def test_cli_batch_model_names_match_registry():
    assert set(MODELS) == {"sc", "x86-tso", "pso", "rmo", "arm", "power"}


def test_run_all_honours_custom_program_under_colliding_name():
    """A caller-supplied program must not be swapped for the registry one."""
    from dataclasses import replace as dc_replace

    from repro.experiments.runner import run_all
    from repro.programs import get_program

    custom = dc_replace(
        get_program("fft"),
        source="global g; fn onlyfn(tid) { g = 1; } thread onlyfn(0);",
    )
    report = run_all({"fft": custom}, parallel=True)
    assert [r.program for r in report.fig9_result.rows] == ["fft"]
    # The custom single-store source places no fences; the registry fft
    # places several — proves the registry program wasn't substituted.
    assert report.fig9_result.rows[0].pensieve_fences <= 1


def test_grouped_execution_compiles_once_per_program(monkeypatch):
    """A program's variant cells share one compile inside the worker."""
    import repro.engine.batch as batch_mod
    from repro.engine.batch import execute_job_group

    compiles = []
    original = batch_mod.compile_source

    def counting(*args, **kwargs):
        compiles.append(args[1])
        return original(*args, **kwargs)

    monkeypatch.setattr(batch_mod, "compile_source", counting)
    jobs = tuple(BatchJob("fft", v, "x86-tso") for v in ALL_VARIANTS)
    grouped = execute_job_group(jobs)
    assert compiles == ["fft"]
    assert [r.variant for r in grouped] == ALL_VARIANTS
    # Same counts as independent single-cell execution.
    for job, result in zip(jobs, grouped):
        solo = execute_job(job)
        assert result.functions == solo.functions, job.variant


def _square(n):
    return n * n


def test_budgeted_parallel_map_no_budget_runs_everything():
    from repro.engine.batch import budgeted_parallel_map

    results, exhausted, _ = budgeted_parallel_map(
        _square, list(range(10)), parallel=False
    )
    assert results == [n * n for n in range(10)]
    assert not exhausted


def test_budgeted_parallel_map_zero_budget_stops_after_first_chunk():
    from repro.engine.batch import budgeted_parallel_map

    items = list(range(20))
    results, exhausted, _ = budgeted_parallel_map(
        _square, items, budget=0.0, max_workers=1, parallel=False,
        chunk_size=4,
    )
    assert exhausted
    # The first chunk completes; nothing past it is dispatched.
    assert results == [n * n for n in range(4)]


def test_budgeted_parallel_map_budget_never_truncates_final_chunk():
    from repro.engine.batch import budgeted_parallel_map

    results, exhausted, _ = budgeted_parallel_map(
        _square, [1, 2, 3], budget=0.0, parallel=False, chunk_size=8
    )
    assert results == [1, 4, 9]
    assert not exhausted
