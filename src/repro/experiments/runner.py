"""Run every experiment and render the full paper-shaped report."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments import fig2_example, fig7, fig8, fig9, fig10, table2
from repro.programs.registry import BenchProgram, all_programs


@dataclass
class FullReport:
    table2_rows: list
    fig7_result: fig7.Fig7Result
    fig8_result: fig8.Fig8Result
    fig9_result: fig9.Fig9Result
    fig10_result: fig10.Fig10Result
    fig2_result: fig2_example.Fig2Result

    def render(self) -> str:
        sections = [
            table2.render(self.table2_rows),
            fig7.render(self.fig7_result),
            fig8.render(self.fig8_result),
            fig9.render(self.fig9_result),
            fig10.render(self.fig10_result),
            fig2_example.render(self.fig2_result),
        ]
        return ("\n\n" + "=" * 72 + "\n\n").join(sections)


def run_all(programs: Optional[dict[str, BenchProgram]] = None) -> FullReport:
    """Run Table II, Figs 7-10, and the Fig. 2 example in one pass."""
    programs = programs if programs is not None else all_programs()
    return FullReport(
        table2_rows=table2.run(),
        fig7_result=fig7.run(programs),
        fig8_result=fig8.run(programs),
        fig9_result=fig9.run(programs),
        fig10_result=fig10.run(programs),
        fig2_result=fig2_example.run(),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_all().render())


if __name__ == "__main__":  # pragma: no cover
    main()
