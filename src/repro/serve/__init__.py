"""`repro.serve` — the long-lived JSON-lines analysis daemon.

``repro serve`` keeps one thread-safe :class:`~repro.api.Session` (and
therefore one warm query cache) alive across many requests and many
concurrent clients; see :mod:`repro.serve.server` for the protocol.
"""

from repro.serve.server import (
    REQUEST_DISPATCH,
    ReproServer,
    ServeDispatcher,
    encode_response,
    serve_stdio,
)

__all__ = [
    "REQUEST_DISPATCH",
    "ReproServer",
    "ServeDispatcher",
    "encode_response",
    "serve_stdio",
]
