"""The memory-model and explorer catalogs.

A :class:`ModelEntry` ties a hardware :class:`MemoryModel` description
(which ordering kinds need fences) to the exhaustive state-space
explorer that implements the same semantics, replacing the
``MODELS``-dict plumbing in the CLI and the oracle's private
``WEAK_EXPLORERS`` table. Explorers are themselves a registry so a new
machine model can ship its explorer without touching any surface:
register the explorer class, register a :class:`ModelEntry` naming it,
and ``repro check``/``repro fuzz`` accept the new ``--model`` key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.machine_models import MODELS as _MACHINE_MODELS, MemoryModel
from repro.memmodel.pso import PSOExplorer
from repro.memmodel.sc import SCExplorer
from repro.memmodel.tso import TSOExplorer
from repro.registry.core import Registry

#: Exhaustive state-space explorers by machine key. ``sc`` is the
#: reference semantics every weak model is differenced against.
EXPLORERS: Registry[type] = Registry("explorer")
EXPLORERS.register("sc", SCExplorer)
EXPLORERS.register("x86-tso", TSOExplorer)
EXPLORERS.register("pso", PSOExplorer)


@dataclass(frozen=True)
class ModelEntry:
    """One registered hardware memory model."""

    key: str
    model: MemoryModel
    #: Short human label used in report rendering ("TSO + control: ...").
    display: str
    #: :data:`EXPLORERS` key of the exhaustive explorer implementing
    #: this model's semantics; None = fence placement only, no
    #: model-checking support (e.g. RMO).
    explorer: str | None = None
    description: str = ""

    @property
    def checkable(self) -> bool:
        """Can this model be differenced against SC (weak explorer)?"""
        return self.explorer is not None and self.key != "sc"

    def explorer_cls(self) -> type:
        if self.explorer is None:
            raise KeyError(
                f"no weak-memory explorer for model {self.key!r}; "
                f"known: {', '.join(weak_model_keys())}"
            )
        return EXPLORERS.get(self.explorer)


MODELS: Registry[ModelEntry] = Registry("model")


def register_model(entry: ModelEntry) -> ModelEntry:
    return MODELS.register(entry.key, entry)


register_model(
    ModelEntry(
        key="sc",
        model=_MACHINE_MODELS["sc"],
        display="SC",
        explorer="sc",
        description="Sequential consistency: every ordering enforced; "
        "the reference semantics.",
    )
)
register_model(
    ModelEntry(
        key="x86-tso",
        model=_MACHINE_MODELS["x86-tso"],
        display="TSO",
        explorer="x86-tso",
        description="x86-TSO: FIFO store buffers relax w->r only.",
    )
)
register_model(
    ModelEntry(
        key="pso",
        model=_MACHINE_MODELS["pso"],
        display="PSO",
        explorer="pso",
        description="SPARC PSO: per-address store buffers additionally "
        "relax w->w.",
    )
)
register_model(
    ModelEntry(
        key="rmo",
        model=_MACHINE_MODELS["rmo"],
        display="RMO",
        explorer=None,
        description="RMO/weak: nothing enforced; fence placement only "
        "(no exhaustive explorer).",
    )
)


def get_model(key: str) -> ModelEntry:
    return MODELS.get(key)


def model_keys() -> tuple[str, ...]:
    return MODELS.keys()


def weak_model_keys() -> tuple[str, ...]:
    """Models that can be differenced against SC — the ``repro check``
    and ``repro fuzz`` ``--model`` choice set."""
    return tuple(k for k, e in MODELS.items() if e.checkable)


def weak_explorer_for(key: str) -> tuple[type, MemoryModel]:
    """(explorer class, machine model) for a checkable model key.

    Raises ``KeyError('unknown model ...')`` for unregistered keys and
    ``KeyError('no weak-memory explorer ...')`` for registered models
    without exhaustive explorer coverage.
    """
    entry = get_model(key)
    if not entry.checkable:
        raise KeyError(
            f"no weak-memory explorer for model {key!r}; "
            f"known: {', '.join(weak_model_keys())}"
        )
    return entry.explorer_cls(), entry.model
