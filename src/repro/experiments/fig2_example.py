"""The Fig. 2 worked example: Delay-set places 5 fences, pruning leaves 2.

The program is the paper's legacy-DRF snippet: P1 produces ``x``/``y``
and raises ``flag``; P2 writes/reads through pointers that may alias
``x`` and ``y`` (but provably not ``flag``), spins on the flag, then
reads the produced data. Exact Shasha-Snir delay-set analysis over the
may-alias conflict graph yields the paper's delay pairs; Table-I
pruning with Control-detected acquires removes everything except the
orderings into/out of the flag synchronization.

Full fences are counted under the RMO machine model, matching the
paper's model-agnostic presentation of the example ("(full) fence
placement").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.delay_set import DelaySetAnalysis
from repro.core.fence_min import plan_fences
from repro.core.machine_models import RMO
from repro.core.pruning import prune_orderings
from repro.core.signatures import Variant
from repro.engine.context import AnalysisContext
from repro.experiments import expected
from repro.frontend import compile_source
from repro.ir.function import Program

FIG2_SOURCE = """
global int x;
global int y;
global int flag;
global int sel;

fn p1(tid) {
  local r = 0;
  x = 1;         // a1
  r = y;         // a2
  flag = 1;      // a3
}

fn p2(tid) {
  local p1v = 0;
  local p2v = 0;
  local r2 = 0;
  local r3 = 0;
  // p1v / p2v may alias x and y, but provably not flag.
  if (sel == 0) { p1v = &x; } else { p1v = &y; }
  if (sel == 1) { p2v = &x; } else { p2v = &y; }
  *p1v = 5;               // b1
  r2 = *p2v;              // b2
  while (flag != 1) { }   // b3
  y = 2;                  // b4
  r3 = x;                 // b5
}

thread p1(0);
thread p2(1);
"""


@dataclass
class Fig2Result:
    program: Program
    delay_count: int
    delay_set_fences: int
    pruned_fences: int
    acquires_per_function: dict[str, int]

    @property
    def matches_paper(self) -> bool:
        return (
            self.delay_set_fences == expected.FIG2_DELAY_SET_FENCES
            and self.pruned_fences == expected.FIG2_PRUNED_FENCES
        )


def run() -> Fig2Result:
    program = compile_source(FIG2_SOURCE, "fig2-example")
    # Delay-set analysis and acquire detection share one context, so
    # the per-function facts are computed exactly once.
    ctx = AnalysisContext(program)
    delays = DelaySetAnalysis(program, context=ctx).compute()

    total_unpruned = 0
    total_pruned = 0
    acquires = {}
    for fn_name in ("p1", "p2"):
        func = program.functions[fn_name]
        orderings = delays.ordering_set(fn_name)
        plan = plan_fences(func, orderings, RMO, entry_fence=False)
        total_unpruned += len(plan.fences)
        sync_reads = ctx.acquires(func, Variant.CONTROL).sync_reads
        acquires[fn_name] = len(sync_reads)
        pruned, _ = prune_orderings(orderings, sync_reads)
        pruned_plan = plan_fences(func, pruned, RMO, entry_fence=False)
        total_pruned += len(pruned_plan.fences)

    return Fig2Result(
        program=program,
        delay_count=delays.total_delays,
        delay_set_fences=total_unpruned,
        pruned_fences=total_pruned,
        acquires_per_function=acquires,
    )


def render(result: Fig2Result | None = None) -> str:
    result = result if result is not None else run()
    lines = [
        "Fig. 2 worked example (legacy DRF busy-wait synchronization)",
        "=" * 60,
        f"delay pairs found by exact Shasha-Snir analysis: {result.delay_count}",
        f"full fences to enforce all delays:        {result.delay_set_fences}"
        f"  (paper: {expected.FIG2_DELAY_SET_FENCES})",
        f"full fences after Table-I pruning:        {result.pruned_fences}"
        f"  (paper: {expected.FIG2_PRUNED_FENCES})",
        f"detected acquires: {result.acquires_per_function}",
        f"matches paper: {result.matches_paper}",
    ]
    return "\n".join(lines)
