"""Unit tests for thread-escape analysis and the backwards slicer."""

from repro.analysis.aliasing import PointsTo
from repro.analysis.escape import EscapeInfo
from repro.analysis.reachability import ReachabilityTable
from repro.analysis.slicing import Slicer
from repro.frontend import compile_source
from repro.ir import Load
from repro.util.orderedset import OrderedSet


def _setup(src: str, fn: str = "f"):
    func = compile_source(src, "t").functions[fn]
    pt = PointsTo(func)
    esc = EscapeInfo(func, pt)
    return func, pt, esc


# --- escape analysis ---------------------------------------------------------


def test_global_accesses_escape():
    func, _, esc = _setup("global g; fn f() { g = 1; local r = g; }")
    assert len(esc.escaping_writes) == 1
    assert len(esc.escaping_reads) == 1


def test_pure_local_accesses_do_not_escape():
    func, _, esc = _setup("fn f() { local a; a = 1; local r = a; }")
    assert len(esc.escaping) == 0
    assert len(esc.local) > 0


def test_param_pointer_accesses_escape():
    func, _, esc = _setup("fn f(p) { *p = 1; }")
    # the deref store escapes; the param spill does not
    assert len(esc.escaping_writes) == 1


def test_leaked_local_escapes():
    src = """
    global box;
    fn f() {
      local leaked;
      box = &leaked;
      leaked = 42;
    }
    """
    func, _, esc = _setup(src)
    # the store to `leaked` goes through an escaped alloca
    assert len(esc.escaping_writes) == 2  # box write + leaked write


def test_rmw_counts_as_read_and_write():
    func, _, esc = _setup("global g; fn f() { local r = fadd(&g, 1); }")
    assert len(esc.escaping_reads) == 1
    assert len(esc.escaping_writes) == 1
    assert len(esc.escaping) == 1  # one instruction, both roles


def test_summary_counts_consistent():
    func, _, esc = _setup("global g; fn f() { local a; a = g; g = a; }")
    s = esc.summary()
    assert s["accesses"] == s["escaping"] + s["local"]


# --- reachability ---------------------------------------------------------------


def test_reachability_straightline():
    func, _, esc = _setup("global g; fn f() { g = 1; local r = g; }")
    reach = ReachabilityTable(func)
    accesses = [i for i in func.instructions() if i.is_memory_access()]
    store = accesses[0]
    assert reach.exists_path(store, accesses[-1])
    assert not reach.exists_path(accesses[-1], store)


def test_reachability_loop_both_directions():
    src = "global g; fn f() { local i = 0; while (i < 3) { g = g + 1; i = i + 1; } }"
    func, _, esc = _setup(src)
    reach = ReachabilityTable(func)
    g_load = [i for i in esc.escaping_reads][0]
    g_store = [i for i in esc.escaping_writes][0]
    assert reach.exists_path(g_load, g_store)
    assert reach.exists_path(g_store, g_load)  # around the back edge
    assert reach.exists_path(g_load, g_load)  # self, via the loop


def test_reachability_no_self_path_straightline():
    func, _, esc = _setup("global g; fn f() { g = 1; }")
    store = list(esc.escaping_writes)[0]
    assert not ReachabilityTable(func).exists_path(store, store)


# --- slicer --------------------------------------------------------------------


def _slice_from_branches(src: str, fn: str = "f"):
    func, pt, esc = _setup(src, fn)
    slicer = Slicer(func, pt, esc)
    seen: set = set()
    sync: OrderedSet = OrderedSet()
    for inst in func.instructions():
        if inst.is_cond_branch():
            slicer.slice_from_values(inst.operands, seen, sync)
    return func, sync, seen


def test_slice_finds_direct_branch_feed():
    func, sync, _ = _slice_from_branches(
        "global flag; fn f() { while (flag == 0) { } }"
    )
    assert len(sync) == 1
    assert list(sync)[0].is_load()


def test_slice_chases_through_local_slot():
    # value flows: load g -> store slot -> load slot -> cmp -> br
    src = "global g; fn f() { local r; r = g; if (r > 0) { } }"
    func, sync, _ = _slice_from_branches(src)
    assert any(str(i.addr) == "@g" for i in sync)


def test_slice_chases_through_memory_writers():
    # branch on a[..] pulls stores to a[..], whose values come from g
    src = """
    global g; global a[4];
    fn f() {
      a[1] = g;
      if (a[2] > 0) { }
    }
    """
    func, sync, _ = _slice_from_branches(src)
    assert any(str(getattr(i, "addr", "")) == "@g" for i in sync)


def test_slice_does_not_mark_unrelated_reads():
    src = """
    global g; global flag; global out;
    fn f() {
      local d = g;       // pure data read
      out = d + 1;
      if (flag) { }      // only flag feeds the branch
    }
    """
    func, sync, _ = _slice_from_branches(src)
    addrs = {str(i.addr) for i in sync if isinstance(i, Load)}
    assert addrs == {"@flag"}


def test_slice_terminates_on_cyclic_dependencies():
    # x = x + 1 in a loop guarded by x: writer chain is cyclic
    src = "global x; fn f() { while (x < 10) { x = x + 1; } }"
    func, sync, seen = _slice_from_branches(src)
    assert sync  # the x load is an acquire
    assert len(seen) > 0  # and the traversal terminated


def test_seen_set_shared_across_slices():
    src = """
    global a; global b;
    fn f() {
      if (a) { }
      if (b) { }
    }
    """
    func, pt, esc = _setup(src)
    slicer = Slicer(func, pt, esc)
    seen: set = set()
    sync: OrderedSet = OrderedSet()
    for inst in func.instructions():
        if inst.is_cond_branch():
            slicer.slice_from_values(inst.operands, seen, sync)
    assert len(sync) == 2  # both loads found despite the shared seen set


def test_rmw_result_found_as_acquire():
    # CAS result feeds the retry branch -> the CAS read is an acquire.
    src = "global l; fn f() { local o = cas(&l, 0, 1); while (o != 0) { o = cas(&l, 0, 1); } }"
    func, sync, _ = _slice_from_branches(src)
    assert any(i.is_atomic_rmw() for i in sync)


def test_chase_load_addresses_extension_is_more_conservative():
    src = """
    global tab[8]; global idx;
    fn f() {
      local r = tab[idx];
      if (r > 0) { }
    }
    """
    func, pt, esc = _setup(src)
    base: OrderedSet = OrderedSet()
    ext: OrderedSet = OrderedSet()
    for chase, out in ((False, base), (True, ext)):
        slicer = Slicer(func, pt, esc, chase_load_addresses=chase)
        seen: set = set()
        for inst in func.instructions():
            if inst.is_cond_branch():
                slicer.slice_from_values(inst.operands, seen, out)
    assert set(base).issubset(set(ext))
    # the idx load feeds only the address; Listing 2 misses it, the
    # extension finds it
    assert any(str(getattr(i, "addr", "")) == "@idx" for i in ext)
    assert not any(str(getattr(i, "addr", "")) == "@idx" for i in base)
