"""Tests for the validator's seeded program generator."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.memmodel.drf import check_drf
from repro.memmodel.litmus import sync_marking_for_globals
from repro.programs.datagen import fuzz_compute_section
from repro.validate.generator import SHAPES, generate_program


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("seed", range(4))
def test_generated_programs_compile(shape, seed):
    generated = generate_program(seed, shape)
    program = generated.compile()
    assert generated.sync_globals <= set(program.globals)
    assert len(program.threads) == generated.threads
    assert generated.shape == shape
    assert generated.seed == seed
    assert generated.source_lines > 0


@pytest.mark.parametrize("shape", SHAPES)
def test_generation_is_deterministic(shape):
    a = generate_program(7, shape)
    b = generate_program(7, shape)
    assert a.source == b.source
    assert a.sync_globals == b.sync_globals
    assert a.notes == b.notes


def test_seeds_vary_the_programs():
    sources = {generate_program(seed, "handoff").source for seed in range(12)}
    assert len(sources) > 3  # payloads, style, consumers, kernels all vary


def test_some_seed_attaches_compute_kernels():
    attached = [
        generate_program(seed, "handoff") for seed in range(12)
    ]
    assert any("hk_" in g.source for g in attached)
    assert any("hk_" not in g.source for g in attached)


def test_unknown_shape_rejected():
    with pytest.raises(ValueError, match="unknown shape"):
        generate_program(0, "nope")


@pytest.mark.parametrize("shape", SHAPES)
def test_generated_programs_are_drf_under_their_marking(shape):
    """The legacy-DRF precondition holds by construction."""
    generated = generate_program(1, shape)
    program = generated.compile()
    marking = sync_marking_for_globals(program, generated.sync_globals)
    report = check_drf(program, marking, max_traces=300)
    assert report.is_race_free, report.races


def test_fuzz_compute_section_compiles_and_jitters():
    import random

    rng = random.Random(42)
    decls, fns, calls = fuzz_compute_section(
        rng, "fz", stream_reads=2, gather_reads=1, guard_reads=1
    )
    assert len(calls) == 3
    worker_calls = "\n".join(f"  {c}(tid);" for c in calls)
    source = (
        f"{decls}\n\n{fns}\n\n"
        f"fn worker(tid) {{\n{worker_calls}\n}}\n\n"
        "thread worker(0);\nthread worker(1);\n"
    )
    program = compile_source(source, "fuzz-section")
    assert set(calls) <= set(program.functions)
    # No init kernel: generated arrays stay zero, so no cross-thread
    # initialization races exist by construction.
    assert "fz_init" not in source


def test_fuzz_compute_section_empty_when_no_reads_requested():
    import random

    decls, fns, calls = fuzz_compute_section(random.Random(0), "fz")
    assert (decls, fns, calls) == ("", "", [])
