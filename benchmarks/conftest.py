"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.programs import all_programs

REPORT_PATH = Path(__file__).resolve().parent.parent / "benchmark_reports.txt"


@pytest.fixture(scope="session")
def programs():
    return all_programs()


@pytest.fixture(scope="session")
def report_sink():
    """Collect rendered table/figure reports; written to
    ``benchmark_reports.txt`` at session end (pytest captures teardown
    stdout, so a file is the reliable channel) — the bench run doubles
    as the figure regeneration run."""
    reports: dict[str, str] = {}
    yield reports
    if reports:
        separator = "\n\n" + "=" * 72 + "\n\n"
        REPORT_PATH.write_text(
            separator.join(reports[name] for name in sorted(reports)) + "\n",
            encoding="utf-8",
        )
        print(f"\n[figure reports written to {REPORT_PATH}]")
