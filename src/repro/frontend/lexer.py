"""Tokenizer for the mini-C source language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

KEYWORDS = {
    "global",
    "int",
    "fn",
    "local",
    "if",
    "else",
    "while",
    "for",
    "return",
    "thread",
    "fence",
    "cfence",
    "cas",
    "xchg",
    "fadd",
    "atomic_load",
    "atomic_store",
    "observe",
    "break",
    "continue",
}

# Longest-match first.
OPERATORS = [
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "&",
    "|",
    "^",
    "!",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
]


@dataclass(frozen=True)
class Token:
    kind: str  # "num", "ident", "kw", "op", "str", "eof"
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


class LexError(Exception):
    """Raised on an unrecognized character."""


def tokenize(source: str) -> list[Token]:
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end == -1 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError(f"line {line}: unterminated block comment")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            while j < n and (source[j].isdigit() or source[j] in "xXabcdefABCDEF"):
                j += 1
            yield Token("num", source[i:j], line)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            yield Token("kw" if text in KEYWORDS else "ident", text, line)
            i = j
            continue
        if ch == '"':
            j = i + 1
            while j < n and source[j] != '"':
                if source[j] == "\n":
                    raise LexError(f"line {line}: newline in string literal")
                j += 1
            if j >= n:
                raise LexError(f"line {line}: unterminated string literal")
            yield Token("str", source[i + 1 : j], line)
            i = j + 1
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                yield Token("op", op, line)
                i += len(op)
                break
        else:
            raise LexError(f"line {line}: unexpected character {ch!r}")
    yield Token("eof", "", line)
