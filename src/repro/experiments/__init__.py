"""Experiment harness: one module per table/figure of the paper."""

from repro.experiments import expected, fig2_example, fig7, fig8, fig9, fig10, table2
from repro.experiments.runner import FullReport, run_all

__all__ = [
    "FullReport",
    "expected",
    "fig2_example",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "run_all",
    "table2",
]
