"""Cross-arch fence lowering: the per-arch cost matrix over the corpus.

Walks the public API end to end across the architecture axis:

1. analyze one program under each arch backend and show which ISA
   fence flavors the lowering picks (lwsync vs sync, dmb vs dmbst);
2. run the batch engine across {x86-tso, pso, arm, power} and print
   the per-arch fence-count/cost matrix the ROADMAP's multi-backend
   scenario asks for;
3. model-check that the flavored ARM placement really restores SC.

Run:  python examples/cross_arch.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import (  # noqa: E402
    AnalyzeRequest,
    BatchRequest,
    CheckRequest,
    ProgramSpec,
    Session,
)

SOURCE = """
global int flag;
global int data;

fn producer(tid) {
  data = 1;
  flag = 1;
}

fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""

MODELS = ("x86-tso", "pso", "arm", "power")


def main() -> int:
    session = Session(parallel=False)
    spec = ProgramSpec.inline(SOURCE, name="mp")

    # 1. Flavor selection per backend on message passing.
    print("== flavored lowering of message passing ==")
    for arch in ("x86", "arm", "power"):
        report = session.analyze(
            AnalyzeRequest(program=spec, variant="address+control",
                           model=arch if arch != "x86" else "x86-tso",
                           arch=arch)
        )
        flavors = ", ".join(
            f"{name} x{count}" for name, count in sorted(report.flavors.items())
        )
        print(f"{arch:6s} {report.full_fences} fences, "
              f"{report.fence_cost:5d} cycles  ({flavors})")
    assert session.analyze(
        AnalyzeRequest(program=spec, variant="address+control",
                       model="power", arch="power")
    ).flavors.get("lwsync"), "power MP should use lwsync for the r->r cut"

    # 2. The per-arch cost matrix over the full corpus.
    print("\n== per-arch corpus matrix (address+control) ==")
    batch = session.batch(
        BatchRequest(variants=("address+control",), models=MODELS)
    )
    per_model: dict[str, dict[str, int]] = {
        m: {"fences": 0, "cost": 0} for m in MODELS
    }
    for cell in batch.cells:
        per_model[cell.model]["fences"] += cell.full_fences
        per_model[cell.model]["cost"] += cell.fence_cost or 0
    for model in MODELS:
        row = per_model[model]
        print(f"{model:8s} {row['fences']:5d} full fences  "
              f"{row['cost']:6d} cycles lowered")
    assert per_model["arm"]["fences"] >= per_model["x86-tso"]["fences"]

    # 3. The flavored ARM placement restores SC.
    print("\n== differential check on arm ==")
    check = session.check(CheckRequest(program=spec, model="arm"))
    print(check.render())
    assert check.weak_breaks_unfenced, "unfenced MP must break on ARM"
    assert check.all_restored, "every flavored placement must restore SC"
    print("\ncross-arch walkthrough OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
