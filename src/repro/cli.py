"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``analyze FILE``     — run the fence-placement pipeline on a mini-C file
* ``check FILE``       — exhaustively model-check SC vs x86-TSO, unfenced
  and with each variant's fences
* ``simulate FILE``    — run the timed TSO simulator and report cycles
* ``experiments``      — regenerate the paper's tables and figures
* ``batch``            — analyze a {program × variant × model} matrix in
  parallel on the batch engine
* ``fuzz``             — differential fence-validation fuzzing: generate
  seeded programs, model-check every detection variant's placement
  against SC, and shrink any soundness counterexample
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.annotations import render_annotations, suggest_annotations
from repro.core.machine_models import MODELS, X86_TSO
from repro.core.pipeline import (
    VARIANTS_BY_VALUE as _VARIANTS,
    FencePlacer,
    PipelineVariant,
)
from repro.frontend import compile_source
from repro.ir.printer import format_program
from repro.memmodel.sc import SCExplorer
from repro.memmodel.tso import TSOExplorer
from repro.simulator.machine import TSOSimulator
from repro.util.text import format_table


def _load(path: str, manual_fences: bool = False):
    source = Path(path).read_text(encoding="utf-8")
    return compile_source(source, Path(path).stem, manual_fences)


def cmd_analyze(args: argparse.Namespace) -> int:
    program = _load(args.file)
    placer = FencePlacer(_VARIANTS[args.variant], MODELS[args.model])
    analysis = placer.place(program) if args.emit_ir else placer.analyze(program)

    rows = []
    for name, fa in analysis.functions.items():
        rows.append(
            [
                name,
                len(fa.escape_info.escaping_reads),
                len(fa.sync_reads),
                len(fa.orderings),
                len(fa.pruned),
                fa.plan.full_count,
                fa.plan.compiler_count,
            ]
        )
    print(
        format_table(
            ["function", "esc reads", "acquires", "orderings", "pruned",
             "mfences", "directives"],
            rows,
            title=f"{program.name}: {args.variant} on {args.model}",
        )
    )
    print(
        f"\ntotal: {analysis.total_sync_reads}/{analysis.total_escaping_reads} "
        f"reads marked acquire, {analysis.full_fence_count} full fences, "
        f"{analysis.compiler_fence_count} compiler directives"
    )
    if args.annotations:
        print()
        print(render_annotations(suggest_annotations(analysis)))
    if args.emit_ir:
        print("\n--- fenced IR ---")
        print(format_program(program))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    # Read the source once; each explorer needs its own IR copy (the
    # explorers and fence insertion mutate state), so compile the
    # in-memory string repeatedly instead of re-reading the file.
    source = Path(args.file).read_text(encoding="utf-8")
    name = Path(args.file).stem
    sc = SCExplorer(compile_source(source, name), max_states=args.max_states).explore()
    tso = TSOExplorer(compile_source(source, name), max_states=args.max_states).explore()
    if not (sc.complete and tso.complete):
        print("state space exceeded --max-states; results incomplete")
        return 2
    print(f"SC outcomes: {len(sc.observation_sets())}")
    broken = tso.observation_sets() != sc.observation_sets()
    print(
        f"TSO unfenced: {len(tso.observation_sets())} outcomes "
        f"({'NON-SC BEHAVIOUR' if broken else 'SC-equal'})"
    )
    failures = 0
    for variant in PipelineVariant:
        fenced = compile_source(source, name)
        analysis = FencePlacer(variant, X86_TSO).place(fenced)
        fenced_tso = TSOExplorer(fenced, max_states=args.max_states).explore()
        restored = fenced_tso.observation_sets() == sc.observation_sets()
        failures += 0 if restored else 1
        print(
            f"TSO + {variant.value:16s}: {analysis.full_fence_count} mfences, "
            f"SC restored: {restored}"
        )
    return 0 if failures == 0 else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    if args.variant == "manual":
        program = _load(args.file, manual_fences=True)
    else:
        program = _load(args.file)
        FencePlacer(_VARIANTS[args.variant], X86_TSO).place(program)
    stats = TSOSimulator(program).run()
    print(f"placement      : {args.variant}")
    print(f"cycles         : {stats.cycles}")
    print(f"instructions   : {stats.instructions}")
    print(f"mfences run    : {stats.full_fences_executed}")
    print(f"fence stalls   : {stats.fence_stall_cycles} cycles")
    for tid, obs in sorted(stats.observations.items()):
        if obs:
            rendered = ", ".join(f"{k}={v}" for k, v in obs)
            print(f"observations T{tid}: {rendered}")
    if args.globals:
        for name in args.globals:
            matches = {
                k: v for k, v in stats.final_globals.items()
                if k == name or k.startswith(name + "[")
            }
            for k, v in sorted(matches.items()):
                print(f"{k} = {v}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import run_all
    from repro.programs import all_programs

    programs = all_programs()
    if args.quick:
        keep = ("fft", "water-nsquared", "raytrace", "matrix")
        programs = {k: programs[k] for k in keep}
    print(
        run_all(
            programs, max_workers=args.jobs, parallel=not args.serial
        ).render()
    )
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    import json as _json
    import time

    from repro.engine.batch import BatchRunner, ResultCache
    from repro.programs import all_programs

    known = list(all_programs())
    programs = known if args.programs == ["all"] else args.programs
    for p in programs:
        if p not in known:
            print(f"unknown program {p!r}; known: {', '.join(known)}")
            return 2
    variants = sorted(_VARIANTS) if args.variants == ["all"] else args.variants
    models = sorted(MODELS) if args.models == ["all"] else args.models

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    runner = BatchRunner(
        max_workers=args.jobs, parallel=not args.serial, cache=cache
    )
    start = time.perf_counter()
    try:
        results = runner.run_matrix(programs, variants, models)
    except KeyError as exc:
        print(exc.args[0])
        return 2
    wall = time.perf_counter() - start

    if args.json:
        print(_json.dumps(
            [r.to_payload() for r in results], indent=2, sort_keys=True
        ))
        return 0

    rows = [
        [
            r.program,
            r.variant,
            r.model,
            len(r.functions),
            r.escaping_reads,
            r.sync_reads,
            f"{r.orderings}->{r.pruned_orderings}",
            f"{r.surviving_fraction:.1%}",
            r.full_fences,
            r.compiler_fences,
            f"{r.elapsed * 1000:.0f}ms",
            "hit" if r.cached else "",
        ]
        for r in results
    ]
    print(
        format_table(
            ["program", "variant", "model", "fns", "esc reads", "acquires",
             "orderings", "surv", "mfences", "directives", "time", "cache"],
            rows,
            title=f"batch: {len(results)} analyses "
            f"({'pool' if runner.used_pool else 'serial'}, {wall:.2f}s wall)",
        )
    )
    total_full = sum(r.full_fences for r in results)
    hits = sum(1 for r in results if r.cached)
    print(
        f"\ntotal: {total_full} full fences across {len(results)} cells, "
        f"{hits} cache hits"
    )
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    import json as _json

    from repro.validate.generator import SHAPES
    from repro.validate.oracle import DETECTION_VARIANTS, TRUSTED_VARIANTS
    from repro.validate.runner import run_fuzz

    shapes = SHAPES if args.shapes == ["all"] else tuple(args.shapes)
    variants = (
        TRUSTED_VARIANTS if args.variants == ["trusted"] else tuple(args.variants)
    )
    if args.variants == ["all"]:
        variants = DETECTION_VARIANTS
    models = tuple(args.models)
    try:
        report = run_fuzz(
            seeds=args.seeds,
            shapes=shapes,
            variants=variants,
            models=models,
            budget=args.budget,
            jobs=args.jobs,
            parallel=not args.serial,
            shrink=not args.no_shrink,
            max_states=args.max_states,
        )
    except KeyError as exc:
        print(exc.args[0])
        return 2

    if args.json:
        print(_json.dumps(report.to_payload(), indent=2, sort_keys=True))
    else:
        rows = [
            [
                variant,
                row["checked"],
                row["restored_sc"],
                row["violations"],
                row["full_fences"],
                f"{row['mean_fences_saved']:.1f}",
            ]
            for variant, row in report.variant_summary().items()
        ]
        print(
            format_table(
                ["variant", "checked", "SC restored", "violations",
                 "mfences", "saved vs full"],
                rows,
                title=f"fuzz: {len(report.cases)} cases "
                f"({report.seeds} seeds x {len(report.shapes)} shapes x "
                f"{len(report.models)} models; "
                f"{'pool' if report.used_pool else 'serial'}, "
                f"{report.wall:.1f}s wall"
                + (", budget exhausted" if report.budget_exhausted else "")
                + f", {report.cases_skipped} skipped)",
            )
        )
        for case in report.errors:
            print(f"\nERROR {case.shape} seed {case.seed}: {case.error}")
        for case in report.incomplete:
            print(
                f"\nINCOMPLETE {case.shape} seed {case.seed}: "
                f"{case.report.skipped}"
            )
        for violation in report.violations:
            print(
                f"\nSOUNDNESS VIOLATION: variant {violation.variant!r} on "
                f"{violation.shape} seed {violation.seed} ({violation.model}), "
                f"shrunk to {violation.source_lines} lines:"
            )
            print(violation.snippet)

    # Broken or unfinished cases must never read as "no violations":
    # a fuzzer whose every case errors out or blows the state bound
    # would otherwise green-light the CI soundness gate vacuously.
    problems = len(report.errors) + len(report.incomplete)
    if problems:
        print(
            f"{problems} case(s) errored or exceeded --max-states; "
            "soundness not established for them",
            file=sys.stderr,
        )
    found = len(report.violations)
    if args.expect_violations:
        if found == 0:
            print("expected at least one violation; found none", file=sys.stderr)
            return 1
        return 0 if problems == 0 else 1
    return 0 if found == 0 and problems == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fence placement for legacy DRF programs (PPoPP'15 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="run the fence-placement pipeline")
    p.add_argument("file")
    p.add_argument("--variant", choices=sorted(_VARIANTS), default="control")
    p.add_argument("--model", choices=sorted(MODELS), default="x86-tso")
    p.add_argument("--annotations", action="store_true",
                   help="also print C11-style annotation suggestions")
    p.add_argument("--emit-ir", action="store_true",
                   help="insert the fences and dump the final IR")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("check", help="model-check SC vs x86-TSO")
    p.add_argument("file")
    p.add_argument("--max-states", type=int, default=1_000_000)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("simulate", help="run the timed TSO simulator")
    p.add_argument("file")
    p.add_argument(
        "--variant",
        choices=sorted(_VARIANTS) + ["manual"],
        default="control",
    )
    p.add_argument("--globals", nargs="*", default=[],
                   help="global variables to print after the run")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("experiments", help="regenerate the paper's evaluation")
    p.add_argument("--quick", action="store_true",
                   help="4-program subset instead of all 17")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: CPU count)")
    p.add_argument("--serial", action="store_true",
                   help="run the sweep serially (deterministic fallback)")
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser(
        "batch", help="analyze a program × variant × model matrix in parallel"
    )
    p.add_argument("--programs", nargs="+", default=["all"],
                   help="registry program names, or 'all' (default)")
    p.add_argument("--variants", nargs="+", default=["all"],
                   help=f"pipeline variants ({', '.join(sorted(_VARIANTS))}), "
                        "or 'all' (default)")
    p.add_argument("--models", nargs="+", default=["x86-tso"],
                   help=f"memory models ({', '.join(sorted(MODELS))}), or 'all'")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: CPU count)")
    p.add_argument("--serial", action="store_true",
                   help="run serially (deterministic fallback)")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of a table")
    p.add_argument("--cache-dir", default=None,
                   help="directory for the content-keyed result cache")
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "fuzz",
        help="differential fence-validation fuzzing (soundness oracle)",
    )
    p.add_argument("--seeds", type=int, default=16,
                   help="number of seeds per shape (default 16)")
    p.add_argument("--budget", type=float, default=None,
                   help="wall-clock budget in seconds; stops dispatching "
                        "new cases once exceeded")
    p.add_argument("--shapes", nargs="+", default=["all"],
                   help="scaffold shapes, or 'all' (default)")
    p.add_argument("--variants", nargs="+", default=["trusted"],
                   help="detection variants to validate: 'trusted' "
                        "(address+control, pensieve — the default), 'all', "
                        "or an explicit list incl. the deliberately-weak "
                        "'vanilla' and 'control'")
    p.add_argument("--models", nargs="+", default=["x86-tso"],
                   help="weak machine models to explore (x86-tso, pso)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: CPU count)")
    p.add_argument("--serial", action="store_true",
                   help="run serially (deterministic fallback)")
    p.add_argument("--max-states", type=int, default=1_000_000,
                   help="per-exploration state bound")
    p.add_argument("--no-shrink", action="store_true",
                   help="report violations without minimizing them")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable JSON report")
    p.add_argument("--expect-violations", action="store_true",
                   help="invert the exit code: succeed only if at least "
                        "one violation is found (CI oracle self-test)")
    p.set_defaults(func=cmd_fuzz)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
