"""Golden-findings tests for the lint pipeline (tests/data/lint/).

Two guarantees the goldens pin:

* every ``well_synchronized`` litmus program lints clean (zero
  warnings/errors — refuted static candidates may remain as notes),
  and every deliberately-racy shape carries at least one
  explorer-confirmed race;
* the whole benchmark corpus matches its recorded per-program
  summaries, so detector precision changes show up as a reviewed
  golden diff, never silently.

Regenerate with ``PYTHONPATH=src python tools/gen_lint_goldens.py``.
"""

import json
from pathlib import Path

import pytest

from repro.api import LintRequest, ProgramSpec, Session
from repro.memmodel.litmus import LITMUS_TESTS
from repro.programs import all_programs

DATA_DIR = Path(__file__).parent / "data" / "lint"

LITMUS_GOLDEN = json.loads((DATA_DIR / "litmus_expected.json").read_text())
CORPUS_GOLDEN = json.loads((DATA_DIR / "corpus_expected.json").read_text())
ARCH_GOLDEN = json.loads((DATA_DIR / "arch_expected.json").read_text())


@pytest.fixture(scope="module")
def session():
    return Session(parallel=False)


def _summarize(report: dict, with_message: bool = False) -> dict:
    return {
        "errors": report["errors"],
        "warnings": report["warnings"],
        "notes": report["notes"],
        "confirmed_races": report["confirmed_races"],
        "refuted_candidates": report["refuted_candidates"],
        "unknown_candidates": report["unknown_candidates"],
        "findings": [
            {
                "code": f["code"],
                "severity": f["severity"],
                "verdict": f["verdict"],
                "spans": [[s["function"], s["uid"]] for s in f["spans"]],
                **({"message": f["message"]} if with_message else {}),
            }
            for f in report["findings"]
        ],
    }


def test_goldens_cover_every_program():
    assert set(LITMUS_GOLDEN["programs"]) == set(LITMUS_TESTS)
    assert set(CORPUS_GOLDEN["programs"]) == set(all_programs())


@pytest.mark.parametrize("name", sorted(LITMUS_TESTS))
def test_litmus_lint_matches_golden(session, name):
    report = session.lint(
        LintRequest(program=ProgramSpec.litmus(name), confirm=True)
    ).to_payload()
    assert _summarize(report) == LITMUS_GOLDEN["programs"][name]


@pytest.mark.parametrize("name", sorted(LITMUS_TESTS))
def test_well_synchronized_litmus_programs_lint_clean(session, name):
    """The headline acceptance gate: zero race findings (at warning
    severity or above) on every well-synchronized program, and every
    reported race on the racy shapes carries a concrete witness."""
    report = session.lint(
        LintRequest(program=ProgramSpec.litmus(name), confirm=True)
    )
    race_findings = [
        f for f in report.findings if f.code.startswith("RACE")
    ]
    if LITMUS_TESTS[name].well_synchronized:
        assert not [f for f in race_findings if f.severity != "note"], (
            f"{name} is well-synchronized but lints racy"
        )
    else:
        confirmed = [f for f in race_findings if f.verdict == "confirmed"]
        assert confirmed, f"{name} is racy but nothing was confirmed"
        for finding in confirmed:
            assert finding.witness, f"{name}: confirmed race lacks a witness"


def test_dekker_refuted_candidates_pinned(session):
    """Precision regression: dekker's three z candidates must stay
    exhaustively refuted (notes), never confirmed."""
    golden = LITMUS_GOLDEN["programs"]["dekker"]
    assert golden["errors"] == golden["warnings"] == 0
    assert golden["refuted_candidates"] == 3
    assert all(f["verdict"] == "refuted" for f in golden["findings"])


@pytest.mark.parametrize("name", sorted(all_programs()))
def test_corpus_lint_matches_golden(session, name):
    report = session.lint(
        LintRequest(program=ProgramSpec.corpus(name), confirm=False)
    ).to_payload()
    assert _summarize(report) == CORPUS_GOLDEN["programs"][name]


@pytest.mark.parametrize("name", sorted(ARCH_GOLDEN["programs"]))
def test_arch_lint_matches_golden(session, name):
    """Power-backend lint replay: pins FENCE104 suboptimal-greedy
    findings with their exact cycle costs and witness cuts."""
    report = session.lint(
        LintRequest(
            program=ProgramSpec.corpus(name),
            model="power",
            arch="power",
            confirm=False,
        )
    ).to_payload()
    assert _summarize(report, with_message=True) == (
        ARCH_GOLDEN["programs"][name]
    )


def test_fence104_pinned_in_arch_golden():
    """At least one corpus program must carry a strictly-cheaper
    optimal plan on Power, surfaced as FENCE104 notes."""
    f104 = {
        name: [f for f in s["findings"] if f["code"] == "FENCE104"]
        for name, s in ARCH_GOLDEN["programs"].items()
    }
    assert all(f104.values()), "every arch-golden program pins FENCE104"
    matrix = " ".join(f["message"] for f in f104["matrix"])
    for cost in ("3249", "3194", "659", "557", "386", "331"):
        assert cost in matrix
    assert "witness cut" in matrix


def test_corpus_noise_floor():
    """16 of 17 corpus programs lint clean; canneal's two warnings are
    its genuine unprotected ``cn_accepted`` lost-update race."""
    noisy = {
        name: summary
        for name, summary in CORPUS_GOLDEN["programs"].items()
        if summary["errors"] or summary["warnings"]
    }
    assert set(noisy) == {"canneal"}
    assert noisy["canneal"]["warnings"] == 2
    assert all(
        f["code"] == "RACE001" for f in noisy["canneal"]["findings"]
    )
