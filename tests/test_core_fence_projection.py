"""Tests for the cross-block interval projection ablation."""

import pytest

from repro.analysis.escape import EscapeInfo
from repro.core.fence_min import apply_plan, plan_fences
from repro.core.machine_models import X86_TSO
from repro.core.orderings import generate_orderings
from repro.core.pipeline import PipelineVariant, place_fences
from repro.frontend import compile_source
from repro.ir import Fence, FenceKind
from repro.memmodel.litmus import LITMUS_TESTS
from repro.memmodel.sc import SCExplorer
from repro.memmodel.tso import TSOExplorer

CROSS_BLOCK = """
global a; global b; global c;
fn f(tid) {
  a = 1;
  if (c) { local r = b; observe("r", r); }
}
thread f(0);
"""


def _plan(projection: str):
    func = compile_source(CROSS_BLOCK, "t").functions["f"]
    esc = EscapeInfo(func)
    orderings = generate_orderings(func, esc)
    return func, orderings, plan_fences(
        func, orderings, X86_TSO, projection=projection
    )


def test_source_projection_fences_source_block():
    _, _, plan = _plan("source")
    assert all(f.block_label == "entry" for f in plan.full_fences)


def test_target_projection_fences_target_block():
    # The same-block pair (a=1 -> the branch's c load) stays in entry;
    # the cross-block pair (a=1 -> b load) moves into the then-block.
    _, _, plan = _plan("target")
    labels = {f.block_label for f in plan.full_fences}
    assert any(l.startswith("then") for l in labels)
    source_labels = {f.block_label for f in _plan("source")[2].full_fences}
    assert source_labels == {"entry"}


def test_unknown_projection_rejected():
    func = compile_source(CROSS_BLOCK, "t").functions["f"]
    esc = EscapeInfo(func)
    orderings = generate_orderings(func, esc)
    with pytest.raises(ValueError, match="projection"):
        plan_fences(func, orderings, X86_TSO, projection="diagonal")


def _enforced_target_side(func, orderings) -> bool:
    """Target projection soundness: a barrier precedes the destination
    within its block (or sits between the endpoints when same-block)."""
    for ordering in orderings:
        if not X86_TSO.needs_full_fence(ordering.kind):
            continue
        if ordering.src.inst.is_atomic_rmw() or ordering.dst.inst.is_atomic_rmw():
            continue
        ub, ui = func.position(ordering.src.inst)
        vb, vi = func.position(ordering.dst.inst)
        if ub == vb and ui < vi:
            window = func.blocks[ub].instructions[ui + 1 : vi]
        else:
            window = func.blocks[vb].instructions[:vi]
        if not any(
            (isinstance(i, Fence) and i.kind is FenceKind.FULL) or i.is_atomic_rmw()
            for i in window
        ):
            return False
    return True


def test_target_projection_covers_all_orderings():
    func, orderings, plan = _plan("target")
    apply_plan(func, plan)
    assert _enforced_target_side(func, orderings)


@pytest.mark.parametrize("projection", ["source", "target"])
def test_both_projections_restore_sc_on_dekker(projection):
    # End-to-end soundness through the model checker, for both choices.
    from repro.analysis.reachability import ReachabilityTable
    from repro.core.pruning import prune_orderings
    from repro.core.signatures import Variant, detect_acquires

    test = LITMUS_TESTS["dekker"]
    fenced = test.compile()
    for func in fenced.functions.values():
        esc = EscapeInfo(func)
        orderings = generate_orderings(func, esc, ReachabilityTable(func))
        sync = detect_acquires(func, Variant.CONTROL).sync_reads
        pruned, _ = prune_orderings(orderings, sync)
        plan = plan_fences(
            func, pruned, X86_TSO, entry_fence=bool(sync), projection=projection
        )
        apply_plan(func, plan)
    sc = SCExplorer(test.compile()).explore()
    tso = TSOExplorer(fenced).explore()
    assert tso.observation_sets() == sc.observation_sets()


def test_projections_can_disagree_on_counts():
    # A shape where one fence (target side) covers two cross-block
    # orderings that source-side projection needs two fences for.
    src = """
    global a; global b; global c; global sel;
    fn f(tid) {
      if (sel) { a = 1; } else { b = 2; }
      local r = c;
      observe("r", r);
    }
    thread f(0);
    """
    func_s = compile_source(src, "s").functions["f"]
    esc_s = EscapeInfo(func_s)
    plan_s = plan_fences(
        func_s, generate_orderings(func_s, esc_s), X86_TSO, projection="source"
    )
    func_t = compile_source(src, "t").functions["f"]
    esc_t = EscapeInfo(func_t)
    plan_t = plan_fences(
        func_t, generate_orderings(func_t, esc_t), X86_TSO, projection="target"
    )
    assert len(plan_t.full_fences) < len(plan_s.full_fences)
