"""The shared cross-worker artifact store.

Every cluster worker points its session's
:class:`~repro.query.engine.PersistentQueryCache` at one shared
directory, so persistable query results (content-fingerprint-keyed)
written by any worker warm-start every other worker: a freshly
restarted process, or a sibling that inherited a shard after a
rebalance, restores facts from disk instead of recomputing them.

Concurrency discipline: the consistent-hash router makes each program
single-writer in steady state (all requests for a name land on one
worker), and :meth:`PersistentQueryCache.store` publishes entries with
an atomic write-to-temp + rename, so the transient multi-writer
windows around resharding are harmless — readers only ever observe
complete entries, and same-fingerprint writers race toward identical
content anyway.

The :class:`ArtifactStore` here owns the *directory lifecycle*: an
explicit directory is shared and left alone; when none is configured
the cluster provisions a temporary one and removes it on shutdown.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path


class ArtifactStore:
    """Directory lifecycle + observability for the shared store."""

    def __init__(self, directory: str | Path, owned: bool = False) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Whether the cluster provisioned (and must clean up) the dir.
        self.owned = owned

    @classmethod
    def create(cls, directory: str | Path | None) -> "ArtifactStore":
        """An explicitly configured shared directory, or a cluster-owned
        temporary one so warm-starting works out of the box."""
        if directory is not None:
            return cls(directory, owned=False)
        return cls(
            tempfile.mkdtemp(prefix="repro-cluster-store-"), owned=True
        )

    def stats(self) -> dict:
        """Entry count and byte footprint (best-effort under churn)."""
        entries = 0
        size = 0
        try:
            for path in self.directory.glob("*.json"):
                try:
                    size += path.stat().st_size
                except OSError:  # pragma: no cover - raced unlink
                    continue
                entries += 1
        except OSError:  # pragma: no cover - store dir vanished
            pass
        return {
            "directory": str(self.directory),
            "entries": entries,
            "bytes": size,
            "owned": self.owned,
        }

    def close(self) -> None:
        """Remove a cluster-owned temporary store; keep shared ones."""
        if self.owned:
            shutil.rmtree(self.directory, ignore_errors=True)
