"""Exhaustive exploration of ARM/POWER-style relaxed memory models.

The TSO/PSO explorers model store-side relaxation only (FIFO /
per-address store buffers). ARMv7 and POWER additionally reorder the
*load* side: a later load may be satisfied before an earlier one
(``r->r``), which is what makes unfenced message passing break on real
hardware even though it is TSO-safe. This explorer composes two
bounded mechanisms:

* **Grouped per-address store buffers** (``w->w`` / ``w->r``): like
  PSO, each thread buffers stores per address; differently-addressed
  stores drain in any order *within a group*. A store-ordering fence
  flavor (``lwsync``, ``dmbst``, ``eieio``) seals the current group —
  groups drain oldest-first, so pre-fence stores reach memory before
  post-fence stores — without waiting for a drain the way a full fence
  (``sync``, ``dmb``, generic FULL) must.
* **Bounded stale reads** (``r->r`` / ``r->w``): memory keeps one
  previous value per address, and each thread tracks the addresses it
  has observed at their current version. A load of an unobserved
  address may nondeterministically return the previous value — the
  operational image of a load satisfied early out of a stale cache
  line. Per-location coherence holds: once a thread reads the current
  value it can never read the older one. A fence flavor killing
  ``r->r`` marks every address observed, forcing fresh reads.

Load buffering proper (the LB litmus shape) is *not* producible: a
load's value is needed to continue executing, so it can never be
delayed past a dependent store. The model is therefore slightly
stronger than the ISA on pure ``r->w``; placement still fences those
delays (the machine model declares them reorderable), the explorer
just cannot witness their absence — the conservative direction.

RMWs are LL/SC-style: they act on coherent memory (own buffered stores
to the same address must drain first) but carry no implicit barrier —
``rmw_is_full_fence=False`` on these models, so the placement
machinery fences around them rather than leaning on them.

Fence flavors resolve through the explorer's arch backend
(:mod:`repro.arch.backend`); a flavor the backend does not know (a
cross-compiled program) conservatively acts as a full fence.

State is bounded like PSO's: buffers are finite because programs are,
and the stale dimension holds at most one old value per address.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.backend import ALL_KINDS, get_backend
from repro.core.machine_models import OrderKind
from repro.ir.function import Program
from repro.ir.instructions import Fence, FenceKind
from repro.memmodel.explore import (
    LOCAL_FP,
    CoreExplorer,
    Footprint,
    Transition,
)
from repro.memmodel.interpreter import ExecutionError, ThreadState
from repro.memmodel.sc import Outcome, make_outcome

from repro.memmodel.storebuf import AddrFifoMap, fifo_get, fifo_set

# One group: address -> FIFO of pending values (oldest first), sorted
# by address for hashability (the shared per-address FIFO-map shape of
# repro.memmodel.storebuf, which PSO uses as its whole buffer). A
# thread's buffer is a tuple of groups, oldest group first; only the
# oldest group drains.
Group = AddrFifoMap
GroupedBuffer = tuple[Group, ...]

_group_get = fifo_get
_group_set = fifo_set


def _buffer_lookup(buffer: GroupedBuffer, addr: int) -> Optional[int]:
    """Newest own-buffered value for ``addr`` (store forwarding)."""
    for group in reversed(buffer):
        values = _group_get(group, addr)
        if values:
            return values[-1]
    return None


def _buffer_has(buffer: GroupedBuffer, addr: int) -> bool:
    return any(_group_get(group, addr) for group in buffer)


def _buffer_append(buffer: GroupedBuffer, addr: int, value: int) -> GroupedBuffer:
    if not buffer:
        buffer = ((),)
    newest = buffer[-1]
    newest = _group_set(newest, addr, _group_get(newest, addr) + (value,))
    return buffer[:-1] + (newest,)


def _buffer_empty(buffer: GroupedBuffer) -> bool:
    return all(not group for group in buffer)


def _seal(buffer: GroupedBuffer) -> GroupedBuffer:
    """Start a new store group (no-op when nothing is buffered)."""
    if not buffer or not buffer[-1]:
        return buffer
    return buffer + ((),)


class RelaxedExplorer(CoreExplorer):
    """DPOR DFS over the relaxed state graph for one arch backend.

    State = (memory, prev, threads, buffers, fresh)."""

    MODEL_KEY = "relaxed"
    #: Arch whose flavor catalog gives fences their kill-sets.
    arch = "arm"
    #: This explorer gives flavored fences their declared (weaker)
    #: kill-set semantics, so differential validation of *flavored*
    #: placements is meaningful here. Flavor-blind explorers (TSO/PSO
    #: treat every full fence as mfence-strength) must not claim this,
    #: or the oracle would validate flavor selections it cannot model.
    HONORS_FLAVORS = True

    def __init__(
        self,
        program: Program,
        max_states: Optional[int] = None,
        max_steps_per_thread: int = 100_000,
        observe_globals: Optional[list[str]] = None,
        **core_opts,
    ) -> None:
        super().__init__(
            program,
            max_states,
            max_steps_per_thread,
            observe_globals,
            **core_opts,
        )
        self.backend = get_backend(self.arch)

    # --- fence semantics --------------------------------------------------
    def _fence_kills(self, inst: Fence) -> frozenset[OrderKind]:
        if inst.kind is not FenceKind.FULL:
            return frozenset()
        if inst.flavor is None:
            return ALL_KINDS
        if self.backend.has_flavor(inst.flavor):
            return self.backend.flavor(inst.flavor).kills
        return ALL_KINDS  # foreign flavor: act as a full fence

    # --- state plumbing ---------------------------------------------------
    def initial_state(self) -> tuple:
        threads = tuple(self.executor.start_all())
        return (
            self.layout.initial_memory(),
            {},  # prev: one stale candidate value per address
            threads,
            tuple(() for _ in threads),
            tuple(frozenset() for _ in threads),
        )

    def threads_of(self, state: tuple) -> tuple[ThreadState, ...]:
        return state[2]

    def state_parts(self, state: tuple) -> tuple[tuple, tuple]:
        memory, prev, _threads, buffers, fresh = state
        shared = (
            tuple(sorted(memory.items())),
            tuple(sorted(prev.items())),
        )
        parts = tuple(
            (buffers[i], tuple(sorted(fresh[i]))) for i in range(len(buffers))
        )
        return shared, parts

    def buffered_addrs(self, state: tuple, tid: int) -> frozenset[int]:
        return frozenset(
            addr
            for group in state[3][tid]
            for addr, values in group
            if values
        )

    def outcome_of(self, state: tuple) -> Outcome:
        memory, _prev, threads, _buffers, _fresh = state
        return make_outcome(self.layout, memory, threads, self.observe_globals)

    def check_final(self, state: tuple) -> None:
        if any(not _buffer_empty(b) for b in state[3]):  # pragma: no cover
            raise ExecutionError("deadlock with non-empty buffer")

    @staticmethod
    def _publish(
        prev: dict[int, int],
        memory: dict[int, int],
        fresh: list[frozenset[int]],
        writer: int,
        addr: int,
        value: int,
    ) -> None:
        """Make ``value`` the current value of ``addr`` (written by
        thread ``writer``): the old value becomes the stale candidate,
        every *other* thread loses its has-seen-current mark, and the
        writer (who must never read older than its own store) gains it.
        """
        prev[addr] = memory.get(addr, 0)
        memory[addr] = value
        for t in range(len(fresh)):
            if t == writer:
                fresh[t] = fresh[t] | {addr}
            else:
                fresh[t] = fresh[t] - {addr}

    # --- transitions ------------------------------------------------------
    def transitions(self, state: tuple) -> list[Transition]:
        memory, prev, threads, buffers, fresh = state
        out: list[Transition] = []

        # (a) drain the head of any per-address queue of the OLDEST
        # group — addresses drain independently (PSO-style), groups
        # drain in order (store-fence seals).
        for i, buffer in enumerate(buffers):
            if not buffer:
                continue
            oldest = buffer[0]
            for addr, values in oldest:
                new_memory = dict(memory)
                new_prev = dict(prev)
                new_fresh = list(fresh)
                self._publish(new_prev, new_memory, new_fresh, i, addr, values[0])
                new_group = _group_set(oldest, addr, values[1:])
                rest = buffer[1:]
                new_buffer = ((new_group,) + rest) if new_group else rest
                # Dropping an emptied oldest group may expose an
                # empty sealed group; drop those too.
                while new_buffer and not new_buffer[0]:
                    new_buffer = new_buffer[1:]
                new_buffers = buffers[:i] + (new_buffer,) + buffers[i + 1 :]
                out.append(
                    Transition(
                        ("f", i, addr),
                        i,
                        False,
                        self._addr_fp(addr, writes=True),
                        (
                            (
                                new_memory,
                                new_prev,
                                threads,
                                new_buffers,
                                tuple(new_fresh),
                            ),
                        ),
                    )
                )

        # (b) thread steps.
        for i, ts in enumerate(threads):
            if ts.done:
                continue
            t = self._step(state, i)
            if t is not None:
                out.append(t)
        return out

    def _step(self, state: tuple, i: int) -> Optional[Transition]:
        """Thread ``i``'s next action as one transition (several
        successors for a load with a stale-value choice); None when
        blocked (RMW/full fence waiting on the buffer)."""
        memory, prev, threads, buffers, fresh = state
        advanced, clone, pending = self._advance(threads, i)

        if pending is None:
            return Transition(
                ("t", i),
                i,
                True,
                LOCAL_FP,
                ((memory, prev, advanced, buffers, fresh),),
            )

        buffer = buffers[i]

        if pending.kind == "load":
            addr = pending.addr
            # An acquire load orders itself before every later access
            # of its thread: like a stale-killing fence immediately
            # after it, no post-acquire read may be satisfied stale
            # (r->r / r->w killed). The acquire itself may still read
            # the stale value — acquire means "ordered", not "latest".
            acquire = pending.inst.ordering == "acquire"  # type: ignore[union-attr]
            forwarded = _buffer_lookup(buffer, addr)
            choices: list[tuple[int, bool]] = []  # (value, marks_fresh)
            if forwarded is not None:
                choices.append((forwarded, False))
            else:
                current = memory.get(addr, 0)
                choices.append((current, True))
                if addr in prev and addr not in fresh[i] and prev[addr] != current:
                    choices.append((prev[addr], False))
            successors = []
            for n, (value, marks_fresh) in enumerate(choices):
                # Last choice commits on the advanced clone itself;
                # earlier ones re-clone it instead of replaying the
                # invisible prefix.
                if n == len(choices) - 1:
                    new_threads, target = advanced, clone
                else:
                    target = clone.clone()
                    new_threads = (
                        advanced[:i] + (target,) + advanced[i + 1 :]
                    )
                self.executor.commit(target, pending, value)
                new_fresh = fresh
                marks = fresh[i]
                if marks_fresh:
                    marks = marks | {addr}
                if acquire:
                    marks = marks | frozenset(prev)
                if marks is not fresh[i]:
                    new_fresh = fresh[:i] + (marks,) + fresh[i + 1 :]
                successors.append((memory, prev, new_threads, buffers, new_fresh))
            # Forwarded loads still count as shared reads for reduction
            # purposes: forwarding status flips once the own buffer
            # drains, so an "invisible" classification would hide the
            # dependence on rival writes landing after the drain.
            fp = self._addr_fp(addr, reads=True)
            if acquire and not fp.top:
                # Like the stale-killing fence: observes the whole
                # previous-value map, so it orders against every publish.
                fp = Footprint(reads=fp.reads, global_read=True)
            return Transition(("t", i), i, True, fp, tuple(successors))

        if pending.kind == "store":
            # A release store seals the current store group first, like
            # a store-ordering fence immediately before it: every
            # earlier buffered store publishes before this one (w->w
            # killed). Earlier reads already committed — this machine
            # cannot delay a satisfied read past a later store (see the
            # LB note above) — so sealing is the entire obligation; the
            # release itself stays buffered (w->r remains relaxed).
            if pending.inst.ordering == "release":  # type: ignore[union-attr]
                buffer = _seal(buffer)
            new_buffers = (
                buffers[:i]
                + (_buffer_append(buffer, pending.addr, pending.value),)
                + buffers[i + 1 :]
            )
            self.executor.commit(clone, pending)
            return Transition(
                ("t", i),
                i,
                True,
                LOCAL_FP,
                ((memory, prev, advanced, new_buffers, fresh),),
            )

        if pending.kind == "rmw":
            # LL/SC-style: needs the coherent current value, so own
            # buffered stores to this address must drain first — but no
            # implicit barrier: the rest of the buffer stays put.
            if _buffer_has(buffer, pending.addr):
                return None
            new_memory = dict(memory)
            new_prev = dict(prev)
            new_fresh = list(fresh)
            old = new_memory.get(pending.addr, 0)
            result, new = pending.rmw_result(old)
            if new is not None:
                self._publish(
                    new_prev, new_memory, new_fresh, i, pending.addr, new
                )
            else:
                new_fresh[i] = new_fresh[i] | {pending.addr}
            self.executor.commit(clone, pending, result)
            return Transition(
                ("t", i),
                i,
                True,
                self._addr_fp(pending.addr, reads=True, writes=True),
                ((new_memory, new_prev, advanced, buffers, tuple(new_fresh)),),
            )

        if pending.kind == "fence":
            kills = self._fence_kills(pending.inst)  # type: ignore[arg-type]
            if OrderKind.WR in kills and not _buffer_empty(buffer):
                return None  # full fence: wait for the buffer to drain
            new_buffers = buffers
            if OrderKind.WW in kills and OrderKind.WR not in kills:
                new_buffers = buffers[:i] + (_seal(buffer),) + buffers[i + 1 :]
            new_fresh = fresh
            stale_kill = OrderKind.RR in kills or OrderKind.RW in kills
            if stale_kill:
                # No pre-fence read may be satisfied stale anymore.
                new_fresh = (
                    fresh[:i] + (fresh[i] | frozenset(prev),) + fresh[i + 1 :]
                )
            self.executor.commit(clone, pending)
            # A stale-killing fence observes the whole previous-value
            # map, so it orders against every publish; a seal-only or
            # no-op fence is invisible to other threads.
            fp = Footprint(global_read=True) if stale_kill else LOCAL_FP
            return Transition(
                ("t", i),
                i,
                True,
                fp,
                ((memory, prev, advanced, new_buffers, new_fresh),),
            )

        raise ExecutionError(f"unknown action {pending.kind}")  # pragma: no cover


class ARMExplorer(RelaxedExplorer):
    """ARMv7-style relaxed exploration (``dmb`` flavor catalog)."""

    MODEL_KEY = "arm"
    arch = "arm"


class POWERExplorer(RelaxedExplorer):
    """POWER relaxed exploration (``sync``/``lwsync``/``eieio`` catalog)."""

    MODEL_KEY = "power"
    arch = "power"
