"""The end-to-end fence-placement pipeline.

For every function: escape analysis -> acquire detection (per variant)
-> Pensieve ordering generation -> Table-I pruning -> locally-optimized
fence minimization -> (optionally) fence insertion.

Variants:

* ``PENSIEVE`` — the baseline the paper compares against: every
  escaping read is treated as a potential acquire, so nothing prunes;
  a function-entry fence goes into every function with escaping reads.
* ``CONTROL`` — acquires from the control signature only (Listing 1).
* ``ADDRESS_CONTROL`` — acquires from both signatures (Listing 3).

The detected-acquire variants place a function-entry fence only in
functions containing synchronizing reads (the paper's modification in
Section 4.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.aliasing import PointsTo
from repro.analysis.escape import EscapeInfo
from repro.core.fence_min import FencePlan, apply_plan, plan_fences
from repro.core.machine_models import X86_TSO, MemoryModel, OrderKind
from repro.core.orderings import OrderingSet, generate_orderings
from repro.core.pruning import PruneStats, aggregate_surviving_fraction, prune_orderings
from repro.core.signatures import Variant
from repro.engine.context import AnalysisContext
from repro.ir.function import Function, Program
from repro.ir.instructions import Instruction
from repro.util.orderedset import OrderedSet


class PipelineVariant(enum.Enum):
    """Which analysis drives pruning."""

    PENSIEVE = "pensieve"
    CONTROL = "control"
    ADDRESS_CONTROL = "address+control"


def __getattr__(name: str):
    # Deprecated: the CLI-facing name -> variant dict moved into the
    # detection-variant registry (repro.registry.variants).
    if name == "VARIANTS_BY_VALUE":
        from repro.api._compat import variants_by_value

        return variants_by_value()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class FunctionAnalysis:
    """Everything the pipeline computed for one function."""

    function: Function
    points_to: PointsTo
    escape_info: EscapeInfo
    sync_reads: OrderedSet[Instruction]
    orderings: OrderingSet
    pruned: OrderingSet
    prune_stats: PruneStats
    plan: FencePlan


@dataclass
class ProgramAnalysis:
    """Whole-program pipeline result plus aggregate statistics."""

    program: Program
    variant: PipelineVariant
    model: MemoryModel
    functions: dict[str, FunctionAnalysis] = field(default_factory=dict)
    #: Per-function :class:`~repro.arch.lowering.LoweredPlan`s, filled
    #: by :func:`insert_planned_fences` when an arch backend lowered
    #: this analysis's plans on insertion — lets reporting summarize
    #: the flavors actually inserted without lowering a second time.
    lowered_plans: "dict[str, object] | None" = None

    # --- aggregates used by the experiments -----------------------------
    @property
    def total_escaping_reads(self) -> int:
        return sum(len(fa.escape_info.escaping_reads) for fa in self.functions.values())

    @property
    def total_sync_reads(self) -> int:
        return sum(len(fa.sync_reads) for fa in self.functions.values())

    @property
    def acquire_fraction(self) -> float:
        """Fraction of escaping reads marked acquire (Fig. 7's metric)."""
        total = self.total_escaping_reads
        if total == 0:
            return 0.0
        return self.total_sync_reads / total

    def ordering_counts(self, pruned: bool = True) -> dict[OrderKind, int]:
        counts = {kind: 0 for kind in OrderKind}
        for fa in self.functions.values():
            source = fa.pruned if pruned else fa.orderings
            for kind, n in source.count_by_kind().items():
                counts[kind] += n
        return counts

    @property
    def total_orderings(self) -> int:
        return sum(self.ordering_counts(pruned=True).values())

    @property
    def full_fence_count(self) -> int:
        """Static full fences, entry fences included (Fig. 9's metric)."""
        return sum(fa.plan.full_count for fa in self.functions.values())

    @property
    def compiler_fence_count(self) -> int:
        return sum(fa.plan.compiler_count for fa in self.functions.values())

    @property
    def surviving_fraction(self) -> float:
        """Ordering-count-weighted surviving fraction over the program.

        Weighting by each function's pre-prune ordering count (rather
        than averaging per-function fractions) keeps functions with
        zero orderings — whose per-function fraction is a vacuous
        1.0 — from inflating the aggregate.
        """
        return aggregate_surviving_fraction(
            fa.prune_stats for fa in self.functions.values()
        )


#: Fence-synthesis strategies: ``greedy`` is the paper's per-block
#: count-minimizing stabbing, ``optimal`` the min-cost synthesis of
#: :mod:`repro.synth` (flavored-cost objective, never costlier).
SYNTHESIS_MODES = ("greedy", "optimal")


def _check_synthesis(synthesis: str) -> str:
    if synthesis not in SYNTHESIS_MODES:
        raise ValueError(
            f"unknown synthesis {synthesis!r}; "
            f"known: {', '.join(SYNTHESIS_MODES)}"
        )
    return synthesis


def insert_planned_fences(
    result: ProgramAnalysis, backend=None, synthesis: str = "greedy"
) -> None:
    """Insert every function's planned fences into its IR.

    With an arch ``backend`` (:class:`~repro.arch.backend.ArchBackend`)
    each plan is lowered to the cheapest sufficient fence flavors
    first; otherwise generic full fences go in. Shared by
    :meth:`FencePlacer.place` and the null-detector path of
    :class:`repro.registry.variants.DetectionVariant`.

    ``synthesis="optimal"`` (requires a backend) replaces the greedy
    plans with :mod:`repro.synth`'s min-cost placements — the same
    delay intervals, re-stabbed and re-flavored for minimum cycle
    cost.
    """
    _check_synthesis(synthesis)
    if backend is not None:
        from repro.arch.lowering import apply_lowered_plan, lower_plan

        if synthesis == "optimal":
            from repro.synth import synthesize_analysis

            result.lowered_plans, _ = synthesize_analysis(result, backend)
        else:
            result.lowered_plans = {
                name: lower_plan(fa.plan, backend)
                for name, fa in result.functions.items()
            }
        for name, fa in result.functions.items():
            apply_lowered_plan(fa.function, result.lowered_plans[name])
    else:
        # Without a flavor catalog every full fence costs the same, and
        # the greedy count-minimal plan is already cost-minimal.
        for fa in result.functions.values():
            apply_plan(fa.function, fa.plan)


class FencePlacer:
    """Configurable pipeline runner.

    ``interprocedural=True`` swaps the per-function detectors for the
    whole-program summary analysis
    (:mod:`repro.core.interprocedural`), catching acquires whose read
    and consuming branch live in different functions — the paper's
    future-work soundness step.
    """

    def __init__(
        self,
        variant: PipelineVariant = PipelineVariant.CONTROL,
        model: MemoryModel = X86_TSO,
        interprocedural: bool = False,
        backend=None,
        synthesis: str = "greedy",
    ) -> None:
        self.variant = variant
        self.model = model
        self.interprocedural = interprocedural
        #: Optional :class:`~repro.arch.backend.ArchBackend`: when set,
        #: :meth:`place` lowers each plan to the cheapest sufficient
        #: fence flavors instead of inserting generic full fences.
        self.backend = backend
        #: Fence synthesis strategy (:data:`SYNTHESIS_MODES`); only
        #: ``optimal`` changes behavior, and only with a backend.
        self.synthesis = _check_synthesis(synthesis)

    def _detector_variant(self) -> Variant:
        return (
            Variant.CONTROL
            if self.variant is PipelineVariant.CONTROL
            else Variant.ADDRESS_CONTROL
        )

    # --- per-function ----------------------------------------------------
    def analyze_function(
        self,
        func: Function,
        sync_reads_override: OrderedSet[Instruction] | None = None,
        context: AnalysisContext | None = None,
    ) -> FunctionAnalysis:
        """Analyze one function; facts come from ``context`` (a private
        one is created when none is supplied)."""
        ctx = context if context is not None else AnalysisContext()
        points_to = ctx.points_to(func)
        escape_info = ctx.escape_info(func)
        reach = ctx.reachability(func)

        if sync_reads_override is not None:
            sync_reads = sync_reads_override
        elif self.variant is PipelineVariant.PENSIEVE:
            # No acquire knowledge: every escaping read could be one.
            sync_reads = escape_info.escaping_reads
        else:
            sync_reads = ctx.acquires(func, self._detector_variant()).sync_reads

        orderings = generate_orderings(func, escape_info, reach)
        pruned, stats = prune_orderings(orderings, sync_reads)

        # Entry fence: enforces interprocedural w->r orderings ending in
        # this function; pointless if the hardware orders w->r itself.
        entry_fence = bool(sync_reads) and self.model.needs_full_fence(OrderKind.WR)
        plan = plan_fences(func, pruned, self.model, entry_fence=entry_fence)
        return FunctionAnalysis(
            function=func,
            points_to=points_to,
            escape_info=escape_info,
            sync_reads=sync_reads,
            orderings=orderings,
            pruned=pruned,
            prune_stats=stats,
            plan=plan,
        )

    # --- whole program ------------------------------------------------------
    def analyze(
        self, program: Program, context: AnalysisContext | None = None
    ) -> ProgramAnalysis:
        """Run the pipeline; no IR mutation.

        A supplied ``context`` shares its memoized facts across
        pipeline variants and with other consumers (delay-set analysis,
        signature studies) of the same IR.
        """
        ctx = context if context is not None else AnalysisContext(program)
        if ctx.program is None:
            ctx.program = program
        elif ctx.program is not program:
            # A context is per-program: its function-keyed facts would
            # simply miss, but the interprocedural memo is keyed by
            # variant only and would hand back the *other* program's
            # acquire overrides.
            raise ValueError(
                "AnalysisContext is bound to a different program "
                f"({ctx.program.name!r}); create one per compiled program"
            )
        overrides: dict[str, OrderedSet[Instruction]] = {}
        if self.interprocedural and self.variant is not PipelineVariant.PENSIEVE:
            overrides = ctx.interprocedural(self._detector_variant()).acquires
        result = ProgramAnalysis(program, self.variant, self.model)
        for name in program.functions:
            result.functions[name] = self.analyze_function(
                program.functions[name], overrides.get(name), context=ctx
            )
        return result

    def place(
        self, program: Program, context: AnalysisContext | None = None
    ) -> ProgramAnalysis:
        """Run the pipeline and insert the planned fences into ``program``.

        With an arch ``backend`` configured, plans are lowered to
        flavored fences (cheapest sufficient flavor per delay cut)
        before insertion; otherwise generic full fences go in, exactly
        as before. Insertion mutates the IR; a supplied ``context`` is
        refreshed afterwards, so its query engine evicts exactly the
        fenced functions' fact subgraphs and the context stays safe to
        reuse (untouched functions remain cache hits).
        """
        result = self.analyze(program, context=context)
        insert_planned_fences(result, self.backend, synthesis=self.synthesis)
        if context is not None:
            context.refresh()
        return result


def analyze_program(
    program: Program,
    variant: PipelineVariant = PipelineVariant.CONTROL,
    model: MemoryModel = X86_TSO,
    context: AnalysisContext | None = None,
) -> ProgramAnalysis:
    """One-call analysis without mutation (the common entry point)."""
    return FencePlacer(variant, model).analyze(program, context=context)


def place_fences(
    program: Program,
    variant: PipelineVariant = PipelineVariant.CONTROL,
    model: MemoryModel = X86_TSO,
    context: AnalysisContext | None = None,
) -> ProgramAnalysis:
    """One-call analysis + fence insertion (mutates ``program``)."""
    return FencePlacer(variant, model).place(program, context=context)
