"""A deterministic insertion-ordered set.

Python ``set`` iteration order depends on hash seeds; compiler analyses
that iterate worklists must be deterministic for reproducible fence
placement, so we use this thin wrapper over ``dict`` (which preserves
insertion order) everywhere order can leak into results.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Iterator, TypeVar

T = TypeVar("T", bound=Hashable)


class OrderedSet(Generic[T]):
    """Set with deterministic (insertion) iteration order.

    Supports the subset of the ``set`` API used by the analyses:
    membership, add/discard, update, union/intersection/difference,
    and iteration.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._items: dict[T, None] = dict.fromkeys(items)

    def add(self, item: T) -> None:
        self._items[item] = None

    def discard(self, item: T) -> None:
        self._items.pop(item, None)

    def remove(self, item: T) -> None:
        del self._items[item]

    def pop_first(self) -> T:
        """Remove and return the oldest element (FIFO worklist order)."""
        item = next(iter(self._items))
        del self._items[item]
        return item

    def update(self, items: Iterable[T]) -> None:
        for item in items:
            self._items[item] = None

    def union(self, other: Iterable[T]) -> "OrderedSet[T]":
        result = OrderedSet(self)
        result.update(other)
        return result

    def intersection(self, other: Iterable[T]) -> "OrderedSet[T]":
        other_set = set(other)
        return OrderedSet(item for item in self if item in other_set)

    def difference(self, other: Iterable[T]) -> "OrderedSet[T]":
        other_set = set(other)
        return OrderedSet(item for item in self if item not in other_set)

    def issubset(self, other: Iterable[T]) -> bool:
        other_set = set(other)
        return all(item in other_set for item in self)

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OrderedSet):
            return set(self._items) == set(other._items)
        if isinstance(other, (set, frozenset)):
            return set(self._items) == other
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - OrderedSet is mutable
        raise TypeError("OrderedSet is unhashable")

    def __repr__(self) -> str:
        return f"OrderedSet({list(self._items)!r})"

    def __or__(self, other: "OrderedSet[T]") -> "OrderedSet[T]":
        return self.union(other)

    def __and__(self, other: "OrderedSet[T]") -> "OrderedSet[T]":
        return self.intersection(other)

    def __sub__(self, other: "OrderedSet[T]") -> "OrderedSet[T]":
        return self.difference(other)
