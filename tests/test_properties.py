"""Property-based tests over randomly generated concurrent programs.

The heavy-weight invariants of the whole system:

* TSO is a weakening of SC: every SC outcome is TSO-reachable;
* a full fence after every store makes TSO coincide with SC;
* the pipeline's fences never *add* behaviours, and with the Pensieve
  marking they always restore SC;
* pruning returns a subset; Control acquires ⊆ Address+Control acquires
  ⊆ escaping reads;
* fence minimization leaves an enforcement point inside every interval
  that needs one;
* straight-line arithmetic executes with C semantics.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.escape import EscapeInfo
from repro.core.fence_min import apply_plan, plan_fences
from repro.core.machine_models import X86_TSO
from repro.core.orderings import generate_orderings
from repro.core.pipeline import PipelineVariant, place_fences
from repro.core.pruning import prune_orderings
from repro.core.signatures import Variant, detect_acquires
from repro.frontend import compile_source
from repro.ir import Fence, FenceKind
from repro.memmodel.sc import SCExplorer
from repro.memmodel.tso import TSOExplorer

VARS = ("x", "y", "z")

_op = st.one_of(
    st.tuples(st.just("store"), st.sampled_from(VARS), st.integers(1, 3)),
    st.tuples(st.just("load"), st.sampled_from(VARS), st.integers(0, 0)),
)


def _thread_source(name: str, ops, fence_after_stores: bool) -> str:
    lines = [f"fn {name}(tid) {{"]
    n_loads = sum(1 for op in ops if op[0] == "load")
    if n_loads:
        lines.append("  " + " ".join(f"local r{i} = 0;" for i in range(n_loads)))
    load_index = 0
    for op in ops:
        if op[0] == "store":
            lines.append(f"  {op[1]} = {op[2]};")
            if fence_after_stores:
                lines.append("  fence;")
        else:
            lines.append(f"  r{load_index} = {op[1]};")
            lines.append(f'  observe("{name}{load_index}", r{load_index});')
            load_index += 1
    lines.append("}")
    return "\n".join(lines)


@st.composite
def litmus_programs(draw):
    """Two short threads over three globals; at least one load."""
    t0 = draw(st.lists(_op, min_size=1, max_size=3))
    t1 = draw(st.lists(_op, min_size=1, max_size=3))
    if not any(op[0] == "load" for op in t0 + t1):
        t1 = t1 + [("load", "x", 0)]
    return t0, t1


def _build(ops_pair, fences: bool) -> str:
    t0, t1 = ops_pair
    parts = [f"global int {v};" for v in VARS]
    parts.append(_thread_source("a", t0, fences))
    parts.append(_thread_source("b", t1, fences))
    parts.append("thread a(0);")
    parts.append("thread b(1);")
    return "\n".join(parts)


_explorer_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(litmus_programs())
@_explorer_settings
def test_sc_outcomes_subset_of_tso(ops_pair):
    src = _build(ops_pair, fences=False)
    sc = SCExplorer(compile_source(src, "p")).explore()
    tso = TSOExplorer(compile_source(src, "p")).explore()
    assert sc.complete and tso.complete
    assert sc.observation_sets() <= tso.observation_sets()


@given(litmus_programs())
@_explorer_settings
def test_fence_after_every_store_restores_sc(ops_pair):
    unfenced = _build(ops_pair, fences=False)
    fenced = _build(ops_pair, fences=True)
    sc = SCExplorer(compile_source(unfenced, "p")).explore()
    tso = TSOExplorer(
        compile_source(fenced, "p", include_manual_fences=True)
    ).explore()
    assert tso.observation_sets() == sc.observation_sets()


@given(litmus_programs())
@_explorer_settings
def test_pensieve_pipeline_restores_sc(ops_pair):
    src = _build(ops_pair, fences=False)
    fenced = compile_source(src, "p")
    place_fences(fenced, PipelineVariant.PENSIEVE)
    sc = SCExplorer(compile_source(src, "p")).explore()
    tso = TSOExplorer(fenced).explore()
    assert tso.observation_sets() == sc.observation_sets()


@given(litmus_programs(), st.sampled_from(list(PipelineVariant)))
@_explorer_settings
def test_pipeline_fences_never_add_behaviours(ops_pair, variant):
    src = _build(ops_pair, fences=False)
    fenced = compile_source(src, "p")
    place_fences(fenced, variant)
    base = TSOExplorer(compile_source(src, "p")).explore()
    restricted = TSOExplorer(fenced).explore()
    sc = SCExplorer(compile_source(src, "p")).explore()
    assert restricted.observation_sets() <= base.observation_sets()
    assert sc.observation_sets() <= restricted.observation_sets()


# --- analysis-level properties over random single functions ----------------

_stmt = st.one_of(
    st.tuples(st.just("store"), st.sampled_from(VARS), st.integers(0, 5)),
    st.tuples(st.just("load"), st.sampled_from(VARS), st.integers(0, 0)),
    st.tuples(st.just("guard"), st.sampled_from(VARS), st.integers(0, 3)),
    st.tuples(st.just("rmw"), st.sampled_from(VARS), st.integers(1, 2)),
)


def _function_source(stmts) -> str:
    lines = ["global int x; global int y; global int z;", "fn f(tid) {", "  local t = 0;"]
    for i, (kind, var, val) in enumerate(stmts):
        if kind == "store":
            lines.append(f"  {var} = {val};")
        elif kind == "load":
            lines.append(f"  t = t + {var};")
        elif kind == "guard":
            lines.append(f"  if ({var} > {val}) {{ t = t + 1; }}")
        else:
            lines.append(f"  t = fadd(&{var}, {val});")
    lines.append("}")
    lines.append("thread f(0);")
    return "\n".join(lines)


@given(st.lists(_stmt, min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_acquire_set_inclusions(stmts):
    func = compile_source(_function_source(stmts), "p").functions["f"]
    esc = EscapeInfo(func)
    control = detect_acquires(func, Variant.CONTROL).sync_reads
    addr_ctrl = detect_acquires(func, Variant.ADDRESS_CONTROL).sync_reads
    assert set(control) <= set(addr_ctrl) <= set(esc.escaping_reads)


@given(st.lists(_stmt, min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_pruning_is_subset_and_pensieve_identity(stmts):
    func = compile_source(_function_source(stmts), "p").functions["f"]
    esc = EscapeInfo(func)
    orderings = generate_orderings(func, esc)
    sync = detect_acquires(func, Variant.CONTROL).sync_reads
    pruned, stats = prune_orderings(orderings, sync)
    assert stats.total_after <= stats.total_before
    key = lambda o: (id(o.src.inst), o.src.part, id(o.dst.inst), o.dst.part)  # noqa: E731
    assert {key(o) for o in pruned} <= {key(o) for o in orderings}
    # Pensieve marking (all escaping reads) prunes nothing.
    unpruned, identity_stats = prune_orderings(orderings, esc.escaping_reads)
    assert identity_stats.total_after == identity_stats.total_before


@given(st.lists(_stmt, min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_fence_min_covers_every_needed_ordering(stmts):
    func = compile_source(_function_source(stmts), "p").functions["f"]
    esc = EscapeInfo(func)
    orderings = generate_orderings(func, esc)
    plan = plan_fences(func, orderings, X86_TSO)
    apply_plan(func, plan)
    for ordering in orderings:
        if not X86_TSO.needs_full_fence(ordering.kind):
            continue
        if ordering.src.inst.is_atomic_rmw() or ordering.dst.inst.is_atomic_rmw():
            continue
        ub, ui = func.position(ordering.src.inst)
        vb, vi = func.position(ordering.dst.inst)
        block = func.blocks[ub]
        end = vi if (ub == vb and ui < vi) else len(block.instructions) - 1
        window = block.instructions[ui + 1 : end + 1]
        assert any(
            (isinstance(i, Fence) and i.kind is FenceKind.FULL) or i.is_atomic_rmw()
            for i in window
        ), (stmts, ordering)


# --- interpreter arithmetic vs Python ----------------------------------------


def _c_trunc_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


@given(
    st.integers(-100, 100),
    st.integers(-100, 100),
    st.integers(1, 50),
)
@settings(max_examples=60, deadline=None)
def test_arithmetic_matches_c_semantics(a, b, d):
    src = f"""
    global out[4];
    fn f(t) {{
      out[0] = {a} + {b} * 2;
      out[1] = {a} / {d};
      out[2] = {a} % {d};
      out[3] = ({a} < {b}) + ({a} == {b});
    }}
    thread f(0);
    """
    program = compile_source(src, "p")
    result = SCExplorer(program).explore()
    (outcome,) = result.outcomes
    finals = outcome.globals_dict()
    assert finals["out[0]"] == a + b * 2
    assert finals["out[1]"] == _c_trunc_div(a, d)
    assert finals["out[2]"] == a - _c_trunc_div(a, d) * d
    assert finals["out[3]"] == int(a < b) + int(a == b)


@given(litmus_programs())
@settings(max_examples=20, deadline=None)
def test_simulator_outcome_is_tso_reachable(ops_pair):
    # The deterministic simulator's result is one of the TSO outcomes.
    from repro.simulator import simulate

    src = _build(ops_pair, fences=False)
    stats = simulate(compile_source(src, "p"))
    sim_obs = tuple(
        sorted(
            (tid, label, value)
            for tid, obs in stats.observations.items()
            for label, value in obs
        )
    )
    tso = TSOExplorer(compile_source(src, "p")).explore()
    assert sim_obs in tso.observation_sets()


@given(litmus_programs())
@settings(max_examples=15, deadline=None)
def test_model_hierarchy_sc_tso_pso(ops_pair):
    # Relaxation hierarchy on random programs: SC ⊆ TSO ⊆ PSO outcomes.
    from repro.memmodel.pso import PSOExplorer

    src = _build(ops_pair, fences=False)
    sc = SCExplorer(compile_source(src, "p")).explore()
    tso = TSOExplorer(compile_source(src, "p")).explore()
    pso = PSOExplorer(compile_source(src, "p")).explore()
    assert sc.complete and tso.complete and pso.complete
    assert sc.observation_sets() <= tso.observation_sets() <= pso.observation_sets()


@given(litmus_programs())
@settings(max_examples=15, deadline=None)
def test_pso_pipeline_restores_sc(ops_pair):
    # Pensieve-marked placement targeted at PSO repairs PSO executions.
    from repro.core.machine_models import PSO as PSO_MODEL
    from repro.core.pipeline import FencePlacer
    from repro.memmodel.pso import PSOExplorer

    src = _build(ops_pair, fences=False)
    fenced = compile_source(src, "p")
    FencePlacer(PipelineVariant.PENSIEVE, PSO_MODEL).place(fenced)
    sc = SCExplorer(compile_source(src, "p")).explore()
    pso = PSOExplorer(fenced).explore()
    assert pso.observation_sets() == sc.observation_sets()
