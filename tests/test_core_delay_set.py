"""Unit tests for exact Shasha-Snir delay-set analysis."""

from repro.core.delay_set import DelaySetAnalysis
from repro.core.machine_models import OrderKind
from repro.frontend import compile_source
from repro.memmodel.litmus import LITMUS_TESTS


def _delays(program):
    return DelaySetAnalysis(program).compute()


def test_mp_delays():
    result = _delays(LITMUS_TESTS["mp"].compile())
    kinds = sorted(
        o.kind.value for delays in result.delays.values() for o in delays
    )
    # producer w->w (data before flag), consumer r->r (flag before data)
    assert kinds == ["r->r", "w->w"]


def test_sb_delays_are_wr():
    result = _delays(LITMUS_TESTS["sb"].compile())
    kinds = [o.kind for delays in result.delays.values() for o in delays]
    assert kinds == [OrderKind.WR, OrderKind.WR]


def test_dekker_delays_are_wr():
    result = _delays(LITMUS_TESTS["dekker"].compile())
    assert result.total_delays >= 2
    assert all(
        o.kind is OrderKind.WR
        for delays in result.delays.values()
        for o in delays
    )


def test_single_thread_no_delays():
    src = "global a; global b; fn f(t) { a = 1; b = 2; local r = a; } thread f(0);"
    result = _delays(compile_source(src, "t"))
    assert result.total_delays == 0


def test_disjoint_variables_no_delays():
    src = """
    global a; global b;
    fn f(t) { a = 1; local r = a; }
    fn g(t) { b = 1; local r = b; }
    thread f(0);
    thread g(1);
    """
    result = _delays(compile_source(src, "t"))
    assert result.total_delays == 0


def test_coherence_cycles_excluded_by_default():
    # CoRR: two reads of x in one thread vs a remote write of x. The
    # r->r delay is coherence-enforced and excluded by default.
    src = """
    global x;
    fn reader(t) { local r1 = x; local r2 = x; observe("a", r1); observe("b", r2); }
    fn writer(t) { x = 1; }
    thread reader(0);
    thread writer(1);
    """
    program = compile_source(src, "t")
    default = DelaySetAnalysis(program).compute()
    assert default.total_delays == 0
    raw = DelaySetAnalysis(program, exclude_coherence_cycles=False).compute()
    assert raw.total_delays > 0


def test_cycles_report_conflict_edges():
    result = _delays(LITMUS_TESTS["sb"].compile())
    assert result.cycles
    for cycle in result.cycles:
        assert cycle.conflicts  # every critical cycle has conflict edges
        assert len({n.thread for n in cycle.nodes}) >= 2


def test_delays_deduplicated_across_thread_instances():
    # The writer function is instantiated twice; its delay pair is
    # reported once per static function, not once per thread.
    src = """
    global x; global y;
    fn w(t) { x = 1; local r = y; observe("r", r); }
    fn v(t) { y = 1; local r = x; observe("r", r); }
    thread w(0);
    thread w(1);
    thread v(2);
    """
    result = _delays(compile_source(src, "t"))
    assert {o.kind for o in result.delays["w"]} == {OrderKind.WR}
    assert {o.kind for o in result.delays["v"]} == {OrderKind.WR}
    assert len(result.delays["w"]) == 1
    assert len(result.delays["v"]) == 1


def test_ordering_set_conversion(mp_program):
    result = _delays(mp_program)
    oset = result.ordering_set("producer")
    assert len(oset) == len(result.delays.get("producer", []))
    assert oset.function is mp_program.functions["producer"]


def test_rmw_halves_in_cycles():
    # A CAS-based protocol still yields delays around the RMW.
    src = """
    global l; global d;
    fn p(t) {
      d = 1;
      local o = xchg(&l, 1);
    }
    fn q(t) {
      local o = 0;
      while (o == 0) { o = l; }
      local r = d;
      observe("r", r);
    }
    thread p(0);
    thread q(1);
    """
    result = _delays(compile_source(src, "t"))
    assert result.total_delays >= 2
