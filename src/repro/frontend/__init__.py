"""Frontend: mini-C source -> IR.

The source language is the paper's multi-threaded "while" language with
pointers (Fig. 3), extended with arrays, atomics, and calls so the
evaluation workloads (synchronization kernels, SPLASH-2 models,
lock-free programs) can be written as readable source text.
"""

from __future__ import annotations

from repro.frontend.lexer import LexError, tokenize
from repro.frontend.lowering import LoweringError, lower_module
from repro.frontend.parser import ParseError, parse
from repro.ir.function import Program


def compile_source(
    source: str,
    name: str = "program",
    include_manual_fences: bool = False,
) -> Program:
    """Parse and lower mini-C source text into a verified IR program.

    ``include_manual_fences`` keeps explicit ``fence;`` / ``cfence;``
    statements (the expert manual placement of Section 5.3); by default
    they are stripped, producing the unfenced legacy program that the
    automated placements start from.
    """
    return lower_module(parse(source), name, include_manual_fences)


__all__ = [
    "LexError",
    "LoweringError",
    "ParseError",
    "compile_source",
    "lower_module",
    "parse",
    "tokenize",
]
