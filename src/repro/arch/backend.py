"""Architecture backends: fence ISAs, kill-sets, and cost models.

The delay-set + sync-read-detection pipeline is architecture-generic:
it ends in a set of *delay cuts* — program points where some subset of
the four ordering kinds (``r->r``, ``r->w``, ``w->r``, ``w->w``) must
be enforced. What an architecture contributes is (a) which kinds its
hardware reorders at all (the :class:`~repro.core.machine_models
.MemoryModel`), and (b) a menu of fence instructions — *flavors* —
each killing a subset of the kinds at a price. x86 sells exactly one
relevant fence (``mfence``, kills everything); POWER sells ``sync``
(everything, expensive), ``lwsync`` (everything except ``w->r``,
cheap), and ``eieio`` (store ordering only); ARM sells ``dmb``
variants. Alglave et al.'s "Don't sit on the fence" shows the
cost/precision action is exactly in choosing the weakest sufficient
flavor per cut — which is what :mod:`repro.arch.lowering` does with
the catalogs registered here.

An :class:`ArchBackend` is a plain data record in a
:class:`~repro.registry.core.Registry`; registering a new backend makes
it reachable from ``--arch`` on every CLI surface and from the
model-keyed lowering in the batch engine and oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.machine_models import MODELS as MACHINE_MODELS, OrderKind
from repro.registry.core import Registry

#: Every program-order ordering kind (the full kill-set).
ALL_KINDS: frozenset[OrderKind] = frozenset(OrderKind)


@dataclass(frozen=True)
class FenceFlavor:
    """One ISA fence instruction: which delay kinds it kills, at what cost.

    ``cumulative`` records whether the fence also orders *other*
    threads' stores observed before it (POWER's sync/lwsync are
    cumulative, eieio is not). The operational explorers here use a
    single shared memory order, so cumulativity never changes a
    verdict — it is carried as honest ISA metadata for rendering and
    for any future non-multi-copy-atomic explorer.
    """

    name: str
    kills: frozenset[OrderKind]
    cost: int
    cumulative: bool = True
    description: str = ""

    def sufficient_for(self, kinds: frozenset[OrderKind]) -> bool:
        """Does this flavor enforce every kind in ``kinds``?"""
        return kinds <= self.kills

    @property
    def is_full(self) -> bool:
        return self.kills == ALL_KINDS


@dataclass(frozen=True)
class ArchBackend:
    """One registered target architecture."""

    key: str
    display: str
    #: Default machine-model registry key driving placement for this
    #: arch (``repro analyze --arch power`` analyzes under it).
    model_key: str
    #: Fence ISA, registration order = tiebreak order for equal costs.
    flavors: tuple[FenceFlavor, ...]
    description: str = ""

    @property
    def reorderable(self) -> frozenset[OrderKind]:
        """Ordering kinds this arch's hardware may reorder."""
        return ALL_KINDS - MACHINE_MODELS[self.model_key].enforced

    def flavor(self, name: str) -> FenceFlavor:
        for f in self.flavors:
            if f.name == name:
                return f
        known = ", ".join(f.name for f in self.flavors)
        raise KeyError(f"unknown {self.key} fence flavor {name!r}; known: {known}")

    def has_flavor(self, name: str) -> bool:
        return any(f.name == name for f in self.flavors)

    def full_flavor(self) -> FenceFlavor:
        """The cheapest flavor that kills every ordering kind."""
        return self.cheapest_flavor(ALL_KINDS)

    def cheapest_flavor(self, kinds: frozenset[OrderKind]) -> FenceFlavor:
        """The cheapest registered flavor killing all of ``kinds``.

        Ties break toward earlier registration. Raises ``ValueError``
        for an empty kill requirement (no fence is needed there — the
        caller's planning should not have asked).
        """
        kinds = frozenset(kinds)
        if not kinds:
            raise ValueError(
                f"{self.key}: no ordering kinds to enforce; no fence needed"
            )
        candidates = [f for f in self.flavors if f.sufficient_for(kinds)]
        # Registration is validated to include a full flavor, so there
        # is always at least one candidate.
        return min(candidates, key=lambda f: f.cost)

    def cost_of(self, flavor: str | None) -> int:
        """Cycle cost of a flavor name; ``None`` = the full fence."""
        if flavor is None:
            return self.full_flavor().cost
        return self.flavor(flavor).cost


BACKENDS: Registry[ArchBackend] = Registry("arch")


def register_backend(backend: ArchBackend) -> ArchBackend:
    """Register an architecture backend (validating its fence ISA)."""
    if backend.model_key not in MACHINE_MODELS:
        raise ValueError(
            f"arch {backend.key!r}: unknown machine model {backend.model_key!r}"
        )
    if not any(f.is_full for f in backend.flavors):
        raise ValueError(
            f"arch {backend.key!r} must register a full fence flavor "
            "(a flavor killing all four ordering kinds)"
        )
    names = [f.name for f in backend.flavors]
    if len(set(names)) != len(names):
        raise ValueError(f"arch {backend.key!r}: duplicate flavor names")
    return BACKENDS.register(backend.key, backend)


def get_backend(key: str) -> ArchBackend:
    return BACKENDS.get(key)


def backend_keys() -> tuple[str, ...]:
    return BACKENDS.keys()


_RR, _RW, _WR, _WW = OrderKind.RR, OrderKind.RW, OrderKind.WR, OrderKind.WW

register_backend(
    ArchBackend(
        key="x86",
        display="x86",
        model_key="x86-tso",
        flavors=(
            FenceFlavor(
                name="mfence",
                kills=ALL_KINDS,
                cost=60,
                description="Full fence; the only barrier TSO ever needs "
                "(w->r is the sole relaxed kind).",
            ),
            FenceFlavor(
                name="sfence",
                kills=frozenset({_WW}),
                cost=20,
                cumulative=False,
                description="Store-store ordering; selected for pure w->w "
                "cuts when placing for PSO-style models on this backend.",
            ),
        ),
        description="x86 / x86-TSO: store buffers relax w->r only; "
        "everything lowers to mfence under the native model.",
    )
)

register_backend(
    ArchBackend(
        key="arm",
        display="ARM",
        model_key="arm",
        flavors=(
            FenceFlavor(
                name="dmb",
                kills=ALL_KINDS,
                cost=48,
                description="Full data memory barrier (dmb ish).",
            ),
            FenceFlavor(
                name="dmbst",
                kills=frozenset({_WW}),
                cost=24,
                cumulative=False,
                description="Store-only barrier (dmb ishst): orders "
                "writes against later writes.",
            ),
        ),
        description="ARMv7-style relaxed: all four kinds reorderable; "
        "dmb variants are the fence ISA.",
    )
)

register_backend(
    ArchBackend(
        key="power",
        display="POWER",
        model_key="power",
        flavors=(
            FenceFlavor(
                name="sync",
                kills=ALL_KINDS,
                cost=80,
                description="Heavyweight sync: the only POWER fence that "
                "kills w->r.",
            ),
            FenceFlavor(
                name="lwsync",
                kills=frozenset({_RR, _RW, _WW}),
                cost=33,
                description="Lightweight sync: kills everything except "
                "w->r — the workhorse for acquire/release chains.",
            ),
            FenceFlavor(
                name="eieio",
                kills=frozenset({_WW}),
                cost=25,
                cumulative=False,
                description="Store ordering for cacheable memory; the "
                "cheapest pure w->w cut.",
            ),
        ),
        description="POWER: fully relaxed program order with a flavored "
        "fence ISA (sync / lwsync / eieio).",
    )
)
