"""Tests for the long-lived analysis daemon (repro.serve)."""

import io
import json
import socket
import threading

import pytest

from repro.api import AnalyzeRequest, CheckRequest, ProgramSpec, Session
from repro.serve import REQUEST_DISPATCH, ReproServer, ServeDispatcher, serve_stdio

MP = """
global int flag;
global int data;

fn producer(tid) { data = 1; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""

SPEC = ProgramSpec.inline(MP, name="mp")


# --- dispatcher (transport-independent) --------------------------------------


@pytest.fixture
def dispatcher():
    return ServeDispatcher(Session(parallel=False))


def test_dispatch_table_covers_every_request_kind():
    from repro.api import REPORT_KINDS

    request_kinds = {k for k in REPORT_KINDS.keys() if k.endswith("-request")}
    assert set(REQUEST_DISPATCH) == request_kinds


def test_dispatcher_answers_bare_request(dispatcher):
    request = AnalyzeRequest(program=SPEC)
    response, stop = dispatcher.handle_line(request.to_json().replace("\n", " "))
    assert not stop
    assert response["ok"] and response["id"] is None
    expected = Session().analyze(request).to_payload()
    assert response["report"] == expected
    # Byte-identical to what the one-shot CLI serializes.
    assert json.dumps(response["report"], indent=2, sort_keys=True) == (
        Session().analyze(request).to_json()
    )


def test_dispatcher_echoes_request_id(dispatcher):
    envelope = {"id": 42, "request": AnalyzeRequest(program=SPEC).to_payload()}
    response, _ = dispatcher.handle_line(json.dumps(envelope))
    assert response["ok"] and response["id"] == 42


def test_dispatcher_ops(dispatcher):
    pong, stop = dispatcher.handle_line('{"op": "ping"}')
    assert pong["ok"] and pong["pong"] and not stop
    stats, _ = dispatcher.handle_line('{"op": "stats", "id": "s1"}')
    assert stats["ok"] and stats["id"] == "s1"
    assert "requests" in stats["session"] and "server" in stats
    bye, stop = dispatcher.handle_line('{"op": "shutdown"}')
    assert bye["ok"] and bye["bye"] and stop


def test_dispatcher_error_paths(dispatcher):
    bad_json, _ = dispatcher.handle_line("{nope")
    assert not bad_json["ok"] and "not valid JSON" in bad_json["error"]
    not_object, _ = dispatcher.handle_line("[1, 2]")
    assert not not_object["ok"] and "JSON object" in not_object["error"]
    unknown_op, _ = dispatcher.handle_line('{"op": "dance"}')
    assert not unknown_op["ok"] and "unknown op" in unknown_op["error"]
    # A *report* kind is not servable.
    report_kind, _ = dispatcher.handle_line(
        json.dumps({"kind": "analyze-report", "schema_version": 2})
    )
    assert not report_kind["ok"]
    assert "not a servable request kind" in report_kind["error"]
    # Schema violations come back as errors, not dropped connections.
    payload = AnalyzeRequest(program=SPEC).to_payload()
    payload["bonus"] = 1
    malformed, _ = dispatcher.handle_line(json.dumps(payload))
    assert not malformed["ok"] and "unknown fields" in malformed["error"]
    # Unknown registry keys inside a valid envelope surface too.
    bogus = AnalyzeRequest(program=SPEC, variant="bogus").to_payload()
    unknown_variant, _ = dispatcher.handle_line(json.dumps(bogus))
    assert not unknown_variant["ok"]
    assert "unknown" in unknown_variant["error"]
    assert dispatcher.errors == 6 and dispatcher.served == 0


def test_dispatcher_survives_type_confused_payloads(dispatcher):
    """Payloads that pass the name-level schema gate but carry wrong
    field *types* must answer {"ok": false}, never raise out of the
    dispatcher (which would kill the daemon/handler thread)."""
    confused = [
        # seeds as a string: TypeError deep in the fuzz runner.
        {"kind": "fuzz-request", "schema_version": 1, "seeds": "ten",
         "shapes": [], "variants": [], "models": ["x86-tso"],
         "budget": None, "shrink": True, "max_states": None},
        # variant as an int.
        dict(AnalyzeRequest(program=SPEC).to_payload(), variant=123),
        # ProgramSpec kind as a list (unhashable).
        dict(AnalyzeRequest(program=SPEC).to_payload(),
             program={"kind": ["corpus"], "name": "fft", "path": None,
                      "source": None, "manual_fences": False}),
    ]
    for payload in confused:
        response, stop = dispatcher.handle_line(json.dumps(payload))
        assert not stop
        assert not response["ok"] and response["error"]
    # The daemon still answers normal requests afterwards.
    ok, _ = dispatcher.handle_line(
        json.dumps(AnalyzeRequest(program=SPEC).to_payload())
    )
    assert ok["ok"]


def test_dispatcher_warm_reanalysis_after_wire_edit(dispatcher):
    """The daemon's headline: an edited program re-sent over the wire
    recomputes only the changed function's query subgraph."""
    cold, _ = dispatcher.handle_line(
        json.dumps(AnalyzeRequest(program=SPEC, stats=True).to_payload())
    )
    assert cold["ok"] and cold["report"]["cache_stats"]["misses"] > 0
    warm, _ = dispatcher.handle_line(
        json.dumps(AnalyzeRequest(program=SPEC, stats=True).to_payload())
    )
    assert warm["ok"] and warm["report"]["cache_stats"]["misses"] == 0
    edited = ProgramSpec.inline(MP.replace("data = 1;", "data = 2;"), name="mp")
    incremental, _ = dispatcher.handle_line(
        json.dumps(AnalyzeRequest(program=edited, stats=True).to_payload())
    )
    assert incremental["ok"]
    stats = incremental["report"]["cache_stats"]
    assert stats["hits"] > 0  # the unchanged consumer stayed cached
    assert 0 < stats["misses"] < cold["report"]["cache_stats"]["misses"]


def test_dispatcher_counts_and_session_stats(dispatcher):
    request = AnalyzeRequest(program=SPEC)
    dispatcher.handle_line(request.to_json().replace("\n", " "))
    dispatcher.handle_line(request.to_json().replace("\n", " "))
    assert dispatcher.served == 2
    stats = dispatcher.session.stats()
    assert stats["requests"] == {"analyze": 2}
    assert stats["contexts"] >= 1
    assert stats["query_stats"]["computes"] > 0


# --- socket transport --------------------------------------------------------


@pytest.fixture
def server():
    srv = ReproServer(Session(parallel=False))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.close()
    thread.join(timeout=10)


def _roundtrip(server, lines):
    with socket.create_connection((server.host, server.port), timeout=30) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        responses = []
        for line in lines:
            stream.write(line + "\n")
            stream.flush()
            responses.append(json.loads(stream.readline()))
        return responses


def test_server_round_trips_analyze_and_check(server):
    analyze = AnalyzeRequest(program=SPEC)
    check = CheckRequest(program=SPEC, max_states=200_000)
    responses = _roundtrip(
        server,
        [json.dumps(analyze.to_payload()), json.dumps(check.to_payload())],
    )
    assert all(r["ok"] for r in responses)
    one_shot = Session()
    assert responses[0]["report"] == one_shot.analyze(analyze).to_payload()
    assert responses[1]["report"] == one_shot.check(check).to_payload()


def test_server_handles_concurrent_clients_byte_identically(server):
    request = AnalyzeRequest(program=SPEC, stats=False)
    expected = json.dumps(
        Session().analyze(request).to_payload(), indent=2, sort_keys=True
    )
    clients = 3
    barrier = threading.Barrier(clients)
    results: list = [None] * clients

    def client(slot):
        barrier.wait(timeout=10)
        responses = _roundtrip(
            server, [json.dumps({"id": slot, "request": request.to_payload()})]
        )
        results[slot] = responses[0]

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    for slot, response in enumerate(results):
        assert response is not None and response["ok"]
        assert response["id"] == slot
        assert json.dumps(response["report"], indent=2, sort_keys=True) == expected


def test_server_warm_requests_stay_deterministic(server):
    line = json.dumps(AnalyzeRequest(program=SPEC).to_payload())
    first, second = (_roundtrip(server, [line])[0] for _ in range(2))
    assert first == second


def test_server_shutdown_op_stops_serve_forever():
    srv = ReproServer(Session(parallel=False))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    responses = _roundtrip(srv, ['{"op": "shutdown"}'])
    assert responses[0]["ok"] and responses[0]["bye"]
    thread.join(timeout=10)
    assert not thread.is_alive()
    srv.close()


# --- stdio transport ---------------------------------------------------------


def test_serve_stdio_round_trip_and_clean_shutdown():
    request = AnalyzeRequest(program=SPEC)
    stdin = io.StringIO(
        json.dumps({"id": 1, "request": request.to_payload()})
        + "\n\n"  # blank lines are ignored
        + '{"op": "shutdown"}\n'
        + json.dumps(request.to_payload())  # never reached
        + "\n"
    )
    stdout = io.StringIO()
    assert serve_stdio(Session(parallel=False), stdin, stdout) == 0
    lines = [json.loads(l) for l in stdout.getvalue().splitlines()]
    assert len(lines) == 2
    assert lines[0]["ok"] and lines[0]["id"] == 1
    assert lines[0]["report"] == Session().analyze(request).to_payload()
    assert lines[1]["bye"]


def test_serve_stdio_stops_on_eof():
    stdout = io.StringIO()
    assert serve_stdio(Session(parallel=False), io.StringIO(""), stdout) == 0
    assert stdout.getvalue() == ""


def test_cli_serve_stdio_smoke(monkeypatch, capsys):
    from repro.cli import main

    request = AnalyzeRequest(program=SPEC)
    stdin = io.StringIO(
        json.dumps(request.to_payload()) + "\n" + '{"op": "shutdown"}\n'
    )
    monkeypatch.setattr("sys.stdin", stdin)
    assert main(["serve", "--stdio", "--serial"]) == 0
    out_lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
    assert out_lines[0]["ok"]
    assert out_lines[0]["report"]["kind"] == "analyze-report"
    assert out_lines[1]["bye"]
