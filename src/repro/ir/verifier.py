"""Structural well-formedness checks for IR programs.

The verifier catches malformed IR early (the frontend and hand-built
tests both go through it): unterminated blocks, branches to unknown
labels, registers defined twice or never, calls to unknown functions,
threads pointing at missing entry points.
"""

from __future__ import annotations

from repro.ir.function import Function, Program
from repro.ir.instructions import (
    LOAD_ORDERINGS,
    STORE_ORDERINGS,
    Call,
    Fence,
    FenceKind,
    Instruction,
    Load,
    Store,
)
from repro.ir.values import Register


class VerificationError(Exception):
    """Raised when an IR program fails structural checks."""


def verify_function(func: Function, program: Program | None = None) -> None:
    if not func.blocks:
        raise VerificationError(f"{func.name}: function has no blocks")

    labels = {b.label for b in func.blocks}
    defined: dict[int, Register] = {id(p): p for p in func.params}

    for block in func.blocks:
        if not block.instructions:
            raise VerificationError(f"{func.name}/{block.label}: empty block")
        if not block.is_terminated():
            raise VerificationError(f"{func.name}/{block.label}: missing terminator")
        for i, inst in enumerate(block.instructions):
            if inst.is_terminator() and i != len(block.instructions) - 1:
                raise VerificationError(
                    f"{func.name}/{block.label}: terminator not at block end"
                )
            if isinstance(inst, Load) and inst.ordering is not None:
                if inst.ordering not in LOAD_ORDERINGS:
                    raise VerificationError(
                        f"{func.name}/{block.label}: bad load ordering "
                        f"{inst.ordering!r} (want one of {LOAD_ORDERINGS})"
                    )
            if isinstance(inst, Store) and inst.ordering is not None:
                if inst.ordering not in STORE_ORDERINGS:
                    raise VerificationError(
                        f"{func.name}/{block.label}: bad store ordering "
                        f"{inst.ordering!r} (want one of {STORE_ORDERINGS})"
                    )
            if isinstance(inst, Fence) and inst.flavor is not None:
                # Flavors are free-form ISA mnemonics (the arch backend
                # registry owns the catalog), but structurally they must
                # name something, and only full fences lower to one.
                if not isinstance(inst.flavor, str) or not inst.flavor:
                    raise VerificationError(
                        f"{func.name}/{block.label}: fence flavor must be a "
                        "non-empty string"
                    )
                if inst.kind is not FenceKind.FULL:
                    raise VerificationError(
                        f"{func.name}/{block.label}: compiler directives "
                        "cannot carry a fence flavor"
                    )
            if inst.dest is not None:
                if id(inst.dest) in defined:
                    raise VerificationError(
                        f"{func.name}: register {inst.dest} defined twice"
                    )
                if inst.dest.defining_inst is not inst:
                    raise VerificationError(
                        f"{func.name}: register {inst.dest} has a stale defining_inst"
                    )
                defined[id(inst.dest)] = inst.dest
        for target in block.successor_labels():
            if target not in labels:
                raise VerificationError(
                    f"{func.name}/{block.label}: branch to unknown label {target!r}"
                )

    # Every operand register must be defined by some instruction in this
    # function (or be a parameter). We do not enforce dominance: locals
    # flow through allocas, so cross-block register uses produced by the
    # frontend are always defined on every path; hand-built IR gets the
    # weaker check.
    for block in func.blocks:
        for inst in block.instructions:
            for op in inst.operands:
                if isinstance(op, Register) and id(op) not in defined:
                    raise VerificationError(
                        f"{func.name}/{block.label}: use of undefined register {op}"
                    )
            if isinstance(inst, Call) and program is not None:
                if inst.callee not in program.functions:
                    raise VerificationError(
                        f"{func.name}: call to unknown function {inst.callee!r}"
                    )

    # Globals referenced must exist.
    if program is not None:
        from repro.ir.values import GlobalRef

        for inst in func.instructions():
            for op in inst.operands:
                if isinstance(op, GlobalRef) and op.name not in program.globals:
                    raise VerificationError(
                        f"{func.name}: reference to unknown global @{op.name}"
                    )


def verify_program(program: Program) -> None:
    if not program.functions:
        raise VerificationError("program has no functions")
    for func in program.functions.values():
        verify_function(func, program)
    for thread in program.threads:
        if thread.func_name not in program.functions:
            raise VerificationError(
                f"thread entry {thread.func_name!r} is not a function"
            )
        func = program.functions[thread.func_name]
        if len(thread.args) != len(func.params):
            raise VerificationError(
                f"thread {thread.func_name}: {len(thread.args)} args for "
                f"{len(func.params)} params"
            )
