"""Lint through the public surfaces: Session API, serve daemon, CLI.

The engine-level pipeline is covered by test_races.py and
test_diagnostics.py; here the same verdicts must survive the
schema-versioned wire pair, warm incremental re-lints, the daemon
dispatch table, and the ``repro lint`` exit-code gate.
"""

import json

import pytest

from repro.api import LintReport, LintRequest, ProgramSpec, Session
from repro.cli import main
from repro.serve import ServeDispatcher
from repro.validate.seeds import clear_seeds, seed_count

MP = """
global int flag;
global int data;

fn producer(tid) { data = 1; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""

SB = """
global int x;
global int y;

fn p1(tid) { local r1 = 0; x = 1; r1 = y; observe("r1", r1); }
fn p2(tid) { local r2 = 0; y = 1; r2 = x; observe("r2", r2); }

thread p1(0);
thread p2(1);
"""

BROKEN_HANDSHAKE = """
global int flag;
global int data;

fn producer(t) { data = 1; flag = 1; }
fn helper(t) { flag = 1; }
fn consumer(t) {
  local d = 0;
  while (flag == 0) { }
  d = data;
  observe("d", d);
}

thread producer(0);
thread helper(1);
thread consumer(2);
"""


@pytest.fixture
def session():
    return Session(parallel=False)


# --- Session.lint ------------------------------------------------------------


def test_lint_clean_program_empty_report(session):
    report = session.lint(
        LintRequest(program=ProgramSpec.inline(MP, name="mp"))
    )
    assert report.findings == ()
    assert report.errors == report.warnings == report.notes == 0
    assert report.exit_code == 0
    # The spin loop keeps the interleaving space unbounded, so the
    # missed-race sweep legitimately reports an incomplete search.
    assert report.explorer_complete is not None
    assert report.fuzz_seed is None


def test_lint_racy_program_confirmed_with_witnesses(session):
    report = session.lint(
        LintRequest(program=ProgramSpec.inline(SB, name="sb"))
    )
    assert report.errors == 2 and report.confirmed_races == 2
    assert all(f.verdict == "confirmed" and f.witness for f in report.findings)
    assert report.exit_code == 1


def test_lint_fail_on_gate(session):
    spec = ProgramSpec.inline(SB, name="sb")
    never = session.lint(LintRequest(program=spec, fail_on="never"))
    assert never.errors == 2 and never.exit_code == 0
    with pytest.raises(ValueError, match="unknown severity"):
        session.lint(LintRequest(program=spec, fail_on="fatal"))


def test_lint_validates_variant_and_model_eagerly(session):
    spec = ProgramSpec.inline(MP, name="mp")
    with pytest.raises(KeyError):
        session.lint(LintRequest(program=spec, variant="bogus"))
    with pytest.raises(KeyError):
        session.lint(LintRequest(program=spec, model="bogus"))


def test_lint_detector_gap_records_fuzz_seed(session):
    clear_seeds()
    spec = ProgramSpec.inline(BROKEN_HANDSHAKE, name="broken-handshake")
    report = session.lint(LintRequest(program=spec))
    assert any(f.code == "RACE002" for f in report.findings)
    assert report.fuzz_seed == BROKEN_HANDSHAKE
    assert seed_count() == 1
    # Re-linting the same gap dedups on content.
    session.lint(LintRequest(program=spec))
    assert seed_count() == 1
    clear_seeds()


def test_lint_report_wire_round_trip(session):
    report = session.lint(
        LintRequest(
            program=ProgramSpec.litmus("dekker"), fail_on="warning", stats=True
        )
    )
    assert LintReport.from_json(report.to_json()) == report
    assert report.notes == 3 and report.exit_code == 0
    rendered = report.render()
    assert "RACE001" in rendered and "refuted" in rendered


def test_lint_warm_rerun_is_all_hits(session):
    spec = ProgramSpec.inline(MP, name="mp")
    cold = session.lint(LintRequest(program=spec, stats=True))
    assert cold.cache_stats.misses > 0
    warm = session.lint(LintRequest(program=spec, stats=True))
    assert warm.cache_stats.misses == 0
    assert warm.cache_stats.hits > 0


STAGES = """
global int flag;
global int data;
global int flag2;
global int data2;

fn producer(tid) { data = 1; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}
fn producer2(tid) { data2 = 1; flag2 = 1; }
fn consumer2(tid) {
  local r = 0;
  while (flag2 == 0) { }
  r = data2;
  observe("r2", r);
}

thread producer(0);
thread consumer(1);
thread producer2(2);
thread consumer2(3);
"""


def test_lint_edit_recomputes_under_half_the_queries(session):
    """The incremental acceptance bar: after editing one function of a
    warm program, the re-lint recomputes fewer than half of a cold
    run's queries."""
    cold = session.lint(
        LintRequest(program=ProgramSpec.inline(STAGES, name="stages"),
                    stats=True)
    )
    edited = ProgramSpec.inline(
        STAGES.replace("data = 1;", "data = 2;"), name="stages"
    )
    warm = session.lint(LintRequest(program=edited, stats=True))
    assert warm.cache_stats.hits > 0  # the three unchanged functions hit
    assert 0 < warm.cache_stats.misses < cold.cache_stats.misses / 2
    assert warm.findings == cold.findings


# --- the serve daemon --------------------------------------------------------


def test_serve_dispatches_lint_requests(session):
    dispatcher = ServeDispatcher(session)
    payload = LintRequest(
        program=ProgramSpec.inline(SB, name="sb"), stats=True
    ).to_payload()
    response, stop = dispatcher.handle_line(
        json.dumps({"id": 7, "request": payload})
    )
    assert not stop and response["ok"] and response["id"] == 7
    report = response["report"]
    assert report["kind"] == "lint-report"
    assert report["errors"] == 2
    # And the daemon stays warm for the next lint of the same program.
    again, _ = dispatcher.handle_line(json.dumps(payload))
    assert again["ok"]
    assert again["report"]["cache_stats"]["misses"] == 0


# --- the CLI -----------------------------------------------------------------


@pytest.fixture
def mp_file(tmp_path):
    path = tmp_path / "mp.c"
    path.write_text(MP)
    return str(path)


@pytest.fixture
def sb_file(tmp_path):
    path = tmp_path / "sb.c"
    path.write_text(SB)
    return str(path)


def test_cli_lint_clean_file(mp_file, capsys):
    assert main(["lint", mp_file]) == 0
    out = capsys.readouterr().out
    assert "0 errors" in out or "clean" in out or out.strip()


def test_cli_lint_racy_file_fails(sb_file, capsys):
    assert main(["lint", sb_file]) == 1
    out = capsys.readouterr().out
    assert "RACE001" in out and "confirmed" in out


def test_cli_lint_fail_on_never(sb_file, capsys):
    assert main(["lint", sb_file, "--fail-on", "never"]) == 0
    assert "RACE001" in capsys.readouterr().out


def test_cli_lint_json_single_and_multiple(mp_file, sb_file, capsys):
    assert main(["lint", sb_file, "--json", "--fail-on", "never"]) == 0
    single = json.loads(capsys.readouterr().out)
    assert single["kind"] == "lint-report" and single["errors"] == 2

    assert main(
        ["lint", mp_file, sb_file, "--json", "--fail-on", "never"]
    ) == 0
    many = json.loads(capsys.readouterr().out)
    assert [r["errors"] for r in many] == [0, 2]


def test_cli_lint_litmus_and_corpus_names(capsys):
    assert main(["lint", "dekker"]) == 0
    assert main(["lint", "canneal", "--no-confirm", "--fail-on", "never"]) == 0
    out = capsys.readouterr().out
    assert "cn_accepted" in out


def test_cli_lint_unknown_program(capsys):
    assert main(["lint", "no-such-program"]) == 2
    assert "neither a file" in capsys.readouterr().err


def test_cli_lint_pass_selection(mp_file, capsys):
    assert main(["lint", mp_file, "--passes", "redundant-fence"]) == 0
