"""Unit tests for the SC and x86-TSO exhaustive explorers."""

import pytest

from repro.core.pipeline import PipelineVariant, place_fences
from repro.frontend import compile_source
from repro.memmodel.litmus import LITMUS_TESTS
from repro.memmodel.sc import SCExplorer, enumerate_sc_traces
from repro.memmodel.tso import TSOExplorer, tso_equals_sc_for_observations


def _obs(result):
    return {
        tuple(sorted(o.observations)) for o in result.outcomes
    }


def test_sc_mp_single_outcome():
    result = SCExplorer(LITMUS_TESTS["mp"].compile()).explore()
    assert result.complete
    assert _obs(result) == {((1, "r", 1),)}


def test_sc_sb_three_outcomes():
    result = SCExplorer(LITMUS_TESTS["sb"].compile()).explore()
    observed = {
        (o.observation_dict()["0:r1"], o.observation_dict()["1:r2"])
        for o in result.outcomes
    }
    assert observed == {(0, 1), (1, 0), (1, 1)}


def test_tso_sb_adds_zero_zero():
    result = TSOExplorer(LITMUS_TESTS["sb"].compile()).explore()
    observed = {
        (o.observation_dict()["0:r1"], o.observation_dict()["1:r2"])
        for o in result.outcomes
    }
    assert (0, 0) in observed
    assert len(observed) == 4


def test_tso_is_superset_of_sc_on_litmus():
    for name, test in LITMUS_TESTS.items():
        program_sc = test.compile()
        program_tso = test.compile()
        sc = SCExplorer(program_sc).explore()
        tso = TSOExplorer(program_tso).explore()
        assert sc.observation_sets() <= tso.observation_sets(), name


def test_litmus_tso_breaks_flags_match():
    for name, test in LITMUS_TESTS.items():
        sc = SCExplorer(test.compile()).explore()
        tso = TSOExplorer(test.compile()).explore()
        breaks = tso.observation_sets() != sc.observation_sets()
        assert breaks == test.tso_breaks_unfenced, name


def test_tso_mp_safe_without_fences():
    # TSO preserves w->w and r->r: MP cannot read stale data.
    equal, sc_only, tso_only = tso_equals_sc_for_observations(
        LITMUS_TESTS["mp"].compile(), LITMUS_TESTS["mp"].compile()
    )
    assert equal


def test_lb_identical_under_tso():
    sc = SCExplorer(LITMUS_TESTS["lb"].compile()).explore()
    tso = TSOExplorer(LITMUS_TESTS["lb"].compile()).explore()
    assert sc.observation_sets() == tso.observation_sets()


def test_dekker_fenced_restores_sc():
    test = LITMUS_TESTS["dekker"]
    fenced = test.compile()
    place_fences(fenced, PipelineVariant.CONTROL)
    equal, sc_only, tso_only = tso_equals_sc_for_observations(
        test.compile(), fenced
    )
    assert equal, (sc_only, tso_only)


def test_sb_fenced_by_pensieve_restores_sc():
    test = LITMUS_TESTS["sb"]
    fenced = test.compile()
    place_fences(fenced, PipelineVariant.PENSIEVE)
    equal, _, _ = tso_equals_sc_for_observations(test.compile(), fenced)
    assert equal


def test_sb_not_fixed_by_control_by_design():
    # SB is not legacy-DRF: its loads are not acquires, so the paper's
    # approach (correctly, per its contract) leaves the w->r unfenced.
    test = LITMUS_TESTS["sb"]
    fenced = test.compile()
    analysis = place_fences(fenced, PipelineVariant.CONTROL)
    tso = TSOExplorer(fenced).explore()
    sc = SCExplorer(test.compile()).explore()
    assert tso.observation_sets() != sc.observation_sets()


def test_explorer_respects_max_states():
    result = SCExplorer(LITMUS_TESTS["dekker"].compile(), max_states=5).explore()
    assert not result.complete


def test_final_globals_observed():
    src = """
    global counter;
    fn f(t) { local o = fadd(&counter, 1); }
    thread f(0);
    thread f(1);
    """
    result = SCExplorer(compile_source(src, "t")).explore()
    finals = {o.globals_dict()["counter"] for o in result.outcomes}
    assert finals == {2}  # fadd is atomic: no lost update under SC


def test_tso_rmw_atomicity():
    src = """
    global counter;
    fn f(t) { local o = fadd(&counter, 1); }
    thread f(0);
    thread f(1);
    """
    result = TSOExplorer(compile_source(src, "t")).explore()
    finals = {o.globals_dict()["counter"] for o in result.outcomes}
    assert finals == {2}


def test_nonatomic_increment_loses_updates_under_sc():
    src = """
    global counter;
    fn f(t) { counter = counter + 1; }
    thread f(0);
    thread f(1);
    """
    result = SCExplorer(compile_source(src, "t")).explore()
    finals = {o.globals_dict()["counter"] for o in result.outcomes}
    assert finals == {1, 2}  # the classic lost update is SC-possible


def test_trace_enumeration_counts():
    traces = enumerate_sc_traces(LITMUS_TESTS["sb"].compile())
    assert traces
    assert all(t.complete for t in traces)
    # every complete trace has exactly 4 shared accesses
    assert {len(t.actions) for t in traces} == {4}


def test_trace_actions_well_formed():
    traces = enumerate_sc_traces(LITMUS_TESTS["mp"].compile(), max_traces=50)
    for trace in traces:
        tids = {a.tid for a in trace.actions}
        assert tids <= {0, 1}
        for a in trace.actions:
            assert isinstance(a.addr, int)
            assert a.index < len(trace.actions)


def test_trace_rmw_emits_read_then_write():
    src = "global x; fn f(t) { local o = fadd(&x, 1); } thread f(0);"
    traces = enumerate_sc_traces(compile_source(src, "t"))
    assert len(traces) == 1
    actions = traces[0].actions
    assert [a.is_write for a in actions] == [False, True]
    assert actions[0].inst is actions[1].inst
