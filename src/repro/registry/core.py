"""The generic string-keyed registry underlying every pluggable catalog.

A :class:`Registry` is an ordered mapping from short string keys to
entries (data records, classes, or resolver callables) with decorator
registration and uniform error reporting: every surface that parses a
user-supplied key gets the same ``unknown <kind> 'x'; known: ...``
``KeyError``. Catalogs for detection variants, memory models, explorers,
and program-source kinds live in the sibling modules; new entries plug
in by registering, without touching the CLI or the :mod:`repro.api`
facade.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

T = TypeVar("T")

_MISSING = object()


class Registry(Generic[T]):
    """Ordered, string-keyed catalog with decorator registration.

    ``kind`` names what is being cataloged and shapes error messages;
    registration order is preserved and is the canonical listing order.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, T] = {}

    # --- registration -----------------------------------------------------
    def register(self, key: str, entry: T = _MISSING):  # type: ignore[assignment]
        """Register ``entry`` under ``key``.

        With an entry, registers directly and returns it. Without one,
        returns a decorator::

            @SOURCE_KINDS.register("file")
            def _resolve_file(spec): ...
        """
        if entry is not _MISSING:
            self._add(key, entry)
            return entry

        def decorator(obj: T) -> T:
            self._add(key, obj)
            return obj

        return decorator

    def _add(self, key: str, entry: T) -> None:
        if key in self._entries:
            raise ValueError(f"duplicate {self.kind} {key!r}")
        self._entries[key] = entry

    # --- lookup -----------------------------------------------------------
    def get(self, key: str) -> T:
        try:
            return self._entries[key]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {key!r}; known: {', '.join(self._entries)}"
            ) from None

    def keys(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def items(self) -> tuple[tuple[str, T], ...]:
        return tuple(self._entries.items())

    def values(self) -> tuple[T, ...]:
        return tuple(self._entries.values())

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"<Registry {self.kind}: {', '.join(self._entries) or '(empty)'}>"


RegistryEntryFactory = Callable[[], T]
