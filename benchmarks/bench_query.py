"""Query-engine benchmarks: cold vs warm vs one-function-edited.

Measures what the demand-driven engine buys on the 17-program corpus:

* **cold** — first analysis, every fact computed;
* **warm** — re-analysis with nothing changed, pure memo hits;
* **edited** — re-analysis after a single-function in-place edit plus
  ``refresh()``: only the edited function's query subgraph recomputes.

Runs two ways: under pytest-benchmark like the other bench modules, or
as a script emitting the machine-readable trajectory artifact::

    PYTHONPATH=src python benchmarks/bench_query.py --out BENCH_query.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.pipeline import PipelineVariant, analyze_program  # noqa: E402
from repro.engine.context import AnalysisContext  # noqa: E402
from repro.frontend import compile_source  # noqa: E402
from repro.ir.instructions import Observe  # noqa: E402
from repro.ir.values import Constant  # noqa: E402
from repro.programs import all_programs  # noqa: E402


def _edit_first_function(program) -> str:
    func = next(iter(program.functions.values()))
    func.blocks[0].insert(0, Observe("__bench_edit__", Constant(0)))
    func.finalize()
    return func.name


def run_suite() -> dict:
    """Cold/warm/edited passes over every corpus program."""
    per_program = []
    totals = {
        "cold_s": 0.0, "warm_s": 0.0, "edited_s": 0.0,
        "cold_computes": 0, "warm_computes": 0, "edited_computes": 0,
    }
    for name, entry in sorted(all_programs().items()):
        program = compile_source(entry.source, name)
        ctx = AnalysisContext(program)

        start = time.perf_counter()
        analyze_program(program, PipelineVariant.CONTROL, context=ctx)
        cold_s = time.perf_counter() - start
        cold_computes = ctx.engine.stats.computes

        start = time.perf_counter()
        analyze_program(program, PipelineVariant.CONTROL, context=ctx)
        warm_s = time.perf_counter() - start
        warm_computes = ctx.engine.stats.computes - cold_computes

        edited = _edit_first_function(program)
        ctx.refresh()
        before = ctx.engine.stats.computes
        start = time.perf_counter()
        analyze_program(program, PipelineVariant.CONTROL, context=ctx)
        edited_s = time.perf_counter() - start
        edited_computes = ctx.engine.stats.computes - before

        per_program.append({
            "program": name,
            "functions": len(program.functions),
            "edited_function": edited,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "edited_s": edited_s,
            "cold_computes": cold_computes,
            "warm_computes": warm_computes,
            "edited_computes": edited_computes,
        })
        totals["cold_s"] += cold_s
        totals["warm_s"] += warm_s
        totals["edited_s"] += edited_s
        totals["cold_computes"] += cold_computes
        totals["warm_computes"] += warm_computes
        totals["edited_computes"] += edited_computes

    recompute_fraction = (
        totals["edited_computes"] / totals["cold_computes"]
        if totals["cold_computes"]
        else 0.0
    )
    return {
        "corpus_programs": len(per_program),
        "totals": totals,
        "edited_recompute_fraction": recompute_fraction,
        "per_program": per_program,
    }


# --- pytest-benchmark entry points ------------------------------------------


def test_query_cold_vs_warm_vs_edited(benchmark, report_sink):
    report = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    totals = report["totals"]
    assert report["edited_recompute_fraction"] < 0.5
    assert totals["warm_computes"] == 0
    report_sink.setdefault("query-engine", "Query engine, 17-program corpus:")
    report_sink["query-engine"] += (
        f"\n  cold   : {totals['cold_s'] * 1000:7.1f}ms"
        f"  ({totals['cold_computes']} computes)"
        f"\n  warm   : {totals['warm_s'] * 1000:7.1f}ms"
        f"  ({totals['warm_computes']} computes)"
        f"\n  edited : {totals['edited_s'] * 1000:7.1f}ms"
        f"  ({totals['edited_computes']} computes, "
        f"{report['edited_recompute_fraction']:.1%} of cold)"
    )


# --- script entry point ------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_query.json",
                        help="output artifact path (default BENCH_query.json)")
    args = parser.parse_args(argv)

    report = run_suite()
    Path(args.out).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    totals = report["totals"]
    print(
        f"{report['corpus_programs']} programs: "
        f"cold {totals['cold_s']:.3f}s ({totals['cold_computes']} computes), "
        f"warm {totals['warm_s']:.3f}s ({totals['warm_computes']} computes), "
        f"edited {totals['edited_s']:.3f}s ({totals['edited_computes']} "
        f"computes, {report['edited_recompute_fraction']:.1%} of cold)"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
