"""Ordering pruning for legacy-DRF programs (paper Section 2.3).

Given detected acquires, keep only orderings conforming to Table I:

=====================  =======================================================
``r/w -> w_rel``       every escaping write is conservatively a release, so
                       any ordering *into a write* is kept;
``r_acq -> r/w``       any ordering *out of a detected acquire* is kept;
``w_rel -> r_acq``     sync-to-sync orderings are kept.
=====================  =======================================================

Equivalently (and this is how the paper states it): prune ``r1 -> r2``
unless ``r1`` is a detected acquire, and prune ``w -> r`` unless ``r``
is a detected acquire. Acquire status is per *instruction*: the read
half of an RMW is an acquire iff the RMW instruction was detected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.machine_models import OrderKind
from repro.core.orderings import Ordering, OrderingSet
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.util.orderedset import OrderedSet


@dataclass
class PruneStats:
    """Counts before/after pruning, by ordering kind."""

    before: dict[OrderKind, int]
    after: dict[OrderKind, int]

    @property
    def total_before(self) -> int:
        return sum(self.before.values())

    @property
    def total_after(self) -> int:
        return sum(self.after.values())

    @property
    def surviving_fraction(self) -> float:
        if self.total_before == 0:
            return 1.0
        return self.total_after / self.total_before


def keep_ordering(
    ordering: Ordering, sync_reads: OrderedSet[Instruction]
) -> bool:
    """Table I check for one ordering."""
    if ordering.dst.is_write:
        return True  # r/w -> w_rel: everything into a release is kept.
    if not ordering.src.is_write:
        # r -> r: kept only out of an acquire.
        return ordering.src.inst in sync_reads
    # w -> r: kept only into an acquire (w_rel -> r_acq).
    return ordering.dst.inst in sync_reads


def prune_orderings(
    orderings: OrderingSet, sync_reads: OrderedSet[Instruction]
) -> tuple[OrderingSet, PruneStats]:
    """Apply Table I; returns the surviving orderings and statistics."""
    kept = [o for o in orderings if keep_ordering(o, sync_reads)]
    pruned_set = OrderingSet(orderings.function, kept)
    stats = PruneStats(
        before=orderings.count_by_kind(), after=pruned_set.count_by_kind()
    )
    return pruned_set, stats
