"""Run every experiment and render the full paper-shaped report.

The per-program work for Figs. 7-10 — compile, analyze under every
variant, simulate four fence placements — is independent across
programs, so ``run_all`` fans it out over the batch engine's process
pool (one job per program) and reassembles the figure rows in registry
order. Table II and the Fig. 2 worked example are litmus-sized and run
inline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.engine.batch import parallel_map
from repro.experiments import fig2_example, fig7, fig8, fig9, fig10, table2
from repro.programs.registry import BenchProgram, all_programs, get_program


@dataclass(frozen=True)
class ProgramCell:
    """Everything Figs. 7-10 need for one program (picklable)."""

    fig7_row: fig7.Fig7Row
    fig8_row: fig8.Fig8Row
    fig9_row: fig9.Fig9Row
    fig10_row: fig10.Fig10Row


@dataclass
class FullReport:
    table2_rows: list
    fig7_result: fig7.Fig7Result
    fig8_result: fig8.Fig8Result
    fig9_result: fig9.Fig9Result
    fig10_result: fig10.Fig10Result
    fig2_result: fig2_example.Fig2Result

    def render(self) -> str:
        sections = [
            table2.render(self.table2_rows),
            fig7.render(self.fig7_result),
            fig8.render(self.fig8_result),
            fig9.render(self.fig9_result),
            fig10.render(self.fig10_result),
            fig2_example.render(self.fig2_result),
        ]
        return ("\n\n" + "=" * 72 + "\n\n").join(sections)


def compute_cell(program: BenchProgram) -> ProgramCell:
    """All figure rows for one program (runs inside a pool worker)."""
    from repro.api.session import Session

    # Figs 7-9 only analyze: one compile and one session-owned context
    # cover all of them. Fig 10 mutates the IR (fence insertion), so it
    # keeps its own per-series compiles.
    session = Session()
    ir = program.compile()
    return ProgramCell(
        fig7_row=fig7.run_program(program, ir, session),
        fig8_row=fig8.run_program(program, ir, session),
        fig9_row=fig9.run_program(program, ir, session),
        fig10_row=fig10.run_program(program, session=session),
    )


def _compute_cell_by_name(name: str) -> ProgramCell:
    """Registry-name wrapper so jobs pickle as strings."""
    return compute_cell(get_program(name))


def run_all(
    programs: Optional[dict[str, BenchProgram]] = None,
    max_workers: int | None = None,
    parallel: bool = True,
) -> FullReport:
    """Run Table II, Figs 7-10, and the Fig. 2 example in one sweep.

    Per-program cells run on the process pool (serial fallback via
    ``parallel=False``); row order always matches ``programs``.
    """
    programs = programs if programs is not None else all_programs()
    registry = all_programs()
    names = list(programs)
    # Workers rebuild programs by registry name, so the pool path is
    # only valid when each entry *is* the registry program — a custom
    # BenchProgram under a colliding name must not be swapped out.
    if all(programs[name] == registry.get(name) for name in names):
        cells = parallel_map(
            _compute_cell_by_name, names,
            max_workers=max_workers, parallel=parallel,
        )
    else:  # non-registry BenchPrograms can't be rebuilt by name in a worker
        cells = [compute_cell(programs[name]) for name in names]
    return FullReport(
        table2_rows=table2.run(),
        fig7_result=fig7.Fig7Result([c.fig7_row for c in cells]),
        fig8_result=fig8.Fig8Result([c.fig8_row for c in cells]),
        fig9_result=fig9.Fig9Result([c.fig9_row for c in cells]),
        fig10_result=fig10.Fig10Result([c.fig10_row for c in cells]),
        fig2_result=fig2_example.run(),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_all().render())


if __name__ == "__main__":  # pragma: no cover
    main()
