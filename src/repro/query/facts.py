"""The registered analysis-fact queries.

These are the six fact kinds :class:`~repro.engine.context
.AnalysisContext` historically memoized by hand, reimplemented as
:data:`~repro.query.engine.QUERIES` entries. Per-function queries are
keyed by the :class:`~repro.ir.function.Function` object (content
fingerprints, not identity, decide validity across
:meth:`~repro.query.engine.QueryEngine.refresh`); ``acquires`` is
keyed by ``(function, variant)`` and ``interprocedural`` by the
variant alone, with its dependency edges reaching every function's
facts — so a single-function edit invalidates the whole-program
fixpoint but nothing belonging to sibling functions.

``acquires`` additionally declares a persistence codec: an
:class:`~repro.core.signatures.AcquireResult` round-trips through
instruction uids, which are stable for a fingerprint-identical
function, letting a cold engine skip the slicing work entirely.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.analysis.aliasing import PointsTo
from repro.analysis.escape import EscapeInfo
from repro.analysis.reachability import ReachabilityTable
from repro.ir.function import Function
from repro.query.engine import QueryEngine, query

#: The fact kinds every AnalysisContext serves through the engine.
FACT_QUERIES = (
    "points_to",
    "escape_info",
    "reachability",
    "writers_cache",
    "acquires",
    "interprocedural",
)


def _facade(engine: QueryEngine):
    """The AnalysisContext fronting ``engine`` (consumers expect one)."""
    if engine.context is not None:
        return engine.context
    from repro.engine.context import AnalysisContext

    facade = AnalysisContext.__new__(AnalysisContext)
    facade.adopt_engine(engine)
    return facade


@query("points_to")
def _points_to(engine: QueryEngine, func: Function) -> PointsTo:
    engine.touch_input(func)
    return PointsTo(func)


@query("escape_info")
def _escape_info(engine: QueryEngine, func: Function) -> EscapeInfo:
    engine.touch_input(func)
    return EscapeInfo(func, engine.get("points_to", func))


@query("reachability")
def _reachability(engine: QueryEngine, func: Function) -> ReachabilityTable:
    engine.touch_input(func)
    return ReachabilityTable(func)


@query("writers_cache")
def _writers_cache(engine: QueryEngine, func: Function) -> dict:
    # The shared potential-writers memo for every slicer over ``func``.
    # The query's value is the (lazily filled) container itself.
    engine.touch_input(func)
    return {}


def _acquires_encode(key: Hashable, value: Any) -> dict:
    return {
        "sync_reads": [inst.uid for inst in value.sync_reads],
        "seen": sorted(inst.uid for inst in value.seen),
    }


def _acquires_decode(engine: QueryEngine, key: Hashable, payload: Any) -> Any:
    from repro.core.signatures import AcquireResult
    from repro.util.orderedset import OrderedSet

    func, variant = key
    by_uid = {inst.uid: inst for inst in func.instructions()}
    return AcquireResult(
        function=func,
        variant=variant,
        sync_reads=OrderedSet(by_uid[uid] for uid in payload["sync_reads"]),
        seen={by_uid[uid] for uid in payload["seen"]},
    )


@query(
    "acquires",
    input_of=lambda key: key[0],
    suffix=lambda key: key[1].value,
    encode=_acquires_encode,
    decode=_acquires_decode,
)
def _acquires(engine: QueryEngine, key: Hashable) -> Any:
    from repro.core.signatures import detect_acquires

    func, variant = key
    engine.touch_input(func)
    return detect_acquires(func, variant, context=_facade(engine))


@query("interprocedural")
def _interprocedural(engine: QueryEngine, variant: Hashable) -> Any:
    from repro.core.interprocedural import detect_acquires_interprocedural

    engine.touch_shape()
    return detect_acquires_interprocedural(
        engine.program, variant, context=_facade(engine)
    )
