"""Unit tests for points-to / may-alias analysis."""

from repro.analysis.aliasing import UNKNOWN, AllocaObj, GlobalObj, PointsTo
from repro.frontend import compile_source
from repro.ir import Load, Store


def _analyze(src: str, fn: str = "f"):
    func = compile_source(src, "t").functions[fn]
    return func, PointsTo(func)


def _loads(func):
    return [i for i in func.instructions() if isinstance(i, Load)]


def _stores(func):
    return [i for i in func.instructions() if isinstance(i, Store)]


def test_globalref_points_to_global():
    func, pt = _analyze("global x; fn f() { x = 1; }")
    store = _stores(func)[0]
    assert pt.pointees(store.addr) == {GlobalObj("x")}


def test_local_pointer_assigned_two_globals():
    src = """
    global x; global y; global sel;
    fn f() {
      local p;
      if (sel) { p = &x; } else { p = &y; }
      *p = 1;
    }
    """
    func, pt = _analyze(src)
    # the store through p
    deref_store = [s for s in _stores(func) if s.is_dereference()][-1]
    objs = pt.pointees(deref_store.addr)
    assert objs == {GlobalObj("x"), GlobalObj("y")}


def test_null_initialized_pointer_stays_precise():
    # `local p = 0;` must not poison p's pointees with Unknown.
    src = """
    global x; global flag;
    fn f() {
      local p = 0;
      p = &x;
      *p = 1;
      flag = 1;
    }
    """
    func, pt = _analyze(src)
    deref_store = [s for s in _stores(func) if s.is_dereference()][-1]
    flag_store = [s for s in _stores(func) if str(s.addr) == "@flag"][0]
    assert pt.pointees(deref_store.addr) == {GlobalObj("x")}
    assert not pt.may_alias(deref_store.addr, flag_store.addr)


def test_may_alias_same_global():
    func, pt = _analyze("global x; fn f() { x = 1; local r = x; }")
    st = _stores(func)[0]
    ld = [l for l in _loads(func) if str(l.addr) == "@x"][0]
    assert pt.may_alias(st.addr, ld.addr)


def test_no_alias_distinct_globals():
    func, pt = _analyze("global x; global y; fn f() { x = 1; y = 2; }")
    s1, s2 = _stores(func)
    assert not pt.may_alias(s1.addr, s2.addr)


def test_unknown_pointer_aliases_globals_but_not_locals():
    src = """
    global g;
    fn f(p) {
      local secret;
      *p = 1;
      secret = 2;
      g = 3;
    }
    """
    from repro.ir import Constant

    func, pt = _analyze(src)
    stores = _stores(func)
    deref = [
        s for s in stores if isinstance(s.value, Constant) and s.value.value == 1
    ][0]
    g_store = [s for s in stores if str(s.addr) == "@g"][0]
    assert pt.pointees(deref.addr) == {UNKNOWN}
    assert pt.may_alias(deref.addr, g_store.addr)
    # non-escaped alloca: unknown cannot alias it
    secret_store = [
        s for s in stores
        if all(isinstance(o, AllocaObj) for o in pt.pointees(s.addr))
    ]
    assert secret_store  # the spills + secret
    assert all(not pt.may_alias(deref.addr, s.addr) for s in secret_store)


def test_gep_is_field_insensitive():
    from repro.ir import Constant

    func, pt = _analyze("global a[8]; fn f() { a[3] = 1; local r = a[5]; }")
    st = [
        s for s in _stores(func)
        if isinstance(s.value, Constant) and s.value.value == 1
    ][0]
    ld = [l for l in _loads(func) if l.is_dereference()][0]
    assert pt.may_alias(st.addr, ld.addr)


def test_potential_writers_finds_aliasing_stores():
    src = """
    global a[8]; global b[8];
    fn f() {
      a[1] = 10;
      b[1] = 20;
      local r = a[2];
    }
    """
    func, pt = _analyze(src)
    ld = [l for l in _loads(func) if l.is_dereference()][-1]
    writers = pt.potential_writers(ld)
    writer_bases = {str(w.addr.defining_inst.base) for w in writers}
    assert "@a" in writer_bases
    assert "@b" not in writer_bases


def test_potential_writers_includes_rmws():
    src = "global x; fn f() { local a = fadd(&x, 1); local r = x; }"
    func, pt = _analyze(src)
    ld = [l for l in _loads(func) if str(l.addr) == "@x"][0]
    writers = pt.potential_writers(ld)
    assert any(w.is_atomic_rmw() for w in writers)


def test_escaped_alloca_via_call():
    src = """
    fn sink(p) { }
    fn f() {
      local leaked;
      local kept;
      sink(&leaked);
      kept = 1;
    }
    """
    func, pt = _analyze(src)
    names = set()
    for obj in pt.escaped_allocas:
        names.add(obj.inst.var_name)
    assert "leaked" in names
    assert "kept" not in names


def test_escaped_alloca_via_global_store():
    src = """
    global p;
    fn f() {
      local shared;
      p = &shared;
    }
    """
    func, pt = _analyze(src)
    assert any(o.inst.var_name == "shared" for o in pt.escaped_allocas)


def test_escaped_alloca_transitive():
    # &inner stored into outer; &outer escapes through a call.
    src = """
    fn sink(p) { }
    fn f() {
      local inner;
      local outer;
      outer = &inner;
      sink(&outer);
    }
    """
    func, pt = _analyze(src)
    names = {o.inst.var_name for o in pt.escaped_allocas}
    assert {"inner", "outer"} <= names


def test_is_local_address():
    src = "global g; fn f() { local a; a = 1; g = 2; }"
    func, pt = _analyze(src)
    stores = _stores(func)
    local_store = [s for s in stores if not str(s.addr).startswith("@")][0]
    global_store = [s for s in stores if str(s.addr) == "@g"][0]
    assert pt.is_local_address(local_store.addr)
    assert not pt.is_local_address(global_store.addr)
