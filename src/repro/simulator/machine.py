"""Deterministic event-driven multi-core x86-TSO timed simulator.

Executes a whole IR program (all static threads) once, charging cycle
costs per the :class:`~repro.simulator.costmodel.CostModel`, with
per-thread FIFO store buffers whose entries become globally visible
``drain_period`` cycles apart. The scheduler always advances the thread
with the smallest local clock, and memory commits are applied in global
time order, so a run is fully deterministic — the Fig. 10 experiment
needs reproducible relative execution times, not wall-clock noise.

TSO semantics mirror the exhaustive explorer: loads forward from the
own buffer; ``mfence`` and RMWs stall until the buffer drains; compiler
directives are free.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.ir.function import Program
from repro.ir.instructions import FenceKind
from repro.memmodel.interpreter import (
    ExecutionError,
    PendingAction,
    ThreadExecutor,
    ThreadState,
)
from repro.simulator.costmodel import DEFAULT_COSTS, CostModel


@dataclass
class SimStats:
    """Counters from one simulated run."""

    cycles: int = 0  # makespan: max thread completion time
    per_thread_cycles: dict[int, int] = field(default_factory=dict)
    instructions: int = 0
    shared_loads: int = 0
    shared_stores: int = 0
    rmws: int = 0
    full_fences_executed: int = 0
    compiler_fences_executed: int = 0
    fence_stall_cycles: int = 0
    observations: dict[int, tuple] = field(default_factory=dict)
    final_globals: dict[str, int] = field(default_factory=dict)


@dataclass
class _Buffer:
    """Store buffer state for one thread."""

    entries: list[tuple[int, int, int]] = field(default_factory=list)  # (visible, addr, val)
    last_visible: int = 0

    def enqueue(self, now: int, addr: int, value: int, drain_period: int) -> int:
        visible = max(self.last_visible, now) + drain_period
        self.last_visible = visible
        self.entries.append((visible, addr, value))
        return visible

    def lookup(self, addr: int) -> int | None:
        for visible, entry_addr, value in reversed(self.entries):
            if entry_addr == addr:
                return value
        return None

    def drained_before(self, now: int) -> list[tuple[int, int, int]]:
        """Pop entries visible at or before ``now``."""
        ready = [e for e in self.entries if e[0] <= now]
        self.entries = [e for e in self.entries if e[0] > now]
        return ready

    def drain_all_time(self) -> int:
        return self.last_visible if self.entries else 0


class TSOSimulator:
    """Runs one program to completion under the timed TSO model."""

    def __init__(
        self,
        program: Program,
        costs: CostModel = DEFAULT_COSTS,
        max_instructions_per_thread: int = 5_000_000,
    ) -> None:
        self.program = program
        self.costs = costs
        self.max_instructions = max_instructions_per_thread
        self.executor = ThreadExecutor(program)
        self.layout = self.executor.layout

    def run(self) -> SimStats:
        stats = SimStats()
        memory = self.layout.initial_memory()
        threads = self.executor.start_all()
        buffers = {ts.tid: _Buffer() for ts in threads}
        # Global commit queue: (visible_time, seq, addr, value). ``seq``
        # preserves issue order among same-time commits.
        commits: list[tuple[int, int, int, int]] = []
        self._commit_seq = 0
        # Ready queue: (clock, tid).
        ready: list[tuple[int, int]] = [(0, ts.tid) for ts in threads]
        heapq.heapify(ready)
        clocks = {ts.tid: 0 for ts in threads}
        by_tid = {ts.tid: ts for ts in threads}

        while ready:
            clock, tid = heapq.heappop(ready)
            ts = by_tid[tid]
            # Apply every commit visible at or before this thread's time.
            while commits and commits[0][0] <= clock:
                _, _, addr, value = heapq.heappop(commits)
                memory[addr] = value

            before_steps = ts.steps
            pending = self.executor.next_action(ts, self.max_instructions)
            invisible = ts.steps - before_steps - (1 if pending is not None else 0)
            clock += invisible * self.costs.alu
            stats.instructions += ts.steps - before_steps

            if pending is None:
                clocks[tid] = clock
                stats.per_thread_cycles[tid] = clock
                stats.observations[tid] = ts.observations
                continue  # thread finished; do not requeue

            clock = self._execute(
                stats, memory, buffers[tid], ts, pending, clock, commits
            )
            clocks[tid] = clock
            heapq.heappush(ready, (clock, tid))

        # Flush any remaining buffered stores into final memory.
        for buffer in buffers.values():
            for _, addr, value in buffer.entries:
                memory[addr] = value
        while commits:
            _, _, addr, value = heapq.heappop(commits)
            memory[addr] = value

        stats.cycles = max(stats.per_thread_cycles.values(), default=0)
        stats.final_globals = self.layout.final_globals(memory)
        return stats

    def _push_commit(
        self, commits: list, visible: int, addr: int, value: int
    ) -> None:
        heapq.heappush(commits, (visible, self._commit_seq, addr, value))
        self._commit_seq += 1

    @staticmethod
    def _apply_commits(
        memory: dict[int, int], commits: list, clock: int
    ) -> None:
        """Make every store whose drain time has passed globally visible."""
        while commits and commits[0][0] <= clock:
            _, _, addr, value = heapq.heappop(commits)
            memory[addr] = value

    def _execute(
        self,
        stats: SimStats,
        memory: dict[int, int],
        buffer: _Buffer,
        ts: ThreadState,
        pending: PendingAction,
        clock: int,
        commits: list[tuple[int, int, int, int]],
    ) -> int:
        costs = self.costs
        if pending.kind == "load":
            stats.shared_loads += 1
            # Commits up to now must reach memory before the buffer is
            # trimmed, or a just-drained own store would become invisible.
            self._apply_commits(memory, commits, clock)
            buffer.drained_before(clock)
            value = buffer.lookup(pending.addr)
            if value is None:
                value = memory.get(pending.addr, 0)
            self.executor.commit(ts, pending, value)
            cost = costs.load
            if getattr(pending.inst, "ordering", "relaxed") == "acquire":
                cost += costs.acquire_load
            return clock + cost

        if pending.kind == "store":
            stats.shared_stores += 1
            buffer.drained_before(clock)
            if len(buffer.entries) >= costs.buffer_capacity:
                # Stall until the oldest entry drains.
                oldest_visible = buffer.entries[0][0]
                stall = max(0, oldest_visible - clock)
                stats.fence_stall_cycles += stall
                clock += stall
                buffer.drained_before(clock)
            visible = buffer.enqueue(clock, pending.addr, pending.value, costs.drain_period)
            self._push_commit(commits, visible, pending.addr, pending.value)
            self.executor.commit(ts, pending)
            cost = costs.store
            if getattr(pending.inst, "ordering", "relaxed") == "release":
                cost += costs.release_store
            return clock + cost

        if pending.kind == "rmw":
            stats.rmws += 1
            clock = self._drain_stall(stats, buffer, clock)
            # Apply pending commits up to now so the RMW sees fresh memory.
            self._apply_commits(memory, commits, clock)
            old = memory.get(pending.addr, 0)
            result, new = pending.rmw_result(old)
            if new is not None:
                memory[pending.addr] = new
            self.executor.commit(ts, pending, result)
            return clock + costs.rmw

        if pending.kind == "fence":
            if pending.fence_kind is FenceKind.FULL:
                stats.full_fences_executed += 1
                clock = self._drain_stall(stats, buffer, clock)
                self.executor.commit(ts, pending)
                return clock + costs.fence_cost(
                    getattr(pending.inst, "flavor", None)
                )
            stats.compiler_fences_executed += 1
            self.executor.commit(ts, pending)
            return clock + costs.compiler_fence

        raise ExecutionError(f"unknown action {pending.kind}")  # pragma: no cover

    def _drain_stall(self, stats: SimStats, buffer: _Buffer, clock: int) -> int:
        """Wait for this thread's buffer to drain completely."""
        if buffer.entries:
            drain_time = buffer.entries[-1][0]
            stall = max(0, drain_time - clock)
            stats.fence_stall_cycles += stall
            clock += stall
            buffer.entries.clear()
        return clock


def simulate(program: Program, costs: CostModel = DEFAULT_COSTS) -> SimStats:
    """Run a program once on the timed TSO machine."""
    return TSOSimulator(program, costs).run()
