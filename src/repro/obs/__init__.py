"""`repro.obs`: zero-dependency tracing, metrics, and profiling.

Three pieces, all stdlib-only:

* :mod:`repro.obs.trace` — span-based tracing with Chrome
  ``trace_event`` export, a propagated trace id, and a slow-query log.
  Disabled (the default) it is a deterministic no-op: ``span()``
  returns one shared singleton and records nothing.
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and fixed-bucket latency histograms (p50/p95/p99), exposed
  as Prometheus text format v0 and as JSON, with cross-worker payload
  merging for the cluster's ``metrics`` op.
* :mod:`repro.obs.top` — the ``repro obs top`` / ``repro obs
  metrics`` CLI renderers over the servers' wire ops.

The instrumentation points (span names, metric names) are a stable
contract: perf PRs are measured against them.
"""

from repro.obs import metrics, trace

__all__ = ["metrics", "trace"]
