"""Tests for the Session facade (repro.api.session)."""

import pytest

from repro.api import (
    AnalyzeRequest,
    BatchRequest,
    CheckRequest,
    FuzzRequest,
    ProgramSpec,
    Session,
    SimulateRequest,
)
from repro.core.pipeline import PipelineVariant, analyze_program
from repro.frontend import compile_source

MP = """
global int flag;
global int data;

fn producer(tid) { data = 1; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""

SB = """
global int x;
global int y;

fn p1(tid) { local r1 = 0; x = 1; r1 = y; observe("r1", r1); }
fn p2(tid) { local r2 = 0; y = 1; r2 = x; observe("r2", r2); }

thread p1(0);
thread p2(1);
"""


@pytest.fixture
def spec():
    return ProgramSpec.inline(MP, name="mp")


# --- construction and mid-level ---------------------------------------------


def test_session_validates_defaults_eagerly():
    with pytest.raises(KeyError, match="unknown variant"):
        Session(variant="bogus")
    with pytest.raises(KeyError, match="unknown model"):
        Session(model="bogus")


def test_session_context_is_shared_and_memoized(spec):
    session = Session()
    program = session.load(spec)
    ctx = session.context(program)
    assert session.context(program) is ctx
    session.analysis(program, "control")
    session.analysis(program, "address+control")
    # The second variant reuses the variant-independent facts.
    assert session.context(program).stats.hits > 0


def test_session_analysis_matches_core_pipeline(spec):
    session = Session()
    program = session.load(spec)
    via_session = session.analysis(program, "control")
    direct = analyze_program(compile_source(MP, "mp"), PipelineVariant.CONTROL)
    assert via_session.full_fence_count == direct.full_fence_count
    assert via_session.total_sync_reads == direct.total_sync_reads


def test_session_accepts_pipeline_variant_enum(spec):
    session = Session()
    program = session.load(spec)
    a = session.analysis(program, PipelineVariant.CONTROL)
    b = session.analysis(program, "control")
    assert a.full_fence_count == b.full_fence_count


def test_session_place_keeps_context_valid(spec):
    session = Session()
    program = session.load(spec)
    ctx = session.context(program)
    session.place(program, "control")
    assert len(program.fences()) > 0
    # The context survives place(): the engine refreshed it, so the
    # fenced functions' facts recompute and re-analysis is correct.
    assert session.context(program) is ctx
    # No stale inputs remain — place() really did refresh (a further
    # refresh sees nothing changed).
    assert session.refresh(program) == ()
    reused = session.analysis(program, "control")
    fresh = Session().analysis(program, "control")
    assert reused.full_fence_count == fresh.full_fence_count
    assert reused.total_sync_reads == fresh.total_sync_reads


def test_session_explore_dispatches_models(spec):
    session = Session()
    sc = session.explore(session.load(spec), "sc")
    tso = session.explore(session.load(spec), "x86-tso")
    assert sc.complete and tso.complete
    assert tso.observation_sets() == sc.observation_sets()  # MP safe on TSO
    with pytest.raises(KeyError, match="no weak-memory explorer"):
        session.explore(session.load(spec), "rmo")


# --- wire level -------------------------------------------------------------


def test_analyze_report_totals_consistent(spec):
    report = Session().analyze(AnalyzeRequest(program=spec))
    assert report.program == "mp"
    assert report.escaping_reads == sum(
        f.escaping_reads for f in report.functions
    )
    assert report.full_fences == sum(f.full_fences for f in report.functions)
    assert report.sync_reads == 1  # the flag spin read


def test_analyze_emit_ir_and_annotations(spec):
    report = Session().analyze(
        AnalyzeRequest(program=spec, annotations=True, emit_ir=True)
    )
    assert report.fenced_ir is not None and "func @consumer" in report.fenced_ir
    assert report.annotations is not None and "acquire" in report.annotations
    rendered = report.render()
    assert "fenced IR" in rendered and "memory_order" in rendered


def test_check_mp_restored_on_tso(spec):
    report = Session().check(CheckRequest(program=spec, model="x86-tso"))
    assert report.complete and report.all_restored
    assert report.exit_code == 0
    assert [v.variant for v in report.variants] == [
        "pensieve", "control", "address+control",
    ]


def test_check_sb_fails_for_control():
    report = Session().check(
        CheckRequest(program=ProgramSpec.inline(SB, name="sb"))
    )
    assert report.weak_breaks_unfenced
    by_variant = {v.variant: v for v in report.variants}
    assert by_variant["pensieve"].restored_sc
    assert not by_variant["control"].restored_sc
    assert report.exit_code == 1


def test_check_state_bound_reports_incomplete(spec):
    report = Session().check(
        CheckRequest(program=spec, max_states=3)
    )
    assert not report.complete
    assert report.exit_code == 2
    assert "incomplete" in report.render()


def test_check_on_pso_breaks_mp_unfenced_and_variants_repair(spec):
    # The satellite fix: check is no longer hardcoded to x86-TSO. MP is
    # TSO-safe but PSO-broken (the data store can drain after the flag
    # store), and every variant's placement must repair it.
    report = Session().check(CheckRequest(program=spec, model="pso"))
    assert report.weak_breaks_unfenced
    assert report.all_restored


def test_simulate_manual_vs_pipeline(spec):
    session = Session()
    manual = session.simulate(
        SimulateRequest(program=spec, placement="manual")
    )
    control = session.simulate(
        SimulateRequest(program=spec, placement="control",
                        observe_globals=("flag", "data"))
    )
    assert manual.cycles > 0 and control.cycles > 0
    assert control.full_fences_executed >= 1
    assert ("flag", 1) in control.final_globals
    rendered = control.render()
    assert "observations T1: r=1" in rendered
    assert "flag = 1" in rendered and "data = 1" in rendered


def test_simulate_model_changes_placement(spec):
    session = Session()
    # On SC nothing needs a hardware fence, so the placement executes
    # zero mfences; on x86-TSO the w->r delay needs one.
    sc = session.simulate(
        SimulateRequest(program=spec, placement="control", model="sc")
    )
    tso = session.simulate(
        SimulateRequest(program=spec, placement="control", model="x86-tso")
    )
    assert sc.full_fences_executed == 0
    assert tso.full_fences_executed >= 1


def test_batch_report_matches_direct_engine():
    session = Session(parallel=False)
    report = session.batch(
        BatchRequest(programs=("fft",), variants=("control",))
    )
    assert [c.program for c in report.cells] == ["fft"]
    direct = analyze_program(
        compile_source_corpus("fft"), PipelineVariant.CONTROL
    )
    assert report.cells[0].full_fences == direct.full_fence_count
    assert report.total_full_fences == direct.full_fence_count


def compile_source_corpus(name):
    from repro.programs.registry import get_program

    return get_program(name).compile()


def test_batch_unknown_program_raises():
    with pytest.raises(KeyError, match="unknown program"):
        Session(parallel=False).batch(BatchRequest(programs=("nope",)))


def test_batch_cache_hits_across_calls(tmp_path):
    session = Session(parallel=False, cache_dir=str(tmp_path))
    first = session.batch(BatchRequest(programs=("fft",), variants=("control",)))
    second = session.batch(BatchRequest(programs=("fft",), variants=("control",)))
    assert first.cache_hits == 0
    assert second.cache_hits == 1


def test_fuzz_resolves_trusted_defaults():
    report = Session(parallel=False).fuzz(
        FuzzRequest(seeds=1, shapes=("publish",))
    )
    assert report.variants == ("address+control", "pensieve")
    assert report.cases_run == 1
    assert len(report.violations) == 0
    assert report.problem_count == 0


def test_fuzz_vanilla_violation_round_trips():
    from repro.api import FuzzReport

    report = Session(parallel=False).fuzz(
        FuzzRequest(seeds=1, shapes=("dekker",), variants=("vanilla",),
                    shrink=False)
    )
    assert len(report.violations) >= 1
    wire = report.to_json()
    assert FuzzReport.from_json(wire).to_json() == wire


# --- code-review regression fixes -------------------------------------------


def test_session_max_states_flows_to_check_and_fuzz(spec):
    # Requests default max_states=None = "use the session's bound".
    report = Session(max_states=3).check(CheckRequest(program=spec))
    assert not report.complete
    assert report.max_states == 3
    fuzz = Session(max_states=10, parallel=False).fuzz(
        FuzzRequest(seeds=1, shapes=("publish",))
    )
    assert fuzz.incomplete == 1


def test_request_max_states_overrides_session(spec):
    report = Session(max_states=3).check(
        CheckRequest(program=spec, max_states=1_000_000)
    )
    assert report.complete


MANUAL = """
global int flag;
global int data;

fn producer(tid) { data = 1; fence; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""


def test_simulate_honors_spec_manual_fences():
    session = Session()
    plain = ProgramSpec.inline(MANUAL, name="m")
    kept = ProgramSpec.inline(MANUAL, name="m", manual_fences=True)
    without = session.simulate(
        SimulateRequest(program=plain, placement="pensieve")
    )
    with_manual = session.simulate(
        SimulateRequest(program=kept, placement="pensieve")
    )
    # The expert fence is retained on top of the pipeline placement.
    assert with_manual.full_fences_executed > without.full_fences_executed


def test_check_honors_spec_manual_fences():
    session = Session()
    report = session.check(
        CheckRequest(program=ProgramSpec.inline(MANUAL, name="m",
                                                manual_fences=True))
    )
    # The expert-fenced program is the baseline under check.
    assert report.complete and not report.weak_breaks_unfenced


def test_session_context_cache_is_bounded(spec):
    session = Session()
    session._context_cap = 2
    programs = [session.load(ProgramSpec.inline(MP, name=f"p{i}"))
                for i in range(5)]
    assert len(session._contexts) <= 2
    # Most-recently-used program keeps its context identity.
    last_ctx = session.context(programs[-1])
    assert session.context(programs[-1]) is last_ctx


def test_fuzz_wire_payload_layout_matches_runner_payload():
    """The wire FuzzReport promises the historical ``fuzz --json``
    layout; this guards the hand-mirrored config/summary/cases keys in
    repro.api.reports against drifting from the runner's payload."""
    from repro.validate.runner import run_fuzz

    raw = run_fuzz(seeds=1, shapes=("publish",), parallel=False).to_payload()
    api = Session(parallel=False).fuzz(
        FuzzRequest(seeds=1, shapes=("publish",))
    ).to_payload()
    assert set(api["config"]) == set(raw["config"])
    assert set(api["summary"]) == set(raw["summary"])
    assert api["config"]["seeds"] == raw["config"]["seeds"]
    assert api["cases"][0].keys() == raw["cases"][0].keys()
    assert api["violations"] == raw["violations"] == []


def test_session_context_lru_safe_under_concurrency():
    import threading

    session = Session()
    session._context_cap = 4
    programs = [
        session.load(ProgramSpec.inline(MP, name=f"c{i}")) for i in range(12)
    ]
    barrier = threading.Barrier(6)
    errors = []

    def worker(offset):
        try:
            barrier.wait(timeout=10)
            for i in range(40):
                program = programs[(offset + i) % len(programs)]
                session.context(program)
                if i % 7 == 0:
                    session.forget(program)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(session._contexts) <= session._context_cap


def test_session_stats_accessor(spec):
    session = Session()
    report = session.analyze(AnalyzeRequest(program=spec))
    assert report.cache_stats is None  # opt-in only
    stats = session.stats()
    assert stats["requests"] == {"analyze": 1}
    assert stats["contexts"] == 1
    assert stats["context_cap"] == session._context_cap
    assert stats["context_stats"]["misses"] > 0
    assert stats["query_stats"]["computes"] > 0


def test_analyze_cache_stats_show_warm_context(spec):
    session = Session()
    cold = session.analyze(AnalyzeRequest(program=spec, stats=True))
    assert cold.cache_stats is not None
    assert cold.cache_stats.misses > 0
    assert "points_to" in cold.cache_stats.by_fact
    warm = session.analyze(AnalyzeRequest(program=spec, stats=True))
    assert "cache:" in warm.render()
    # The program cache hands the second request the same warm Program,
    # so its counters are pure hits.
    assert warm.cache_stats.misses == 0
    assert warm.cache_stats.hits > 0
    # The mid-level path shares the same warm context:
    program = session.load(spec)
    ctx = session.context(program)
    analysis_before = ctx.stats.misses
    session.analysis(program, "control")
    assert ctx.stats.misses == analysis_before  # all hits


def test_batch_cache_stats_aggregate():
    session = Session(parallel=False)
    report = session.batch(
        BatchRequest(programs=("fft",), variants=("control", "pensieve"),
                     stats=True)
    )
    assert report.cache_stats is not None
    assert report.cache_stats.misses > 0
    # The second variant shares the first's variant-independent facts.
    assert report.cache_stats.hits > 0
    assert "analysis cache:" in report.render()
    wire = report.to_json()
    from repro.api import BatchReport

    assert BatchReport.from_json(wire).to_json() == wire


def test_wire_requests_reuse_warm_program_and_context(spec):
    session = Session()
    cold = session.analyze(AnalyzeRequest(program=spec, stats=True))
    assert cold.cache_stats.misses > 0
    warm = session.analyze(AnalyzeRequest(program=spec, stats=True))
    # Same source -> same Program object -> pure memo hits.
    assert warm.cache_stats.misses == 0
    assert warm.cache_stats.hits > 0
    cold_payload = cold.to_payload()
    warm_payload = warm.to_payload()
    cold_payload.pop("cache_stats")
    warm_payload.pop("cache_stats")
    assert warm_payload == cold_payload


def test_wire_edit_recomputes_only_changed_function():
    edited_src = MP.replace("data = 1;", "data = 2;")  # producer only
    session = Session()
    session.analyze(
        AnalyzeRequest(program=ProgramSpec.inline(MP, name="mp"))
    )
    computes_cold = session.stats()["query_stats"]["computes"]
    report = session.analyze(
        AnalyzeRequest(
            program=ProgramSpec.inline(edited_src, name="mp"), stats=True
        )
    )
    delta = session.stats()["query_stats"]["computes"] - computes_cold
    # Only the edited producer's facts recomputed; consumer stayed hit.
    assert set(report.cache_stats.by_fact) <= {
        "points_to", "escape_info", "reachability", "acquires",
    }
    assert 0 < delta < computes_cold
    assert report.cache_stats.hits > 0
    # And the spliced warm result is byte-identical to a cold session's.
    fresh = Session().analyze(
        AnalyzeRequest(program=ProgramSpec.inline(edited_src, name="mp"))
    )
    warm_payload = report.to_payload()
    warm_payload.pop("cache_stats")
    fresh_payload = fresh.to_payload()
    fresh_payload.pop("cache_stats")
    assert warm_payload == fresh_payload


def test_place_evicts_mutated_program_from_source_cache(spec):
    """The litmus_model_check pattern: load + place per variant must
    hand each variant a clean compile, never the previous variant's
    fenced IR (regression: cached program returned fence-mutated)."""
    session = Session()
    first = session.load(spec)
    session.place(first, "pensieve")
    fenced_count = len(first.fences())
    assert fenced_count > 0
    second = session.load(spec)
    assert second is not first
    assert len(second.fences()) == 0
    session.place(second, "control")
    third = session.load(spec)
    assert len(third.fences()) == 0


def test_emit_ir_request_does_not_pollute_warm_program(spec):
    session = Session()
    session.analyze(AnalyzeRequest(program=spec))
    fenced = session.analyze(AnalyzeRequest(program=spec, emit_ir=True))
    assert fenced.fenced_ir is not None and "fence" in fenced.fenced_ir
    # The shared warm program was not mutated by the emit_ir request.
    program = session.load(spec)
    assert len(program.fences()) == 0
    again = session.analyze(AnalyzeRequest(program=spec))
    assert again.full_fences == fenced.full_fences


def test_session_refresh_delegates_to_engine(spec):
    session = Session()
    program = session.load(spec)
    session.analysis(program, "control")
    assert session.refresh(program) == ()


def test_package_versions_agree():
    import re
    from pathlib import Path

    import repro

    setup_text = Path(repro.__file__).parents[2].joinpath("setup.py").read_text()
    declared = re.search(r'version="([^"]+)"', setup_text).group(1)
    assert declared == repro.__version__


def test_validate_package_reexports_are_live():
    import repro.validate
    from repro.registry.variants import (
        detection_variant_keys,
        trusted_variant_keys,
    )

    assert repro.validate.DETECTION_VARIANTS == detection_variant_keys()
    assert repro.validate.TRUSTED_VARIANTS == trusted_variant_keys()
