"""Unit tests for locally-optimized fence minimization."""

from repro.analysis.escape import EscapeInfo
from repro.core.fence_min import apply_plan, plan_fences
from repro.core.machine_models import RMO, SC, X86_TSO
from repro.core.orderings import generate_orderings
from repro.frontend import compile_source
from repro.ir import CFG, Fence, FenceKind


def _plan(src: str, model=X86_TSO, fn: str = "f", entry_fence: bool = False):
    func = compile_source(src, "t").functions[fn]
    esc = EscapeInfo(func)
    orderings = generate_orderings(func, esc)
    return func, orderings, plan_fences(func, orderings, model, entry_fence)


def test_single_wr_ordering_gets_one_full_fence():
    func, _, plan = _plan("global a; global b; fn f() { a = 1; local r = b; }")
    assert len(plan.full_fences) == 1
    assert plan.compiler_count >= 0


def test_shared_fence_covers_overlapping_intervals():
    # a=1; b=2; r=c : both w->r intervals can share one fence before the load.
    func, _, plan = _plan(
        "global a; global b; global c; fn f() { a = 1; b = 2; local r = c; }"
    )
    assert len(plan.full_fences) == 1


def test_disjoint_intervals_need_two_fences():
    src = """
    global a; global b; global c; global d;
    fn f() {
      a = 1;
      local r1 = b;
      c = 2;
      local r2 = d;
    }
    """
    func, _, plan = _plan(src)
    assert len(plan.full_fences) == 2


def test_tso_only_wr_needs_full_fence():
    # pure w->w orderings: compiler directives only on TSO
    func, _, plan = _plan("global a; global b; fn f() { a = 1; b = 2; }")
    assert len(plan.full_fences) == 0
    assert len(plan.compiler_fences) == 1


def test_sc_model_needs_no_full_fences():
    # SC hardware enforces everything, but compiler directives are still
    # required to stop the compiler reordering (paper Section 2.1).
    func, _, plan = _plan(
        "global a; global b; fn f() { a = 1; local r = b; }", model=SC
    )
    assert len(plan.full_fences) == 0
    assert len(plan.compiler_fences) >= 1


def test_rmo_fences_everything():
    func, _, plan = _plan(
        "global a; global b; fn f() { a = 1; b = 2; }", model=RMO
    )
    assert len(plan.full_fences) == 1
    assert len(plan.compiler_fences) == 0


def test_existing_manual_fence_satisfies_interval():
    src = "global a; global b; fn f() { a = 1; fence; local r = b; }"
    func = compile_source(src, "t", include_manual_fences=True).functions["f"]
    esc = EscapeInfo(func)
    orderings = generate_orderings(func, esc)
    plan = plan_fences(func, orderings, X86_TSO)
    assert len(plan.full_fences) == 0


def test_rmw_acts_as_fence_on_tso():
    src = "global a; global b; global l; fn f() { a = 1; local o = xchg(&l, 1); local r = b; }"
    func, orderings, plan = _plan(src)
    # a=1 -> r=b spans the xchg, which is a locked instruction: no mfence needed
    assert len(plan.full_fences) == 0


def test_rmw_not_a_fence_on_rmo():
    src = "global a; global b; global l; fn f() { a = 1; local o = xchg(&l, 1); local r = b; }"
    func, orderings, plan = _plan(src, model=RMO)
    assert len(plan.full_fences) >= 1


def test_cross_block_uses_source_side_projection():
    src = """
    global a; global b; global c;
    fn f() {
      a = 1;
      if (c) { local r = b; }
    }
    """
    func, orderings, plan = _plan(src)
    # fence must sit in the entry block (between a=1 and the branch)
    assert all(f.block_label == "entry" for f in plan.full_fences)


def test_entry_fence_counted():
    func, _, plan = _plan(
        "global a; fn f() { local r = a; }", entry_fence=True
    )
    assert plan.entry_fence
    assert plan.full_count == len(plan.full_fences) + 1


def test_apply_plan_inserts_fences():
    func, orderings, plan = _plan(
        "global a; global b; fn f() { a = 1; local r = b; }"
    )
    inserted = apply_plan(func, plan)
    fences = [i for i in func.instructions() if isinstance(i, Fence)]
    assert inserted == len(fences)
    assert any(f.kind is FenceKind.FULL for f in fences)


def test_apply_plan_positions_are_between_endpoints():
    src = "global a; global b; fn f() { a = 1; local r = b; }"
    func, orderings, plan = _plan(src)
    apply_plan(func, plan)
    entry = func.entry
    kinds = [type(i).__name__ for i in entry.instructions]
    store_idx = kinds.index("Store")
    fence_idx = next(i for i, k in enumerate(kinds) if k == "Fence")
    load_idx = max(i for i, k in enumerate(kinds) if k == "Load")
    assert store_idx < fence_idx < load_idx


def _every_ordering_enforced(func, orderings, model) -> bool:
    """Check: every full-fence-needing ordering has an enforcement
    instruction between its endpoints (same block) or after the source
    (cross-block)."""
    for ordering in orderings:
        if not model.needs_full_fence(ordering.kind):
            continue
        if model.rmw_is_full_fence and (
            ordering.src.inst.is_atomic_rmw() or ordering.dst.inst.is_atomic_rmw()
        ):
            continue  # enforced by the endpoint's own barrier
        ub, ui = func.position(ordering.src.inst)
        vb, vi = func.position(ordering.dst.inst)
        block = func.blocks[ub]
        span_end = vi if (ub == vb and ui < vi) else len(block.instructions) - 1
        window = block.instructions[ui + 1 : span_end + 1]
        ok = any(
            (isinstance(i, Fence) and i.kind is FenceKind.FULL)
            or (i.is_atomic_rmw() and model.rmw_is_full_fence)
            for i in window
        )
        if not ok:
            return False
    return True


def test_all_orderings_enforced_after_apply():
    sources = [
        "global a; global b; fn f() { a = 1; local r = b; }",
        "global a; global b; global c; fn f() { a = 1; local r = b; c = 2; local s = a; }",
        "global g; fn f() { local i = 0; while (i < 3) { g = g + 1; i = i + 1; } }",
    ]
    for src in sources:
        func = compile_source(src, "t").functions["f"]
        esc = EscapeInfo(func)
        orderings = generate_orderings(func, esc)
        plan = plan_fences(func, orderings, X86_TSO)
        apply_plan(func, plan)
        assert _every_ordering_enforced(func, orderings, X86_TSO), src


def test_every_delay_plan_fences_every_access():
    from repro.core.fence_min import plan_every_delay_fences

    src = "global a; global b; fn f() { a = 1; local r = b; b = r + a; }"
    func = compile_source(src, "t").functions["f"]
    plan = plan_every_delay_fences(func)
    accesses = sum(
        1
        for block in func.blocks
        for inst in block.instructions
        if inst.is_memory_access()
    )
    assert plan.entry_fence
    assert len(plan.full_fences) == accesses
    assert plan.compiler_count == 0
    assert plan.full_count == accesses + 1


def test_every_delay_apply_covers_all_orderings_on_rmo():
    """Stronger than TSO: on RMO every ordering kind needs a fence, and
    the every-delay placement must still enforce them all."""
    from repro.core.fence_min import plan_every_delay_fences

    src = (
        "global a; global b; global c; "
        "fn f() { a = 1; local r = b; c = 2; local s = a; }"
    )
    func = compile_source(src, "t").functions["f"]
    esc = EscapeInfo(func)
    orderings = generate_orderings(func, esc)
    apply_plan(func, plan_every_delay_fences(func))
    assert _every_ordering_enforced(func, orderings, RMO)
