"""Warn-once deprecation machinery for the compatibility shims.

The ``repro.api`` redesign keeps the pre-facade entry points working
through thin shims; each shim warns exactly once per process (keyed by
shim name, independent of the active warning filters) so legacy callers
get told without drowning batch runs in repeated warnings.
"""

from __future__ import annotations

import warnings

_warned: set[str] = set()


def warn_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``message`` as a DeprecationWarning the first time ``key`` fires."""
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_warned() -> None:
    """Forget which shims already warned (test isolation hook)."""
    _warned.clear()
