"""Lint orchestration: run registered passes, assemble the result.

:func:`run_lint` is the engine-level entry point — the API session and
CLI front it with the schema-versioned ``LintRequest``/``LintReport``
wire pair. It takes a compiled program plus its (possibly warm)
:class:`~repro.engine.context.AnalysisContext`, so a long-lived
session re-lints incrementally: the race queries live in the same
engine as the analysis facts and invalidate at function granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.machine_models import MemoryModel, X86_TSO
from repro.diagnostics.findings import (
    Finding,
    FindingCounts,
    severity_rank,
    sort_findings,
)
from repro.diagnostics.passes import LINT_PASSES, LintContext
from repro.engine.context import AnalysisContext
from repro.ir.function import Program

if TYPE_CHECKING:  # runtime-lazy: repro.arch itself imports repro.core
    from repro.arch.backend import ArchBackend


@dataclass(frozen=True)
class LintResult:
    """Everything one lint run established (pre-wire form)."""

    variant: str
    model: str
    passes: tuple[str, ...]
    findings: tuple[Finding, ...]
    counts: FindingCounts
    confirmed_races: int
    refuted_candidates: int
    unknown_candidates: int
    #: True when the witness search exhausted the interleavings, False
    #: when it hit its bounds, None when confirmation was off.
    explorer_complete: bool | None
    #: SC traces the witness search enumerated; None when confirmation
    #: was off.
    traces_checked: int | None
    #: The linted source becomes fuzz-seed material when the explorer
    #: found a race the static gate missed.
    fuzz_seed: bool = False

    def worst_severity(self) -> str | None:
        worst = None
        for finding in self.findings:
            if worst is None or severity_rank(finding.severity) > severity_rank(
                worst
            ):
                worst = finding.severity
        return worst

    def exit_code(self, fail_on: str) -> int:
        """0/1 gate for ``--fail-on``; ``"never"`` always passes."""
        if fail_on == "never":
            return 0
        return 1 if self.counts.at_least(fail_on) else 0


def run_lint(
    program: Program,
    context: AnalysisContext,
    variant: str = "address+control",
    model: MemoryModel = X86_TSO,
    arch: "ArchBackend | None" = None,
    passes: tuple[str, ...] = (),
    confirm: bool = True,
    max_traces: int = 400,
    max_actions: int = 400,
) -> LintResult:
    """Run ``passes`` (default: all registered) over ``program``."""
    import repro.races  # noqa: F401  (registers the race queries)

    selected = passes or LINT_PASSES.keys()
    ctx = LintContext(
        program=program,
        context=context,
        variant=variant,
        model=model,
        arch=arch,
        confirm=confirm,
        max_traces=max_traces,
        max_actions=max_actions,
    )
    findings: list[Finding] = []
    for key in selected:
        findings.extend(LINT_PASSES.get(key).run(ctx))
    ordered = sort_findings(findings)
    return LintResult(
        variant=variant,
        model=model.name,
        passes=tuple(selected),
        findings=ordered,
        counts=FindingCounts.of(ordered),
        confirmed_races=ctx.extras.get("confirmed_races", 0),
        refuted_candidates=ctx.extras.get("refuted_candidates", 0),
        unknown_candidates=ctx.extras.get("unknown_candidates", 0),
        explorer_complete=ctx.extras.get("explorer_complete"),
        traces_checked=ctx.extras.get("traces_checked"),
        fuzz_seed=bool(ctx.extras.get("fuzz_seed")),
    )
