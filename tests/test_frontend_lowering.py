"""Unit tests for AST -> IR lowering."""

import pytest

from repro.frontend import LoweringError, compile_source
from repro.ir import (
    Alloca,
    AtomicAdd,
    Br,
    CmpXchg,
    Fence,
    FenceKind,
    Gep,
    Load,
    Store,
    verify_program,
)


def _func(src: str, name: str = "f"):
    return compile_source(src, "t").functions[name]


def test_locals_become_allocas():
    f = _func("fn f() { local a; local b[4]; }")
    allocas = [i for i in f.instructions() if isinstance(i, Alloca)]
    assert [a.size for a in allocas] == [1, 4]


def test_params_are_spilled_to_allocas():
    f = _func("fn f(p, q) { }")
    allocas = [i for i in f.instructions() if isinstance(i, Alloca)]
    assert {a.var_name for a in allocas} == {"p", "q"}


def test_global_scalar_read_is_load():
    f = _func("global g; fn f() { local r = g; }")
    loads = [i for i in f.instructions() if isinstance(i, Load)]
    assert any(str(ld.addr) == "@g" for ld in loads)


def test_global_array_index_is_gep():
    f = _func("global a[4]; fn f() { local r = a[2]; }")
    geps = [i for i in f.instructions() if isinstance(i, Gep)]
    assert len(geps) == 1
    assert str(geps[0].base) == "@a"


def test_pointer_deref_assignment():
    f = _func("global x; fn f() { local p = &x; *p = 7; }")
    stores = [i for i in f.instructions() if isinstance(i, Store)]
    # one store to p's slot, one through the loaded pointer
    assert len(stores) == 2


def test_address_of_local_array_element():
    f = _func("fn f() { local a[4]; local p = &a[1]; }")
    geps = [i for i in f.instructions() if isinstance(i, Gep)]
    assert len(geps) == 1


def test_scalar_holding_pointer_indexing():
    # p[i] where p is a scalar local: load pointer then gep.
    f = _func("global buf[8]; fn f() { local p = &buf[0]; local r = p[3]; }")
    geps = [i for i in f.instructions() if isinstance(i, Gep)]
    assert len(geps) == 2  # &buf[0] and p[3]


def test_manual_fences_stripped_by_default(mp_source):
    src = "global x; fn f() { x = 1; fence; cfence; x = 2; }"
    stripped = compile_source(src, "s")
    kept = compile_source(src, "k", include_manual_fences=True)
    assert not [i for i in stripped.functions["f"].instructions() if isinstance(i, Fence)]
    fences = [i for i in kept.functions["f"].instructions() if isinstance(i, Fence)]
    assert [f.kind for f in fences] == [FenceKind.FULL, FenceKind.COMPILER]


def test_if_else_creates_diamond():
    f = _func("global x; fn f() { if (x) { x = 1; } else { x = 2; } x = 3; }")
    labels = [b.label for b in f.blocks]
    assert any(l.startswith("then") for l in labels)
    assert any(l.startswith("else") for l in labels)
    assert any(l.startswith("endif") for l in labels)


def test_while_loop_structure():
    f = _func("global x; fn f() { while (x) { x = x - 1; } }")
    labels = [b.label for b in f.blocks]
    assert any(l.startswith("while.head") for l in labels)
    assert any(l.startswith("while.body") for l in labels)
    assert any(l.startswith("while.end") for l in labels)
    # condition load sits in the header (re-evaluated per iteration)
    head = next(b for b in f.blocks if b.label.startswith("while.head"))
    assert any(isinstance(i, Load) for i in head.instructions)
    assert isinstance(head.terminator, Br)


def test_for_desugars_with_step_block():
    f = _func("fn f() { local i; for (i = 0; i < 3; i = i + 1) { } }")
    labels = [b.label for b in f.blocks]
    assert any(l.startswith("for.step") for l in labels)


def test_break_continue_targets():
    src = """
    global x;
    fn f() {
      local i = 0;
      while (i < 10) {
        i = i + 1;
        if (x == 1) { break; }
        if (x == 2) { continue; }
        x = x + 1;
      }
    }
    """
    prog = compile_source(src, "t")
    verify_program(prog)  # all jump targets resolve


def test_break_outside_loop_rejected():
    with pytest.raises(LoweringError, match="break outside loop"):
        compile_source("fn f() { break; }", "t")


def test_duplicate_local_rejected():
    with pytest.raises(LoweringError, match="duplicate local"):
        compile_source("fn f() { local a; local a; }", "t")


def test_undefined_variable_rejected():
    with pytest.raises(LoweringError, match="undefined variable"):
        compile_source("fn f() { local r = nope; }", "t")


def test_assignment_to_undefined_rejected():
    with pytest.raises(LoweringError, match="undefined variable"):
        compile_source("fn f() { nope = 1; }", "t")


def test_atomics_lowering():
    f = _func("global x; fn f() { local a = cas(&x, 0, 1); local b = fadd(&x, 2); }")
    assert any(isinstance(i, CmpXchg) for i in f.instructions())
    assert any(isinstance(i, AtomicAdd) for i in f.instructions())


def test_call_statement_and_expression():
    src = """
    global x;
    fn helper(v) { x = v; return v + 1; }
    fn f() { helper(1); local r = helper(2); }
    """
    prog = compile_source(src, "t")
    verify_program(prog)


def test_return_mid_function_keeps_ir_wellformed():
    src = "global x; fn f() { if (x) { return; } x = 1; }"
    verify_program(compile_source(src, "t"))


def test_logical_and_is_nonshortcircuit():
    # both operands evaluated: two loads of globals
    f = _func("global a; global b; fn f() { if (a && b) { } }")
    loads = [i for i in f.instructions() if isinstance(i, Load) and str(i.addr).startswith("@")]
    assert len(loads) == 2


def test_whole_program_verifies(mp_source, sb_source):
    verify_program(compile_source(mp_source, "mp"))
    verify_program(compile_source(sb_source, "sb"))
