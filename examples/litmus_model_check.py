"""Model-check the paper's litmus shapes (Figs 4, 5, 6) plus SB.

For each litmus test: enumerate all SC and all x86-TSO outcomes of the
unfenced program, then re-run TSO with fences from each pipeline
variant. Everything flows through the :class:`repro.api.Session`
facade's mid-level API — litmus tests load via ``ProgramSpec.litmus``,
exploration and placement dispatch through the registries. Shows the
paper's contract concretely:

* MP (Fig. 4) is already safe on TSO (no w->r reordering involved);
* Dekker (Fig. 6) breaks unfenced and is repaired by every variant —
  its reads are control acquires;
* SB has *no* acquires: the paper's approach leaves it unfenced by
  design (it is not legacy-DRF), while Pensieve fences it;
* MP-with-pointers (Fig. 5) is the pure address acquire: detected by
  Address+Control, missed by Control.

Run:  python examples/litmus_model_check.py
"""

from repro.api import ProgramSpec, Session
from repro.core.signatures import Variant, detect_acquires
from repro.memmodel.litmus import LITMUS_TESTS
from repro.registry import pipeline_variant_keys


def outcome_strings(observation_sets) -> list[str]:
    rendered = []
    for outcome in sorted(observation_sets):
        rendered.append(
            "{" + ", ".join(f"T{t}:{k}={v}" for t, k, v in outcome) + "}"
        )
    return rendered


def main() -> None:
    session = Session()
    for name in ("mp", "dekker", "sb", "mp-pointers"):
        test = LITMUS_TESTS[name]
        spec = ProgramSpec.litmus(name)
        print(f"\n=== {name}: {test.description.splitlines()[0]}")
        sc = session.explore(session.load(spec), "sc")
        tso = session.explore(session.load(spec), "x86-tso")
        print("  SC outcomes          :", outcome_strings(sc.observation_sets()))
        extra = tso.observation_sets() - sc.observation_sets()
        print(
            "  TSO unfenced         :",
            f"{len(tso.observation_sets())} outcomes"
            + (f", non-SC extras: {outcome_strings(extra)}" if extra else " (== SC)"),
        )
        for variant in pipeline_variant_keys():
            fenced = session.load(spec)
            analysis = session.place(fenced, variant)
            tso_fenced = session.explore(fenced, "x86-tso")
            restored = tso_fenced.observation_sets() == sc.observation_sets()
            print(
                f"  TSO + {variant:16s}: "
                f"{analysis.full_fence_count} mfences, "
                f"SC restored: {restored}"
            )

    # The Fig. 5 acquire is visible only to Address+Control.
    program = session.load(ProgramSpec.litmus("mp-pointers"))
    reader = program.functions["reader"]
    control = detect_acquires(reader, Variant.CONTROL).sync_reads
    both = detect_acquires(reader, Variant.ADDRESS_CONTROL).sync_reads
    print(
        "\nmp-pointers reader: Control finds"
        f" {len(control)} acquires, Address+Control finds {len(both)}"
        " (the y-read is a pure address acquire)"
    )


if __name__ == "__main__":
    main()
