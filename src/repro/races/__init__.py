"""`repro.races` — the static data-race detector (legacy-DRF gate).

The paper's fence-placement transformation is only sound for legacy
data-race-free programs; this package checks that precondition
statically and has the dynamic explorer audit its own answers:

* :mod:`repro.races.mhp` — which functions two distinct thread spawns
  can execute in parallel;
* :mod:`repro.races.locksets` — Eraser-style consistent-lock
  protection;
* :mod:`repro.races.detector` — conflicting-pair enumeration refined
  by the pipeline's detected synchronization reads (the release/
  acquire chain ``a po w(s) con r(s) po b`` discharges a pair), plus
  explorer-backed confirmation/refutation with concrete witness
  interleavings;
* :mod:`repro.races.queries` — the above as incremental queries, so a
  warm `repro serve` re-lint recomputes only what an edit touched.

Findings are *reported* through :mod:`repro.diagnostics`.
"""

from repro.races.detector import (
    AccessSite,
    AccessSummary,
    RaceCandidate,
    StaticRaceReport,
    VerdictReport,
    Witness,
    build_access_summary,
    confirm_candidates,
    detect_races,
)
from repro.races.locksets import compute_locksets
from repro.races.mhp import ThreadStructure, callees_of

# Importing the query definitions registers them in the catalog.
import repro.races.queries  # noqa: E402,F401  (registration side effect)

__all__ = [
    "AccessSite",
    "AccessSummary",
    "RaceCandidate",
    "StaticRaceReport",
    "ThreadStructure",
    "VerdictReport",
    "Witness",
    "build_access_summary",
    "callees_of",
    "compute_locksets",
    "confirm_candidates",
    "detect_races",
]
