"""Reduced-vs-exhaustive differential tests for the exploration core.

The acceptance oracle for the DPOR/canonicalization retrofit: on every
litmus program and a sweep of fuzz-generated programs, the reduced
exploration (sleep sets + persistent singletons + canonical hashing +
symmetry) must produce byte-identical verdicts — the same outcome set
and the same ``complete`` flag — as a plain exhaustive DFS, on every
model. A reduction that merely *usually* agrees is a soundness bug;
these tests are why the core can be on by default.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.memmodel.litmus import LITMUS_TESTS
from repro.registry.models import EXPLORERS
from repro.validate.generator import SHAPES, generate_program

MODELS = ("sc", "x86-tso", "pso", "arm", "power")

MAX_STATES = 500_000


def _differential(program_factory, model, max_states=MAX_STATES):
    cls = EXPLORERS.get(model)
    reduced = cls(program_factory(), max_states=max_states).explore()
    exhaustive = cls(
        program_factory(), max_states=max_states,
        reduction=False, canonicalize=False,
    ).explore()
    assert reduced.complete == exhaustive.complete
    assert reduced.outcomes == exhaustive.outcomes
    assert reduced.reduced and not exhaustive.reduced
    # The whole point: the reduced run never explores more states.
    assert reduced.states_explored <= exhaustive.states_explored
    return reduced, exhaustive


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("name", sorted(LITMUS_TESTS))
def test_litmus_reduced_agrees_with_exhaustive(name, model):
    _differential(LITMUS_TESTS[name].compile, model)


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("shape", SHAPES)
def test_generated_reduced_agrees_with_exhaustive(shape, model):
    from repro.frontend import compile_source

    generated = generate_program(0, shape)
    _differential(
        lambda: compile_source(generated.source, generated.name), model
    )


def test_scaled_workloads_hit_headline_reduction():
    """The BENCH_explore.json acceptance floor, pinned as a test: the
    dekker-/MP-class scaled litmus entries reduce >=10x on the buffered
    models where their state spaces blow up."""
    for name, model in (
        ("dekker-scoreboard", "x86-tso"),
        ("dekker-scoreboard", "pso"),
        ("mp-chain", "pso"),
    ):
        reduced, exhaustive = _differential(
            LITMUS_TESTS[name].compile, model, max_states=3_000_000
        )
        ratio = exhaustive.states_explored / max(1, reduced.states_explored)
        assert ratio >= 10.0, (name, model, ratio)


# --- hypothesis sweep over the fuzz generator's seed space -------------------


@given(
    seed=st.integers(0, 10_000),
    shape=st.sampled_from(SHAPES),
    model=st.sampled_from(MODELS),
)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_fuzzed_programs_reduced_agrees_with_exhaustive(seed, shape, model):
    from repro.frontend import compile_source

    generated = generate_program(seed, shape)
    _differential(
        lambda: compile_source(generated.source, generated.name), model
    )


# --- opt-out and deepening behaviour -----------------------------------------


def test_reduction_off_reproduces_legacy_counts():
    """With reduction and canonical hashing disabled the core walks the
    same raw state graph the pre-core explorers did (dekker on TSO was
    260 states before the retrofit)."""
    cls = EXPLORERS.get("x86-tso")
    result = cls(
        LITMUS_TESTS["dekker"].compile(),
        reduction=False, canonicalize=False,
    ).explore()
    assert result.states_explored == 260
    assert result.verdict == "complete"


def test_bounded_exploration_reports_principled_verdict():
    cls = EXPLORERS.get("x86-tso")
    result = cls(
        LITMUS_TESTS["dekker-scoreboard"].compile(), max_states=10,
        reduction=False, canonicalize=False,
    ).explore()
    assert not result.complete
    assert result.verdict == "bounded:max-states"


def test_iterative_deepening_converges_to_complete():
    cls = EXPLORERS.get("x86-tso")
    deep = cls(
        LITMUS_TESTS["dekker"].compile(), deepening=True, initial_depth=4
    ).explore()
    flat = cls(LITMUS_TESTS["dekker"].compile()).explore()
    assert deep.complete
    assert deep.verdict == "complete"
    assert deep.rounds > 1  # depth 4 cannot finish dekker in one pass
    assert deep.outcomes == flat.outcomes
