"""CLI tests for the arch surface: --arch flags, the ``repro models``
listing, and the weak-only model gating on check/fuzz."""

import json

import pytest

from repro.cli import main
from repro.registry.models import ModelEntry, get_model
from repro.core.machine_models import MODELS as MACHINE_MODELS

MP = """
global int flag;
global int data;

fn producer(tid) { data = 1; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""


@pytest.fixture
def mp_file(tmp_path):
    path = tmp_path / "mp.c"
    path.write_text(MP)
    return str(path)


# --- repro models ------------------------------------------------------------


def test_models_lists_the_registry(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    for key in ("sc", "x86-tso", "pso", "rmo", "arm", "power"):
        assert key in out
    assert "reference" in out  # sc is flagged, not merely "no"
    assert "power" in out


# --- is_reference (satellite bugfix) ----------------------------------------


def test_reference_model_is_never_checkable_even_with_explorer():
    """checkable must derive from the explicit is_reference flag, not a
    string compare on the key: a backend-registered reference model
    under another name must not become differencable against itself."""
    entry = ModelEntry(
        key="sc-lookalike",
        model=MACHINE_MODELS["sc"],
        display="SC2",
        explorer="sc",
        is_reference=True,
    )
    assert not entry.checkable
    assert get_model("sc").is_reference
    assert not get_model("sc").checkable
    assert get_model("arm").checkable and get_model("arm").arch == "arm"


# --- --arch on analyze -------------------------------------------------------


def test_analyze_arch_reports_flavored_cost(mp_file, capsys):
    assert main(["analyze", mp_file, "--arch", "power",
                 "--variant", "address+control"]) == 0
    out = capsys.readouterr().out
    assert "arch power" in out
    assert "lwsync" in out


def test_analyze_arch_defaults_model_to_backend(mp_file, capsys):
    assert main(["analyze", mp_file, "--arch", "power", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["model"] == "power"
    assert payload["arch"] == "power"
    assert payload["fence_cost"] > 0
    assert payload["flavors"]


def test_analyze_arch_emit_ir_prints_flavored_fences(mp_file, capsys):
    assert main(["analyze", mp_file, "--arch", "arm", "--emit-ir",
                 "--variant", "address+control"]) == 0
    out = capsys.readouterr().out
    assert "fence.full[dmb" in out  # dmb or dmbst


def test_analyze_without_arch_is_unflavored(mp_file, capsys):
    assert main(["analyze", mp_file, "--emit-ir"]) == 0
    out = capsys.readouterr().out
    assert "fence.full[" not in out
    assert json.loads("null") is None  # keep json import honest


# --- --arch on check / simulate ---------------------------------------------


def test_check_arm_restores_sc_with_flavored_fences(mp_file, capsys):
    assert main(["check", mp_file, "--model", "arm"]) == 0
    out = capsys.readouterr().out
    assert "NON-SC BEHAVIOUR" in out  # unfenced MP breaks on ARM
    assert "SC restored: True" in out


def test_check_arch_echoed_in_json(mp_file, capsys):
    assert main(["check", mp_file, "--model", "power", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["arch"] == "power"
    assert all(v["restored_sc"] for v in payload["variants"])


def test_simulate_arch_prices_flavored_fences(mp_file, capsys):
    assert main(["simulate", mp_file, "--arch", "power",
                 "--variant", "address+control", "--json"]) == 0
    power = json.loads(capsys.readouterr().out)
    assert main(["simulate", mp_file, "--variant", "address+control",
                 "--model", "power", "--json"]) == 0
    generic = json.loads(capsys.readouterr().out)
    assert power["arch"] == "power" and generic["arch"] is None
    assert power["full_fences_executed"] > 0
    # lwsync/eieio are cheaper than the generic mfence pricing, so the
    # flavored run can never be slower. (Executed-fence counts may
    # differ: the consumer's spin pace shifts with fence latency.)
    assert power["cycles"] <= generic["cycles"]


# --- batch --arch ------------------------------------------------------------


def test_batch_arch_override(capsys):
    assert main(["batch", "--programs", "fft", "--variants", "control",
                 "--models", "x86-tso", "--arch", "power", "--serial",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["arch"] == "power"
    cell = payload["cells"][0]
    assert cell["fence_cost"] is not None
    assert set(cell["flavors"]) <= {"sync", "lwsync", "eieio"}


def test_batch_per_model_defaults(capsys):
    assert main(["batch", "--programs", "fft", "--variants", "control",
                 "--models", "x86-tso", "arm", "--serial", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    by_model = {c["model"]: c for c in payload["cells"]}
    assert set(by_model["x86-tso"]["flavors"]) <= {"mfence", "sfence"}
    assert set(by_model["arm"]["flavors"]) <= {"dmb", "dmbst"}


# --- weak-only gating (satellite bugfix) -------------------------------------


def test_fuzz_rejects_non_checkable_models_cleanly(capsys):
    """--models is gated by argparse choices now: sc and rmo fail with
    a usage error instead of deep inside explorer_cls()."""
    for bogus in ("sc", "rmo"):
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "--seeds", "1", "--models", bogus])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


def test_check_refuses_arch_its_explorer_cannot_model(mp_file, capsys):
    """An explicit --arch whose flavors the model's explorer cannot
    give kill-set semantics to must be refused, not silently explored
    at full-fence strength (which would fake-validate the flavors)."""
    assert main(["check", mp_file, "--model", "pso", "--arch", "x86"]) == 2
    assert "cannot validate 'x86' fence flavors" in capsys.readouterr().err
    assert main(["check", mp_file, "--model", "arm", "--arch", "power"]) == 2
    assert "honors the 'arm' flavor catalog" in capsys.readouterr().err
    # The matching catalog is accepted (same as the default path).
    assert main(["check", mp_file, "--model", "arm", "--arch", "arm"]) == 0
    assert "SC restored: True" in capsys.readouterr().out


def test_check_rejects_non_checkable_models_cleanly(mp_file, capsys):
    for bogus in ("sc", "rmo"):
        with pytest.raises(SystemExit) as exc:
            main(["check", mp_file, "--model", bogus])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


def test_fuzz_accepts_arm_and_power_keys():
    """The new backends are in the fuzz choice set (smoke: tiny run)."""
    assert main(["fuzz", "--seeds", "1", "--shapes", "publish",
                 "--models", "arm", "--serial", "--no-shrink"]) == 0
