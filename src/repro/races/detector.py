"""The static data-race detector, refined by detected sync reads.

Pipeline (paper framing: the fence placer's soundness needs the input
to be legacy-DRF, so this is the static gate for that precondition):

1. **May-happen-in-parallel** — access pairs must come from functions
   two distinct thread spawns can execute (:mod:`repro.races.mhp`).
2. **Conflict** — both escaping accesses, overlapping abstract
   locations (named globals from the points-to sets; a conservative
   ``unknown`` pointee conflicts with anything escaping), at least one
   write.
3. **Sync classification** — the detector reuses the pipeline's
   synchronization-read detection: locations read by detected acquires
   (plus every RMW-addressed location) are *synchronization
   locations*; accesses touching them are synchronization accesses,
   whose races are synchronization races, permitted under legacy DRF.
4. **Lockset** (Eraser) — pairs whose locksets intersect are
   consistently protected (:mod:`repro.races.locksets`).
5. **Sync-read/publish edge** — a pair ``(a, b)`` is ordered when some
   sync location ``s`` has a release write po-after ``a`` and a
   detected sync read po-before ``b`` (or symmetrically): the paper's
   release/acquire chain ``a po w(s) con r(s) po b``. This is the
   static approximation of happens-before; it is deliberately
   optimistic (the acquire might read another write), which is exactly
   what the explorer backstop below exists to catch.

Every surviving pair is a *candidate*, not a verdict. For programs
small enough to model-check, :func:`confirm_candidates` searches the
bounded SC trace set for a witness interleaving in which the pair
races under the detector's own marking — candidates are then
``confirmed`` (witness attached) or ``refuted`` (exhaustively, when
enumeration completed). Dynamic races the static gate *missed* are
reported too: they are detector gaps, and callers feed them back as
fuzz seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.aliasing import GlobalObj, PointsTo
from repro.ir.function import Function, Program
from repro.ir.instructions import Gep, Instruction
from repro.ir.values import Constant, Register
from repro.memmodel.hb import Race, find_races
from repro.memmodel.litmus import sync_marking_for_globals
from repro.memmodel.sc import Trace, TraceAction, enumerate_sc_traces
from repro.races.locksets import compute_locksets
from repro.races.mhp import ThreadStructure
from repro.util.orderedset import OrderedSet

if TYPE_CHECKING:  # runtime-lazy: the context fronts the query engine
    from repro.engine.context import AnalysisContext
    from repro.memmodel.interpreter import GlobalLayout


@dataclass(frozen=True)
class AccessSite:
    """One escaping memory access, with everything the pairing needs."""

    function: str
    uid: int
    is_write: bool
    is_rmw: bool
    #: Named globals the address may denote (field-insensitive).
    locations: frozenset[str]
    #: Address has a conservative unknown pointee.
    unknown: bool
    #: Eraser lockset held at the access.
    lockset: frozenset[str]
    #: Constant array element the address selects (``gep base, k``), or
    #: None for scalars and computed indices.
    index: int | None
    inst: Instruction = field(hash=False, compare=False)


@dataclass(frozen=True)
class AccessSummary:
    """Per-function race-relevant facts (one ``race_access_summary``
    query value; everything downstream derives from these)."""

    function: Function
    accesses: tuple[AccessSite, ...]


@dataclass(frozen=True)
class RaceCandidate:
    """A statically unordered conflicting access pair."""

    location: str
    first: AccessSite
    second: AccessSite

    @property
    def key(self) -> frozenset[tuple[str, int]]:
        return frozenset(
            {(self.first.function, self.first.uid),
             (self.second.function, self.second.uid)}
        )


@dataclass(frozen=True)
class StaticRaceReport:
    """The whole program's static verdict for one detection variant."""

    variant: str
    sync_locations: frozenset[str]
    candidates: tuple[RaceCandidate, ...]

    @property
    def gate_passes(self) -> bool:
        """Would the static DRF gate admit this program?"""
        return not self.candidates


def build_access_summary(
    func: Function, points_to: PointsTo
) -> AccessSummary:
    """Collect ``func``'s escaping accesses with pointees and locksets."""
    locksets = compute_locksets(func, points_to)
    sites = []
    for inst in func.instructions():
        if not inst.is_memory_access():
            continue
        addr = inst.address_operand()
        if addr is None or points_to.is_local_address(addr):
            continue
        pointees = points_to.pointees(addr)
        names = frozenset(
            o.name for o in pointees if isinstance(o, GlobalObj)
        )
        unknown = any(not isinstance(o, GlobalObj) for o in pointees)
        index = None
        if isinstance(addr, Register) and isinstance(addr.defining_inst, Gep):
            offset = addr.defining_inst.offset
            if isinstance(offset, Constant):
                index = offset.value
        sites.append(
            AccessSite(
                function=func.name,
                uid=inst.uid,
                is_write=inst.writes_memory(),
                is_rmw=inst.is_atomic_rmw(),
                locations=names,
                unknown=unknown or not pointees,
                lockset=locksets.get(inst.uid, frozenset()),
                index=index,
                inst=inst,
            )
        )
    return AccessSummary(function=func, accesses=tuple(sites))


def sync_reads_for(
    context: AnalysisContext, func: Function, variant_key: str
) -> OrderedSet:
    """The detection variant's acquire set for ``func`` — the same
    marking the fence-placement pipeline would use."""
    from repro.core.pipeline import PipelineVariant
    from repro.core.signatures import Variant
    from repro.registry.variants import get_variant

    entry = get_variant(variant_key)
    if entry.null_detector:
        return OrderedSet()
    if entry.pipeline_variant is PipelineVariant.PENSIEVE:
        return context.escape_info(func).escaping_reads
    detector = (
        Variant.CONTROL
        if entry.pipeline_variant is PipelineVariant.CONTROL
        else Variant.ADDRESS_CONTROL
    )
    return context.acquires(func, detector).sync_reads


def _sync_locations(
    context: AnalysisContext,
    summaries: dict[str, AccessSummary],
    variant_key: str,
) -> tuple[frozenset[str], set[tuple[str, int]]]:
    """(sync location names, uids of detected sync reads)."""
    locations: set[str] = set()
    sync_read_ids: set[tuple[str, int]] = set()
    for name, summary in summaries.items():
        points_to = context.points_to(summary.function)
        for read in sync_reads_for(context, summary.function, variant_key):
            sync_read_ids.add((name, read.uid))
            addr = read.address_operand()
            if addr is not None:
                for obj in points_to.pointees(addr):
                    if isinstance(obj, GlobalObj):
                        locations.add(obj.name)
        for site in summary.accesses:
            if site.is_rmw:
                locations.update(site.locations)
    return frozenset(locations), sync_read_ids


#: Functions whose *name* marks them as the synchronization runtime —
#: the same API-level interception the lockset analysis applies to
#: call sites. Every access inside their bodies implements
#: synchronization (``lock_release``'s ``*l = 0``, the barrier's
#: sense flip) and is never a data-race candidate.
_SYNC_RUNTIME_HINTS = ("acquire", "release", "barrier")


def _in_sync_runtime(func_name: str) -> bool:
    return any(hint in func_name for hint in _SYNC_RUNTIME_HINTS)


def _is_sync_access(
    site: AccessSite,
    sync_locations: frozenset[str],
    sync_read_ids: set[tuple[str, int]],
) -> bool:
    if site.is_rmw:
        return True
    if _in_sync_runtime(site.function):
        return True
    if (site.function, site.uid) in sync_read_ids:
        return True
    return bool(site.locations & sync_locations)


def _conflict_location(a: AccessSite, b: AccessSite) -> str | None:
    """The named location a conflicting pair collides on, or ``None``
    when they cannot conflict. A conservative unknown pointee overlaps
    any *named* escaping location; two purely-unknown addresses are
    assumed disjoint (optimistic, like the sync-edge filter — the
    explorer backstop reports wrong guesses as missed races)."""
    shared = a.locations & b.locations
    if shared:
        return sorted(shared)[0]
    if a.unknown and b.locations:
        return sorted(b.locations)[0]
    if b.unknown and a.locations:
        return sorted(a.locations)[0]
    return None


def _array_elements_disjoint(
    program: Program, location: str, a: AccessSite, b: AccessSite
) -> bool:
    """Element sensitivity for array globals: two constant-indexed
    accesses conflict only on the same element (exact), and a pair with
    a *computed* index is assumed disjoint — the corpus's
    owner-computes discipline (``arr[f(tid)]`` partitions by thread).
    The assumption is deliberately optimistic, like the sync-edge
    filter: on explorer-checkable programs a wrong guess surfaces as a
    missed dynamic race (RACE002) and becomes a fuzz seed. Scalars are
    untouched."""
    if location not in program.globals:
        return False
    if program.globals[location].size <= 1:
        return False
    return a.index is None or b.index is None or a.index != b.index


def _ordered_by_sync_edge(
    context: AnalysisContext,
    a: AccessSite,
    b: AccessSite,
    summaries: dict[str, AccessSummary],
    sync_locations: frozenset[str],
    sync_read_ids: set[tuple[str, int]],
) -> bool:
    """Static release/acquire chain ``a po w(s) con r(s) po b``:
    a release write to a sync location po-after ``a`` in its function,
    and a detected sync read of it po-before ``b`` in the other."""
    if not sync_locations:
        return False
    reach_a = context.reachability(summaries[a.function].function)
    reach_b = context.reachability(summaries[b.function].function)
    released: set[str] = set()
    for site in summaries[a.function].accesses:
        if not site.is_write:
            continue
        touched = site.locations & sync_locations
        if touched and reach_a.exists_path(a.inst, site.inst):
            released.update(touched)
    if not released:
        return False
    for site in summaries[b.function].accesses:
        if (site.function, site.uid) not in sync_read_ids:
            continue
        if (
            site.locations & released
            and reach_b.exists_path(site.inst, b.inst)
        ):
            return True
    return False


def detect_races(
    program: Program,
    context: AnalysisContext,
    variant: str = "address+control",
) -> StaticRaceReport:
    """Run the full static pipeline; returns every candidate pair.

    ``variant`` names a detection variant from the registry: it decides
    which reads count as acquires, exactly as it would for fence
    placement. Prefer asking through the query engine
    (``context.engine.get("race_candidates", variant)``) so warm
    re-lints reuse unchanged functions' work.
    """
    structure = ThreadStructure(program)
    summaries: dict[str, AccessSummary] = {}
    for name in structure.executed_functions():
        func = program.functions[name]
        summaries[name] = context.engine.get("race_access_summary", func)

    sync_locations, sync_read_ids = _sync_locations(
        context, summaries, variant
    )

    candidates: list[RaceCandidate] = []
    seen: set[frozenset[tuple[str, int]]] = set()
    names = list(summaries)
    for i, f in enumerate(names):
        for g in names[i:]:
            if not structure.may_happen_in_parallel(f, g):
                continue
            for a in summaries[f].accesses:
                for b in summaries[g].accesses:
                    if f == g and b.uid < a.uid:
                        continue  # unordered pair: visit once
                    if not (a.is_write or b.is_write):
                        continue
                    if not structure.may_overlap(f, a.uid, g, b.uid):
                        continue  # tid guards / barrier phases separate them
                    if _is_sync_access(
                        a, sync_locations, sync_read_ids
                    ) or _is_sync_access(b, sync_locations, sync_read_ids):
                        continue
                    location = _conflict_location(a, b)
                    if location is None:
                        continue
                    if _array_elements_disjoint(program, location, a, b):
                        continue
                    if a.lockset & b.lockset:
                        continue
                    if _ordered_by_sync_edge(
                        context, a, b, summaries, sync_locations, sync_read_ids
                    ) or _ordered_by_sync_edge(
                        context, b, a, summaries, sync_locations, sync_read_ids
                    ):
                        continue
                    candidate = RaceCandidate(
                        location=location, first=a, second=b
                    )
                    if candidate.key not in seen:
                        seen.add(candidate.key)
                        candidates.append(candidate)
    return StaticRaceReport(
        variant=variant,
        sync_locations=sync_locations,
        candidates=tuple(candidates),
    )


# =========================================================================
# explorer-backed verdicts
# =========================================================================


@dataclass(frozen=True)
class Witness:
    """A concrete interleaving exhibiting one race."""

    pair: frozenset[tuple[str, int]]
    location: str
    rendering: str


@dataclass(frozen=True)
class VerdictReport:
    """What the bounded SC exploration said about the candidates."""

    complete: bool
    traces_checked: int
    #: candidate key -> witness (confirmed candidates only).
    witnesses: dict[frozenset[tuple[str, int]], Witness]
    #: Dynamic races no static candidate covered: detector gaps.
    missed: tuple[Witness, ...]

    def verdict_of(self, candidate: RaceCandidate) -> str:
        if candidate.key in self.witnesses:
            return "confirmed"
        return "refuted" if self.complete else "unknown"


def _action_label(
    program: Program, layout: GlobalLayout, action: TraceAction
) -> str:
    name, offset = "?", action.addr
    for gname, base in layout.base.items():
        size = program.globals[gname].size
        if base <= action.addr < base + size:
            name, offset = gname, action.addr - base
            break
    slot = name if (name != "?" and program.globals[name].size == 1) else (
        f"{name}[{offset}]"
    )
    op = "store" if action.is_write else "load"
    return f"T{action.tid} {op} {slot} = {action.value}"


def _render_witness(
    program: Program, layout: GlobalLayout, trace: Trace, race: Race
) -> str:
    """The interleaving up to the racing pair, racing actions marked."""
    limit = race.second.index
    racing = {race.first.index, race.second.index}
    lines = []
    shown = [a for a in trace.actions if a.index <= limit]
    elided = 0
    if len(shown) > 24:
        elided = len(shown) - 24
        shown = shown[:12] + shown[-12:]
    for i, action in enumerate(shown):
        if elided and i == 12:
            lines.append(f"      ... {elided} actions elided ...")
        marker = "  * " if action.index in racing else "    "
        lines.append(marker + _action_label(program, layout, action))
    return "\n".join(lines)


def confirm_candidates(
    program: Program,
    report: StaticRaceReport,
    max_traces: int = 400,
    max_actions: int = 400,
) -> VerdictReport:
    """Search bounded SC traces for witnesses to the candidates.

    The marking is the detector's own: accesses to its sync locations
    synchronize, everything else is data. A candidate whose pair races
    in some trace is confirmed with that interleaving; with *complete*
    enumeration, never-racing candidates are exhaustively refuted.
    Dynamic races matching no candidate are returned as ``missed`` —
    the static gate would have passed them, so they are detector gaps
    (and fuzz-seed material for the validation harness).
    """
    from repro.memmodel.interpreter import GlobalLayout

    traces = enumerate_sc_traces(
        program, max_traces=max_traces, max_actions=max_actions
    )
    complete = len(traces) < max_traces and all(t.complete for t in traces)
    by_location = sync_marking_for_globals(
        program, report.sync_locations & set(program.globals)
    )
    # Instruction-level sync the location marking cannot see: RMWs and
    # the lock/barrier runtime reach their cells through pointers, so
    # the cell has no stable global name — but their accesses are the
    # synchronization itself (the CAS acquire reading the ``*l = 0``
    # release is the lock's hb edge), exactly as the static gate
    # classifies them in _is_sync_access.
    sync_inst_ids = {
        id(inst)
        for name, func in program.functions.items()
        for inst in func.instructions()
        if inst.is_atomic_rmw() or _in_sync_runtime(name)
    }

    def marking(action: TraceAction) -> bool:
        return id(action.inst) in sync_inst_ids or by_location(action)

    layout = GlobalLayout(program)
    site_of = {
        id(inst): (name, inst.uid)
        for name, func in program.functions.items()
        for inst in func.instructions()
    }
    candidate_keys = {c.key for c in report.candidates}
    witnesses: dict[frozenset[tuple[str, int]], Witness] = {}
    missed: dict[frozenset[tuple[str, int]], Witness] = {}
    for trace in traces:
        for race in find_races(trace, marking):
            first = site_of.get(id(race.first.inst))
            second = site_of.get(id(race.second.inst))
            if first is None or second is None:
                continue
            key = frozenset({first, second})
            target = witnesses if key in candidate_keys else missed
            if key in target:
                continue
            target[key] = Witness(
                pair=key,
                location=_action_label(program, layout, race.first).split()[2],
                rendering=_render_witness(program, layout, trace, race),
            )
    return VerdictReport(
        complete=complete,
        traces_checked=len(traces),
        witnesses=witnesses,
        missed=tuple(missed.values()),
    )
