"""Package metadata and entry point for the reproduction.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) deliberately:
without a ``pyproject.toml``, pip uses the legacy non-isolated build
path, which works on the offline development machines this repo
targets — those have setuptools but may lack ``wheel`` (see
``tools/wheel_shim`` for the one-time shim if a PEP 660 editable
install is ever forced). CI installs with ``pip install -e .`` and
gets the ``repro`` console script.
"""

from setuptools import find_packages, setup

setup(
    name="repro-fence-placement",
    # Kept in lockstep with repro.__version__; 2.x marks the stable
    # repro.api surface (schema-versioned requests/reports).
    version="2.0.0",
    description=(
        "Reproduction of 'Fence placement for legacy data-race-free "
        "programs via synchronization read detection' (PPoPP 2015): "
        "mini-C frontend, escape/slicing analyses, acquire-signature "
        "detection, fence minimization, SC/TSO/PSO model checkers, "
        "and a differential fence-validation fuzzer"
    ),
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.11",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Software Development :: Compilers",
    ],
)
