"""Optimal min-cost fence synthesis over the shared delay graph.

The greedy planner (:func:`repro.core.fence_min.plan_fences`)
minimizes fence *count* per block and only then prices each placed
fence with the cheapest sufficient flavor. On flavored ISAs that
two-step can lose: splitting one expensive full fence into two cheap
partial fences (two ``lwsync`` at 66 instead of one ``sync`` at 80)
is never visible to a cardinality objective. This module minimizes
*cost* directly, over exactly the same
:class:`~repro.core.fence_min.DelayInterval`s the greedy consumes
(both call :func:`~repro.core.fence_min.collect_intervals`), so any
difference between the two plans is purely better stabbing or better
flavoring — never a different delay graph.

Solver structure, per basic block:

* **Candidate positions** are the interval right endpoints: a fence at
  any gap can slide right to the smallest ``hi`` among the intervals
  it stabs without uncovering any of them, and gap costs do not depend
  on position — so an optimal placement using only right endpoints
  always exists.
* **Exact dynamic program** over candidates in left-to-right order.
  The state is, per ordering kind, the rightmost position where a
  fence killing that kind has been placed (4-vector); a transition
  places any subset of the backend's flavors at the current position
  (same-gap stacking is legal and occasionally modeled, though real
  catalogs never reward it). When the scan passes an interval's right
  endpoint the state must already kill its kind within the interval —
  otherwise the branch dies. Dominated states (pointwise older fences,
  no cheaper) are pruned. The greedy plan is one feasible point of
  this program, so the DP result is never costlier than greedy.
* **Min-cut certificate**: the same intervals also build the
  :mod:`repro.synth.mincut` delay network; its cut value upper-bounds
  the DP (equal on laminar families) and its saturated chain edges are
  the witness placement the ``FENCE104`` lint reports. A single
  min-cut is *not* exact for crossing interval families — it must pay
  inside every pairwise overlap, which is the reason Alglave et al.
  (CAV 2014) use an ILP — hence the DP, which handles crossing
  families in polynomial time because gap costs are
  position-independent here.

Compiler-only intervals are stabbed exactly as in the greedy round 2
(they cost nothing, so cardinality greedy is already optimal), and the
function-entry fence is priced identically on both sides, so
``SynthesisPlan.cost <= greedy cost`` holds function-wide, which the
oracle-gated tests assert across the whole corpus.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.arch.backend import ArchBackend, FenceFlavor
from repro.arch.lowering import LoweredFence, LoweredPlan, lower_plan, summarize_lowerings
from repro.core.fence_min import (
    DelayInterval,
    barrier_indices,
    collect_intervals,
    discharged_by_qualifier,
    plan_fences,
    satisfied_by_instruction,
)
from repro.core.machine_models import MemoryModel, OrderKind
from repro.core.orderings import OrderingSet
from repro.ir.function import Function
from repro.ir.instructions import FenceKind
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.synth.mincut import INF, FlowNetwork

_KINDS = tuple(OrderKind)
_KIDX = {kind: i for i, kind in enumerate(_KINDS)}


@dataclass
class SynthesisPlan(LoweredPlan):
    """An optimal lowered placement, comparable field-by-field with the
    greedy :class:`~repro.arch.lowering.LoweredPlan` (it *is* one:
    ``apply_lowered_plan`` and ``summarize_lowerings`` take it as-is).
    """

    #: Cost of the greedy plan lowered on the same backend — the
    #: baseline this plan improves on (``cost <= greedy_cost`` always).
    greedy_cost: int = 0
    #: Value of the per-block min-cut certificates summed over the
    #: function (``cost <= mincut_value``; equal on laminar families).
    mincut_value: int = 0
    #: ``(block label, gap)`` chain edges of the min cut — the witness
    #: placement FENCE104 renders when greedy is strictly costlier.
    witness_cut: tuple[tuple[str, int], ...] = ()
    #: Orderings discharged by C11-style acquire/release qualifiers
    #: before the delay graph was built.
    discharged: int = 0

    @property
    def savings(self) -> int:
        """Cycles saved over the greedy placement (>= 0)."""
        return self.greedy_cost - self.cost


def _flavor_options(
    flavors: tuple[FenceFlavor, ...],
) -> list[tuple[int, frozenset[OrderKind], tuple[FenceFlavor, ...]]]:
    """Undominated subsets of the fence ISA placeable at one gap.

    Each option is ``(cost, union kill-set, flavors)``; a subset is
    dropped when another kills at least as much for no more cost. The
    empty subset (place nothing) is not an option — the DP models it
    as a separate transition.
    """
    subsets: list[tuple[int, frozenset[OrderKind], tuple[FenceFlavor, ...]]] = []
    for mask in range(1, 1 << len(flavors)):
        chosen = tuple(f for i, f in enumerate(flavors) if mask >> i & 1)
        cost = sum(f.cost for f in chosen)
        kills = frozenset().union(*(f.kills for f in chosen))
        subsets.append((cost, kills, chosen))
    return [
        (cost, kills, chosen)
        for cost, kills, chosen in subsets
        if not any(
            (o_cost < cost and o_kills >= kills)
            or (o_cost <= cost and o_kills > kills)
            for o_cost, o_kills, _ in subsets
        )
    ]


def _solve_block(
    intervals: list[DelayInterval], backend: ArchBackend
) -> tuple[int, list[tuple[int, FenceFlavor]]]:
    """Exact min-cost placement stabbing every interval.

    Returns ``(cost, [(gap, flavor), ...])`` sorted by gap.
    """
    if not intervals:
        return 0, []
    options = _flavor_options(backend.flavors)
    positions = sorted({iv.hi for iv in intervals})
    deadlines: dict[int, list[DelayInterval]] = {}
    for iv in intervals:
        deadlines.setdefault(iv.hi, []).append(iv)

    start = (-1,) * len(_KINDS)
    # Per position: state -> (cost, predecessor state, flavors placed).
    states: dict[tuple[int, ...], tuple[int, tuple[int, ...] | None, tuple]] = {
        start: (0, None, ())
    }
    layers: list[dict] = []
    for pos in positions:
        due = deadlines[pos]
        nxt: dict[tuple[int, ...], tuple[int, tuple[int, ...], tuple]] = {}

        def consider(state, cost, prev, placed):
            if any(state[_KIDX[iv.kind]] < iv.lo for iv in due):
                return
            cur = nxt.get(state)
            if cur is None or cost < cur[0]:
                nxt[state] = (cost, prev, placed)

        for state, (cost, _prev, _placed) in states.items():
            consider(state, cost, state, ())
            for opt_cost, opt_kills, opt_flavors in options:
                placed_state = tuple(
                    pos if kind in opt_kills else r
                    for kind, r in zip(_KINDS, state)
                )
                consider(placed_state, cost + opt_cost, state, opt_flavors)

        # Dominance pruning: a state with pointwise-older fences and no
        # cheaper cost can never win later.
        if len(nxt) > 1:
            items = sorted(nxt.items(), key=lambda kv: kv[1][0])
            kept: list[tuple[tuple[int, ...], tuple]] = []
            for state, value in items:
                if not any(
                    all(ks >= s for ks, s in zip(k_state, state))
                    for k_state, _ in kept
                ):
                    kept.append((state, value))
            nxt = dict(kept)
        layers.append(nxt)
        states = nxt

    best_state = min(states, key=lambda s: states[s][0])
    best_cost = states[best_state][0]

    # Walk the parent chain backwards to recover the placements.
    placements: list[tuple[int, FenceFlavor]] = []
    state = best_state
    for pos, layer in zip(reversed(positions), reversed(layers)):
        cost, prev, placed = layer[state]
        for flavor in placed:
            placements.append((pos, flavor))
        state = prev
    placements.sort(key=lambda pf: (pf[0], pf[1].name))
    return best_cost, placements


def block_cut(
    intervals: list[DelayInterval], backend: ArchBackend
) -> tuple[int, list[int]]:
    """Min-cut certificate for one block's full-fence intervals.

    Builds the delay network of :mod:`repro.synth.mincut` — chain
    edges per gap priced at the cheapest flavor killing every kind
    crossing the gap, infinite interval bypasses — and returns
    ``(cut value, cut gaps)``.
    """
    if not intervals:
        return 0, []
    lo = min(iv.lo for iv in intervals)
    hi = max(iv.hi for iv in intervals)
    net = FlowNetwork()
    s, t = net.add_node(), net.add_node()
    # Node per gap boundary: p[g] sits before gap ``lo + g``.
    nodes = [net.add_node() for _ in range(hi - lo + 2)]
    for gap in range(lo, hi + 1):
        crossing = frozenset(
            iv.kind for iv in intervals if iv.lo <= gap <= iv.hi
        )
        price = backend.cheapest_flavor(crossing).cost if crossing else INF
        net.add_edge(nodes[gap - lo], nodes[gap - lo + 1], price, tag=gap)
    for iv in intervals:
        net.add_edge(s, nodes[iv.lo - lo], INF)
        net.add_edge(nodes[iv.hi + 1 - lo], t, INF)
    value, tags = net.min_cut(s, t)
    return value, sorted(tags)


def _stab_compiler(
    intervals: list[DelayInterval],
    full_gaps: list[int],
    any_barriers: list[int],
) -> dict[int, set[OrderKind]]:
    """Greedy (optimal-cardinality) stabbing of zero-cost intervals,
    crediting placed full fences and existing barriers — the mirror of
    the greedy planner's round 2."""
    needed = [
        iv
        for iv in intervals
        if not any(satisfied_by_instruction(iv, k) for k in any_barriers)
    ]
    placed: dict[int, set[OrderKind]] = {}
    gaps: list[int] = []
    for iv in sorted(needed, key=lambda iv: (iv.hi, iv.lo)):
        if any(iv.lo <= g <= iv.hi for g in full_gaps):
            continue
        covering = [g for g in gaps if iv.lo <= g <= iv.hi]
        if covering:
            placed[covering[0]].add(iv.kind)
            continue
        gaps.append(iv.hi)
        placed[iv.hi] = {iv.kind}
    return placed


def synthesize_plan(
    func: Function,
    orderings: OrderingSet,
    model: MemoryModel,
    backend: ArchBackend,
    entry_fence: bool = False,
    projection: str = "source",
) -> SynthesisPlan:
    """Whole-function optimal synthesis; no IR mutation.

    Consumes exactly the inputs :func:`~repro.core.fence_min
    .plan_fences` consumes and returns a :class:`SynthesisPlan` whose
    ``cost`` is minimal for the delay graph and never exceeds
    ``greedy_cost`` (the greedy plan lowered on the same backend).
    """
    plan = SynthesisPlan(func, backend.key)
    plan.discharged = sum(1 for o in orderings if discharged_by_qualifier(o))
    by_block = collect_intervals(func, orderings, model, projection)
    witness: list[tuple[str, int]] = []
    dp_seconds = 0.0
    cut_seconds = 0.0

    with obs_trace.span(
        "synth.plan", cat="synth", function=func.name, arch=backend.key
    ) as synth_span:
        for block_index in sorted(by_block):
            block = func.blocks[block_index]
            ivs = by_block[block_index]
            full_barriers = barrier_indices(block.instructions, model, for_full=True)
            any_barriers = barrier_indices(block.instructions, model, for_full=False)
            full_needed = [
                iv
                for iv in ivs
                if iv.needs_full
                and not any(satisfied_by_instruction(iv, k) for k in full_barriers)
            ]
            started = time.perf_counter()
            _cost, placements = _solve_block(full_needed, backend)
            dp_seconds += time.perf_counter() - started
            started = time.perf_counter()
            cut_value, cut_gaps = block_cut(full_needed, backend)
            cut_seconds += time.perf_counter() - started
            plan.mincut_value += cut_value
            witness.extend((block.label, gap) for gap in cut_gaps)

            # Assign every interval to one placed fence that enforces it,
            # to report each fence's kill-set the same way greedy does.
            covers: dict[int, set[OrderKind]] = {}
            for gap, flavor in placements:
                covers.setdefault(gap, set())
            for iv in full_needed:
                for gap, flavor in placements:
                    if iv.lo <= gap <= iv.hi and iv.kind in flavor.kills:
                        covers[gap].add(iv.kind)
                        break
            for gap, flavor in placements:
                plan.fences.append(
                    LoweredFence(
                        block.label,
                        gap,
                        FenceKind.FULL,
                        flavor.name,
                        flavor.cost,
                        covers=frozenset(
                            k for k in covers[gap] if k in flavor.kills
                        ),
                    )
                )

            full_gaps = [gap for gap, _flavor in placements]
            compiler = _stab_compiler(
                [iv for iv in ivs if not iv.needs_full], full_gaps, any_barriers
            )
            for gap in sorted(compiler):
                plan.fences.append(
                    LoweredFence(
                        block.label,
                        gap,
                        FenceKind.COMPILER,
                        None,
                        0,
                        covers=frozenset(compiler[gap]),
                    )
                )

        if entry_fence:
            full = backend.full_flavor()
            plan.entry_fence = True
            plan.entry_flavor = full.name
            plan.entry_cost = full.cost
        plan.mincut_value += plan.entry_cost
        plan.witness_cut = tuple(witness)

        greedy = lower_plan(
            plan_fences(func, orderings, model, entry_fence, projection), backend
        )
        plan.greedy_cost = greedy.cost
        synth_span.set(
            cost=plan.cost,
            greedy_cost=plan.greedy_cost,
            dp_us=int(dp_seconds * 1e6),
            mincut_us=int(cut_seconds * 1e6),
        )
    registry = obs_metrics.REGISTRY
    registry.observe("repro_synth_dp_seconds", dp_seconds, arch=backend.key)
    registry.observe(
        "repro_synth_mincut_seconds", cut_seconds, arch=backend.key
    )
    return plan


def synthesize_analysis(analysis, backend: ArchBackend):
    """Optimal synthesis for a whole
    :class:`~repro.core.pipeline.ProgramAnalysis` — the drop-in
    counterpart of :func:`repro.arch.lowering.lower_analysis`.

    Returns ``(per-function SynthesisPlans, ArchLoweringSummary)``; no
    IR mutation — pair with
    :func:`~repro.arch.lowering.apply_lowered_plan` to insert.
    """
    plans = {
        name: synthesize_plan(
            fa.function,
            fa.pruned,
            analysis.model,
            backend,
            entry_fence=fa.plan.entry_fence,
        )
        for name, fa in analysis.functions.items()
    }
    return plans, summarize_lowerings(backend.key, plans)
