"""Formal memory-model substrate: SC & x86-TSO explorers, HB, DRF.

This package verifies — rather than assumes — the paper's correctness
claims: SC exploration defines intended behaviour, TSO exploration
models the relaxed hardware, happens-before (Section 3's definitions)
detects data races, and the DRF checker validates markings.
"""

from repro.memmodel.drf import DRFReport, check_drf, check_drf_with_detected_acquires
from repro.memmodel.hb import (
    HappensBefore,
    Race,
    all_sync,
    find_races,
    sync_from_instructions,
)
from repro.memmodel.interpreter import (
    ExecutionError,
    GlobalLayout,
    PendingAction,
    ThreadExecutor,
    ThreadState,
)
from repro.memmodel.litmus import LITMUS_TESTS, LitmusTest, sync_marking_for
from repro.memmodel.pso import PSOExplorer
from repro.memmodel.sc import (
    ExplorationResult,
    Outcome,
    SCExplorer,
    Trace,
    TraceAction,
    enumerate_sc_traces,
)
from repro.memmodel.tso import TSOExplorer, tso_equals_sc_for_observations

__all__ = [
    "DRFReport",
    "ExecutionError",
    "ExplorationResult",
    "GlobalLayout",
    "HappensBefore",
    "LITMUS_TESTS",
    "LitmusTest",
    "Outcome",
    "PSOExplorer",
    "PendingAction",
    "Race",
    "SCExplorer",
    "TSOExplorer",
    "ThreadExecutor",
    "ThreadState",
    "Trace",
    "TraceAction",
    "all_sync",
    "check_drf",
    "check_drf_with_detected_acquires",
    "enumerate_sc_traces",
    "find_races",
    "sync_from_instructions",
    "sync_marking_for",
    "tso_equals_sc_for_observations",
]
