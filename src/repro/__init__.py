"""repro — fence placement for legacy data-race-free programs.

A from-scratch reproduction of McPherson, Nagarajan, Sarkar & Cintra,
"Fence Placement for Legacy Data-Race-Free Programs via Synchronization
Read Detection" (PPoPP 2015 / extended TACO version), including every
substrate the paper depends on: a load/store IR and mini-C frontend,
alias/escape analyses, Pensieve-style ordering generation, exact
Shasha-Snir delay sets, Fang-style fence minimization, SC and x86-TSO
model checkers, a timed TSO performance simulator, and the full
Section-5 workload suite.

The stable public surface is :mod:`repro.api`::

    from repro.api import AnalyzeRequest, ProgramSpec, Session

    session = Session()
    report = session.analyze(
        AnalyzeRequest(program=ProgramSpec.inline(source_text, "my-program"))
    )
    print(report.full_fences, "full fences planned")
    artifact = report.to_json()   # schema-versioned, round-trips exactly

See ``examples/quickstart.py`` for the runnable walkthrough and
``repro.experiments`` for the paper's tables and figures. The
pre-facade conveniences ``repro.analyze_program`` / ``repro.place_fences``
still work but are deprecated shims that warn once.
"""

from repro.api import ProgramSpec, Session
from repro.core.machine_models import MODELS, PSO, RMO, SC, X86_TSO, MemoryModel, OrderKind
from repro.core.pipeline import (
    FencePlacer,
    PipelineVariant,
    ProgramAnalysis,
)
from repro.core.signatures import (
    SignatureBreakdown,
    Variant,
    detect_acquires,
    signature_breakdown,
)
from repro.frontend import compile_source
from repro.ir.function import Program
from repro.core.interprocedural import detect_acquires_interprocedural
from repro.memmodel.pso import PSOExplorer
from repro.memmodel.sc import SCExplorer
from repro.memmodel.tso import TSOExplorer
from repro.simulator.machine import TSOSimulator, simulate

__version__ = "2.0.0"

__all__ = [
    "FencePlacer",
    "MODELS",
    "MemoryModel",
    "OrderKind",
    "PSO",
    "PSOExplorer",
    "PipelineVariant",
    "Program",
    "ProgramAnalysis",
    "ProgramSpec",
    "RMO",
    "SC",
    "SCExplorer",
    "Session",
    "SignatureBreakdown",
    "TSOExplorer",
    "TSOSimulator",
    "Variant",
    "X86_TSO",
    "analyze_program",
    "compile_source",
    "detect_acquires",
    "detect_acquires_interprocedural",
    "place_fences",
    "signature_breakdown",
    "simulate",
]


def __getattr__(name: str):
    # Deprecated one-call conveniences: kept as warn-once shims that
    # delegate to exactly what the repro.api facade runs.
    if name in ("analyze_program", "place_fences"):
        from repro.api import _compat

        return getattr(_compat, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
