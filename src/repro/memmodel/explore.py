"""Shared dynamic partial-order-reduction core for the explorers.

The SC, TSO, PSO, and relaxed (ARM/POWER) explorers all walk the same
shape of state graph: per-state they enumerate *transitions* (thread
steps and store-buffer flushes) and DFS with memoization. Historically
each did so naively — every interleaving of independent actions was
enumerated, so k commuting actions cost 2^k visited states (the full
hypercube of intermediate states, even though the endpoints merge).

This module factors the walk into :class:`CoreExplorer` and adds three
reductions, each sound with respect to the final-outcome semantics
(``Outcome`` = observations + final globals):

* **Sleep sets** (Godefroid). After exploring transition ``t`` from
  state ``s``, every sibling branch remembers ``t`` in its sleep set
  and never re-executes it until a *dependent* transition wakes it.
  Dependence is computed from read/write footprints: two transitions
  are dependent iff they are program-ordered steps of the same thread
  or their footprints conflict (write/write or read/write overlap).
  One linearization per Mazurkiewicz trace survives.

* **Persistent singleton ("safe") steps.** A transition whose
  footprint cannot conflict with anything the *other* threads may
  still do — computed from a static, PC-indexed may-read/may-write
  future footprint per thread (points-to based, fixpoint over blocks
  and callees) plus their currently buffered store addresses — is a
  persistent set of size one: it is taken alone, with no branching.
  Thread-local actions (buffered stores, forwarded loads, sealed
  fences, thread finish) are always safe.

* **Canonical state hashing with symmetry normalization.** State keys
  are thread PCs + registers + memory + buffer/seal state. When
  several threads run the same function with the same arguments (and
  no alloca escapes, so no thread-identifying stack address can leak
  into shared state or observations), the per-thread components are
  sorted within each symmetry class, merging states that differ only
  by a permutation of identical threads; collected outcomes are closed
  under the class permutations afterwards.

Budgets are explicit: plain mode stops at ``max_states`` exactly like
the pre-DPOR explorers, and the opt-in *iterative deepening* mode
re-runs with a doubling depth limit until a pass finishes inside both
the depth and state budgets, so the returned
:class:`~repro.memmodel.sc.ExplorationResult` carries a principled
``verdict`` ("complete", "bounded:max-states", "bounded:depth")
instead of silently truncating.

Every reduction is differentially tested against exhaustive
exploration (``reduction=False, canonicalize=False``) over the litmus
suite, the benchmark corpus, and fuzz-generated programs — see
``tests/test_explore_differential.py``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.analysis.aliasing import UNKNOWN, AllocaObj, GlobalObj, PointsTo
from repro.ir.function import Program
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.ir.instructions import (
    AtomicAdd,
    AtomicXchg,
    Br,
    Call,
    CmpXchg,
    Jump,
    Load,
    Observe,
    Store,
)
from repro.memmodel.interpreter import (
    STACK_BASE,
    GlobalLayout,
    ThreadExecutor,
    ThreadState,
    stack_range,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memmodel.sc import ExplorationResult, Outcome


_EMPTY: frozenset[int] = frozenset()

#: Orbit cap: symmetry closure enumerates every class permutation, so
#: refuse classes whose combined orbit exceeds 6! mappings.
_MAX_ORBIT = 720


@dataclass(frozen=True)
class Footprint:
    """May-read/may-write effect of one transition.

    ``local`` marks actions invisible to every other thread (buffered
    store, forwarded load, seal-only fence, thread finish): they
    conflict with nothing. ``global_read`` marks actions that observe
    unbounded shared state (a stale-read-killing fence reads the whole
    previous-value map): they conflict with every write. ``top`` marks
    actions whose target cannot be bounded (cross-thread stack
    access): they conflict with everything and are never safe.
    """

    reads: frozenset[int] = _EMPTY
    writes: frozenset[int] = _EMPTY
    local: bool = False
    global_read: bool = False
    top: bool = False


LOCAL_FP = Footprint(local=True)
TOP_FP = Footprint(top=True)


def footprints_conflict(a: Footprint, b: Footprint) -> bool:
    """Can the two effects fail to commute?"""
    if a.local or b.local:
        return False
    if a.top or b.top:
        return True
    if (a.global_read and b.writes) or (b.global_read and a.writes):
        return True
    return bool(a.writes & (b.reads | b.writes)) or bool(b.writes & a.reads)


@dataclass(slots=True)
class Transition:
    """One enabled transition: identity key, owning thread, footprint,
    and the eagerly-built successor states (several for a relaxed load
    with a stale-value choice)."""

    key: tuple
    tid: int
    is_step: bool  # thread step (program-ordered) vs buffer flush
    fp: Footprint
    successors: tuple


# One sleep entry: (key, tid, is_step, footprint) of an explored sibling.
_SleepEntry = tuple[tuple, int, bool, Footprint]


def _dependent(entry: _SleepEntry, t: Transition) -> bool:
    _key, tid, is_step, fp = entry
    if is_step and t.is_step and tid == t.tid:
        return True  # program order
    return footprints_conflict(fp, t.fp)


# --- static future footprints (for persistent singleton selection) ------


def _merge(
    a: Optional[tuple[frozenset[int], frozenset[int]]],
    b: Optional[tuple[frozenset[int], frozenset[int]]],
) -> Optional[tuple[frozenset[int], frozenset[int]]]:
    if a is None or b is None:
        return None
    return (a[0] | b[0], a[1] | b[1])


class FutureFootprints:
    """PC-indexed may-read/may-write sets: everything a thread might
    still access from its current program point onwards.

    Addresses are concrete (the layout is known); pointees come from
    the flow-insensitive points-to analysis, field-insensitively
    widened to the whole global. Accesses through unknown pointers
    poison the set to ``None`` (= may touch anything). Own-stack
    accesses are invisible to other threads and contribute nothing.
    """

    def __init__(self, program: Program, layout: GlobalLayout) -> None:
        self.program = program
        self.layout = layout
        self._pt: dict[str, PointsTo] = {}
        self._closure: Optional[dict] = None  # func -> sets | None(top)
        self._block_from: dict[tuple, Optional[tuple]] = {}
        self._point: dict[tuple, Optional[tuple]] = {}
        self._thread: dict[tuple, Optional[tuple]] = {}

    def points_to(self, fname: str) -> PointsTo:
        pt = self._pt.get(fname)
        if pt is None:
            pt = self._pt[fname] = PointsTo(self.program.functions[fname])
        return pt

    def _objs_to_addrs(self, objs: Iterable) -> Optional[frozenset[int]]:
        addrs: set[int] = set()
        for o in objs:
            if o is UNKNOWN:
                return None
            if isinstance(o, GlobalObj):
                base = self.layout.base[o.name]
                addrs.update(range(base, base + self.program.globals[o.name].size))
            # AllocaObj: the owning thread's own stack — invisible.
        return frozenset(addrs)

    def _inst_sets(self, fname: str, inst) -> Optional[tuple]:
        """(reads, writes) of one instruction, callees included."""
        pt = self.points_to(fname)
        if isinstance(inst, Load):
            a = self._objs_to_addrs(pt.pointees(inst.addr))
            return None if a is None else (a, _EMPTY)
        if isinstance(inst, Store):
            a = self._objs_to_addrs(pt.pointees(inst.addr))
            return None if a is None else (_EMPTY, a)
        if isinstance(inst, (CmpXchg, AtomicXchg, AtomicAdd)):
            a = self._objs_to_addrs(pt.pointees(inst.addr))
            return None if a is None else (a, a)
        if isinstance(inst, Call):
            return self._closures().get(inst.callee)
        return (_EMPTY, _EMPTY)

    def _closures(self) -> dict:
        """Whole-function (reads, writes) including callees, fixpoint
        over the (possibly recursive) call graph."""
        if self._closure is not None:
            return self._closure
        own: dict[str, Optional[tuple]] = {}
        calls: dict[str, set[str]] = {}
        for name, func in self.program.functions.items():
            pt = self.points_to(name)
            r: set[int] = set()
            w: set[int] = set()
            top = False
            callees: set[str] = set()
            for inst in func.instructions():
                if isinstance(inst, Call):
                    callees.add(inst.callee)
                    continue
                if isinstance(inst, (Load, Store, CmpXchg, AtomicXchg, AtomicAdd)):
                    a = self._objs_to_addrs(pt.pointees(inst.addr))
                    if a is None:
                        top = True
                        break
                    if not isinstance(inst, Store):
                        r |= a
                    if not isinstance(inst, Load):
                        w |= a
            own[name] = None if top else (frozenset(r), frozenset(w))
            calls[name] = callees
        closure = dict(own)
        changed = True
        while changed:
            changed = False
            for name in closure:
                cur = closure[name]
                for callee in calls[name]:
                    cur = _merge(cur, closure.get(callee))  # unknown -> top
                if cur != closure[name]:
                    closure[name] = cur
                    changed = True
        self._closure = closure
        return closure

    def _block_sets(self, fname: str, block_index: int) -> Optional[tuple]:
        """Accesses from the start of a block to the end of the
        function (loops and callees included) — block-level fixpoint."""
        memo_key = (fname, block_index)
        if memo_key in self._block_from:
            return self._block_from[memo_key]
        func = self.program.functions[fname]
        own: list[Optional[tuple]] = []
        succs: list[list[int]] = []
        for block in func.blocks:
            acc: Optional[tuple] = (_EMPTY, _EMPTY)
            targets: list[int] = []
            for inst in block.instructions:
                acc = _merge(acc, self._inst_sets(fname, inst))
                if isinstance(inst, Br):
                    targets.append(func.block(inst.true_label).index)
                    targets.append(func.block(inst.false_label).index)
                elif isinstance(inst, Jump):
                    targets.append(func.block(inst.target).index)
            own.append(acc)
            succs.append(targets)
        sets = list(own)
        changed = True
        while changed:
            changed = False
            for b in range(len(func.blocks)):
                cur = sets[b]
                for s in succs[b]:
                    cur = _merge(cur, sets[s])
                if cur != sets[b]:
                    sets[b] = cur
                    changed = True
        for b in range(len(func.blocks)):
            self._block_from[(fname, b)] = sets[b]
        return sets[block_index]

    def _point_sets(
        self, fname: str, block_index: int, inst_index: int
    ) -> Optional[tuple]:
        """Accesses from one program point onwards."""
        memo_key = (fname, block_index, inst_index)
        cached = self._point.get(memo_key, False)
        if cached is not False:
            return cached
        func = self.program.functions[fname]
        block = func.blocks[block_index]
        acc: Optional[tuple] = (_EMPTY, _EMPTY)
        for inst in block.instructions[inst_index:]:
            acc = _merge(acc, self._inst_sets(fname, inst))
            if isinstance(inst, Br):
                acc = _merge(acc, self._block_sets(fname, func.block(inst.true_label).index))
                acc = _merge(acc, self._block_sets(fname, func.block(inst.false_label).index))
            elif isinstance(inst, Jump):
                acc = _merge(acc, self._block_sets(fname, func.block(inst.target).index))
        self._point[memo_key] = acc
        return acc

    def thread_future(self, ts: ThreadState) -> Optional[tuple]:
        """(reads, writes) thread ``ts`` may still perform, or None if
        unbounded. Caller frames resume *after* their call site."""
        if ts.done or not ts.frames:
            return (_EMPTY, _EMPTY)
        pcs = tuple(
            (f.func.name, f.block_index, f.inst_index) for f in ts.frames
        )
        cached = self._thread.get(pcs, False)
        if cached is not False:
            return cached
        acc: Optional[tuple] = (_EMPTY, _EMPTY)
        last = len(pcs) - 1
        for depth, (fname, block_index, inst_index) in enumerate(pcs):
            idx = inst_index if depth == last else inst_index + 1
            acc = _merge(acc, self._point_sets(fname, block_index, idx))
            if acc is None:
                break
        self._thread[pcs] = acc
        return acc


# --- symmetry ------------------------------------------------------------


def _executed_functions(program: Program) -> Optional[set[str]]:
    seen: set[str] = set()
    work = [spec.func_name for spec in program.threads]
    while work:
        name = work.pop()
        if name in seen:
            continue
        func = program.functions.get(name)
        if func is None:
            return None
        seen.add(name)
        for inst in func.instructions():
            if isinstance(inst, Call):
                work.append(inst.callee)
    return seen


def _symmetry_safe(program: Program) -> bool:
    """Thread permutations preserve behavior only if no thread-owned
    stack address can reach shared state or an observation: stack
    windows are tid-indexed, so a leaked address would distinguish
    otherwise-identical threads."""
    executed = _executed_functions(program)
    if executed is None:
        return False
    for name in executed:
        func = program.functions[name]
        pt = PointsTo(func)
        if pt.escaped_allocas:
            return False
        for inst in func.instructions():
            if isinstance(inst, Observe) and any(
                isinstance(o, AllocaObj) for o in pt.pointees(inst.value)
            ):
                return False
    return True


def symmetry_classes(program: Program) -> tuple[tuple[int, ...], ...]:
    """Groups of thread ids running the same function with the same
    arguments, when permuting them is provably behavior-preserving.
    Empty when no class exists, the orbit is too large, or a stack
    address may leak into shared state."""
    groups: dict[tuple, list[int]] = {}
    for tid, spec in enumerate(program.threads):
        groups.setdefault((spec.func_name, tuple(spec.args)), []).append(tid)
    classes = tuple(tuple(g) for g in groups.values() if len(g) > 1)
    if not classes:
        return ()
    orbit = 1
    for cls in classes:
        orbit *= math.factorial(len(cls))
    if orbit > _MAX_ORBIT:
        return ()
    if not _symmetry_safe(program):
        return ()
    return classes


class _CanonBail(Exception):
    """A value outside the thread's own stack window: fall back to the
    raw (non-symmetric) key."""


def _norm_thread_key(ts: ThreadState) -> tuple:
    """``ThreadState.key()`` with the thread identity removed: stack
    addresses rebased to the window start and the tid dropped."""
    lo, hi = stack_range(ts.tid)

    def nv(v: int) -> object:
        if lo <= v < hi:
            return ("S", v - lo)
        if v >= STACK_BASE:
            raise _CanonBail
        return v

    frames = tuple(
        (
            f.func.name,
            f.block_index,
            f.inst_index,
            tuple(sorted((name, nv(v)) for name, v in f.regs.items())),
            f.call_dest,
        )
        for f in ts.frames
    )
    local = tuple(sorted((addr - lo, nv(v)) for addr, v in ts.local_mem.items()))
    obs = tuple((label, nv(v)) for label, v in ts.observations)
    return (frames, local, ts.sp - lo, obs, ts.done)


def close_outcomes(
    outcomes: set["Outcome"], classes: tuple[tuple[int, ...], ...]
) -> set["Outcome"]:
    """Orbit closure: re-attribute observations under every class
    permutation (final globals are permutation-invariant)."""
    from repro.memmodel.sc import Outcome

    maps: list[dict[int, int]] = [{}]
    for cls in classes:
        maps = [
            {**m, **dict(zip(cls, perm))}
            for m in maps
            for perm in itertools.permutations(cls)
        ]
    closed: set[Outcome] = set()
    for o in outcomes:
        for m in maps:
            obs = tuple(
                sorted((m.get(tid, tid), label, v) for tid, label, v in o.observations)
            )
            closed.add(Outcome(obs, o.final_globals))
    return closed


# --- the core DFS --------------------------------------------------------


class CoreExplorer:
    """Model-generic DFS with sleep sets, persistent singleton steps,
    canonical hashing, and budget-aware deepening.

    Subclasses supply the operational semantics:

    * ``initial_state()`` — the root state;
    * ``transitions(state)`` — enabled :class:`Transition`\\ s;
    * ``threads_of(state)`` / ``state_parts(state)`` /
      ``buffered_addrs(state, tid)`` — state decomposition;
    * ``outcome_of(state)`` / ``check_final(state)`` — terminal states.

    ``reduction=False`` restores exhaustive interleaving enumeration
    (the differential-testing baseline); ``canonicalize=False``
    disables symmetry normalization; ``deepening=True`` switches the
    single bounded DFS for iterative deepening with a doubling depth
    limit and a principled verdict.
    """

    DEFAULT_MAX_STATES = 1_000_000

    #: Registry key used to label this explorer's metrics samples
    #: (``repro_explore_*_total{model=...}``); subclasses override.
    MODEL_KEY = "generic"

    def __init__(
        self,
        program: Program,
        max_states: Optional[int] = None,
        max_steps_per_thread: int = 100_000,
        observe_globals: Optional[list[str]] = None,
        *,
        reduction: bool = True,
        canonicalize: bool = True,
        deepening: bool = False,
        initial_depth: int = 64,
    ) -> None:
        self.program = program
        self.executor = ThreadExecutor(program)
        self.layout = self.executor.layout
        self.max_states = (
            self.DEFAULT_MAX_STATES if max_states is None else max_states
        )
        self.max_steps = max_steps_per_thread
        self.observe_globals = observe_globals
        self.reduction = reduction
        self.canonicalize = canonicalize
        self.deepening = deepening
        self.initial_depth = initial_depth
        self.sleep_blocked = 0
        self.pruned_transitions = 0

    # --- semantics hooks (subclass responsibility) -----------------------
    def initial_state(self) -> tuple:
        raise NotImplementedError

    def transitions(self, state: tuple) -> list[Transition]:
        raise NotImplementedError

    def threads_of(self, state: tuple) -> tuple[ThreadState, ...]:
        raise NotImplementedError

    def state_parts(self, state: tuple) -> tuple[tuple, tuple]:
        """(shared component, per-thread model components)."""
        raise NotImplementedError

    def buffered_addrs(self, state: tuple, tid: int) -> frozenset[int]:
        return _EMPTY

    def outcome_of(self, state: tuple) -> "Outcome":
        raise NotImplementedError

    def check_final(self, state: tuple) -> None:
        """Raise on deadlock; terminal states are otherwise outcomes."""

    # --- shared helpers ---------------------------------------------------
    def _addr_fp(
        self, addr: int, *, reads: bool = False, writes: bool = False
    ) -> Footprint:
        if not self.layout.is_global(addr):
            return TOP_FP  # cross-thread stack access: unanalyzable
        a = frozenset((addr,))
        return Footprint(
            reads=a if reads else _EMPTY, writes=a if writes else _EMPTY
        )

    def _advance(self, threads: tuple[ThreadState, ...], i: int):
        """Clone thread ``i`` only and run it to its next visible
        action; siblings are shared structurally (states never mutate
        a thread in place)."""
        new_threads = list(threads)
        clone = threads[i].clone()
        new_threads[i] = clone
        pending = self.executor.next_action(clone, self.max_steps)
        return tuple(new_threads), clone, pending

    # --- exploration ------------------------------------------------------
    def explore(self) -> "ExplorationResult":
        from repro.memmodel.sc import ExplorationResult

        oracle = (
            FutureFootprints(self.program, self.layout) if self.reduction else None
        )
        classes = symmetry_classes(self.program) if self.canonicalize else ()
        # Per-exploration reduction counters, flushed to the metrics
        # registry once at the end (the DFS itself stays metric-free).
        self.sleep_blocked = 0
        self.pruned_transitions = 0

        with obs_trace.span(
            "explore.run", cat="explore",
            model=self.MODEL_KEY, program=self.program.name,
        ) as sp:
            if not self.deepening:
                outcomes, states, hit_states, _ = self._run(
                    oracle, classes, None
                )
                visited = states
                complete = not hit_states
                verdict = "complete" if complete else "bounded:max-states"
                rounds = 1
            else:
                depth = max(1, self.initial_depth)
                rounds = 0
                visited = 0
                while True:
                    rounds += 1
                    outcomes, states, hit_states, hit_depth = self._run(
                        oracle, classes, depth
                    )
                    visited += states
                    if hit_states:
                        complete, verdict = False, "bounded:max-states"
                        break
                    if not hit_depth:
                        complete, verdict = True, "complete"
                        break
                    depth *= 2
            sp.set(states=visited, verdict=verdict, rounds=rounds)
        registry = obs_metrics.REGISTRY
        registry.inc(
            "repro_explore_states_total", visited, model=self.MODEL_KEY
        )
        registry.inc(
            "repro_explore_sleep_blocked_total",
            self.sleep_blocked, model=self.MODEL_KEY,
        )
        registry.inc(
            "repro_explore_pruned_total",
            self.pruned_transitions, model=self.MODEL_KEY,
        )
        if classes:
            outcomes = close_outcomes(outcomes, classes)
        return ExplorationResult(
            outcomes,
            states,
            complete,
            verdict=verdict,
            reduced=self.reduction,
            rounds=rounds,
        )

    def _canon_key(
        self, state: tuple, classes: tuple[tuple[int, ...], ...]
    ) -> tuple[tuple, Optional[list[int]]]:
        shared, parts = self.state_parts(state)
        threads = self.threads_of(state)
        if not classes:
            return ("raw", shared, tuple(ts.key() for ts in threads), parts), None
        try:
            norm = [_norm_thread_key(ts) for ts in threads]
        except _CanonBail:
            return ("raw", shared, tuple(ts.key() for ts in threads), parts), None
        entries = [(norm[i], parts[i]) for i in range(len(threads))]
        perm = list(range(len(threads)))
        for cls in classes:
            ranked = sorted(cls, key=lambda i: repr(entries[i]))
            for slot, orig in zip(cls, ranked):
                perm[orig] = slot
        arranged: list = [None] * len(threads)
        for orig, slot in enumerate(perm):
            arranged[slot] = entries[orig]
        return ("sym", shared, tuple(arranged)), perm

    @staticmethod
    def _canon_tkey(key: tuple, perm: Optional[list[int]]) -> tuple:
        if perm is None:
            return key
        return (key[0], perm[key[1]]) + key[2:]

    def _pick_safe(
        self,
        state: tuple,
        explorable: list[Transition],
        oracle: FutureFootprints,
    ) -> Optional[Transition]:
        """A transition forming a persistent set of size one, if any."""
        for t in explorable:
            if t.fp.local and t.is_step:
                return t  # invisible: commutes with everything
        threads = self.threads_of(state)
        futures: dict[int, Optional[tuple]] = {}
        for t in explorable:
            fp = t.fp
            if fp.top or fp.local:
                continue
            ok = True
            for j, ts in enumerate(threads):
                if j == t.tid:
                    continue
                pend = self.buffered_addrs(state, j)
                if ts.done:
                    fut: Optional[tuple] = (_EMPTY, _EMPTY)
                else:
                    if j not in futures:
                        futures[j] = oracle.thread_future(ts)
                    fut = futures[j]
                if fut is None:
                    ok = False
                    break
                future_reads, future_writes = fut
                if pend:
                    future_writes = future_writes | pend
                if fp.global_read:
                    if future_writes:
                        ok = False
                        break
                    continue
                if (fp.reads | fp.writes) & future_writes or fp.writes & future_reads:
                    ok = False
                    break
            if ok:
                return t
        return None

    def _run(
        self,
        oracle: Optional[FutureFootprints],
        classes: tuple[tuple[int, ...], ...],
        depth_limit: Optional[int],
    ) -> tuple[set, int, bool, bool]:
        outcomes: set = set()
        # state key -> antichain of (sleep keyset, entry depth) already
        # explored there. A prior visit covers this one only if it
        # slept on a subset of our sleep set (explored at least as
        # much) at no greater depth (had at least our remaining depth
        # budget).
        visited: dict[tuple, list[tuple[frozenset, int]]] = {}
        stack: list[tuple[tuple, tuple[_SleepEntry, ...], int]] = [
            (self.initial_state(), (), 0)
        ]
        states = 0
        hit_states = False
        hit_depth = False

        while stack:
            state, sleep, depth = stack.pop()
            key, perm = self._canon_key(state, classes)
            sleep_keys = frozenset(
                self._canon_tkey(e[0], perm) for e in sleep
            )
            records = visited.get(key)
            if records is not None and any(
                recorded <= sleep_keys and rdepth <= depth
                for recorded, rdepth in records
            ):
                continue
            if records is None:
                visited[key] = [(sleep_keys, depth)]
            else:
                records.append((sleep_keys, depth))
            states += 1
            if states > self.max_states:
                hit_states = True
                break

            trans = self.transitions(state)
            if not trans:
                self.check_final(state)
                outcomes.add(self.outcome_of(state))
                continue
            if depth_limit is not None and depth >= depth_limit:
                hit_depth = True
                continue

            if sleep:
                asleep = {e[0] for e in sleep}
                explorable = [t for t in trans if t.key not in asleep]
                self.pruned_transitions += len(trans) - len(explorable)
                if not explorable:
                    self.sleep_blocked += 1
                    continue  # everything here was explored from a sibling
            else:
                explorable = trans
            ndepth = depth + 1

            if oracle is None:
                for t in explorable:
                    for succ in t.successors:
                        stack.append((succ, (), ndepth))
                continue

            safe = self._pick_safe(state, explorable, oracle)
            if safe is not None:
                self.pruned_transitions += len(explorable) - 1
                new_sleep = tuple(e for e in sleep if not _dependent(e, safe))
                for succ in safe.successors:
                    stack.append((succ, new_sleep, ndepth))
                continue

            slept = list(sleep)
            for t in explorable:
                new_sleep = tuple(e for e in slept if not _dependent(e, t))
                for succ in t.successors:
                    stack.append((succ, new_sleep, ndepth))
                slept.append((t.key, t.tid, t.is_step, t.fp))

        return outcomes, states, hit_states, hit_depth
