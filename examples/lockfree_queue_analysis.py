"""Analyze a lock-free workload end to end: the Michael-Scott queue.

Walks the paper's whole story on one realistic kernel:

1. signature breakdown (which protocol reads are acquires, and why);
2. ordering generation and pruning (what the Control analysis saves);
3. fence placement on x86-TSO;
4. timed simulation of all four placements (the Fig. 10 measurement);
5. a DRF check that the detected marking is race-free.

Run:  python examples/lockfree_queue_analysis.py
"""

from repro import PipelineVariant, analyze_program, place_fences
from repro.core.signatures import signature_breakdown
from repro.memmodel.drf import check_drf_with_detected_acquires
from repro.programs.sync_kernels import SYNC_KERNELS
from repro.simulator import simulate
from repro.util.text import format_table


def main() -> None:
    kernel = SYNC_KERNELS["michael-scott-q"]
    program = kernel.compile()

    # 1. Signature breakdown per protocol function.
    rows = []
    for fn_name in kernel.kernel_functions:
        bd = signature_breakdown(program.functions[fn_name])
        rows.append(
            [
                fn_name,
                len(bd.control),
                len(bd.address),
                len(bd.pure_address),
            ]
        )
    print(
        format_table(
            ["function", "control acquires", "address acquires", "pure address"],
            rows,
            title="Michael-Scott queue: acquire signatures",
        )
    )

    # 2+3. Orderings and fences per variant.
    print()
    rows = []
    for variant in PipelineVariant:
        analysis = analyze_program(kernel.compile(), variant)
        rows.append(
            [
                variant.value,
                analysis.total_sync_reads,
                analysis.total_orderings,
                analysis.full_fence_count,
                analysis.compiler_fence_count,
            ]
        )
    print(
        format_table(
            ["variant", "acquires", "orderings", "mfences", "directives"],
            rows,
            title="Pipeline comparison (x86-TSO)",
        )
    )

    # 4. Timed simulation, normalized to the expert manual placement.
    print()
    manual_cycles = simulate(kernel.compile(include_manual_fences=True)).cycles
    rows = [["manual", manual_cycles, "1.00x"]]
    for variant in PipelineVariant:
        fenced = kernel.compile()
        place_fences(fenced, variant)
        cycles = simulate(fenced).cycles
        rows.append([variant.value, cycles, f"{cycles / manual_cycles:.2f}x"])
    print(
        format_table(
            ["placement", "simulated cycles", "vs manual"],
            rows,
            title="Timed TSO simulation",
        )
    )

    # 5. The detected marking makes the program data-race-free.
    sync_reads = []
    for func in program.functions.values():
        from repro.core.signatures import Variant, detect_acquires

        sync_reads.extend(detect_acquires(func, Variant.CONTROL).sync_reads)
    report = check_drf_with_detected_acquires(
        program, sync_reads, max_traces=400
    )
    print(
        f"\nDRF check under detected marking: races={len(report.races)} "
        f"(traces checked: {report.traces_checked})"
    )


if __name__ == "__main__":
    main()
