"""Load-test the sharded cluster behind ``repro serve --workers N``.

A runnable miniature of the scaling story:

1. spawns ``repro serve --workers 2`` as a subprocess and reads the
   announced ephemeral port;
2. fires a small concurrent load — several client connections cycling
   through a few corpus programs, with periodic warm edits (modified
   inline source under the same program name, so the consistent-hash
   router keeps each program on its warm shard);
3. asks the cluster for stats and renders the per-worker view: shard
   map, queue depths, request counters, query-cache hit rates;
4. shuts the cluster down gracefully and verifies a zero exit status.

Run:  python examples/load_test.py
"""

import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro  # noqa: E402
from repro.api import AnalyzeRequest, ProgramSpec  # noqa: E402
from repro.cluster import render_stats  # noqa: E402
from repro.programs import get_program  # noqa: E402

PROGRAMS = ("fft", "matrix", "spanningtree", "radix")
CLIENTS = 4
REQUESTS_PER_CLIENT = 8


def request_line(name: str, iteration: int) -> str:
    """Steady-state corpus request, with every third one an edit."""
    if iteration % 3:
        spec = ProgramSpec(kind="corpus", name=name)
    else:
        source = get_program(name).source + (
            f"\nfn warm_edit_{iteration}(tid) {{ local t = 0; t = t + 1; }}\n"
        )
        spec = ProgramSpec.inline(source, name=name)
    return json.dumps(AnalyzeRequest(program=spec).to_payload())


def main() -> int:
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p
    )
    cluster = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--workers", "2", "--serial"],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    serving = json.loads(cluster.stdout.readline())["serving"]
    print(
        f"cluster up at {serving['host']}:{serving['port']} "
        f"with {serving['workers']} workers"
    )

    def client(slot: int, counts: list) -> None:
        with socket.create_connection(
            (serving["host"], serving["port"]), timeout=300
        ) as sock:
            stream = sock.makefile("rw", encoding="utf-8", newline="\n")
            ok = 0
            for i in range(REQUESTS_PER_CLIENT):
                name = PROGRAMS[(slot + i) % len(PROGRAMS)]
                stream.write(request_line(name, i) + "\n")
                stream.flush()
                response = json.loads(stream.readline())
                assert response["ok"], response
                ok += 1
            counts[slot] = ok

    counts = [0] * CLIENTS
    threads = [
        threading.Thread(target=client, args=(slot, counts))
        for slot in range(CLIENTS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    total = sum(counts)
    print(
        f"{total} requests from {CLIENTS} clients in {wall:.2f}s "
        f"({total / wall:.1f} req/s)"
    )

    with socket.create_connection(
        (serving["host"], serving["port"]), timeout=60
    ) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        stream.write('{"op": "stats"}\n')
        stream.flush()
        stats = json.loads(stream.readline())
        assert stats["ok"], stats
        print(render_stats(stats))
        stream.write('{"op": "shutdown"}\n')
        stream.flush()
        assert json.loads(stream.readline())["bye"]

    returncode = cluster.wait(timeout=60)
    cluster.stdout.close()
    assert returncode == 0, f"cluster exited with {returncode}"
    print("cluster drained and shut down cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
