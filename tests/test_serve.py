"""Tests for the long-lived analysis daemon (repro.serve)."""

import io
import json
import socket
import threading
import time

import pytest

from repro.api import AnalyzeRequest, CheckRequest, ProgramSpec, Session
from repro.serve import REQUEST_DISPATCH, ReproServer, ServeDispatcher, serve_stdio

MP = """
global int flag;
global int data;

fn producer(tid) { data = 1; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""

SPEC = ProgramSpec.inline(MP, name="mp")


# --- dispatcher (transport-independent) --------------------------------------


@pytest.fixture
def dispatcher():
    return ServeDispatcher(Session(parallel=False))


def test_dispatch_table_covers_every_request_kind():
    from repro.api import REPORT_KINDS

    request_kinds = {k for k in REPORT_KINDS.keys() if k.endswith("-request")}
    assert set(REQUEST_DISPATCH) == request_kinds


def test_dispatcher_answers_bare_request(dispatcher):
    request = AnalyzeRequest(program=SPEC)
    response, stop = dispatcher.handle_line(request.to_json().replace("\n", " "))
    assert not stop
    assert response["ok"] and response["id"] is None
    expected = Session().analyze(request).to_payload()
    assert response["report"] == expected
    # Byte-identical to what the one-shot CLI serializes.
    assert json.dumps(response["report"], indent=2, sort_keys=True) == (
        Session().analyze(request).to_json()
    )


def test_dispatcher_echoes_request_id(dispatcher):
    envelope = {"id": 42, "request": AnalyzeRequest(program=SPEC).to_payload()}
    response, _ = dispatcher.handle_line(json.dumps(envelope))
    assert response["ok"] and response["id"] == 42


def test_dispatcher_ops(dispatcher):
    pong, stop = dispatcher.handle_line('{"op": "ping"}')
    assert pong["ok"] and pong["pong"] and not stop
    stats, _ = dispatcher.handle_line('{"op": "stats", "id": "s1"}')
    assert stats["ok"] and stats["id"] == "s1"
    assert "requests" in stats["session"] and "server" in stats
    bye, stop = dispatcher.handle_line('{"op": "shutdown"}')
    assert bye["ok"] and bye["bye"] and stop


def test_dispatcher_error_paths(dispatcher):
    bad_json, _ = dispatcher.handle_line("{nope")
    assert not bad_json["ok"] and "not valid JSON" in bad_json["error"]
    not_object, _ = dispatcher.handle_line("[1, 2]")
    assert not not_object["ok"] and "JSON object" in not_object["error"]
    unknown_op, _ = dispatcher.handle_line('{"op": "dance"}')
    assert not unknown_op["ok"] and "unknown op" in unknown_op["error"]
    # A *report* kind is not servable.
    report_kind, _ = dispatcher.handle_line(
        json.dumps({"kind": "analyze-report", "schema_version": 2})
    )
    assert not report_kind["ok"]
    assert "not a servable request kind" in report_kind["error"]
    # Schema violations come back as errors, not dropped connections.
    payload = AnalyzeRequest(program=SPEC).to_payload()
    payload["bonus"] = 1
    malformed, _ = dispatcher.handle_line(json.dumps(payload))
    assert not malformed["ok"] and "unknown fields" in malformed["error"]
    # Unknown registry keys inside a valid envelope surface too.
    bogus = AnalyzeRequest(program=SPEC, variant="bogus").to_payload()
    unknown_variant, _ = dispatcher.handle_line(json.dumps(bogus))
    assert not unknown_variant["ok"]
    assert "unknown" in unknown_variant["error"]
    assert dispatcher.errors == 6 and dispatcher.served == 0


def test_dispatcher_survives_type_confused_payloads(dispatcher):
    """Payloads that pass the name-level schema gate but carry wrong
    field *types* must answer {"ok": false}, never raise out of the
    dispatcher (which would kill the daemon/handler thread)."""
    confused = [
        # seeds as a string: TypeError deep in the fuzz runner.
        {"kind": "fuzz-request", "schema_version": 1, "seeds": "ten",
         "shapes": [], "variants": [], "models": ["x86-tso"],
         "budget": None, "shrink": True, "max_states": None},
        # variant as an int.
        dict(AnalyzeRequest(program=SPEC).to_payload(), variant=123),
        # ProgramSpec kind as a list (unhashable).
        dict(AnalyzeRequest(program=SPEC).to_payload(),
             program={"kind": ["corpus"], "name": "fft", "path": None,
                      "source": None, "manual_fences": False}),
    ]
    for payload in confused:
        response, stop = dispatcher.handle_line(json.dumps(payload))
        assert not stop
        assert not response["ok"] and response["error"]
    # The daemon still answers normal requests afterwards.
    ok, _ = dispatcher.handle_line(
        json.dumps(AnalyzeRequest(program=SPEC).to_payload())
    )
    assert ok["ok"]


def test_dispatcher_warm_reanalysis_after_wire_edit(dispatcher):
    """The daemon's headline: an edited program re-sent over the wire
    recomputes only the changed function's query subgraph."""
    cold, _ = dispatcher.handle_line(
        json.dumps(AnalyzeRequest(program=SPEC, stats=True).to_payload())
    )
    assert cold["ok"] and cold["report"]["cache_stats"]["misses"] > 0
    warm, _ = dispatcher.handle_line(
        json.dumps(AnalyzeRequest(program=SPEC, stats=True).to_payload())
    )
    assert warm["ok"] and warm["report"]["cache_stats"]["misses"] == 0
    edited = ProgramSpec.inline(MP.replace("data = 1;", "data = 2;"), name="mp")
    incremental, _ = dispatcher.handle_line(
        json.dumps(AnalyzeRequest(program=edited, stats=True).to_payload())
    )
    assert incremental["ok"]
    stats = incremental["report"]["cache_stats"]
    assert stats["hits"] > 0  # the unchanged consumer stayed cached
    assert 0 < stats["misses"] < cold["report"]["cache_stats"]["misses"]


def test_dispatcher_counts_and_session_stats(dispatcher):
    request = AnalyzeRequest(program=SPEC)
    dispatcher.handle_line(request.to_json().replace("\n", " "))
    dispatcher.handle_line(request.to_json().replace("\n", " "))
    assert dispatcher.served == 2
    stats = dispatcher.session.stats()
    assert stats["requests"] == {"analyze": 2}
    assert stats["contexts"] >= 1
    assert stats["query_stats"]["computes"] > 0


# --- socket transport --------------------------------------------------------


@pytest.fixture
def server():
    srv = ReproServer(Session(parallel=False))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.close()
    thread.join(timeout=10)


def _roundtrip(server, lines):
    with socket.create_connection((server.host, server.port), timeout=30) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        responses = []
        for line in lines:
            stream.write(line + "\n")
            stream.flush()
            responses.append(json.loads(stream.readline()))
        return responses


def test_server_round_trips_analyze_and_check(server):
    analyze = AnalyzeRequest(program=SPEC)
    check = CheckRequest(program=SPEC, max_states=200_000)
    responses = _roundtrip(
        server,
        [json.dumps(analyze.to_payload()), json.dumps(check.to_payload())],
    )
    assert all(r["ok"] for r in responses)
    one_shot = Session()
    assert responses[0]["report"] == one_shot.analyze(analyze).to_payload()
    assert responses[1]["report"] == one_shot.check(check).to_payload()


def test_server_handles_concurrent_clients_byte_identically(server):
    request = AnalyzeRequest(program=SPEC, stats=False)
    expected = json.dumps(
        Session().analyze(request).to_payload(), indent=2, sort_keys=True
    )
    clients = 3
    barrier = threading.Barrier(clients)
    results: list = [None] * clients

    def client(slot):
        barrier.wait(timeout=10)
        responses = _roundtrip(
            server, [json.dumps({"id": slot, "request": request.to_payload()})]
        )
        results[slot] = responses[0]

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    for slot, response in enumerate(results):
        assert response is not None and response["ok"]
        assert response["id"] == slot
        assert json.dumps(response["report"], indent=2, sort_keys=True) == expected


def test_server_warm_requests_stay_deterministic(server):
    line = json.dumps(AnalyzeRequest(program=SPEC).to_payload())
    first, second = (_roundtrip(server, [line])[0] for _ in range(2))
    assert first == second


def test_server_shutdown_op_stops_serve_forever():
    srv = ReproServer(Session(parallel=False))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    responses = _roundtrip(srv, ['{"op": "shutdown"}'])
    assert responses[0]["ok"] and responses[0]["bye"]
    thread.join(timeout=10)
    assert not thread.is_alive()
    srv.close()


# --- stdio transport ---------------------------------------------------------


def test_serve_stdio_round_trip_and_clean_shutdown():
    request = AnalyzeRequest(program=SPEC)
    stdin = io.StringIO(
        json.dumps({"id": 1, "request": request.to_payload()})
        + "\n\n"  # blank lines are ignored
        + '{"op": "shutdown"}\n'
        + json.dumps(request.to_payload())  # never reached
        + "\n"
    )
    stdout = io.StringIO()
    assert serve_stdio(Session(parallel=False), stdin, stdout) == 0
    lines = [json.loads(l) for l in stdout.getvalue().splitlines()]
    assert len(lines) == 2
    assert lines[0]["ok"] and lines[0]["id"] == 1
    assert lines[0]["report"] == Session().analyze(request).to_payload()
    assert lines[1]["bye"]


def test_serve_stdio_stops_on_eof():
    stdout = io.StringIO()
    assert serve_stdio(Session(parallel=False), io.StringIO(""), stdout) == 0
    assert stdout.getvalue() == ""


def test_cli_serve_stdio_smoke(monkeypatch, capsys):
    from repro.cli import main

    request = AnalyzeRequest(program=SPEC)
    stdin = io.StringIO(
        json.dumps(request.to_payload()) + "\n" + '{"op": "shutdown"}\n'
    )
    monkeypatch.setattr("sys.stdin", stdin)
    assert main(["serve", "--stdio", "--serial"]) == 0
    out_lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
    assert out_lines[0]["ok"]
    assert out_lines[0]["report"]["kind"] == "analyze-report"
    assert out_lines[1]["bye"]


# --- graceful drain ----------------------------------------------------------


def test_server_drain_waits_for_inflight_requests():
    srv = ReproServer(Session(parallel=False))
    original = srv.dispatcher.handle_line
    started = threading.Event()

    def slow(line):
        started.set()
        time.sleep(0.4)  # hold the request in flight across the drain
        return original(line)

    srv.dispatcher.handle_line = slow
    server_thread = threading.Thread(target=srv.serve_forever, daemon=True)
    server_thread.start()
    result: dict = {}

    def client():
        result["response"] = _roundtrip(srv, ['{"op": "ping"}'])[0]

    client_thread = threading.Thread(target=client, daemon=True)
    client_thread.start()
    assert started.wait(timeout=10)
    srv.request_drain()
    # Drain lets the in-flight request finish answering...
    assert srv.drain(timeout=10)
    client_thread.join(timeout=10)
    assert result["response"]["ok"] and result["response"]["pong"]
    # ...and the accept loop has stopped.
    server_thread.join(timeout=10)
    assert not server_thread.is_alive()
    srv.close()


def test_server_drain_closes_idle_connections():
    srv = ReproServer(Session(parallel=False))
    server_thread = threading.Thread(target=srv.serve_forever, daemon=True)
    server_thread.start()
    with socket.create_connection((srv.host, srv.port), timeout=10) as sock:
        stream = sock.makefile("r", encoding="utf-8")
        deadline = time.time() + 10
        while not srv._handlers and time.time() < deadline:
            time.sleep(0.01)  # let the handler thread park in its read
        srv.request_drain()
        assert srv.request_drain() is None  # idempotent
        assert stream.readline() == ""  # idle client sees EOF, not a hang
    assert srv.drain(timeout=10)
    server_thread.join(timeout=10)
    srv.close()


def test_server_oversized_line_is_answered_then_closed():
    srv = ReproServer(Session(parallel=False))
    srv.max_line = 1024
    server_thread = threading.Thread(target=srv.serve_forever, daemon=True)
    server_thread.start()
    try:
        with socket.create_connection((srv.host, srv.port), timeout=10) as sock:
            sock.sendall(b'{"pad": "' + b"x" * 4096 + b'"}\n')
            stream = sock.makefile("r", encoding="utf-8")
            response = json.loads(stream.readline())
            assert not response["ok"] and "exceeds" in response["error"]
            assert stream.readline() == ""  # line reader cannot resync
    finally:
        srv.shutdown()
        srv.close()
        server_thread.join(timeout=10)


def test_cli_serve_sigterm_drains_and_exits_zero():
    import os
    import signal
    import subprocess
    import sys
    from pathlib import Path

    root = Path(__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--workers", "0", "--serial"],
        stdout=subprocess.PIPE,
        cwd=root,
        env=env,
    )
    try:
        serving = json.loads(proc.stdout.readline())["serving"]
        assert serving["workers"] == 0
        with socket.create_connection(
            (serving["host"], serving["port"]), timeout=30
        ) as sock:
            line = json.dumps(AnalyzeRequest(program=SPEC).to_payload())
            sock.sendall((line + "\n").encode("utf-8"))
            time.sleep(0.3)  # let the handler pick the request up, so
            # the drain sees it in flight rather than still buffered
            proc.send_signal(signal.SIGTERM)
            # The in-flight request is still answered before exit.
            stream = sock.makefile("r", encoding="utf-8")
            assert json.loads(stream.readline())["ok"]
        assert proc.wait(timeout=30) == 0
    finally:
        proc.kill()
        proc.stdout.close()
        proc.wait(timeout=10)


# --- CLI front door for both serving modes -----------------------------------


def _cli_serve_in_thread(capsys, argv):
    """Run ``repro serve`` on a thread; return (result dict, serving)."""
    from repro.cli import main

    result: dict = {}

    def run():
        result["code"] = main(argv)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    result["thread"] = thread
    buffered = ""
    deadline = time.time() + 120
    while time.time() < deadline:
        buffered += capsys.readouterr().out
        line = buffered.splitlines()[0] if buffered.splitlines() else ""
        if line.strip():
            return result, json.loads(line)["serving"]
        time.sleep(0.05)
    raise AssertionError("serve never announced its port")


def test_cli_serve_cluster_end_to_end(capsys):
    result, serving = _cli_serve_in_thread(
        capsys,
        ["serve", "--workers", "1", "--serial", "--request-timeout", "0"],
    )
    assert serving["workers"] == 1
    with socket.create_connection(
        (serving["host"], serving["port"]), timeout=60
    ) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        line = json.dumps(AnalyzeRequest(program=SPEC).to_payload())
        stream.write(line + "\n")
        stream.flush()
        response = json.loads(stream.readline())
        assert response["ok"]
        assert response["report"] == (
            Session(parallel=False).analyze(
                AnalyzeRequest(program=SPEC)
            ).to_payload()
        )
        stream.write('{"op": "shutdown"}\n')
        stream.flush()
        assert json.loads(stream.readline())["bye"]
    result["thread"].join(timeout=60)
    assert result.get("code") == 0


def test_cli_serve_threaded_mode_shutdown_op(capsys):
    result, serving = _cli_serve_in_thread(
        capsys, ["serve", "--workers", "0", "--serial"]
    )
    assert serving["workers"] == 0
    with socket.create_connection(
        (serving["host"], serving["port"]), timeout=30
    ) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        stream.write('{"op": "ping"}\n{"op": "shutdown"}\n')
        stream.flush()
        assert json.loads(stream.readline())["pong"]
        assert json.loads(stream.readline())["bye"]
    result["thread"].join(timeout=60)
    assert result.get("code") == 0
