"""May-happen-in-parallel analysis over the static thread structure.

The mini-C language spawns a fixed set of threads (``thread f(0);``
declarations), so the concurrency structure is static: two instructions
may execute in parallel exactly when they belong to functions reachable
(through the call graph) from *distinct* thread spawns. A function
spawned twice — or called from two different thread entries — may run
in parallel with itself.

This is the cheap half of the static race detector: it prunes access
pairs that provably share a thread before the lockset and
happens-before refinements ever look at them.

Corpus programs are *barrier-phased* (SPLASH-style: init, then
``barrier_wait(n)``, then the next stage), so plain spawn-based MHP
drowns in cross-phase pairs. The second half of this module is a
barrier-phase refinement: calls to functions whose name contains
``barrier`` are intercepted (the same name-level API recognition the
lockset analysis uses for locks) and every access gets a *phase
interval* — how many global barriers have completed before it, as a
``[lo, hi]`` range over paths, with ``hi = inf`` once a barrier sits
on a CFG cycle. Two accesses whose intervals are disjoint in every
distinct-thread pairing cannot overlap in time. The refinement assumes
barrier calls are *global* (every thread participates in every
barrier), which is the corpus runtime's only barrier idiom.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ir.cfg import CFG
from repro.ir.function import BasicBlock, Function, Program
from repro.ir.instructions import Br, Call, Cmp, Instruction, Load, Store
from repro.ir.values import Constant, Register


def callees_of(program: Program, func_name: str) -> frozenset[str]:
    """Function names transitively reachable from ``func_name``
    (inclusive). Unknown callees (runtime intrinsics) are skipped."""
    seen: set[str] = set()
    stack = [func_name]
    while stack:
        name = stack.pop()
        if name in seen or name not in program.functions:
            continue
        seen.add(name)
        for inst in program.functions[name].instructions():
            if isinstance(inst, Call) and inst.callee not in seen:
                stack.append(inst.callee)
    return frozenset(seen)


#: Substring intercepting the corpus runtime's barrier API by name,
#: exactly as the lockset analysis intercepts ``acquire``/``release``.
BARRIER_HINT = "barrier"


@dataclass(frozen=True)
class PhaseInterval:
    """How many global barriers completed before a point: a path range.

    ``hi`` is ``math.inf`` when a barrier lies on a CFG cycle (the
    staged-loop idiom ``while (...) { work(); barrier_wait(n); }``).
    """

    lo: int
    hi: float

    def shift(self, other: "PhaseInterval") -> "PhaseInterval":
        return PhaseInterval(self.lo + other.lo, self.hi + other.hi)

    def join(self, other: "PhaseInterval") -> "PhaseInterval":
        return PhaseInterval(min(self.lo, other.lo), max(self.hi, other.hi))

    def before(self, other: "PhaseInterval") -> bool:
        """Every instance of self is in a strictly earlier phase."""
        return self.hi < other.lo


_ZERO_PHASE = PhaseInterval(0, 0)
_ONE_BARRIER = PhaseInterval(1, 1)


class ThreadStructure:
    """Which threads can execute each function, and the MHP relation."""

    def __init__(self, program: Program) -> None:
        self.program = program
        #: thread index -> functions its entry transitively reaches.
        self.reachable: tuple[frozenset[str], ...] = tuple(
            callees_of(program, spec.func_name) for spec in program.threads
        )
        #: function name -> indices of threads that may execute it.
        self.threads_of: dict[str, frozenset[int]] = {}
        for tid, funcs in enumerate(self.reachable):
            for name in funcs:
                current = self.threads_of.get(name, frozenset())
                self.threads_of[name] = current | {tid}
        self._summaries: dict[str, PhaseInterval] = {}
        self._summarizing: set[str] = set()
        self._callee_reach: dict[str, frozenset[str]] = {}
        self._phase_maps: dict[str, dict[int, PhaseInterval]] = {}
        self._smears: dict[tuple[str, str], PhaseInterval | None] = {}
        self._restrictions: dict[str, dict[int, int]] = {}

    def executed_functions(self) -> tuple[str, ...]:
        """Functions reachable from at least one thread entry, in
        program declaration order."""
        return tuple(
            name for name in self.program.functions if name in self.threads_of
        )

    def may_happen_in_parallel(self, f: str, g: str) -> bool:
        """Can an instance of ``f`` run concurrently with one of ``g``?

        True when two *distinct* thread spawns can execute them — which
        includes ``f == g`` whenever two threads reach the function.
        """
        tf = self.threads_of.get(f, frozenset())
        tg = self.threads_of.get(g, frozenset())
        if not tf or not tg:
            return False
        if f == g:
            return len(tf) >= 2
        # Distinct spawns: any pairing besides "both only thread i".
        return bool(tf - tg) or bool(tg - tf) or len(tf & tg) >= 2

    # --- barrier phases ---------------------------------------------------
    def _reach(self, name: str) -> frozenset[str]:
        if name not in self._callee_reach:
            self._callee_reach[name] = callees_of(self.program, name)
        return self._callee_reach[name]

    def _call_delta(self, inst: Instruction) -> PhaseInterval:
        """Barriers one call executes: the call itself if it targets a
        barrier-named function, plus any inside the callee's body."""
        if not isinstance(inst, Call):
            return _ZERO_PHASE
        delta = _ONE_BARRIER if BARRIER_HINT in inst.callee else _ZERO_PHASE
        return delta.shift(self.barrier_summary(inst.callee))

    def barrier_summary(self, name: str) -> PhaseInterval:
        """Barrier executions in one invocation of ``name`` (its body,
        excluding the call that invoked it). Recursive cycles are cut
        optimistically at zero."""
        if name in self._summaries:
            return self._summaries[name]
        func = self.program.functions.get(name)
        if func is None or name in self._summarizing:
            return _ZERO_PHASE
        self._summarizing.add(name)
        try:
            ins = self._flow(func)
            exits = [
                block.label
                for block in func.blocks
                if not block.successor_labels()
            ] or [block.label for block in func.blocks]
            summary = _ZERO_PHASE
            first = True
            for label in exits:
                out = ins[label]
                for inst in self._block_of(func, label).instructions:
                    out = out.shift(self._call_delta(inst))
                summary = out if first else summary.join(out)
                first = False
        finally:
            self._summarizing.discard(name)
        self._summaries[name] = summary
        return summary

    @staticmethod
    def _block_of(func: Function, label: str) -> BasicBlock:
        for block in func.blocks:
            if block.label == label:
                return block
        raise KeyError(label)

    def _flow(self, func: Function) -> dict[str, PhaseInterval]:
        """Phase interval at each block's entry (Kleene with widening:
        a still-growing ``hi`` means a barrier on a cycle -> inf)."""
        cfg = CFG(func)
        deltas = {
            block.label: self._block_delta(block) for block in func.blocks
        }
        entry = func.blocks[0].label
        ins: dict[str, PhaseInterval | None] = {
            block.label: None for block in func.blocks
        }
        ins[entry] = _ZERO_PHASE
        limit = 2 * len(func.blocks) + 8
        rounds = 0
        while True:
            rounds += 1
            changed = set()
            for block in func.blocks:
                if block.label == entry:
                    continue
                incoming = [
                    ins[p].shift(deltas[p])
                    for p in cfg.pred[block.label]
                    if ins[p] is not None
                ]
                if not incoming:
                    continue
                merged = incoming[0]
                for interval in incoming[1:]:
                    merged = merged.join(interval)
                if ins[block.label] is not None:
                    # Monotone accumulate, so a widened hi=inf sticks.
                    merged = merged.join(ins[block.label])
                if merged != ins[block.label]:
                    ins[block.label] = merged
                    changed.add(block.label)
            if not changed:
                break
            if rounds >= limit:  # widen: growth past the bound is a cycle
                for label in changed:
                    current = ins[label]
                    ins[label] = PhaseInterval(current.lo, math.inf)
        return {
            label: interval if interval is not None else _ZERO_PHASE
            for label, interval in ins.items()
        }

    def _block_delta(self, block: BasicBlock) -> PhaseInterval:
        delta = _ZERO_PHASE
        for inst in block.instructions:
            delta = delta.shift(self._call_delta(inst))
        return delta

    def _phase_map(self, root: str) -> dict[int, PhaseInterval]:
        """uid -> phase interval immediately before each instruction of
        ``root`` (the thread entry function)."""
        if root in self._phase_maps:
            return self._phase_maps[root]
        func = self.program.functions[root]
        ins = self._flow(func)
        mapping: dict[int, PhaseInterval] = {}
        for block in func.blocks:
            interval = ins[block.label]
            for inst in block.instructions:
                mapping[inst.uid] = interval
                interval = interval.shift(self._call_delta(inst))
        self._phase_maps[root] = mapping
        return mapping

    def access_interval(
        self, thread: int, func_name: str, uid: int
    ) -> PhaseInterval | None:
        """Phase interval of access ``uid`` of ``func_name`` when thread
        ``thread`` executes it; None when the placement is unknown."""
        root = self.program.threads[thread].func_name
        if root not in self.program.functions:
            return None
        if func_name == root:
            return self._phase_map(root).get(uid)
        key = (root, func_name)
        if key not in self._smears:
            self._smears[key] = self._callee_interval(root, func_name)
        return self._smears[key]

    def _callee_interval(
        self, root: str, func_name: str
    ) -> PhaseInterval | None:
        """Joined interval over every call site in ``root`` that can
        reach ``func_name``, smeared by barriers inside the callee."""
        phase_map = self._phase_map(root)
        result: PhaseInterval | None = None
        for inst in self.program.functions[root].instructions():
            if not isinstance(inst, Call):
                continue
            if func_name != inst.callee and (
                func_name not in self._reach(inst.callee)
            ):
                continue
            site = phase_map[inst.uid]
            smeared = PhaseInterval(
                site.lo, site.hi + self._call_delta(inst).hi
            )
            result = smeared if result is None else result.join(smeared)
        return result

    # --- master-thread guards ---------------------------------------------
    def _tid_guards(self, func_name: str) -> dict[int, int]:
        """uid -> required spawn id, for accesses dominated by an
        ``if (tid == k)`` guard (the master-thread-init idiom). The
        thread-id is recognized as the first parameter when it is named
        ``tid`` — the corpus convention, threaded through call chains
        verbatim — plus loads from the local slot it is spilled to."""
        if func_name in self._restrictions:
            return self._restrictions[func_name]
        func = self.program.functions[func_name]
        result: dict[int, int] = {}
        self._restrictions[func_name] = result
        if not func.params or func.params[0].name.lstrip("%") != "tid":
            return result
        tid_regs = {func.params[0].name}
        # Slots holding only the tid: stored exactly once, from it.
        stores: dict[str, list] = {}
        for inst in func.instructions():
            if isinstance(inst, Store) and isinstance(inst.addr, Register):
                stores.setdefault(inst.addr.name, []).append(inst.value)
        tid_slots = {
            slot
            for slot, values in stores.items()
            if len(values) == 1
            and isinstance(values[0], Register)
            and values[0].name in tid_regs
        }
        for inst in func.instructions():
            if (
                isinstance(inst, Load)
                and isinstance(inst.addr, Register)
                and inst.addr.name in tid_slots
            ):
                tid_regs.add(inst.dest.name)

        cfg = CFG(func)
        doms = cfg.dominators()
        guarded: dict[str, int] = {}  # then-block label -> required id
        for block in func.blocks:
            for inst in block.instructions:
                if not isinstance(inst, Br):
                    continue
                cond = inst.cond
                if not isinstance(cond, Register):
                    continue
                defining = cond.defining_inst
                if not (isinstance(defining, Cmp) and defining.op == "=="):
                    continue
                operands = (defining.lhs, defining.rhs)
                spawn_id = None
                for x, y in (operands, operands[::-1]):
                    if (
                        isinstance(x, Register)
                        and x.name in tid_regs
                        and isinstance(y, Constant)
                    ):
                        spawn_id = y.value
                if spawn_id is None:
                    continue
                target = inst.true_label
                # Domination by the then-block implies the guard held —
                # valid only while the branch is its sole entry.
                if len(cfg.pred.get(target, ())) == 1:
                    guarded[target] = spawn_id
        if guarded:
            for block in func.blocks:
                for target, spawn_id in guarded.items():
                    if target in doms[block.label]:
                        for inst in block.instructions:
                            result[inst.uid] = spawn_id
        return result

    def _may_execute(self, thread: int, func_name: str, uid: int) -> bool:
        required = self._tid_guards(func_name).get(uid)
        if required is None:
            return True
        args = self.program.threads[thread].args
        return not args or args[0] == required

    def may_overlap(
        self, a_func: str, a_uid: int, b_func: str, b_uid: int
    ) -> bool:
        """Can the two accesses overlap in time on distinct threads?

        False when every distinct-thread pairing is either excluded by
        an ``if (tid == k)`` guard or separated by global barrier
        phases."""
        for t1 in self.threads_of.get(a_func, frozenset()):
            if not self._may_execute(t1, a_func, a_uid):
                continue
            ia = self.access_interval(t1, a_func, a_uid)
            for t2 in self.threads_of.get(b_func, frozenset()):
                if t1 == t2:
                    continue
                if not self._may_execute(t2, b_func, b_uid):
                    continue
                ib = self.access_interval(t2, b_func, b_uid)
                if ia is None or ib is None:
                    return True
                if not (ia.before(ib) or ib.before(ia)):
                    return True
        return False
