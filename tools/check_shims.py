#!/usr/bin/env python
"""Deprecation-shim gate: fail when internal code calls a PR-3 shim.

The compatibility shims (`repro.analyze_program` / `repro.place_fences`
at the top level, `repro.core.pipeline.VARIANTS_BY_VALUE`,
`repro.validate.oracle.WEAK_EXPLORERS`) exist only for external callers
mid-migration. Internal code must use the `repro.api` facade or the
registries directly; this gate greps the tree so shim usage cannot
creep back in after the cleanup.

    PYTHONPATH=src python tools/check_shims.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: (pattern, what it catches). Plain-text regexes over source lines.
BANNED: tuple[tuple[str, str], ...] = (
    (r"\bVARIANTS_BY_VALUE\b", "repro.core.pipeline.VARIANTS_BY_VALUE shim"),
    (r"\bWEAK_EXPLORERS\b", "repro.validate.oracle.WEAK_EXPLORERS shim"),
    (r"\brepro\.analyze_program\b", "top-level repro.analyze_program shim"),
    (r"\brepro\.place_fences\b", "top-level repro.place_fences shim"),
    (r"from\s+repro\s+import\s+[^\n]*\b(analyze_program|place_fences)\b",
     "top-level analyze_program/place_fences import"),
)

#: Files allowed to mention the shims: their definitions, the modules
#: that re-export them behind __getattr__, the test that pins their
#: deprecation behavior, and this gate itself.
ALLOWED: frozenset[str] = frozenset(
    {
        "src/repro/__init__.py",
        "src/repro/api/_compat.py",
        "src/repro/core/pipeline.py",
        "src/repro/validate/oracle.py",
        "src/repro/registry/models.py",  # docstring: why the table died
        "tests/test_api_reports.py",
        "tests/test_shim_gate.py",
        "tools/check_shims.py",
    }
)

SCAN_DIRS = ("src", "tests", "tools", "benchmarks", "examples")


def violations() -> list[tuple[str, int, str, str]]:
    found = []
    for top in SCAN_DIRS:
        base = ROOT / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(ROOT).as_posix()
            if rel in ALLOWED:
                continue
            for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                for pattern, label in BANNED:
                    if re.search(pattern, line):
                        found.append((rel, lineno, label, line.strip()))
    return found


def main() -> int:
    found = violations()
    if found:
        print("deprecated-shim usage crept back in:", file=sys.stderr)
        for rel, lineno, label, line in found:
            print(f"  {rel}:{lineno}: {label}\n      {line}", file=sys.stderr)
        print(
            "\nuse the repro.api facade (Session / pipeline_variants()) "
            "or the registries instead.",
            file=sys.stderr,
        )
        return 1
    print(f"shim gate clean ({len(BANNED)} patterns, "
          f"{len(ALLOWED)} allowlisted files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
