"""IR values: constants, virtual registers, and global symbol addresses.

The IR follows the paper's setting (Section 4): an infinite-register
load/store intermediate representation. A :class:`Register` is written
by exactly one instruction (SSA for temporaries); mutable local
variables are lowered to ``alloca`` slots accessed through loads and
stores, which is exactly the shape the paper's backwards slicer
(Listing 2) is written against — it chases loaded values through
``potential_writers`` rather than phi nodes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.instructions import Instruction


class Value:
    """Base class for anything an instruction operand may reference."""

    __slots__ = ()


class Constant(Value):
    """An integer literal (the IR is untyped word-sized, like the paper's)."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        if not isinstance(value, int):
            raise TypeError(f"Constant requires int, got {type(value).__name__}")
        self.value = value

    def __repr__(self) -> str:
        return f"Constant({self.value})"

    def __str__(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("const", self.value))


class Register(Value):
    """A virtual register; written by exactly one defining instruction.

    ``defining_inst`` is set when the instruction is attached to a
    block, and is what the paper's ``get_def(operand)`` returns.
    """

    __slots__ = ("name", "defining_inst")

    def __init__(self, name: str) -> None:
        self.name = name
        self.defining_inst: Optional["Instruction"] = None

    def __repr__(self) -> str:
        return f"Register(%{self.name})"

    def __str__(self) -> str:
        return f"%{self.name}"


class GlobalRef(Value):
    """The address of a global (shared) location — ``&x`` in the paper.

    Array globals are contiguous; ``GlobalRef`` denotes the base
    address of element 0.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"GlobalRef(@{self.name})"

    def __str__(self) -> str:
        return f"@{self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GlobalRef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("global", self.name))


def get_def(value: Value) -> Optional["Instruction"]:
    """The paper's ``get_def``: defining instruction of an operand.

    Constants and global addresses have no defining instruction and
    contribute nothing to a backwards slice.
    """
    if isinstance(value, Register):
        return value.defining_inst
    return None
