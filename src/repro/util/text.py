"""Plain-text table and bar-chart rendering for experiment reports.

The paper's figures are bar charts; the reproduction renders the same
series as ASCII so the benchmark harness can print paper-shaped output
without a plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def ascii_bar_chart(
    series: Mapping[str, Mapping[str, float]],
    width: int = 40,
    value_format: str = "{:.2f}",
    title: str | None = None,
) -> str:
    """Render grouped horizontal bars.

    ``series`` maps group label (e.g. benchmark name) to a mapping of
    series label (e.g. "Control") to value. Bars are scaled to the
    global maximum so cross-group comparison is visual, like the
    paper's figures.
    """
    if not series:
        return title or ""
    max_value = max(
        (v for group in series.values() for v in group.values()), default=0.0
    )
    if max_value <= 0:
        max_value = 1.0
    label_width = max(
        (len(name) for group in series.values() for name in group), default=0
    )
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for group_label, group in series.items():
        lines.append(f"{group_label}:")
        for name, value in group.items():
            bar = "#" * max(1 if value > 0 else 0, round(value / max_value * width))
            lines.append(
                f"  {name.ljust(label_width)} |{bar.ljust(width)}| "
                + value_format.format(value)
            )
    return "\n".join(lines)
