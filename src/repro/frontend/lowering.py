"""Lowering: mini-C AST to the load/store IR.

Lowering follows the LLVM ``-O0`` discipline the paper's algorithms
assume: every mutable local variable becomes an ``alloca`` slot
accessed through loads and stores, and every temporary is a fresh
virtual register written exactly once. This is what makes the paper's
backwards slicer (which chases loaded values through
``potential_writers``) directly applicable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.frontend import ast_nodes as ast
from repro.ir.builder import IRBuilder
from repro.ir.function import GlobalVar, Program
from repro.ir.instructions import FenceKind, FenceOrigin, Store
from repro.ir.values import Constant, GlobalRef, Register, Value
from repro.ir.verifier import verify_program


class LoweringError(Exception):
    """Raised on semantic errors (undefined names, bad targets, ...)."""


@dataclass
class _LocalSlot:
    """A local variable: its alloca register and declared size."""

    addr: Register
    size: int


class _LoopContext:
    """Break/continue targets for the innermost loop."""

    __slots__ = ("continue_label", "break_label")

    def __init__(self, continue_label: str, break_label: str) -> None:
        self.continue_label = continue_label
        self.break_label = break_label


class FunctionLowerer:
    def __init__(
        self,
        func: ast.FuncDecl,
        global_sizes: dict[str, int],
        include_manual_fences: bool,
    ) -> None:
        self.decl = func
        self.global_sizes = global_sizes
        self.include_manual_fences = include_manual_fences
        self.builder = IRBuilder(func.name, func.params)
        self.locals: dict[str, _LocalSlot] = {}
        self.loop_stack: list[_LoopContext] = []

    def lower(self):
        b = self.builder
        b.new_block("entry")
        # Parameters become mutable alloca slots, like clang -O0.
        for param in b.function.params:
            slot = b.alloca(1, var_name=param.name)
            b.store(slot, param)
            self.locals[param.name] = _LocalSlot(slot, 1)
        self.lower_block(self.decl.body)
        return b.build()

    # --- statements ----------------------------------------------------
    def lower_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        b = self.builder
        if isinstance(stmt, ast.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.LocalDecl):
            if stmt.name in self.locals:
                raise LoweringError(
                    f"line {stmt.line}: duplicate local {stmt.name!r} in "
                    f"{self.decl.name}"
                )
            slot = b.alloca(stmt.size, var_name=stmt.name)
            self.locals[stmt.name] = _LocalSlot(slot, stmt.size)
            if stmt.init is not None:
                b.store(slot, self.lower_expr(stmt.init))
        elif isinstance(stmt, ast.Assign):
            value = self.lower_expr(stmt.value)
            addr = self.lower_address_of(stmt.target)
            b.store(addr, value)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr, discard=True)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            value = None if stmt.value is None else self.lower_expr(stmt.value)
            b.ret(value)
            b.new_block()  # dead continuation for any trailing statements
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise LoweringError(f"line {stmt.line}: break outside loop")
            b.jump(self.loop_stack[-1].break_label)
            b.new_block()
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise LoweringError(f"line {stmt.line}: continue outside loop")
            b.jump(self.loop_stack[-1].continue_label)
            b.new_block()
        elif isinstance(stmt, ast.FenceStmt):
            if self.include_manual_fences:
                kind = FenceKind.FULL if stmt.full else FenceKind.COMPILER
                b.fence(kind, FenceOrigin.MANUAL, flavor=stmt.flavor)
        elif isinstance(stmt, ast.AtomicStoreStmt):
            value = self.lower_expr(stmt.value)
            addr = self.lower_expr(stmt.addr)
            b.store(addr, value, ordering=stmt.ordering)
        elif isinstance(stmt, ast.ObserveStmt):
            b.observe(stmt.label, self.lower_expr(stmt.expr))
        else:  # pragma: no cover - parser produces no other nodes
            raise LoweringError(f"unknown statement {type(stmt).__name__}")

    def _lower_if(self, stmt: ast.If) -> None:
        b = self.builder
        cond = self.lower_expr(stmt.cond)
        then_label = b.fresh_label("then")
        merge_label = b.fresh_label("endif")
        else_label = b.fresh_label("else") if stmt.els is not None else merge_label
        b.br(cond, then_label, else_label)
        b.set_block(b.function.add_block(then_label))
        self.lower_block(stmt.then)
        if not b.current.is_terminated():
            b.jump(merge_label)
        if stmt.els is not None:
            b.set_block(b.function.add_block(else_label))
            self.lower_block(stmt.els)
            if not b.current.is_terminated():
                b.jump(merge_label)
        b.set_block(b.function.add_block(merge_label))

    def _lower_while(self, stmt: ast.While) -> None:
        b = self.builder
        header_label = b.fresh_label("while.head")
        body_label = b.fresh_label("while.body")
        exit_label = b.fresh_label("while.end")
        b.jump(header_label)
        b.set_block(b.function.add_block(header_label))
        cond = self.lower_expr(stmt.cond)
        b.br(cond, body_label, exit_label)
        b.set_block(b.function.add_block(body_label))
        self.loop_stack.append(_LoopContext(header_label, exit_label))
        self.lower_block(stmt.body)
        self.loop_stack.pop()
        if not b.current.is_terminated():
            b.jump(header_label)
        b.set_block(b.function.add_block(exit_label))

    def _lower_for(self, stmt: ast.For) -> None:
        b = self.builder
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        header_label = b.fresh_label("for.head")
        body_label = b.fresh_label("for.body")
        step_label = b.fresh_label("for.step")
        exit_label = b.fresh_label("for.end")
        b.jump(header_label)
        b.set_block(b.function.add_block(header_label))
        if stmt.cond is not None:
            cond = self.lower_expr(stmt.cond)
            b.br(cond, body_label, exit_label)
        else:
            b.jump(body_label)
        b.set_block(b.function.add_block(body_label))
        self.loop_stack.append(_LoopContext(step_label, exit_label))
        self.lower_block(stmt.body)
        self.loop_stack.pop()
        if not b.current.is_terminated():
            b.jump(step_label)
        b.set_block(b.function.add_block(step_label))
        if stmt.step is not None:
            self.lower_stmt(stmt.step)
        b.jump(header_label)
        b.set_block(b.function.add_block(exit_label))

    # --- addresses --------------------------------------------------------
    def lower_address_of(self, target: ast.Expr) -> Value:
        """Address of an lvalue (assignment target or ``&`` operand)."""
        b = self.builder
        if isinstance(target, ast.Var):
            slot = self.locals.get(target.name)
            if slot is not None:
                return slot.addr
            if target.name in self.global_sizes:
                return GlobalRef(target.name)
            raise LoweringError(
                f"line {target.line}: undefined variable {target.name!r}"
            )
        if isinstance(target, ast.Index):
            base = self._lower_base_address(target.base)
            offset = self.lower_expr(target.index)
            return b.gep(base, offset)
        if isinstance(target, ast.Unary) and target.op == "*":
            return self.lower_expr(target.operand)
        raise LoweringError(f"line {target.line}: expression is not an lvalue")

    def _lower_base_address(self, base: ast.Expr) -> Value:
        """Base pointer of an indexing expression.

        An array *name* denotes its base address; anything else is a
        pointer-valued expression.
        """
        if isinstance(base, ast.Var):
            slot = self.locals.get(base.name)
            if slot is not None:
                if slot.size > 1:
                    return slot.addr  # local array decays to its address
                return self.builder.load(slot.addr)  # scalar holding a pointer
            if base.name in self.global_sizes:
                if self.global_sizes[base.name] > 1:
                    return GlobalRef(base.name)
                return self.builder.load(GlobalRef(base.name))
            raise LoweringError(f"line {base.line}: undefined variable {base.name!r}")
        return self.lower_expr(base)

    # --- expressions ----------------------------------------------------------
    def lower_expr(self, expr: ast.Expr, discard: bool = False) -> Value:
        b = self.builder
        if isinstance(expr, ast.Num):
            return Constant(expr.value)
        if isinstance(expr, ast.Var):
            slot = self.locals.get(expr.name)
            if slot is not None:
                if slot.size > 1:
                    return slot.addr  # array decays to pointer
                return b.load(slot.addr)
            if expr.name in self.global_sizes:
                if self.global_sizes[expr.name] > 1:
                    return GlobalRef(expr.name)
                return b.load(GlobalRef(expr.name))
            raise LoweringError(f"line {expr.line}: undefined variable {expr.name!r}")
        if isinstance(expr, ast.Unary):
            if expr.op == "&":
                return self.lower_address_of(expr.operand)
            if expr.op == "*":
                return b.load(self.lower_expr(expr.operand))
            if expr.op == "-":
                return b.binop("-", Constant(0), self.lower_expr(expr.operand))
            if expr.op == "!":
                return b.cmp("==", self.lower_expr(expr.operand), Constant(0))
            raise LoweringError(f"line {expr.line}: unknown unary op {expr.op!r}")
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Index):
            base = self._lower_base_address(expr.base)
            offset = self.lower_expr(expr.index)
            return b.load(b.gep(base, offset))
        if isinstance(expr, ast.CallExpr):
            return b.call(expr.callee, [self.lower_expr(a) for a in expr.args],
                          returns=not discard) or Constant(0)
        if isinstance(expr, ast.CasExpr):
            return b.cmpxchg(
                self.lower_expr(expr.addr),
                self.lower_expr(expr.expected),
                self.lower_expr(expr.new),
            )
        if isinstance(expr, ast.XchgExpr):
            return b.xchg(self.lower_expr(expr.addr), self.lower_expr(expr.value))
        if isinstance(expr, ast.FaddExpr):
            return b.fetch_add(self.lower_expr(expr.addr), self.lower_expr(expr.value))
        if isinstance(expr, ast.AtomicLoadExpr):
            return b.load(self.lower_expr(expr.addr), ordering=expr.ordering)
        raise LoweringError(f"unknown expression {type(expr).__name__}")

    def _lower_binary(self, expr: ast.Binary) -> Value:
        b = self.builder
        lhs = self.lower_expr(expr.lhs)
        rhs = self.lower_expr(expr.rhs)
        if expr.op in ("&&", "||"):
            # Non-short-circuit logical ops: normalize to 0/1 and combine.
            # Sufficient for the workloads (conditions are side-effect
            # free) and keeps the CFG simple for the analyses.
            lhs_bool = b.cmp("!=", lhs, Constant(0))
            rhs_bool = b.cmp("!=", rhs, Constant(0))
            return b.binop("&" if expr.op == "&&" else "|", lhs_bool, rhs_bool)
        if expr.op in ("==", "!=", "<", "<=", ">", ">="):
            return b.cmp(expr.op, lhs, rhs)
        return b.binop(expr.op, lhs, rhs)


def lower_module(
    module: ast.Module,
    name: str = "program",
    include_manual_fences: bool = False,
) -> Program:
    """Lower a parsed module to a verified, finalized IR program."""
    program = Program(name)
    global_sizes: dict[str, int] = {}
    for g in module.globals:
        program.add_global(GlobalVar(g.name, g.size, tuple(g.init)))
        global_sizes[g.name] = g.size
    for f in module.functions:
        lowerer = FunctionLowerer(f, global_sizes, include_manual_fences)
        program.add_function(lowerer.lower())
    for t in module.threads:
        program.add_thread(t.func_name, t.args)
    program.finalize()
    verify_program(program)
    return program
