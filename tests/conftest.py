"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source

MP_SOURCE = """
global int flag;
global int data;

fn producer(tid) {
  data = 1;
  flag = 1;
}

fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""

SB_SOURCE = """
global int x;
global int y;

fn p1(tid) {
  local r1 = 0;
  x = 1;
  r1 = y;
  observe("r1", r1);
}

fn p2(tid) {
  local r2 = 0;
  y = 1;
  r2 = x;
  observe("r2", r2);
}

thread p1(0);
thread p2(1);
"""


@pytest.fixture
def mp_program():
    return compile_source(MP_SOURCE, "mp")


@pytest.fixture
def sb_program():
    return compile_source(SB_SOURCE, "sb")


@pytest.fixture
def mp_source():
    return MP_SOURCE


@pytest.fixture
def sb_source():
    return SB_SOURCE
