"""Unit tests for IR values, instructions, blocks, and functions."""

import pytest

from repro.ir import (
    Alloca,
    AtomicAdd,
    AtomicXchg,
    BinOp,
    Br,
    Cmp,
    CmpXchg,
    Constant,
    Fence,
    FenceKind,
    Function,
    Gep,
    GlobalRef,
    GlobalVar,
    Jump,
    Load,
    Program,
    Register,
    Ret,
    Store,
    get_def,
)


def test_constant_requires_int():
    with pytest.raises(TypeError):
        Constant("x")  # type: ignore[arg-type]
    assert Constant(3).value == 3


def test_constant_equality_and_hash():
    assert Constant(1) == Constant(1)
    assert Constant(1) != Constant(2)
    assert hash(Constant(1)) == hash(Constant(1))


def test_globalref_equality():
    assert GlobalRef("x") == GlobalRef("x")
    assert GlobalRef("x") != GlobalRef("y")


def test_register_single_assignment():
    r = Register("a")
    Load(r, GlobalRef("x"))
    with pytest.raises(ValueError):
        Load(r, GlobalRef("y"))


def test_get_def():
    r = Register("a")
    inst = Load(r, GlobalRef("x"))
    assert get_def(r) is inst
    assert get_def(Constant(1)) is None
    assert get_def(GlobalRef("x")) is None


def test_instruction_classification_flags():
    load = Load(Register("l"), GlobalRef("x"))
    store = Store(GlobalRef("x"), Constant(1))
    rmw = CmpXchg(Register("c"), GlobalRef("x"), Constant(0), Constant(1))
    br = Br(Constant(1), "a", "b")
    gep = Gep(Register("g"), GlobalRef("buf"), Constant(2))

    assert load.is_load() and load.reads_memory() and not load.writes_memory()
    assert store.is_store() and store.writes_memory() and not store.reads_memory()
    assert rmw.is_atomic_rmw() and rmw.reads_memory() and rmw.writes_memory()
    assert br.is_cond_branch() and br.is_terminator()
    assert gep.is_address_calculation()
    assert not gep.is_memory_access()


def test_dereference_detection():
    # Direct global access is not a dereference; computed address is.
    direct = Load(Register("a"), GlobalRef("x"))
    gep = Gep(Register("g"), GlobalRef("buf"), Constant(1))
    indirect = Load(Register("b"), gep.dest)
    assert not direct.is_dereference()
    assert indirect.is_dereference()


def test_rmw_variants_are_memory_accesses():
    for inst in (
        AtomicXchg(Register("x1"), GlobalRef("g"), Constant(1)),
        AtomicAdd(Register("x2"), GlobalRef("g"), Constant(1)),
    ):
        assert inst.is_atomic_rmw()
        assert inst.is_memory_access()
        assert inst.address_operand() == GlobalRef("g")


def test_binop_rejects_unknown_op():
    with pytest.raises(ValueError):
        BinOp(Register("r"), "**", Constant(1), Constant(2))


def test_cmp_rejects_unknown_op():
    with pytest.raises(ValueError):
        Cmp(Register("r"), "<>", Constant(1), Constant(2))


def test_alloca_size_validation():
    with pytest.raises(ValueError):
        Alloca(Register("a"), 0)


def test_block_termination_rules():
    f = Function("f")
    b = f.add_block("entry")
    b.append(Store(GlobalRef("x"), Constant(1)))
    b.append(Ret())
    assert b.is_terminated()
    with pytest.raises(ValueError):
        b.append(Ret())


def test_block_successor_labels():
    f = Function("f")
    b = f.add_block("entry")
    b.append(Br(Constant(1), "t", "e"))
    assert b.successor_labels() == ("t", "e")

    b2 = f.add_block("t")
    b2.append(Jump("e"))
    assert b2.successor_labels() == ("e",)

    b3 = f.add_block("e")
    b3.append(Ret())
    assert b3.successor_labels() == ()


def test_br_same_target_collapses():
    b = Br(Constant(1), "x", "x")
    f = Function("f")
    blk = f.add_block("entry")
    blk.append(b)
    assert blk.successor_labels() == ("x",)


def test_function_duplicate_block_label():
    f = Function("f")
    f.add_block("a")
    with pytest.raises(ValueError):
        f.add_block("a")


def test_finalize_assigns_positions_and_uids():
    f = Function("f")
    b = f.add_block("entry")
    s1 = b.append(Store(GlobalRef("x"), Constant(1)))
    s2 = b.append(Store(GlobalRef("y"), Constant(2)))
    b.append(Ret())
    f.finalize()
    assert f.position(s1) == (0, 0)
    assert f.position(s2) == (0, 1)
    assert s1.uid == 0 and s2.uid == 1


def test_position_unfinalized_instruction_raises():
    f = Function("f")
    b = f.add_block("entry")
    b.append(Ret())
    f.finalize()
    other = Store(GlobalRef("x"), Constant(1))
    with pytest.raises(KeyError):
        f.position(other)


def test_globalvar_init_validation():
    assert GlobalVar("x", 2, 5).init == (5, 5)
    assert GlobalVar("y", 2, [1, 2]).init == (1, 2)
    with pytest.raises(ValueError):
        GlobalVar("z", 2, [1])
    with pytest.raises(ValueError):
        GlobalVar("w", 0)
    with pytest.raises(ValueError):
        GlobalVar("v", 1, ["bad"])  # type: ignore[list-item]


def test_globalvar_symbolic_init():
    var = GlobalVar("p", 1, [("&", "x")])
    assert var.init == (("&", "x"),)


def test_program_duplicate_names():
    p = Program("p")
    p.add_global(GlobalVar("g"))
    with pytest.raises(ValueError):
        p.add_global(GlobalVar("g"))
    f = Function("f")
    p.add_function(f)
    with pytest.raises(ValueError):
        p.add_function(Function("f"))


def test_program_fences_enumeration():
    p = Program("p")
    f = Function("f")
    b = f.add_block("entry")
    b.append(Fence(FenceKind.FULL))
    b.append(Fence(FenceKind.COMPILER))
    b.append(Ret())
    p.add_function(f)
    p.finalize()
    fences = p.fences()
    assert len(fences) == 2
    assert {x.kind for x in fences} == {FenceKind.FULL, FenceKind.COMPILER}


def test_memory_accesses_in_order():
    f = Function("f")
    b = f.add_block("entry")
    s = b.append(Store(GlobalRef("x"), Constant(1)))
    ld = b.append(Load(Register("r"), GlobalRef("x")))
    b.append(Ret())
    f.finalize()
    assert f.memory_accesses() == [s, ld]
