"""Table II: acquire-signature breakdown over 9 synchronization kernels."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.signatures import signature_breakdown
from repro.programs.sync_kernels import SYNC_KERNELS, SyncKernel
from repro.util.text import format_table


@dataclass(frozen=True)
class Table2Row:
    kernel: str
    has_addr: bool
    has_ctrl: bool
    has_pure_addr: bool
    paper_addr: bool
    paper_ctrl: bool
    paper_pure_addr: bool
    citation: str

    @property
    def matches_paper(self) -> bool:
        return (
            self.has_addr == self.paper_addr
            and self.has_ctrl == self.paper_ctrl
            and self.has_pure_addr == self.paper_pure_addr
        )


def classify_kernel(kernel: SyncKernel) -> Table2Row:
    """Union the signature breakdown over the kernel's own functions
    (drivers excluded, as in the paper's primitive study)."""
    program = kernel.compile()
    has_addr = has_ctrl = has_pure = False
    for fn_name in kernel.kernel_functions:
        breakdown = signature_breakdown(program.functions[fn_name])
        has_addr |= breakdown.has_address
        has_ctrl |= breakdown.has_control
        has_pure |= breakdown.has_pure_address
    return Table2Row(
        kernel=kernel.name,
        has_addr=has_addr,
        has_ctrl=has_ctrl,
        has_pure_addr=has_pure,
        paper_addr=kernel.paper_addr,
        paper_ctrl=kernel.paper_ctrl,
        paper_pure_addr=kernel.paper_pure_addr,
        citation=kernel.citation,
    )


def run() -> list[Table2Row]:
    return [classify_kernel(k) for k in SYNC_KERNELS.values()]


def render(rows: list[Table2Row] | None = None) -> str:
    rows = rows if rows is not None else run()
    mark = lambda b: "yes" if b else "no"  # noqa: E731
    table_rows = [
        [
            r.kernel,
            mark(r.has_addr),
            mark(r.has_ctrl),
            mark(r.has_pure_addr),
            "OK" if r.matches_paper else "MISMATCH",
            r.citation,
        ]
        for r in rows
    ]
    return format_table(
        ["kernel", "addr", "ctrl", "pure addr", "vs paper", "source"],
        table_rows,
        title="Table II: acquires found in common synchronization kernels",
    )
