"""Approximate line coverage of src/repro without coverage.py.

CI measures real coverage with pytest-cov; this tool exists for
offline environments (like the one this repo is developed in) that
have no ``coverage`` module, so the committed ``--cov-fail-under``
floor can be derived and re-checked locally:

    PYTHONPATH=src python tools/approx_coverage.py [pytest args...]

It compiles every file under src/repro to collect executable line
numbers from the code objects, runs pytest under ``sys.settrace``
recording which of those lines execute, and prints per-file and total
percentages. Differences vs coverage.py are small and conservative:
``pragma: no cover`` lines are *not* excluded from the denominator
here, and process-pool children are untraced by both, so the real
CI number is a little higher than this estimate — deriving the floor
from this estimate minus the agreed slack is safe.
"""

from __future__ import annotations

import sys
import threading
import types
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"
PACKAGE = SRC / "repro"

# Mirror a from-the-repo-root pytest invocation: some tests import
# helpers as ``tests.<module>``.
for entry in (str(ROOT), str(SRC)):
    if entry not in sys.path:
        sys.path.insert(0, entry)


def executable_lines(path: Path) -> set[int]:
    code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    lines: set[int] = set()
    stack: list[types.CodeType] = [code]
    while stack:
        current = stack.pop()
        lines.update(
            line for _, _, line in current.co_lines() if line is not None
        )
        stack.extend(
            const
            for const in current.co_consts
            if isinstance(const, types.CodeType)
        )
    return lines


def main(argv: list[str]) -> int:
    files = sorted(PACKAGE.rglob("*.py"))
    want = {str(path): executable_lines(path) for path in files}
    executed: set[tuple[str, int]] = set()
    prefix = str(PACKAGE)

    def tracer(frame, event, arg):  # noqa: ANN001 - sys.settrace protocol
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None
        if event == "line":
            executed.add((filename, frame.f_lineno))
        return tracer

    import pytest

    sys.settrace(tracer)
    threading.settrace(tracer)
    try:
        exit_code = pytest.main(["-q", "-p", "no:cacheprovider", *argv])
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]

    total_lines = total_hit = 0
    print()
    for filename, lines in want.items():
        hit = sum(1 for line in lines if (filename, line) in executed)
        total_lines += len(lines)
        total_hit += hit
        pct = 100.0 * hit / len(lines) if lines else 100.0
        rel = Path(filename).relative_to(SRC)
        print(f"{rel!s:55s} {hit:5d}/{len(lines):5d} {pct:6.1f}%")
    pct = 100.0 * total_hit / total_lines if total_lines else 100.0
    print(f"\nTOTAL approx coverage: {total_hit}/{total_lines} = {pct:.1f}%")
    return int(exit_code)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
