"""The paper's contribution: acquire detection, pruning, fence placement."""

from repro.core.annotations import Annotation, render_annotations, suggest_annotations
from repro.core.delay_set import CriticalCycle, DelaySetAnalysis, DelaySetResult
from repro.core.fence_min import FencePlan, PlannedFence, apply_plan, plan_fences
from repro.core.interprocedural import (
    InterproceduralResult,
    detect_acquires_interprocedural,
)
from repro.core.machine_models import (
    MODELS,
    PSO,
    RMO,
    SC,
    X86_TSO,
    MemoryModel,
    OrderKind,
)
from repro.core.orderings import (
    Access,
    Ordering,
    OrderingSet,
    generate_orderings,
    logical_accesses,
)
from repro.core.pipeline import (
    FencePlacer,
    FunctionAnalysis,
    PipelineVariant,
    ProgramAnalysis,
    analyze_program,
    place_fences,
)
from repro.core.pruning import (
    PruneStats,
    aggregate_surviving_fraction,
    keep_ordering,
    prune_orderings,
)
from repro.core.signatures import (
    AcquireResult,
    SignatureBreakdown,
    Variant,
    detect_acquires,
    detect_address_acquires,
    detect_control_acquires,
    signature_breakdown,
)

__all__ = [
    "Access",
    "AcquireResult",
    "Annotation",
    "CriticalCycle",
    "DelaySetAnalysis",
    "DelaySetResult",
    "FencePlacer",
    "FencePlan",
    "FunctionAnalysis",
    "InterproceduralResult",
    "MODELS",
    "MemoryModel",
    "OrderKind",
    "Ordering",
    "OrderingSet",
    "PSO",
    "PipelineVariant",
    "PlannedFence",
    "ProgramAnalysis",
    "PruneStats",
    "RMO",
    "SC",
    "SignatureBreakdown",
    "Variant",
    "X86_TSO",
    "aggregate_surviving_fraction",
    "analyze_program",
    "apply_plan",
    "detect_acquires",
    "detect_acquires_interprocedural",
    "detect_address_acquires",
    "detect_control_acquires",
    "generate_orderings",
    "keep_ordering",
    "logical_accesses",
    "place_fences",
    "plan_fences",
    "prune_orderings",
    "render_annotations",
    "signature_breakdown",
    "suggest_annotations",
]
