"""Small shared utilities: ordered sets, statistics, and text rendering.

Everything in :mod:`repro` that needs deterministic iteration order or
report formatting goes through this package, so analyses stay
reproducible run-to-run (a property the test suite relies on).
"""

from repro.util.orderedset import OrderedSet
from repro.util.stats import geomean, mean, normalize
from repro.util.text import ascii_bar_chart, format_table

__all__ = [
    "OrderedSet",
    "ascii_bar_chart",
    "format_table",
    "geomean",
    "mean",
    "normalize",
]
