"""Evaluation workloads: Table II kernels and the 17 Section-5 programs."""

from repro.programs.registry import (
    BenchProgram,
    all_programs,
    get_program,
    lockfree_programs,
    splash2_programs,
)
from repro.programs.runtime import BARRIER_LIB, LOCK_LIB, RUNTIME_LIB, with_runtime
from repro.programs.sync_kernels import SYNC_KERNELS, SyncKernel

__all__ = [
    "BARRIER_LIB",
    "BenchProgram",
    "LOCK_LIB",
    "RUNTIME_LIB",
    "SYNC_KERNELS",
    "SyncKernel",
    "all_programs",
    "get_program",
    "lockfree_programs",
    "splash2_programs",
    "with_runtime",
]
