"""Ordering generation (paper Section 4.3).

"Ordering generation is done in line with Pensieve, generating an
ordering for every pair of variables in the set of potentially escaping
loads and stores, if there exists a path between them."

Atomic read-modify-writes are expanded into a read part followed by a
write part (Section 3: "considering them to be a read followed by a
write to the same location"), so every ordering has an unambiguous
kind among r->r, r->w, w->r, w->w.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.escape import EscapeInfo
from repro.analysis.reachability import ReachabilityTable
from repro.core.machine_models import OrderKind
from repro.ir.function import Function
from repro.ir.instructions import Instruction


@dataclass(frozen=True)
class Access:
    """A logical access: an instruction plus which half of an RMW.

    ``part`` is ``"r"`` or ``"w"``; plain loads have only an ``"r"``
    part, plain stores only a ``"w"`` part, RMWs both.
    """

    inst: Instruction
    part: str

    @property
    def is_write(self) -> bool:
        return self.part == "w"

    def __repr__(self) -> str:
        return f"Access({self.inst.mnemonic()}#{self.inst.uid}.{self.part})"


def logical_accesses(insts: Iterable[Instruction]) -> list[Access]:
    """Expand instructions into logical accesses, program order."""
    result: list[Access] = []
    for inst in insts:
        if inst.is_atomic_rmw():
            result.append(Access(inst, "r"))
            result.append(Access(inst, "w"))
        elif inst.is_load():
            result.append(Access(inst, "r"))
        elif inst.is_store():
            result.append(Access(inst, "w"))
    return result


@dataclass(frozen=True)
class Ordering:
    """A required program ordering between two escaping accesses."""

    src: Access
    dst: Access

    @property
    def kind(self) -> OrderKind:
        return OrderKind.of(self.src.is_write, self.dst.is_write)

    def __repr__(self) -> str:
        return f"Ordering({self.src!r} -> {self.dst!r}, {self.kind.value})"


class OrderingSet:
    """All orderings of one function, with counts by kind."""

    def __init__(self, func: Function, orderings: list[Ordering]) -> None:
        self.function = func
        self.orderings = orderings

    def count_by_kind(self) -> dict[OrderKind, int]:
        counts = {kind: 0 for kind in OrderKind}
        for o in self.orderings:
            counts[o.kind] += 1
        return counts

    def __len__(self) -> int:
        return len(self.orderings)

    def __iter__(self):
        return iter(self.orderings)


def generate_orderings(
    func: Function,
    escape_info: EscapeInfo,
    reach: ReachabilityTable | None = None,
    include_self_pairs: bool = False,
) -> OrderingSet:
    """Pensieve-style ordering generation over escaping accesses.

    One ordering per ordered pair (u, v) of escaping logical accesses
    with a CFG/statement path from u to v. Both directions are
    generated when both paths exist (accesses inside a loop). The two
    halves of a single RMW are skipped — hardware atomicity orders
    them. Self-pairs (an access reaching its own next dynamic instance
    through a loop) are off by default, matching pairwise generation
    over distinct accesses.
    """
    reach = reach if reach is not None else ReachabilityTable(func)
    accesses = logical_accesses(escape_info.escaping)
    orderings: list[Ordering] = []
    for u in accesses:
        for v in accesses:
            if u.inst is v.inst:
                if u.part == v.part and not include_self_pairs:
                    continue
                if u.part == v.part:
                    # Self-pair across loop iterations.
                    if reach.exists_path(u.inst, v.inst):
                        orderings.append(Ordering(u, v))
                    continue
                # Two halves of the same RMW: atomic, never needs a fence.
                continue
            if reach.exists_path(u.inst, v.inst):
                orderings.append(Ordering(u, v))
    return OrderingSet(func, orderings)
