"""Tests for the static race detector (repro.races).

Covers the MHP thread structure (spawn reachability, barrier-phase
intervals, master-thread tid guards), the Eraser lockset analysis, the
detector's candidate pipeline (sync-read refinement, element
sensitivity, sync-runtime exclusion), and the explorer-backed verdict
machinery including the RACE002 missed-race path.
"""

import math

import pytest

from repro.engine.context import AnalysisContext
from repro.frontend import compile_source
from repro.races import (
    ThreadStructure,
    callees_of,
    compute_locksets,
    confirm_candidates,
    detect_races,
)

MP = """
global int flag;
global int data;

fn producer(tid) { data = 1; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""

SB = """
global int x;
global int y;

fn p1(tid) { local r1 = 0; x = 1; r1 = y; observe("r1", r1); }
fn p2(tid) { local r2 = 0; y = 1; r2 = x; observe("r2", r2); }

thread p1(0);
thread p2(1);
"""

# The three-thread handshake the static gate passes but the explorer
# breaks: the consumer's acquire can read the helper's flag write, so
# data is unordered. The canonical RACE002 / fuzz-seed shape.
BROKEN_HANDSHAKE = """
global int flag;
global int data;

fn producer(t) { data = 1; flag = 1; }
fn helper(t) { flag = 1; }
fn consumer(t) {
  local d = 0;
  while (flag == 0) { }
  d = data;
  observe("d", d);
}

thread producer(0);
thread helper(1);
thread consumer(2);
"""


def _context(source, name="test"):
    program = compile_source(source, name=name)
    return program, AnalysisContext(program)


# --- call graph / MHP --------------------------------------------------------


def test_callees_of_is_transitive_and_inclusive():
    source = """
    global int x;
    fn a(t) { b(t); }
    fn b(t) { c(t); }
    fn c(t) { x = 1; }
    fn unrelated(t) { x = 2; }
    thread a(0);
    """
    program = compile_source(source, name="chain")
    assert callees_of(program, "a") == frozenset({"a", "b", "c"})


def test_mhp_distinct_spawns_and_self_parallelism():
    program = compile_source(MP, name="mp")
    s = ThreadStructure(program)
    assert s.may_happen_in_parallel("producer", "consumer")
    assert not s.may_happen_in_parallel("producer", "producer")

    twice = compile_source(SB.replace("thread p2(1);", "thread p1(1);"),
                           name="twice")
    s2 = ThreadStructure(twice)
    assert s2.may_happen_in_parallel("p1", "p1")


def test_mhp_unreached_function_never_parallel():
    source = MP + "\nfn idle(tid) { data = 3; }\n"
    program = compile_source(source, name="idle")
    s = ThreadStructure(program)
    assert not s.may_happen_in_parallel("idle", "producer")
    assert "idle" not in s.executed_functions()


# --- barrier phases ----------------------------------------------------------

BARRIERED = """
global int _bar_count;
global int _bar_sense;
global int a;
global int b;

fn barrier_wait(n) {
  local my = 0;
  local arrived = 0;
  my = _bar_sense;
  arrived = fadd(&_bar_count, 1);
  if (arrived == n - 1) {
    _bar_count = 0;
    _bar_sense = 1 - my;
  } else {
    while (_bar_sense == my) { }
  }
}

fn phase0(tid) { a = tid; }
fn phase1(tid) { local r = 0; r = a; b = r; observe("r", r); }

fn worker(tid) {
  phase0(tid);
  barrier_wait(2);
  phase1(tid);
}

thread worker(0);
thread worker(1);
"""


def test_barrier_phases_order_cross_phase_accesses():
    program, ctx = _context(BARRIERED, "barriered")
    s = ThreadStructure(program)
    i0 = s.access_interval(0, "phase0", _first_access_uid(program, "phase0"))
    i1 = s.access_interval(1, "phase1", _first_access_uid(program, "phase1"))
    assert i0.hi < i1.lo  # phase0 completes before any phase1 access
    report = detect_races(program, ctx)
    # The phase0 write and phase1 read of a are barrier-separated...
    assert not any(
        {c.first.function, c.second.function} == {"phase0", "phase1"}
        for c in report.candidates
    )
    # ...while the same-phase self-race of phase0 (both threads store
    # a concurrently) is correctly kept.
    assert any(
        c.first.function == c.second.function == "phase0"
        for c in report.candidates
    )


def test_barrier_in_loop_widens_to_inf():
    source = BARRIERED.replace(
        "  phase0(tid);\n  barrier_wait(2);\n  phase1(tid);",
        "  local i = 0;\n  while (i < 3) {\n    phase0(tid);\n"
        "    barrier_wait(2);\n    i = i + 1;\n  }\n  phase1(tid);",
    )
    program, _ = _context(source, "loop-barrier")
    s = ThreadStructure(program)
    interval = s.access_interval(0, "phase1",
                                 _first_access_uid(program, "phase1"))
    assert interval.lo >= 0
    summary = s.barrier_summary("worker")
    assert summary.hi == math.inf  # the loop makes the count unbounded


def _first_access_uid(program, func_name):
    for inst in program.functions[func_name].instructions():
        if inst.is_memory_access() and inst.address_operand() is not None:
            points_to_local = str(inst.address_operand()).startswith("%")
            if not points_to_local or "@" in str(inst):
                return inst.uid
    raise AssertionError(f"no global access in {func_name}")


# --- tid guards --------------------------------------------------------------

MASTER_INIT = """
global int shared;

fn setup(tid) {
  if (tid == 0) {
    shared = 1;
  }
}

fn worker(tid) {
  setup(tid);
}

thread worker(0);
thread worker(1);
"""


def test_master_thread_guard_suppresses_self_race():
    program, ctx = _context(MASTER_INIT, "master")
    report = detect_races(program, ctx)
    assert report.candidates == ()


def test_unguarded_version_of_the_same_store_is_racy():
    source = MASTER_INIT.replace("if (tid == 0) {\n    shared = 1;\n  }",
                                 "shared = 1;")
    program, ctx = _context(source, "unguarded")
    report = detect_races(program, ctx)
    assert any(c.location == "shared" for c in report.candidates)


# --- locksets ----------------------------------------------------------------

LOCKED = """
global int lock;
global int counter;

fn lock_acquire(l) {
  local old = 1;
  old = cas(l, 0, 1);
  while (old != 0) {
    old = cas(l, 0, 1);
  }
}

fn lock_release(l) {
  *l = 0;
}

fn worker(tid) {
  lock_acquire(&lock);
  counter = counter + 1;
  lock_release(&lock);
}

thread worker(0);
thread worker(1);
"""


def test_locksets_protect_critical_section_accesses():
    program, ctx = _context(LOCKED, "locked")
    func = program.functions["worker"]
    locksets = compute_locksets(func, ctx.points_to(func))
    counter_sets = [
        held
        for inst in func.instructions()
        if inst.is_memory_access() and "counter" in str(inst.operands)
        for held in [locksets.get(inst.uid)]
        if held is not None
    ]
    report = detect_races(program, ctx)
    assert not any(c.location == "counter" for c in report.candidates)


def test_lock_runtime_internals_are_sync_accesses():
    program, ctx = _context(LOCKED, "locked")
    report = detect_races(program, ctx)
    # lock_release's *l = 0 is the release itself, never a candidate.
    assert not any(
        "lock_release" in (c.first.function, c.second.function)
        for c in report.candidates
    )


def test_locked_counter_survives_the_dynamic_sweep():
    """The lock cell is reached through a pointer, so it has no stable
    global name in sync_locations — the dynamic marking must still
    treat the CAS/release accesses as synchronization, or every
    correctly-locked program reports phantom RACE002 gaps."""
    program, ctx = _context(LOCKED, "locked")
    report = detect_races(program, ctx)
    assert report.candidates == ()
    verdicts = confirm_candidates(program, report)
    assert verdicts.missed == ()


def test_unlocked_counter_is_a_candidate():
    source = LOCKED.replace("  lock_acquire(&lock);\n", "").replace(
        "  lock_release(&lock);\n", ""
    )
    program, ctx = _context(source, "unlocked")
    report = detect_races(program, ctx)
    assert any(c.location == "counter" for c in report.candidates)


# --- element sensitivity -----------------------------------------------------

PARTITIONED = """
global int arr[8];

fn worker(tid) {
  arr[tid] = tid;
}

thread worker(0);
thread worker(1);
"""


def test_computed_array_indices_assumed_partitioned():
    program, ctx = _context(PARTITIONED, "partitioned")
    assert detect_races(program, ctx).candidates == ()


def test_same_constant_element_still_conflicts():
    source = PARTITIONED.replace("arr[tid] = tid;", "arr[3] = tid;")
    program, ctx = _context(source, "clash")
    report = detect_races(program, ctx)
    assert any(c.location == "arr" for c in report.candidates)


def test_distinct_constant_elements_are_disjoint():
    source = """
    global int arr[8];
    fn w0(tid) { arr[0] = 1; }
    fn w1(tid) { arr[1] = 2; }
    thread w0(0);
    thread w1(1);
    """
    program, ctx = _context(source, "disjoint")
    assert detect_races(program, ctx).candidates == ()


# --- sync-read refinement / detector end-to-end ------------------------------


def test_mp_gate_passes_via_sync_edge():
    program, ctx = _context(MP, "mp")
    report = detect_races(program, ctx)
    assert report.gate_passes
    assert "flag" in report.sync_locations


def test_null_variant_sees_the_raw_races():
    program, ctx = _context(MP, "mp")
    report = detect_races(program, ctx, variant="vanilla")
    assert not report.gate_passes  # no sync reads detected -> data races


def test_sb_candidates_confirmed_with_witnesses():
    program, ctx = _context(SB, "sb")
    report = detect_races(program, ctx)
    assert len(report.candidates) == 2
    verdicts = confirm_candidates(program, report)
    assert verdicts.complete
    for candidate in report.candidates:
        assert verdicts.verdict_of(candidate) == "confirmed"
        witness = verdicts.witnesses[candidate.key]
        assert "T0" in witness.rendering and "*" in witness.rendering


def test_dekker_precision_regression_all_refuted():
    """The z candidates are static false positives (the x/y protocol
    guards z under SC): the explorer must exhaustively refute all of
    them. If detector precision improves, this pins the new shape."""
    from repro.memmodel.litmus import LITMUS_TESTS

    program = compile_source(LITMUS_TESTS["dekker"].source, name="dekker")
    ctx = AnalysisContext(program)
    report = detect_races(program, ctx)
    assert len(report.candidates) == 3
    assert all(c.location == "z" for c in report.candidates)
    verdicts = confirm_candidates(program, report)
    assert verdicts.complete
    assert verdicts.witnesses == {}
    assert verdicts.missed == ()


def test_broken_handshake_is_a_detector_gap():
    program, ctx = _context(BROKEN_HANDSHAKE, "broken-handshake")
    report = detect_races(program, ctx)
    assert report.gate_passes  # the static gate is fooled
    verdicts = confirm_candidates(program, report)
    assert len(verdicts.missed) == 1
    miss = verdicts.missed[0]
    assert miss.location == "data"
    assert {f for f, _ in miss.pair} == {"producer", "consumer"}
