"""Unit tests for ordering generation (Section 4.3) and Table-I pruning."""

import pytest

from repro.analysis.escape import EscapeInfo
from repro.core.machine_models import OrderKind
from repro.core.orderings import Access, Ordering, generate_orderings, logical_accesses
from repro.core.pruning import keep_ordering, prune_orderings
from repro.core.signatures import Variant, detect_acquires
from repro.frontend import compile_source
from repro.util.orderedset import OrderedSet


def _orderings(src: str, fn: str = "f"):
    func = compile_source(src, "t").functions[fn]
    esc = EscapeInfo(func)
    return func, esc, generate_orderings(func, esc)


def test_straightline_pairs():
    func, esc, o = _orderings("global a; global b; fn f() { a = 1; b = 2; }")
    assert len(o) == 1
    assert o.orderings[0].kind is OrderKind.WW


def test_kind_classification():
    func, esc, o = _orderings(
        "global a; global b; fn f() { a = 1; local r = b; b = r; local s = a; }"
    )
    counts = o.count_by_kind()
    assert counts[OrderKind.WW] >= 1
    assert counts[OrderKind.WR] >= 1
    assert counts[OrderKind.RW] >= 1
    assert counts[OrderKind.RR] >= 1


def test_loop_generates_both_directions():
    src = "global a; global b; fn f() { local i = 0; while (i < 2) { a = b; i = i + 1; } }"
    func, esc, o = _orderings(src)
    kinds = {x.kind for x in o}
    # b read -> a write and a write -> b read (around the back edge)
    assert OrderKind.RW in kinds
    assert OrderKind.WR in kinds


def test_no_path_no_ordering():
    src = """
    global a; global b; global c;
    fn f() {
      if (c) { a = 1; } else { b = 2; }
    }
    """
    func, esc, o = _orderings(src)
    pairs = {
        (str(x.src.inst.addr), str(x.dst.inst.addr))
        for x in o
        if x.src.inst.is_store() and x.dst.inst.is_store()
    }
    assert ("@a", "@b") not in pairs
    assert ("@b", "@a") not in pairs


def test_rmw_expands_to_read_and_write():
    accesses = logical_accesses(
        compile_source(
            "global g; fn f() { local r = fadd(&g, 1); }", "t"
        ).functions["f"].memory_accesses()
    )
    rmw_parts = [a for a in accesses if a.inst.is_atomic_rmw()]
    assert [a.part for a in rmw_parts] == ["r", "w"]


def test_rmw_halves_not_ordered_against_each_other():
    func, esc, o = _orderings("global g; fn f() { local r = fadd(&g, 1); }")
    assert len(o) == 0  # single RMW: internal halves skipped


def test_rmw_orderings_against_other_accesses():
    func, esc, o = _orderings(
        "global g; global h; fn f() { local r = fadd(&g, 1); h = r; }"
    )
    kinds = sorted(x.kind.value for x in o)
    # rmw.r -> h.w and rmw.w -> h.w
    assert kinds == ["r->w", "w->w"]


def test_self_pairs_excluded_by_default():
    src = "global g; fn f() { local i = 0; while (i < 2) { g = g + 1; i = i + 1; } }"
    func = compile_source(src, "t").functions["f"]
    esc = EscapeInfo(func)
    without = generate_orderings(func, esc, include_self_pairs=False)
    with_self = generate_orderings(func, esc, include_self_pairs=True)
    assert len(with_self) > len(without)
    assert all(x.src.inst is not x.dst.inst or x.src.part != x.dst.part for x in without)


# --- pruning ---------------------------------------------------------------------


MP_CONSUMER = """
global int flag;
global int data;

fn f(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
}
"""


def test_prune_keeps_acquire_chains():
    func = compile_source(MP_CONSUMER, "t").functions["f"]
    esc = EscapeInfo(func)
    orderings = generate_orderings(func, esc)
    sync = detect_acquires(func, Variant.CONTROL).sync_reads
    pruned, stats = prune_orderings(orderings, sync)
    # flag read -> data read survives (r_acq -> r)
    assert any(
        x.kind is OrderKind.RR and str(x.src.inst.addr) == "@flag" for x in pruned
    )
    assert stats.total_after <= stats.total_before


def test_prune_drops_data_to_data_reads():
    src = """
    global a; global b; global flag;
    fn f() {
      local r1 = a;    // data read (no branch, no address use)
      local r2 = b;    // data read
      while (flag == 0) { }
    }
    """
    func = compile_source(src, "t").functions["f"]
    esc = EscapeInfo(func)
    orderings = generate_orderings(func, esc)
    sync = detect_acquires(func, Variant.CONTROL).sync_reads
    pruned, _ = prune_orderings(orderings, sync)
    for x in pruned:
        if x.kind is OrderKind.RR:
            assert x.src.inst in sync  # only acquire-sourced r->r survive


def test_prune_always_keeps_into_writes():
    # every ordering into a write is kept (all writes are releases)
    func = compile_source(
        "global a; global b; fn f() { local r = a; b = r; }", "t"
    ).functions["f"]
    esc = EscapeInfo(func)
    orderings = generate_orderings(func, esc)
    pruned, stats = prune_orderings(orderings, OrderedSet())  # no acquires at all
    assert stats.after[OrderKind.RW] == stats.before[OrderKind.RW]
    assert stats.after[OrderKind.WW] == stats.before[OrderKind.WW]


def test_prune_wr_requires_acquire_target():
    func = compile_source(
        "global a; global b; fn f() { a = 1; local r = b; }", "t"
    ).functions["f"]
    esc = EscapeInfo(func)
    orderings = generate_orderings(func, esc)
    no_acq, _ = prune_orderings(orderings, OrderedSet())
    assert all(x.kind is not OrderKind.WR for x in no_acq)
    # making the read an acquire keeps the w->r
    read = list(esc.escaping_reads)[0]
    with_acq, _ = prune_orderings(orderings, OrderedSet([read]))
    assert any(x.kind is OrderKind.WR for x in with_acq)


def test_keep_ordering_rmw_write_half_always_kept():
    src = "global g; global l; fn f() { g = 1; local r = fadd(&l, 1); }"
    func = compile_source(src, "t").functions["f"]
    esc = EscapeInfo(func)
    orderings = generate_orderings(func, esc)
    # g.w -> rmw.w is into a release: kept without any acquires
    pruned, _ = prune_orderings(orderings, OrderedSet())
    assert any(
        x.dst.part == "w" and x.dst.inst.is_atomic_rmw() for x in pruned
    )


def test_pensieve_marking_prunes_nothing():
    func = compile_source(MP_CONSUMER, "t").functions["f"]
    esc = EscapeInfo(func)
    orderings = generate_orderings(func, esc)
    pruned, stats = prune_orderings(orderings, esc.escaping_reads)
    assert stats.total_after == stats.total_before


def test_pruned_is_subset():
    func = compile_source(MP_CONSUMER, "t").functions["f"]
    esc = EscapeInfo(func)
    orderings = generate_orderings(func, esc)
    sync = detect_acquires(func, Variant.CONTROL).sync_reads
    pruned, _ = prune_orderings(orderings, sync)
    base = {(id(x.src.inst), x.src.part, id(x.dst.inst), x.dst.part) for x in orderings}
    sub = {(id(x.src.inst), x.src.part, id(x.dst.inst), x.dst.part) for x in pruned}
    assert sub <= base


# --- RMW and self-pair branches of generate_orderings ----------------------


LOOPED_RMW = """
global g;
fn f() {
  local i = 0;
  while (i < 4) {
    local r = fadd(&g, 1);
    i = i + 1;
  }
}
"""


def test_self_pairs_in_loop_generate_loop_carried_orderings():
    src = "global g; fn f() { local i = 0; while (i < 2) { g = g + 1; i = i + 1; } }"
    func = compile_source(src, "t").functions["f"]
    esc = EscapeInfo(func)
    with_self = generate_orderings(func, esc, include_self_pairs=True)
    self_pairs = [
        x for x in with_self
        if x.src.inst is x.dst.inst and x.src.part == x.dst.part
    ]
    # The loop body reads and writes g: both accesses reach their own
    # next dynamic instance around the back edge.
    assert {x.kind for x in self_pairs} == {OrderKind.RR, OrderKind.WW}


def test_self_pairs_require_a_cycle():
    func = compile_source(
        "global g; fn f() { g = 1; local r = g; }", "t"
    ).functions["f"]
    esc = EscapeInfo(func)
    with_self = generate_orderings(func, esc, include_self_pairs=True)
    without = generate_orderings(func, esc, include_self_pairs=False)
    # Straight-line code: no access reaches itself, so self-pair mode
    # adds nothing.
    assert len(with_self) == len(without)


def test_rmw_halves_excluded_even_with_self_pairs():
    func = compile_source(LOOPED_RMW, "t").functions["f"]
    esc = EscapeInfo(func)
    with_self = generate_orderings(func, esc, include_self_pairs=True)
    # The two halves of one RMW are never ordered against each other —
    # hardware atomicity orders them — not even as a loop-carried
    # r-half -> w-half pair.
    assert not any(
        x.src.inst is x.dst.inst and x.src.part != x.dst.part for x in with_self
    )


def test_rmw_self_pairs_per_half_in_loop():
    func = compile_source(LOOPED_RMW, "t").functions["f"]
    esc = EscapeInfo(func)
    with_self = generate_orderings(func, esc, include_self_pairs=True)
    rmw_self = [
        x for x in with_self
        if x.src.inst is x.dst.inst and x.src.inst.is_atomic_rmw()
    ]
    # Each half self-pairs with its own next-iteration instance only.
    assert {(x.src.part, x.dst.part) for x in rmw_self} == {("r", "r"), ("w", "w")}


# --- weighted surviving-fraction aggregation --------------------------------


def test_surviving_fraction_vacuous_function():
    from repro.core.pruning import PruneStats

    empty = PruneStats(
        before={k: 0 for k in OrderKind}, after={k: 0 for k in OrderKind}
    )
    assert empty.is_vacuous
    assert empty.surviving_fraction == 1.0


def test_aggregate_surviving_fraction_ignores_vacuous_functions():
    from repro.core.pruning import PruneStats, aggregate_surviving_fraction

    def stats(before_rr, after_rr):
        before = {k: 0 for k in OrderKind}
        after = {k: 0 for k in OrderKind}
        before[OrderKind.RR] = before_rr
        after[OrderKind.RR] = after_rr
        return PruneStats(before=before, after=after)

    empty = stats(0, 0)
    half = stats(10, 5)
    # An unweighted mean of per-function fractions would give 0.75;
    # the empty function must carry no weight.
    assert aggregate_surviving_fraction([empty, half]) == 0.5
    # Weighted by ordering count, not averaged per function.
    assert aggregate_surviving_fraction([stats(90, 90), stats(10, 0)]) == 0.9
    # Nothing anywhere to prune: vacuously all survived.
    assert aggregate_surviving_fraction([empty, empty]) == 1.0
    assert aggregate_surviving_fraction([]) == 1.0


def test_program_analysis_surviving_fraction_weighted():
    from repro.core.pipeline import PipelineVariant, analyze_program
    from repro.core.pruning import aggregate_surviving_fraction
    from repro.programs import get_program

    analysis = analyze_program(
        get_program("fft").compile(), PipelineVariant.CONTROL
    )
    expected = aggregate_surviving_fraction(
        fa.prune_stats for fa in analysis.functions.values()
    )
    assert analysis.surviving_fraction == expected
    assert 0.0 < analysis.surviving_fraction < 1.0
