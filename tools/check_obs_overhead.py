#!/usr/bin/env python
"""CI gate: the disabled tracer's no-op path costs <2% of bench_query.

The contract (`repro.obs.trace.span` with no tracer installed = one
module-global read + one shared-singleton return) is what lets the
instrumentation live inside the query engine's hot lookup path. This
tool checks it against the real workload, robustly under CI noise:

1. measure the per-call cost of a *disabled* ``span()`` (minimum over
   repeated tight batches — the minimum filters scheduler noise);
2. run ``benchmarks/bench_query.py``'s suite once with tracing
   *enabled* and read the tracer's span-start counter: that is exactly
   how many ``span()`` calls the disabled run would have made;
3. assert ``per_call x spans`` is under 2% of the suite's measured
   cold time.

Comparing a derived product against a measured total avoids the
classic flaky A/B timing comparison on shared CI runners.

    PYTHONPATH=src python tools/check_obs_overhead.py
"""

from __future__ import annotations

import importlib.util
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs import trace as obs_trace  # noqa: E402

#: Ceiling on disabled-tracer overhead, as a fraction of cold time.
BUDGET = 0.02


def _load_bench():
    spec = importlib.util.spec_from_file_location(
        "bench_query", ROOT / "benchmarks" / "bench_query.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def measure_disabled_span_cost(reps: int = 200_000, batches: int = 5) -> float:
    """Per-call seconds for ``span()`` with no tracer installed."""
    assert not obs_trace.enabled(), "tracer must be off for this measurement"
    span = obs_trace.span
    best = float("inf")
    for _ in range(batches):
        start = time.perf_counter()
        for _ in range(reps):
            span("overhead.probe", cat="bench")
        best = min(best, time.perf_counter() - start)
    return best / reps


def main() -> int:
    bench = _load_bench()

    per_call = measure_disabled_span_cost()

    tracer = obs_trace.enable()
    try:
        result = bench.run_suite()
    finally:
        obs_trace.disable()

    spans = tracer.started
    cold_s = result["totals"]["cold_s"]
    overhead_s = per_call * spans
    fraction = overhead_s / cold_s if cold_s > 0 else 0.0

    print(f"disabled span() cost: {per_call * 1e9:.1f} ns/call")
    print(f"span sites hit by one suite run: {spans}")
    print(f"projected disabled-path overhead: {overhead_s * 1e3:.3f} ms")
    print(f"suite cold time: {cold_s:.3f} s")
    print(f"overhead fraction: {fraction:.5f} (budget {BUDGET})")
    if fraction >= BUDGET:
        print(
            f"FAIL: disabled-tracer overhead {fraction:.2%} exceeds "
            f"{BUDGET:.0%} of bench_query cold time",
            file=sys.stderr,
        )
        return 1
    print("ok: disabled-tracer no-op path is within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
