"""Lint-pipeline benchmarks: cold vs warm over the whole corpus.

Measures what the query-backed race detector buys a long-lived
session: a cold ``repro lint`` of every corpus program computes the
whole fact/race subgraph; a warm re-lint of the same programs through
the same :class:`~repro.api.Session` must be pure memo hits.

Runs two ways: under pytest-benchmark like the other bench modules, or
as a script emitting the machine-readable trajectory artifact::

    PYTHONPATH=src python benchmarks/bench_lint.py --out BENCH_lint.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import LintRequest, ProgramSpec, Session  # noqa: E402
from repro.programs import all_programs  # noqa: E402


def _lint(session: Session, name: str) -> tuple[float, dict, object]:
    start = time.perf_counter()
    report = session.lint(
        LintRequest(
            program=ProgramSpec.corpus(name), confirm=False, stats=True
        )
    )
    elapsed = time.perf_counter() - start
    stats = report.cache_stats
    return elapsed, {"hits": stats.hits, "misses": stats.misses}, report


def run_suite() -> dict:
    """Cold then warm lint passes over every corpus program."""
    session = Session(parallel=False)
    per_program = []
    totals = {
        "cold_s": 0.0, "warm_s": 0.0,
        "cold_misses": 0, "warm_misses": 0, "warm_hits": 0,
        "findings": 0,
    }
    for name in sorted(all_programs()):
        cold_s, cold, cold_report = _lint(session, name)
        warm_s, warm, warm_report = _lint(session, name)
        assert warm_report.findings == cold_report.findings
        per_program.append({
            "program": name,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "cold_misses": cold["misses"],
            "warm_misses": warm["misses"],
            "warm_hits": warm["hits"],
            "findings": len(cold_report.findings),
            "warnings": cold_report.warnings,
            "errors": cold_report.errors,
        })
        totals["cold_s"] += cold_s
        totals["warm_s"] += warm_s
        totals["cold_misses"] += cold["misses"]
        totals["warm_misses"] += warm["misses"]
        totals["warm_hits"] += warm["hits"]
        totals["findings"] += len(cold_report.findings)

    speedup = (
        totals["cold_s"] / totals["warm_s"] if totals["warm_s"] else 0.0
    )
    return {
        "corpus_programs": len(per_program),
        "totals": totals,
        "warm_speedup": speedup,
        "per_program": per_program,
    }


# --- pytest-benchmark entry point --------------------------------------------


def test_lint_cold_vs_warm(benchmark, report_sink):
    report = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    totals = report["totals"]
    assert totals["warm_misses"] == 0  # a warm re-lint recomputes nothing
    assert totals["warm_hits"] > 0
    report_sink.setdefault("lint", "Lint pipeline, 17-program corpus:")
    report_sink["lint"] += (
        f"\n  cold : {totals['cold_s'] * 1000:7.1f}ms"
        f"  ({totals['cold_misses']} computes, "
        f"{totals['findings']} findings)"
        f"\n  warm : {totals['warm_s'] * 1000:7.1f}ms"
        f"  ({totals['warm_hits']} hits, {totals['warm_misses']} computes, "
        f"{report['warm_speedup']:.0f}x)"
    )


# --- script entry point ------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_lint.json",
                        help="output artifact path (default BENCH_lint.json)")
    args = parser.parse_args(argv)

    report = run_suite()
    Path(args.out).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    totals = report["totals"]
    print(
        f"{report['corpus_programs']} programs: "
        f"cold {totals['cold_s']:.3f}s ({totals['cold_misses']} computes), "
        f"warm {totals['warm_s']:.3f}s ({totals['warm_hits']} hits, "
        f"{totals['warm_misses']} computes, {report['warm_speedup']:.0f}x)"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
