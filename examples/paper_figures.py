"""Regenerate every table and figure of the paper's evaluation.

One command reproduces Table II, Figs 7-10, and the Fig. 2 worked
example, printing paper-shaped tables and ASCII bar charts with the
paper's reported aggregates alongside. Takes ~20s (the Fig. 10 pass
simulates 17 programs x 4 fence placements).

Run:  python examples/paper_figures.py
"""

import time

from repro.experiments import run_all


def main() -> None:
    start = time.time()
    report = run_all()
    print(report.render())
    print(f"\n[all experiments regenerated in {time.time() - start:.1f}s]")


if __name__ == "__main__":
    main()
