"""Control-flow graph utilities over finalized functions.

Ordering generation (paper Section 4.3) precomputes a block-level
reachability lookup table from the CFG and queries it for every access
pair; dominators and loop detection support the verifier, the fence
minimizer, and the experiments' CFG statistics.
"""

from __future__ import annotations

from typing import Iterable

from repro.ir.function import Function


class CFG:
    """Successor/predecessor maps plus derived structure for one function."""

    def __init__(self, func: Function) -> None:
        self.function = func
        self.succ: dict[str, tuple[str, ...]] = {}
        self.pred: dict[str, tuple[str, ...]] = {}
        pred_acc: dict[str, list[str]] = {b.label: [] for b in func.blocks}
        for block in func.blocks:
            succs = block.successor_labels()
            for s in succs:
                if s not in pred_acc:
                    raise ValueError(
                        f"{func.name}: branch to unknown block {s!r} from {block.label!r}"
                    )
            self.succ[block.label] = succs
            for s in succs:
                pred_acc[s].append(block.label)
        self.pred = {label: tuple(ps) for label, ps in pred_acc.items()}
        self._reachable: dict[str, frozenset[str]] | None = None
        self._dominators: dict[str, frozenset[str]] | None = None

    # --- reachability ------------------------------------------------------
    def reachable_from(self, label: str) -> frozenset[str]:
        """Labels reachable from ``label`` by one or more CFG edges.

        Note this is *proper* reachability: a block reaches itself only
        if it lies on a cycle. Intra-block "paths" are statement order
        and handled separately by the ordering generator.
        """
        if self._reachable is None:
            self._reachable = self._compute_reachability()
        return self._reachable[label]

    def reaches(self, src: str, dst: str) -> bool:
        return dst in self.reachable_from(src)

    def _compute_reachability(self) -> dict[str, frozenset[str]]:
        # Iterative DFS per block; function CFGs in this project are
        # small (tens of blocks), so O(V * E) is fine and simple.
        result: dict[str, frozenset[str]] = {}
        for start in self.succ:
            seen: set[str] = set()
            stack = list(self.succ[start])
            while stack:
                label = stack.pop()
                if label in seen:
                    continue
                seen.add(label)
                stack.extend(self.succ[label])
            result[start] = frozenset(seen)
        return result

    # --- dominators ----------------------------------------------------------
    def dominators(self) -> dict[str, frozenset[str]]:
        """Classic iterative dominator sets (entry dominates everything)."""
        if self._dominators is not None:
            return self._dominators
        blocks = [b.label for b in self.function.blocks]
        if not blocks:
            return {}
        entry = blocks[0]
        all_blocks = frozenset(blocks)
        dom: dict[str, frozenset[str]] = {label: all_blocks for label in blocks}
        dom[entry] = frozenset([entry])
        changed = True
        while changed:
            changed = False
            for label in blocks:
                if label == entry:
                    continue
                preds = self.pred[label]
                if preds:
                    new = frozenset.intersection(*(dom[p] for p in preds))
                else:
                    # Unreachable block: only itself.
                    new = frozenset()
                new = new | {label}
                if new != dom[label]:
                    dom[label] = new
                    changed = True
        self._dominators = dom
        return dom

    # --- loops -----------------------------------------------------------------
    def back_edges(self) -> list[tuple[str, str]]:
        """CFG edges (u, v) where v dominates u (natural-loop back edges)."""
        dom = self.dominators()
        edges = []
        for u, succs in self.succ.items():
            for v in succs:
                if v in dom.get(u, frozenset()):
                    edges.append((u, v))
        return edges

    def blocks_in_cycles(self) -> frozenset[str]:
        """Blocks that can reach themselves (lie on some CFG cycle)."""
        return frozenset(
            label for label in self.succ if label in self.reachable_from(label)
        )

    def natural_loop(self, back_edge: tuple[str, str]) -> frozenset[str]:
        """Body of the natural loop of ``(tail, header)``."""
        tail, header = back_edge
        body = {header, tail}
        stack = [tail]
        while stack:
            label = stack.pop()
            for p in self.pred[label]:
                if p not in body:
                    body.add(p)
                    stack.append(p)
        return frozenset(body)

    # --- orderings over blocks ----------------------------------------------
    def reverse_postorder(self) -> list[str]:
        """Reverse postorder from the entry (standard dataflow order)."""
        seen: set[str] = set()
        order: list[str] = []

        entry = self.function.entry.label
        # Iterative postorder DFS.
        stack: list[tuple[str, Iterable[str]]] = [(entry, iter(self.succ[entry]))]
        seen.add(entry)
        while stack:
            label, it = stack[-1]
            advanced = False
            for s in it:
                if s not in seen:
                    seen.add(s)
                    stack.append((s, iter(self.succ[s])))
                    advanced = True
                    break
            if not advanced:
                order.append(label)
                stack.pop()
        order.reverse()
        return order

    def unreachable_blocks(self) -> frozenset[str]:
        entry = self.function.entry.label
        reachable = {entry} | set(self.reachable_from(entry))
        return frozenset(set(self.succ) - reachable)


