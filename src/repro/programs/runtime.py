"""Shared mini-C runtime: spin lock and sense-reversing barrier.

The SPLASH-2 models synchronize mostly "by library calls to locks and
barriers" (paper Section 5.3); these are those library kernels. They
are concatenated into each model's source, so the analysis sees them as
ordinary functions — exactly as Pensieve sees pthread-free user-level
synchronization.

The lock is a CAS test-and-set with a test-and-test-and-set spin; the
barrier is a global-sense sense-reversing barrier over a fetch-and-add
counter. Both expose textbook control acquires (the spin conditions).
"""

LOCK_LIB = """
fn lock_acquire(l) {
  local old = 1;
  old = cas(l, 0, 1);
  while (old != 0) {
    while (*l != 0) { }
    old = cas(l, 0, 1);
  }
}

fn lock_release(l) {
  *l = 0;
}
"""

# Callers pass the thread count; the last arrival resets and flips sense.
BARRIER_LIB = """
global int _bar_count;
global int _bar_sense;

fn barrier_wait(n) {
  local my = 0;
  local arrived = 0;
  my = _bar_sense;
  arrived = fadd(&_bar_count, 1);
  if (arrived == n - 1) {
    _bar_count = 0;
    _bar_sense = 1 - my;
  } else {
    while (_bar_sense == my) { }
  }
}
"""

RUNTIME_LIB = LOCK_LIB + BARRIER_LIB


def with_runtime(source: str, lock: bool = True, barrier: bool = True) -> str:
    """Prepend the requested runtime kernels to a program source."""
    parts = []
    if lock:
        parts.append(LOCK_LIB)
    if barrier:
        parts.append(BARRIER_LIB)
    parts.append(source)
    return "\n".join(parts)
