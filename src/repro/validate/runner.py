"""Budgeted fuzzing runs: the {seed x shape x variant x model} matrix.

One :class:`FuzzCase` bundles everything a worker needs — the seed and
shape select a generated program deterministically, so only plain data
crosses the process boundary in either direction. Cases fan out over
:func:`repro.engine.batch.budgeted_parallel_map`; the wall-clock budget
is checked between chunks, so ``--budget`` bounds a run without
tearing down mid-case work.

Surfaced as ``python -m repro fuzz`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

from repro.engine.batch import budgeted_parallel_map
from repro.validate.generator import SHAPES, generate_program
from repro.registry.models import weak_model_keys
from repro.registry.variants import detection_variant_keys, trusted_variant_keys
from repro.validate.oracle import (
    OracleReport,
    run_oracle,
    tso_breaks_unfenced,
)
from repro.validate.shrink import shrink_counterexample, to_litmus_snippet


@dataclass(frozen=True)
class FuzzCase:
    """One unit of fuzzing work: a generated program on one model."""

    seed: int
    shape: str
    model: str = "x86-tso"
    #: () = the live trusted set at execution time.
    variants: tuple[str, ...] = ()
    max_states: int = 1_000_000
    shrink: bool = True


@dataclass(frozen=True)
class ViolationRecord:
    """One soundness violation, shrunk and ready to promote."""

    seed: int
    shape: str
    model: str
    variant: str
    source: str  # shrunk (or original, when shrinking is disabled)
    source_lines: int
    snippet: str
    shrink_checks: int


@dataclass(frozen=True)
class FuzzCaseResult:
    """Everything one case produced, reduced to plain data."""

    seed: int
    shape: str
    model: str
    name: str
    threads: int
    source_lines: int
    elapsed: float
    report: OracleReport | None = None
    violations: tuple[ViolationRecord, ...] = ()
    error: str | None = None

    def to_payload(self) -> dict:
        payload = {
            "seed": self.seed,
            "shape": self.shape,
            "model": self.model,
            "name": self.name,
            "threads": self.threads,
            "source_lines": self.source_lines,
            "elapsed": self.elapsed,
            "error": self.error,
            "report": asdict(self.report) if self.report is not None else None,
            "violations": [asdict(v) for v in self.violations],
        }
        return payload


def execute_fuzz_case(case: FuzzCase) -> FuzzCaseResult:
    """Generate, check, and (on violation) shrink one case.

    Top-level and exception-tight so a bad generated program turns
    into a recorded error instead of poisoning the whole pool run.
    """
    start = time.perf_counter()
    program = None
    try:
        program = generate_program(case.seed, case.shape)
        report = run_oracle(
            program.source,
            program.name,
            variants=case.variants or None,
            model=case.model,
            sync_globals=program.sync_globals,
            max_states=case.max_states,
        )
        violations = []
        for verdict in report.violations:
            if case.shrink:
                shrunk = shrink_counterexample(
                    program.source,
                    program.name,
                    verdict.variant,
                    case.model,
                    program.sync_globals,
                    max_states=case.max_states,
                )
                source, checks = shrunk.source, shrunk.checks
            else:
                source, checks = program.source, 0
            # Stamp the snippet with the *emitted* source's own TSO
            # verdict: shrinking (or finding the violation on PSO) can
            # leave the original report's flag wrong for this source.
            breaks_tso = tso_breaks_unfenced(
                source, program.name, case.max_states
            )
            violations.append(
                ViolationRecord(
                    seed=case.seed,
                    shape=case.shape,
                    model=case.model,
                    variant=verdict.variant,
                    source=source,
                    source_lines=sum(
                        1 for line in source.splitlines() if line.strip()
                    ),
                    snippet=to_litmus_snippet(
                        f"{program.name}-{verdict.variant}",
                        source,
                        program.sync_globals,
                        description=f"shrunk fuzzer counterexample: "
                        f"{verdict.variant} placement misses a needed "
                        f"fence on {case.model}",
                        tso_breaks_unfenced=(
                            breaks_tso
                            if breaks_tso is not None
                            else report.weak_breaks_unfenced
                        ),
                        notes=f"shape {case.shape}, seed {case.seed}",
                    ),
                    shrink_checks=checks,
                )
            )
        return FuzzCaseResult(
            seed=case.seed,
            shape=case.shape,
            model=case.model,
            name=program.name,
            threads=program.threads,
            source_lines=program.source_lines,
            elapsed=time.perf_counter() - start,
            report=report,
            violations=tuple(violations),
        )
    except Exception as exc:  # noqa: BLE001 - worker robustness boundary
        return FuzzCaseResult(
            seed=case.seed,
            shape=case.shape,
            model=case.model,
            name=program.name if program is not None else "",
            threads=program.threads if program is not None else 0,
            source_lines=program.source_lines if program is not None else 0,
            elapsed=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )


@dataclass
class FuzzReport:
    """Aggregate result of one fuzzing run."""

    seeds: int
    shapes: tuple[str, ...]
    variants: tuple[str, ...]
    models: tuple[str, ...]
    budget: float | None
    cases: list[FuzzCaseResult] = field(default_factory=list)
    cases_skipped: int = 0  # budget ran out before these were dispatched
    budget_exhausted: bool = False
    used_pool: bool = False
    wall: float = 0.0

    @property
    def violations(self) -> list[ViolationRecord]:
        return [v for case in self.cases for v in case.violations]

    @property
    def errors(self) -> list[FuzzCaseResult]:
        return [case for case in self.cases if case.error is not None]

    @property
    def incomplete(self) -> list[FuzzCaseResult]:
        return [
            case
            for case in self.cases
            if case.report is not None and not case.report.complete
        ]

    def variant_summary(self) -> dict[str, dict]:
        """Per-variant soundness and precision aggregates."""
        summary: dict[str, dict] = {
            v: {
                "checked": 0,
                "violations": 0,
                "restored_sc": 0,
                "full_fences": 0,
                "fences_saved": 0,
            }
            for v in self.variants
        }
        for case in self.cases:
            if case.report is None:
                continue
            for verdict in case.report.verdicts:
                row = summary[verdict.variant]
                row["checked"] += 1
                row["violations"] += 1 if verdict.violation else 0
                row["restored_sc"] += 1 if verdict.restores_sc else 0
                row["full_fences"] += verdict.full_fences
                row["fences_saved"] += verdict.fences_saved
        for row in summary.values():
            row["mean_fences_saved"] = (
                row["fences_saved"] / row["checked"] if row["checked"] else 0.0
            )
        return summary

    def to_payload(self) -> dict:
        """The machine-readable surface (``fuzz --json``)."""
        return {
            "config": {
                "seeds": self.seeds,
                "shapes": list(self.shapes),
                "variants": list(self.variants),
                "models": list(self.models),
                "budget": self.budget,
            },
            "summary": {
                "cases_run": len(self.cases),
                "cases_skipped_for_budget": self.cases_skipped,
                "errors": len(self.errors),
                "incomplete": len(self.incomplete),
                "budget_exhausted": self.budget_exhausted,
                "used_pool": self.used_pool,
                "wall_seconds": self.wall,
                "violations": len(self.violations),
                "variants": self.variant_summary(),
            },
            "violations": [asdict(v) for v in self.violations],
            "cases": [case.to_payload() for case in self.cases],
        }


def run_fuzz(
    seeds: int,
    shapes: tuple[str, ...] = SHAPES,
    variants: tuple[str, ...] | None = None,
    models: tuple[str, ...] = ("x86-tso",),
    budget: float | None = None,
    jobs: int | None = None,
    parallel: bool = True,
    shrink: bool = True,
    max_states: int = 1_000_000,
) -> FuzzReport:
    """Run the {seed x shape x variant x model} matrix, budget-bounded.

    Case order is deterministic (seed-major), so two runs with the same
    arguments check the same programs — the budget only decides how far
    down the list a run gets.
    """
    if variants is None:  # default: the live trusted set
        variants = trusted_variant_keys()
    for shape in shapes:
        if shape not in SHAPES:
            raise KeyError(
                f"unknown shape {shape!r}; known: {', '.join(SHAPES)}"
            )
    # Validated against the live registry (not an import-time snapshot)
    # so detectors registered after import are fuzzable immediately.
    known_variants = detection_variant_keys()
    for variant in variants:
        if variant not in known_variants:
            raise KeyError(
                f"unknown variant {variant!r}; "
                f"known: {', '.join(known_variants)}"
            )
    for model in models:
        if model not in weak_model_keys():
            raise KeyError(
                f"unknown model {model!r}; known: {', '.join(weak_model_keys())}"
            )
    cases = [
        FuzzCase(
            seed=seed,
            shape=shape,
            model=model,
            variants=tuple(variants),
            max_states=max_states,
            shrink=shrink,
        )
        for seed in range(seeds)
        for shape in shapes
        for model in models
    ]
    start = time.perf_counter()
    results, exhausted, used_pool = budgeted_parallel_map(
        execute_fuzz_case,
        cases,
        budget=budget,
        max_workers=jobs,
        parallel=parallel,
    )
    return FuzzReport(
        seeds=seeds,
        shapes=tuple(shapes),
        variants=tuple(variants),
        models=tuple(models),
        budget=budget,
        cases=results,
        cases_skipped=len(cases) - len(results),
        budget_exhausted=exhausted,
        used_pool=used_pool,
        wall=time.perf_counter() - start,
    )
