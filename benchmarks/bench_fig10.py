"""Regenerates Fig. 10: normalized execution time on the timed TSO machine.

This is the heavy benchmark: 17 programs x 4 fence placements, each
simulated to completion (~15s total).
"""

from repro.experiments import fig10


def test_fig10(benchmark, programs, report_sink):
    result = benchmark.pedantic(
        fig10.run, args=(programs,), rounds=1, iterations=1
    )
    assert len(result.rows) == 17

    # The paper's headline shape: manual <= Control <= A+C <= Pensieve.
    g_pen = result.geomean("pensieve")
    g_ac = result.geomean("address+control")
    g_ctl = result.geomean("control")
    assert g_ctl <= g_ac <= g_pen
    assert g_pen > 1.5  # Pensieve pays heavily
    assert g_ctl < 1.6  # Control stays near manual

    # Control's speedup over Pensieve: the paper reports 30% average
    # and up to 2.64x (Matrix).
    matrix = next(r for r in result.rows if r.program == "matrix")
    assert matrix.cycles["pensieve"] / matrix.cycles["control"] > 1.8

    report_sink["fig10"] = fig10.render(result)
