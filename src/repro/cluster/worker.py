"""One analysis worker: a process owning a warm, thread-safe Session.

A worker dials the frontend's internal listener, introduces itself
with a ``hello`` frame (worker id + shared-secret token + pid), then
serves framed requests strictly in order — the frontend relies on
FIFO response matching, and a single-threaded loop per process is the
whole point: the GIL stops costing anything once every worker has its
own interpreter.

Request frames carry the exact JSON-lines payloads clients send, and
responses are produced by the same
:class:`~repro.serve.server.ServeDispatcher` the threaded daemon uses
— so cluster-path reports are byte-identical to one-shot CLI reports
by construction, not by re-implementation.

``run_worker`` is transport-agnostic (any connected socket), so tests
drive a worker in-process over a socketpair; ``worker_main`` is the
thin subprocess entry around it.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import signal
import socket
from typing import Any

import repro
from repro.cluster.protocol import (
    MAX_FRAME,
    FrameDecodeError,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.obs import trace as obs_trace

#: Fork keeps worker start-up at milliseconds on POSIX; spawn is the
#: portable fallback (every ``worker_main`` argument is picklable).
START_METHOD = (
    "fork"
    if "fork" in multiprocessing.get_all_start_methods()
    else "spawn"
)


def _error_response(message: str) -> dict:
    return {"ok": False, "id": None, "error": message}


class WorkerLoop:
    """The framed request loop around one dispatcher."""

    def __init__(
        self,
        worker_id: int,
        session_config: dict[str, Any] | None = None,
        artifact_dir: str | None = None,
        max_frame: int = MAX_FRAME,
        trace_enabled: bool = False,
        slow_query: float | None = None,
    ) -> None:
        from repro.api.session import Session
        from repro.serve.server import ServeDispatcher

        config = dict(session_config or {})
        if config.get("query_cache_dir") is None:
            # Point the session's persistent query cache at the shared
            # artifact store so siblings warm-start each other.
            config["query_cache_dir"] = artifact_dir
        self.worker_id = worker_id
        self.max_frame = max_frame
        if trace_enabled:
            obs_trace.enable()
        if slow_query is not None:
            obs_trace.SLOW_QUERIES.threshold = slow_query
        self.dispatcher = ServeDispatcher(Session(**config))
        # Session construction may have buffered spans; drop them so the
        # first request's response frame ships only its own spans.
        tracer = obs_trace.active()
        if tracer is not None:
            tracer.drain()

    def handle_frame(self, frame: dict) -> dict:
        """Answer one decoded frame with one response frame."""
        kind = frame.get("t")
        if kind == "op":
            return {"t": "res", "payload": self._handle_op(frame)}
        if kind == "req":
            payload = frame.get("payload")
            trace_id = frame.get("trace")
            scope = obs_trace.request_scope(
                trace_id if isinstance(trace_id, str) else None
            )
            with scope, obs_trace.span(
                "worker.dispatch", cat="worker", worker=self.worker_id
            ):
                if not isinstance(payload, dict):
                    response = _error_response("'payload' must be a JSON object")
                else:
                    response, _stop = self.dispatcher.handle_line(
                        json.dumps(payload)
                    )
            out = {"t": "res", "payload": response}
            tracer = obs_trace.active()
            if tracer is not None:
                # The loop is single-threaded, so everything buffered
                # since the last drain belongs to this request.
                out["spans"] = tracer.drain()
            return out
        return {
            "t": "res",
            "payload": _error_response(f"unknown frame type {kind!r}"),
        }

    def _handle_op(self, frame: dict) -> dict:
        op = frame.get("op")
        if op == "ping":
            return {
                "ok": True,
                "pong": True,
                "worker": self.worker_id,
                "pid": os.getpid(),
                "version": repro.__version__,
            }
        if op == "stats":
            try:
                session_stats = self.dispatcher.session.stats()
            except Exception as exc:  # noqa: BLE001 - same daemon
                # boundary as the dispatcher: stats must never kill the
                # worker loop.
                detail = exc.args[0] if exc.args else exc
                return _error_response(f"{type(exc).__name__}: {detail}")
            return {
                "ok": True,
                "worker": self.worker_id,
                "pid": os.getpid(),
                "served": self.dispatcher.served,
                "errors": self.dispatcher.errors,
                "session": session_stats,
            }
        if op == "metrics":
            try:
                metrics = self.dispatcher.metrics_payload()
            except Exception as exc:  # noqa: BLE001 - same daemon
                # boundary: a metrics scrape must never kill the loop.
                detail = exc.args[0] if exc.args else exc
                return _error_response(f"{type(exc).__name__}: {detail}")
            return {
                "ok": True,
                "worker": self.worker_id,
                "pid": os.getpid(),
                "metrics": metrics,
                "slow_queries": obs_trace.SLOW_QUERIES.entries(),
            }
        return _error_response(f"unknown worker op {op!r}")

    def serve(self, sock: socket.socket) -> int:
        """Serve frames until EOF (the frontend closing the link is the
        graceful-shutdown signal) or an unrecoverable framing error."""
        while True:
            try:
                frame = recv_frame(sock, self.max_frame)
            except FrameDecodeError as exc:
                # The stream is still in sync: answer and keep serving.
                send_frame(
                    sock,
                    {"t": "res", "payload": _error_response(str(exc))},
                    self.max_frame,
                )
                continue
            except ProtocolError:
                return 1  # framing broke; no way to resynchronize
            if frame is None:
                return 0
            try:
                send_frame(sock, self.handle_frame(frame), self.max_frame)
            except (ConnectionError, OSError):
                return 0  # frontend went away mid-response


def run_worker(
    sock: socket.socket,
    worker_id: int,
    session_config: dict[str, Any] | None = None,
    artifact_dir: str | None = None,
    max_frame: int = MAX_FRAME,
    trace_enabled: bool = False,
    slow_query: float | None = None,
) -> int:
    """Build a session and serve one connected frontend link."""
    loop = WorkerLoop(
        worker_id,
        session_config,
        artifact_dir,
        max_frame,
        trace_enabled=trace_enabled,
        slow_query=slow_query,
    )
    return loop.serve(sock)


def worker_main(
    worker_id: int,
    host: str,
    port: int,
    token: str,
    session_config: dict[str, Any] | None,
    artifact_dir: str | None,
    trace_enabled: bool = False,
    slow_query: float | None = None,
) -> int:  # pragma: no cover - subprocess entry (loop covered in-process)
    # The frontend owns signal-driven shutdown: it drains and then
    # closes the link (EOF) or, past the deadline, terminates us.
    # Reacting to a fleet-wide SIGINT/SIGTERM here would kill workers
    # mid-request before the frontend's drain finishes.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    sock = socket.create_connection((host, port), timeout=30)
    sock.settimeout(None)
    send_frame(
        sock,
        {"t": "hello", "worker": worker_id, "token": token, "pid": os.getpid()},
    )
    try:
        return run_worker(
            sock,
            worker_id,
            session_config,
            artifact_dir,
            trace_enabled=trace_enabled,
            slow_query=slow_query,
        )
    finally:
        with contextlib.suppress(OSError):
            sock.close()


def spawn_worker(
    worker_id: int,
    host: str,
    port: int,
    token: str,
    session_config: dict[str, Any] | None,
    artifact_dir: str | None,
    trace_enabled: bool = False,
    slow_query: float | None = None,
) -> multiprocessing.process.BaseProcess:
    """Start one worker process dialing back to the frontend."""
    ctx = multiprocessing.get_context(START_METHOD)
    process = ctx.Process(
        target=worker_main,
        args=(
            worker_id, host, port, token, session_config, artifact_dir,
            trace_enabled, slow_query,
        ),
        name=f"repro-cluster-worker-{worker_id}",
        daemon=True,  # never outlive a crashed frontend
    )
    process.start()
    return process
