"""Whole-corpus batch-engine benchmarks.

Tracks the wall-clock of analyzing the full 17-program registry through
the batch engine — the number the paper's "practical compiler pass"
pitch lives or dies on — plus the marginal value of the process pool
and the content-keyed result cache.
"""

import pytest

from repro.core.pipeline import PipelineVariant
from repro.engine.batch import BatchRunner, ResultCache


def _fence_totals(results):
    return {(r.program, r.variant): r.full_fences for r in results}


def test_batch_corpus_serial(benchmark, report_sink):
    """All 17 programs × Control, deterministic serial path."""

    def run():
        return BatchRunner(parallel=False).run_matrix(
            variants=[PipelineVariant.CONTROL]
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(results) == 17
    report_sink.setdefault("batch-corpus", "Batch engine, 17-program corpus:")
    report_sink["batch-corpus"] += (
        f"\n  serial   : {sum(r.elapsed for r in results):.2f}s analysis time"
    )


def test_batch_corpus_parallel(benchmark, report_sink):
    """Same matrix through the process pool; results must match serial."""
    serial = BatchRunner(parallel=False).run_matrix(
        variants=[PipelineVariant.CONTROL]
    )

    def run():
        return BatchRunner(parallel=True).run_matrix(
            variants=[PipelineVariant.CONTROL]
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert _fence_totals(results) == _fence_totals(serial)


def test_batch_full_matrix(benchmark):
    """17 programs × 3 variants — the whole-corpus experiment sweep."""

    def run():
        return BatchRunner().run_matrix(variants=list(PipelineVariant))

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(results) == 51


def test_batch_cache_hit(benchmark, tmp_path):
    """A warm disk cache turns the corpus sweep into pure lookups."""
    cache = ResultCache(tmp_path)
    BatchRunner(parallel=False, cache=cache).run_matrix(
        variants=[PipelineVariant.CONTROL]
    )

    def rerun():
        return BatchRunner(parallel=False, cache=cache).run_matrix(
            variants=[PipelineVariant.CONTROL]
        )

    results = benchmark(rerun)
    assert all(r.cached for r in results)
