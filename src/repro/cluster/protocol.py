"""Length-prefixed JSON framing for the frontend <-> worker links.

Client connections speak the historical JSON-lines protocol; the
internal links between the async frontend and its analysis workers use
binary frames instead — a 4-byte big-endian length followed by a JSON
object — so payloads may embed newlines (fenced IR, mini-C sources)
without escaping games, and a reader always knows exactly how many
bytes one message occupies.

Two failure severities matter to callers:

* :class:`FrameDecodeError` — the frame was *delimited* correctly but
  its body is not a JSON object. The stream is still in sync (exactly
  ``length`` bytes were consumed), so a server may answer an error and
  keep going.
* :class:`ProtocolError` (the base) — framing itself broke: an
  oversized length word or a truncated body. There is no way back in
  sync; the connection must be dropped.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

_HEADER = struct.Struct(">I")

#: Upper bound on one frame body; a length word beyond this is treated
#: as stream corruption, not an allocation request.
MAX_FRAME = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """Fatal framing breakage: the stream cannot be resynchronized."""


class FrameDecodeError(ProtocolError):
    """A well-delimited frame whose body is not a JSON object; the
    stream is intact and the peer may be answered."""


def frame_bytes(payload: dict, max_frame: int = MAX_FRAME) -> bytes:
    """Serialize one frame (header + key-sorted JSON body)."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(body) > max_frame:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {max_frame}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except ValueError as exc:
        raise FrameDecodeError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise FrameDecodeError("frame body must be a JSON object")
    return payload


# --- blocking (worker-side) transport ------------------------------------
def send_frame(sock: socket.socket, payload: dict,
               max_frame: int = MAX_FRAME) -> None:
    sock.sendall(frame_bytes(payload, max_frame))


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on a clean EOF at byte 0,
    ``ProtocolError`` on EOF mid-message."""
    chunks: list[bytes] = []
    got = 0
    while got < count:
        try:
            chunk = sock.recv(count - got)
        except (ConnectionError, OSError):
            chunk = b""
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(f"stream ended {count - got} bytes short")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, max_frame: int = MAX_FRAME) -> dict | None:
    """Read one frame; ``None`` on clean EOF between frames."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise ProtocolError(
            f"frame length {length} exceeds the {max_frame}-byte limit"
        )
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise ProtocolError("stream ended before the frame body")
    return _decode_body(body)


# --- asyncio (frontend-side) transport -----------------------------------
async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
) -> dict | None:
    """Async twin of :func:`recv_frame` over a stream reader."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("stream ended inside a frame header") from None
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise ProtocolError(
            f"frame length {length} exceeds the {max_frame}-byte limit"
        )
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        raise ProtocolError("stream ended before the frame body") from None
    return _decode_body(body)
