"""The memory-model and explorer catalogs.

A :class:`ModelEntry` ties a hardware :class:`MemoryModel` description
(which ordering kinds need fences) to the exhaustive state-space
explorer that implements the same semantics, replacing the
``MODELS``-dict plumbing in the CLI and the oracle's private
``WEAK_EXPLORERS`` table. Explorers are themselves a registry so a new
machine model can ship its explorer without touching any surface:
register the explorer class, register a :class:`ModelEntry` naming it,
and ``repro check``/``repro fuzz`` accept the new ``--model`` key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.machine_models import MODELS as _MACHINE_MODELS, MemoryModel
from repro.memmodel.pso import PSOExplorer
from repro.memmodel.relaxed import ARMExplorer, POWERExplorer
from repro.memmodel.sc import SCExplorer
from repro.memmodel.tso import TSOExplorer
from repro.registry.core import Registry

#: Exhaustive state-space explorers by machine key. ``sc`` is the
#: reference semantics every weak model is differenced against.
EXPLORERS: Registry[type] = Registry("explorer")
EXPLORERS.register("sc", SCExplorer)
EXPLORERS.register("x86-tso", TSOExplorer)
EXPLORERS.register("pso", PSOExplorer)
EXPLORERS.register("arm", ARMExplorer)
EXPLORERS.register("power", POWERExplorer)


@dataclass(frozen=True)
class ModelEntry:
    """One registered hardware memory model."""

    key: str
    model: MemoryModel
    #: Short human label used in report rendering ("TSO + control: ...").
    display: str
    #: :data:`EXPLORERS` key of the exhaustive explorer implementing
    #: this model's semantics; None = fence placement only, no
    #: model-checking support (e.g. RMO).
    explorer: str | None = None
    #: The reference semantics (SC) that weak models are differenced
    #: against. A reference model is never "checkable" — there is
    #: nothing to difference it from — regardless of its key, so a
    #: backend-registered reference cannot masquerade as weak.
    is_reference: bool = False
    #: :mod:`repro.arch` backend key whose fence flavors/costs price
    #: this model's placements; None = no flavored lowering.
    arch: str | None = None
    description: str = ""

    @property
    def checkable(self) -> bool:
        """Can this model be differenced against SC (weak explorer)?"""
        return self.explorer is not None and not self.is_reference

    def explorer_cls(self) -> type:
        if self.explorer is None:
            raise KeyError(
                f"no weak-memory explorer for model {self.key!r}; "
                f"known: {', '.join(weak_model_keys())}"
            )
        return EXPLORERS.get(self.explorer)


MODELS: Registry[ModelEntry] = Registry("model")


def register_model(entry: ModelEntry) -> ModelEntry:
    return MODELS.register(entry.key, entry)


register_model(
    ModelEntry(
        key="sc",
        model=_MACHINE_MODELS["sc"],
        display="SC",
        explorer="sc",
        is_reference=True,
        description="Sequential consistency: every ordering enforced; "
        "the reference semantics.",
    )
)
register_model(
    ModelEntry(
        key="x86-tso",
        model=_MACHINE_MODELS["x86-tso"],
        display="TSO",
        explorer="x86-tso",
        arch="x86",
        description="x86-TSO: FIFO store buffers relax w->r only.",
    )
)
register_model(
    ModelEntry(
        key="pso",
        model=_MACHINE_MODELS["pso"],
        display="PSO",
        explorer="pso",
        arch="x86",
        description="SPARC PSO: per-address store buffers additionally "
        "relax w->w (priced with the x86 flavor catalog as a stand-in).",
    )
)
register_model(
    ModelEntry(
        key="rmo",
        model=_MACHINE_MODELS["rmo"],
        display="RMO",
        explorer=None,
        description="RMO/weak: nothing enforced; fence placement only "
        "(no exhaustive explorer).",
    )
)
register_model(
    ModelEntry(
        key="arm",
        model=_MACHINE_MODELS["arm"],
        display="ARM",
        explorer="arm",
        arch="arm",
        description="ARMv7-style relaxed: all four kinds reorderable; "
        "bounded stale-read + grouped-store-buffer explorer.",
    )
)
register_model(
    ModelEntry(
        key="power",
        model=_MACHINE_MODELS["power"],
        display="POWER",
        explorer="power",
        arch="power",
        description="POWER: fully relaxed program order; flavored "
        "fence ISA (sync / lwsync / eieio).",
    )
)


def get_model(key: str) -> ModelEntry:
    return MODELS.get(key)


def model_keys() -> tuple[str, ...]:
    return MODELS.keys()


def weak_model_keys() -> tuple[str, ...]:
    """Models that can be differenced against SC — the ``repro check``
    and ``repro fuzz`` ``--model`` choice set."""
    return tuple(k for k, e in MODELS.items() if e.checkable)


def backend_for_model(key: str):
    """The :class:`~repro.arch.backend.ArchBackend` pricing ``key``'s
    placements, or None for models without a registered arch."""
    entry = get_model(key)
    if entry.arch is None:
        return None
    from repro.arch.backend import get_backend

    return get_backend(entry.arch)


def check_backend_for_model(key: str):
    """The backend differential checking should lower placements with.

    None unless the model's explorer *honors* fence flavors (gives a
    flavored fence its declared kill-set semantics, like the relaxed
    arm/power explorers). The TSO/PSO explorers treat every full fence
    as mfence-strength, so exploring flavored placements through them
    would validate flavor selections they cannot model — those models
    keep generic-FULL placements for checking and use their backend
    for cost reporting only.
    """
    entry = get_model(key)
    if entry.explorer is None:
        return None
    explorer_cls = EXPLORERS.get(entry.explorer)
    if not getattr(explorer_cls, "HONORS_FLAVORS", False):
        return None
    return backend_for_model(key)


def weak_explorer_for(key: str) -> tuple[type, MemoryModel]:
    """(explorer class, machine model) for a checkable model key.

    Raises ``KeyError('unknown model ...')`` for unregistered keys and
    ``KeyError('no weak-memory explorer ...')`` for registered models
    without exhaustive explorer coverage.
    """
    entry = get_model(key)
    if not entry.checkable:
        raise KeyError(
            f"no weak-memory explorer for model {key!r}; "
            f"known: {', '.join(weak_model_keys())}"
        )
    return entry.explorer_cls(), entry.model
