"""Tests for the demand-driven query engine (repro.query)."""

import threading

import pytest

from repro.core.signatures import Variant
from repro.engine.context import AnalysisContext
from repro.frontend import compile_source
from repro.ir.instructions import Observe
from repro.ir.values import Constant
from repro.query import (
    QUERIES,
    QueryEngine,
    QuerySpec,
    fingerprint_function,
)
from repro.query.facts import FACT_QUERIES
from repro.registry.core import Registry

SRC = """
global int flag;
global int data;

fn producer(tid) { data = 1; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""


@pytest.fixture
def program():
    return compile_source(SRC, "qe")


def edit_in_place(func):
    """A real single-function IR edit: content fingerprint changes."""
    func.blocks[0].insert(0, Observe("__probe__", Constant(0)))
    func.finalize()


def test_all_fact_kinds_are_registered_queries():
    import repro.query  # noqa: F401  (registration side effect)

    for name in FACT_QUERIES:
        assert name in QUERIES
    assert set(FACT_QUERIES) <= set(QUERIES.keys())


def test_dependency_edges_recorded_during_evaluation(program):
    ctx = AnalysisContext(program)
    consumer = program.functions["consumer"]
    ctx.escape_info(consumer)
    deps = ctx.engine.deps_of("escape_info", consumer)
    assert ("points_to", consumer) in deps
    assert ("fn", consumer) in deps
    # acquires pulled its facts through the same engine.
    ctx.acquires(consumer, Variant.CONTROL)
    acq_deps = ctx.engine.deps_of("acquires", (consumer, Variant.CONTROL))
    assert ("points_to", consumer) in acq_deps
    assert ("fn", consumer) in acq_deps


def test_refresh_without_edit_evicts_nothing(program):
    ctx = AnalysisContext(program)
    consumer = program.functions["consumer"]
    fact = ctx.points_to(consumer)
    assert ctx.refresh() == ()
    assert ctx.engine.stats.evictions == 0
    assert ctx.points_to(consumer) is fact


def test_single_function_edit_invalidates_only_its_subgraph(program):
    ctx = AnalysisContext(program)
    producer = program.functions["producer"]
    consumer = program.functions["consumer"]
    for func in (producer, consumer):
        ctx.points_to(func)
        ctx.escape_info(func)
        ctx.reachability(func)
        ctx.acquires(func, Variant.CONTROL)
    sibling_points_to = ctx.points_to(producer)
    sibling_acquires = ctx.acquires(producer, Variant.CONTROL)

    edit_in_place(consumer)
    assert ctx.refresh() == ("consumer",)

    assert not ctx.engine.cached("points_to", consumer)
    assert not ctx.engine.cached("escape_info", consumer)
    assert not ctx.engine.cached("acquires", (consumer, Variant.CONTROL))
    # Sibling facts survive by identity.
    assert ctx.points_to(producer) is sibling_points_to
    assert ctx.acquires(producer, Variant.CONTROL) is sibling_acquires
    # The edited function recomputes fresh facts.
    assert ctx.points_to(consumer) is ctx.points_to(consumer)


def test_edit_invalidates_interprocedural_fixpoint(program):
    ctx = AnalysisContext(program)
    first = ctx.interprocedural(Variant.CONTROL)
    assert ctx.interprocedural(Variant.CONTROL) is first
    edit_in_place(program.functions["producer"])
    changed = ctx.refresh()
    assert changed == ("producer",)
    assert not ctx.engine.cached("interprocedural", Variant.CONTROL)
    second = ctx.interprocedural(Variant.CONTROL)
    assert second is not first
    assert {k: len(v) for k, v in second.acquires.items()} == {
        k: len(v) for k, v in first.acquires.items()
    }


def test_writers_cache_replaced_after_edit(program):
    ctx = AnalysisContext(program)
    consumer = program.functions["consumer"]
    writers = ctx.writers_cache(consumer)
    writers[1234] = []
    edit_in_place(consumer)
    ctx.refresh()
    fresh = ctx.writers_cache(consumer)
    assert fresh is not writers and 1234 not in fresh


def test_invalidate_function_force_evicts(program):
    ctx = AnalysisContext(program)
    consumer = program.functions["consumer"]
    fact = ctx.points_to(consumer)
    ctx.invalidate_function(consumer)
    assert ctx.points_to(consumer) is not fact


def test_fingerprint_tracks_content_not_identity():
    a = compile_source(SRC, "a").functions["consumer"]
    b = compile_source(SRC, "b").functions["consumer"]
    assert a is not b
    assert fingerprint_function(a) == fingerprint_function(b)
    edit_in_place(b)
    assert fingerprint_function(a) != fingerprint_function(b)


def test_acquires_persist_across_engines(tmp_path):
    p1 = compile_source(SRC, "p1")
    ctx1 = AnalysisContext(p1, cache_dir=tmp_path)
    first = ctx1.acquires(p1.functions["consumer"], Variant.CONTROL)
    assert ctx1.engine.stats.by_query.get("acquires") == 1
    assert ctx1.engine.stats.restored == 0

    # A new engine (fresh compile, new Function objects, same content)
    # restores the persisted result instead of re-slicing.
    p2 = compile_source(SRC, "p2")
    ctx2 = AnalysisContext(p2, cache_dir=tmp_path)
    consumer2 = p2.functions["consumer"]
    restored = ctx2.acquires(consumer2, Variant.CONTROL)
    assert ctx2.engine.stats.restored == 1
    assert "acquires" not in ctx2.engine.stats.by_query
    assert [i.uid for i in restored.sync_reads] == [
        i.uid for i in first.sync_reads
    ]
    own = set(map(id, consumer2.instructions()))
    assert all(id(inst) in own for inst in restored.sync_reads)
    # Per-variant entries stay distinct on disk.
    ctx2.acquires(consumer2, Variant.ADDRESS_CONTROL)
    assert ctx2.engine.stats.by_query.get("acquires") == 1


def test_persisted_entry_still_invalidates_on_edit(tmp_path):
    program = compile_source(SRC, "p")
    ctx = AnalysisContext(program, cache_dir=tmp_path)
    consumer = program.functions["consumer"]
    ctx.acquires(consumer, Variant.CONTROL)
    edit_in_place(consumer)
    assert ctx.refresh() == ("consumer",)
    # The changed fingerprint keys a different disk entry: recompute.
    ctx.acquires(consumer, Variant.CONTROL)
    assert ctx.engine.stats.by_query.get("acquires") == 2
    assert ctx.engine.stats.restored == 0


def test_corrupt_persistent_entry_is_a_miss(tmp_path):
    program = compile_source(SRC, "p")
    ctx = AnalysisContext(program, cache_dir=tmp_path)
    ctx.acquires(program.functions["consumer"], Variant.CONTROL)
    for path in tmp_path.glob("acquires.*.json"):
        path.write_text("{corrupt", encoding="utf-8")
    fresh = AnalysisContext(compile_source(SRC, "p"), cache_dir=tmp_path)
    fresh.acquires(fresh.program.functions["consumer"], Variant.CONTROL)
    assert fresh.engine.stats.restored == 0
    assert fresh.engine.stats.by_query.get("acquires") == 1


def test_query_cycle_detected():
    registry = Registry("query")
    registry.register(
        "loop", QuerySpec(name="loop", compute=lambda e, k: e.get("loop", k))
    )
    engine = QueryEngine(registry=registry)
    with pytest.raises(RuntimeError, match="cycle"):
        engine.get("loop", 0)


def test_concurrent_lookups_compute_each_fact_once(program):
    ctx = AnalysisContext(program)
    funcs = list(program.functions.values())
    barrier = threading.Barrier(8)
    errors = []

    def worker():
        try:
            barrier.wait(timeout=10)
            for func in funcs:
                ctx.escape_info(func)
                ctx.acquires(func, Variant.ADDRESS_CONTROL)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    stats = ctx.engine.stats
    # One compute per (query, key); everything else hit the memo.
    assert stats.by_query["points_to"] == len(funcs)
    assert stats.by_query["escape_info"] == len(funcs)
    assert stats.by_query["acquires"] == len(funcs)


def test_engine_len_and_known_functions(program):
    ctx = AnalysisContext(program)
    assert len(ctx.engine) == 0
    consumer = program.functions["consumer"]
    ctx.points_to(consumer)
    assert len(ctx.engine) == 1
    assert consumer in ctx.engine.known_functions()
