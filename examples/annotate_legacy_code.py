"""The paper's alternative application (Section 1.3): DRF annotations.

Instead of inserting fences, use acquire detection to propose the
minimal C11-style ``memory_order_acquire`` / ``release`` annotations
that would make a legacy program data-race-free under a compliant
compiler — here on the Dekker-style kernel and the work-stealing deque.
The analysis flows through the :class:`repro.api.Session` facade.

Run:  python examples/annotate_legacy_code.py
"""

from repro.api import Session
from repro.core.annotations import render_annotations, suggest_annotations
from repro.programs.sync_kernels import SYNC_KERNELS


def main() -> None:
    session = Session(variant="address+control")
    for kernel_name in ("dekker", "chase-lev-wsq"):
        kernel = SYNC_KERNELS[kernel_name]
        program = kernel.compile()
        analysis = session.analysis(program)
        annotations = suggest_annotations(analysis)
        keep = [a for a in annotations if a.function in kernel.kernel_functions]
        print(f"\n### {kernel_name} ({kernel.citation})")
        print(render_annotations(keep))
        acquires = sum(1 for a in keep if a.order in ("acquire", "acq_rel"))
        releases = sum(1 for a in keep if a.order in ("release", "acq_rel"))
        print(f"-> {acquires} acquire-side, {releases} release-side annotations")


if __name__ == "__main__":
    main()
