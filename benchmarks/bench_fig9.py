"""Regenerates Fig. 9: full fences remaining on x86-TSO."""

from repro.experiments import fig9


def test_fig9(benchmark, programs, report_sink):
    result = benchmark.pedantic(
        fig9.run, args=(programs,), rounds=1, iterations=1
    )
    assert len(result.rows) == 17
    assert result.geomean_control < result.geomean_address_control < 1.0
    # Canneal is the paper's best case for Control ("89% reduction");
    # ours lands in the same regime.
    canneal = next(r for r in result.rows if r.program == "canneal")
    assert canneal.control_fraction < 0.4
    report_sink["fig9"] = fig9.render(result)
