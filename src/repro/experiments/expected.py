"""Paper-reported numbers, for comparison in reports and EXPERIMENTS.md.

All values are from the paper's Section 5 text (geometric means,
best/worst cases) — per-program bar heights are not tabulated in the
paper, so only the aggregates and named extremes are encoded.
"""

from __future__ import annotations

# --- Fig. 7: % of escaping reads marked acquire ---------------------------
FIG7_GEOMEAN_CONTROL = 0.18
FIG7_GEOMEAN_ADDRESS_CONTROL = 0.60
FIG7_BEST_CONTROL = ("water-nsquared", 0.07)
FIG7_WORST_CONTROL = ("raytrace", 0.33)
FIG7_BEST_ADDRESS_CONTROL = ("water-spatial", 0.39)

# --- Fig. 8: % of Pensieve orderings that survive pruning ----------------
FIG8_GEOMEAN_CONTROL = 0.34
FIG8_GEOMEAN_ADDRESS_CONTROL = 0.68

# --- Fig. 9: % of Pensieve's full fences still placed (x86-TSO) ----------
FIG9_GEOMEAN_CONTROL = 0.38
FIG9_GEOMEAN_ADDRESS_CONTROL = 0.73
FIG9_BEST_CONTROL = ("canneal", 0.11)  # "89% reduction"

# --- Fig. 10: execution time normalized to manual placement --------------
FIG10_GEOMEAN_PENSIEVE = 1.94
FIG10_GEOMEAN_ADDRESS_CONTROL = 1.69
FIG10_GEOMEAN_CONTROL = 1.44
FIG10_MATRIX_PENSIEVE = 5.84
FIG10_BEST_CONTROL_SPEEDUP = ("matrix", 2.64)  # Control vs Pensieve
FIG10_BEST_AC_SPEEDUP = ("water-spatial", 1.42)  # A+C vs Pensieve

# --- Section 5.3: expert manual fence counts -------------------------------
MANUAL_FENCES = {
    "canneal": 10,
    "fmm": 6,
    "volrend": 2,
    "matrix": 6,
    "spanningtree": 5,
}

# --- Fig. 2 worked example -------------------------------------------------
FIG2_DELAY_SET_FENCES = 5
FIG2_PRUNED_FENCES = 2
