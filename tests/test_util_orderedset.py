"""Unit tests for the deterministic ordered set."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.orderedset import OrderedSet


def test_insertion_order_preserved():
    s = OrderedSet([3, 1, 2])
    assert list(s) == [3, 1, 2]


def test_duplicates_keep_first_position():
    s = OrderedSet([1, 2, 1, 3, 2])
    assert list(s) == [1, 2, 3]


def test_add_and_contains():
    s = OrderedSet()
    assert 5 not in s
    s.add(5)
    assert 5 in s
    assert len(s) == 1


def test_discard_missing_is_noop():
    s = OrderedSet([1])
    s.discard(2)
    assert list(s) == [1]


def test_remove_missing_raises():
    with pytest.raises(KeyError):
        OrderedSet([1]).remove(2)


def test_pop_first_is_fifo():
    s = OrderedSet([4, 5, 6])
    assert s.pop_first() == 4
    assert s.pop_first() == 5
    assert list(s) == [6]


def test_pop_first_empty_raises():
    with pytest.raises(StopIteration):
        OrderedSet().pop_first()


def test_update_extends_in_order():
    s = OrderedSet([1])
    s.update([2, 1, 3])
    assert list(s) == [1, 2, 3]


def test_union_does_not_mutate():
    a = OrderedSet([1, 2])
    b = a.union([3])
    assert list(a) == [1, 2]
    assert list(b) == [1, 2, 3]


def test_intersection_preserves_left_order():
    a = OrderedSet([3, 1, 2])
    assert list(a.intersection([2, 3])) == [3, 2]


def test_difference():
    a = OrderedSet([1, 2, 3])
    assert list(a.difference([2])) == [1, 3]


def test_operators():
    a = OrderedSet([1, 2])
    b = OrderedSet([2, 3])
    assert set(a | b) == {1, 2, 3}
    assert set(a & b) == {2}
    assert set(a - b) == {1}


def test_equality_with_set():
    assert OrderedSet([1, 2]) == {2, 1}
    assert OrderedSet([1]) != {1, 2}


def test_issubset():
    assert OrderedSet([1, 2]).issubset([1, 2, 3])
    assert not OrderedSet([4]).issubset([1, 2])


def test_bool():
    assert not OrderedSet()
    assert OrderedSet([0])


def test_unhashable():
    with pytest.raises(TypeError):
        hash(OrderedSet())


@given(st.lists(st.integers()))
def test_matches_dict_fromkeys_semantics(items):
    s = OrderedSet(items)
    assert list(s) == list(dict.fromkeys(items))


@given(st.lists(st.integers()), st.lists(st.integers()))
def test_union_matches_set_union(a, b):
    assert set(OrderedSet(a).union(b)) == set(a) | set(b)


@given(st.lists(st.integers()), st.lists(st.integers()))
def test_difference_matches_set_difference(a, b):
    assert set(OrderedSet(a).difference(b)) == set(a) - set(b)
