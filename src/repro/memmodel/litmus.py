"""Litmus tests from the paper (Figs 1, 4, 5, 6) plus TSO classics.

Each test carries its source, the set of global names the programmer
*intends* as synchronization variables (the ground-truth marking for
DRF checks), and whether unfenced x86-TSO execution exhibits non-SC
observations — the property the explorers verify in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend import compile_source
from repro.ir.function import Program


@dataclass(frozen=True)
class LitmusTest:
    """A named litmus program with its expected properties."""

    name: str
    description: str
    source: str
    # Global variables the programmer intends as synchronization.
    sync_globals: frozenset[str] = frozenset()
    # Is the program well-synchronized under the intended marking?
    well_synchronized: bool = True
    # Does unfenced TSO show observations SC cannot produce?
    tso_breaks_unfenced: bool = False
    # Which detection variants find all the intended acquires.
    notes: str = ""

    def compile(self, include_manual_fences: bool = False) -> Program:
        return compile_source(
            self.source, self.name, include_manual_fences=include_manual_fences
        )


MP = LitmusTest(
    name="mp",
    description="Message passing (paper Fig. 4): flag guards data via a "
    "spin loop; the flag read is a control acquire.",
    source="""
global int flag;
global int data;

fn producer(tid) {
  data = 1;
  flag = 1;
}

fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
""",
    sync_globals=frozenset({"flag"}),
    well_synchronized=True,
    tso_breaks_unfenced=False,  # TSO preserves w->w and r->r
    notes="control acquire on the flag read; safe on TSO even unfenced",
)


MP_POINTERS = LitmusTest(
    name="mp-pointers",
    description="Message passing through a pointer (paper Fig. 5): the "
    "read of y is a pure address acquire — no branch depends on it.",
    source="""
global int x;
global int z;
global int y = &z;

fn writer(tid) {
  x = 1;
  y = &x;
}

fn reader(tid) {
  local r = 0;
  local r1 = 0;
  r = y;
  r1 = *r;
  observe("r1", r1);
}

thread writer(0);
thread reader(1);
""",
    sync_globals=frozenset({"y"}),
    well_synchronized=True,
    tso_breaks_unfenced=False,
    notes="address acquire only: detected by Address+Control, missed by Control",
)


DEKKER = LitmusTest(
    name="dekker",
    description="Dekker-style mutual exclusion attempt (paper Fig. 6): "
    "each thread writes its flag then checks the other's; both reads "
    "are control acquires and the w->r orderings need mfences on TSO.",
    source="""
global int x;
global int y;
global int z;

fn left(tid) {
  local r = 0;
  x = 1;
  r = y;
  if (r == 0) {
    z = z + 1;
    observe("in", 1);
  }
}

fn right(tid) {
  local r = 0;
  y = 1;
  r = x;
  if (r == 0) {
    z = z + 1;
    observe("in", 1);
  }
}

thread left(0);
thread right(1);
""",
    sync_globals=frozenset({"x", "y"}),
    well_synchronized=True,  # z is guarded by the x/y protocol under SC
    tso_breaks_unfenced=True,  # both threads can enter without fences
    notes="w->r delay in each thread; the canonical TSO violation",
)


SB = LitmusTest(
    name="sb",
    description="Store buffering: racy by design; both threads can read "
    "0 under TSO but not under SC. The loads feed only observations, so "
    "they are not acquires and the paper's approach (correctly, per its "
    "contract) does not fence them.",
    source="""
global int x;
global int y;

fn p1(tid) {
  local r1 = 0;
  x = 1;
  r1 = y;
  observe("r1", r1);
}

fn p2(tid) {
  local r2 = 0;
  y = 1;
  r2 = x;
  observe("r2", r2);
}

thread p1(0);
thread p2(1);
""",
    sync_globals=frozenset(),
    well_synchronized=False,  # the x/y accesses race
    tso_breaks_unfenced=True,
    notes="not legacy-DRF: pruning drops the w->r orderings; Pensieve keeps them",
)


BENIGN_RACES = LitmusTest(
    name="benign-races",
    description="The relaxation-solver shape of paper Fig. 1(b): "
    "unsynchronized accesses by design; no acquires exist and no "
    "orderings need enforcement.",
    source="""
global int x;
global int y;

fn p1(tid) {
  local l1 = 0;
  x = 7;
  l1 = y;
  observe("l1", l1);
}

fn p2(tid) {
  local l2 = 0;
  y = 9;
  l2 = x;
  observe("l2", l2);
}

thread p1(0);
thread p2(1);
""",
    sync_globals=frozenset(),
    well_synchronized=False,
    tso_breaks_unfenced=True,
    notes="identical shape to SB; included under the paper's Fig 1(b) framing",
)


LB = LitmusTest(
    name="lb",
    description="Load buffering: forbidden outcome (both threads read 1) "
    "is impossible under both SC and TSO; a sanity check that the TSO "
    "explorer does not over-relax.",
    source="""
global int x;
global int y;

fn p1(tid) {
  local r1 = 0;
  r1 = x;
  y = 1;
  observe("r1", r1);
}

fn p2(tid) {
  local r2 = 0;
  r2 = y;
  x = 1;
  observe("r2", r2);
}

thread p1(0);
thread p2(1);
""",
    sync_globals=frozenset(),
    well_synchronized=False,
    tso_breaks_unfenced=False,  # TSO forbids r->w reordering
    notes="TSO == SC outcome sets here",
)


MP_STALE = LitmusTest(
    name="mp-stale",
    description="MP without the spin loop: the consumer may read data "
    "before the producer writes; well-synchronized it is not. Used to "
    "exercise race detection under the intended-marking check.",
    source="""
global int flag;
global int data;

fn producer(tid) {
  data = 1;
  flag = 1;
}

fn consumer(tid) {
  local r = 0;
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
""",
    sync_globals=frozenset({"flag"}),
    well_synchronized=False,
    tso_breaks_unfenced=False,
    notes="data race on data under any marking that keeps it a data access",
)


IRIW = LitmusTest(
    name="iriw",
    description="Independent reads of independent writes: two writers, "
    "two readers observing them in opposite orders. x86-TSO is "
    "multi-copy atomic, so TSO forbids the disagreement just like SC — "
    "a sanity check that the TSO explorer's store buffers are local.",
    source="""
global int x;
global int y;

fn w1(tid) { x = 1; }
fn w2(tid) { y = 1; }

fn r1(tid) {
  local a = 0;
  local b = 0;
  a = x;
  b = y;
  observe("a", a);
  observe("b", b);
}

fn r2(tid) {
  local c = 0;
  local d = 0;
  c = y;
  d = x;
  observe("c", c);
  observe("d", d);
}

thread w1(0);
thread w2(1);
thread r1(2);
thread r2(3);
""",
    sync_globals=frozenset(),
    well_synchronized=False,
    tso_breaks_unfenced=False,  # multi-copy atomicity: TSO == SC here
    notes="4 threads; the classic non-MCA shape that TSO still forbids",
)


MP_CHAIN = LitmusTest(
    name="mp-chain",
    description="Two-hop message passing: source hands two slots to a "
    "relay, which computes derived values into two more slots for a "
    "sink. Roughly 3x the state space of plain MP — the exploration "
    "core's scaling workload (and the BENCH_explore.json MP-class "
    "entry).",
    source="""
global int slot0;
global int slot1;
global int slot2;
global int slot3;
global int flag01;
global int flag12;
global int out;

fn source(tid) {
  slot0 = 11;
  slot1 = 22;
  flag01 = 1;
}

fn relay(tid) {
  local a = 0;
  local b = 0;
  while (flag01 == 0) { }
  a = slot0;
  b = slot1;
  slot2 = a + b;
  slot3 = a - b;
  flag12 = 1;
}

fn sink(tid) {
  local r = 0;
  local s = 0;
  while (flag12 == 0) { }
  r = slot2;
  s = slot3;
  out = r - s;
  observe("r", r);
  observe("s", s);
}

thread source(0);
thread relay(1);
thread sink(2);
""",
    sync_globals=frozenset({"flag01", "flag12"}),
    well_synchronized=True,
    tso_breaks_unfenced=False,  # w->w and r->r stay ordered on TSO
    notes="breaks on pso/arm/power (store reordering past the flags)",
)


DEKKER_SCOREBOARD = LitmusTest(
    name="dekker-scoreboard",
    description="Dekker with per-thread progress tallies written around "
    "the critical section: the extra non-sync stores multiply the "
    "buffer interleavings (~4x dekker's TSO state space) without "
    "changing the protocol. The exploration core's dekker-class "
    "scaling workload.",
    source="""
global int x;
global int y;
global int z;
global int tally0;
global int tally1;

fn left(tid) {
  local r = 0;
  tally0 = 1;
  x = 1;
  r = y;
  if (r == 0) {
    z = z + 1;
    tally0 = 2;
    observe("in", 1);
  }
}

fn right(tid) {
  local r = 0;
  tally1 = 1;
  y = 1;
  r = x;
  if (r == 0) {
    z = z + 1;
    tally1 = 2;
    observe("in", 1);
  }
}

thread left(0);
thread right(1);
""",
    sync_globals=frozenset({"x", "y"}),
    well_synchronized=True,
    tso_breaks_unfenced=True,  # both threads can enter, like dekker
    notes="w->r delays need mfences; vanilla (no acquires) misses them",
)


LITMUS_TESTS: dict[str, LitmusTest] = {
    t.name: t
    for t in (
        MP,
        MP_POINTERS,
        DEKKER,
        SB,
        BENIGN_RACES,
        LB,
        MP_STALE,
        IRIW,
        MP_CHAIN,
        DEKKER_SCOREBOARD,
    )
}


def sync_marking_for_globals(program: Program, sync_globals):
    """Trace-action predicate marking the named globals as sync vars.

    Shared by the corpus tests (via :func:`sync_marking_for`) and the
    differential validator, whose generated programs carry their
    intended marking as a plain set of global names.
    """
    from repro.memmodel.interpreter import GlobalLayout

    layout = GlobalLayout(program)
    ranges = []
    for name in sync_globals:
        base = layout.base[name]
        ranges.append((base, base + program.globals[name].size))

    def predicate(action) -> bool:
        return any(lo <= action.addr < hi for lo, hi in ranges)

    return predicate


def sync_marking_for(test: LitmusTest, program: Program):
    """Trace-action predicate for the test's intended sync globals."""
    return sync_marking_for_globals(program, test.sync_globals)
