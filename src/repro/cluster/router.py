"""Consistent-hash shard routing: program names -> workers.

Warm analysis state is worker-local — each worker owns one
:class:`~repro.api.session.Session` whose compiled-program LRU and
query-engine memos make repeat/edited requests for a program cheap.
The router's job is to keep every program name pinned to one worker so
those caches actually get hit, while disturbing as few assignments as
possible when the worker set changes (death, restart).

A classic consistent-hash ring does exactly that: each worker
contributes ``replicas`` pseudo-random points on a 64-bit circle, and
a key routes to the first point clockwise from its own hash. Removing
a worker reassigns only the keys that pointed at its points; every
other program keeps its warm shard.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable


def _hash64(text: str) -> int:
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring over hashable node ids (worker slots)."""

    def __init__(self, nodes: Iterable[Hashable] = (), replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: list[int] = []  # sorted point hashes
        self._owners: dict[int, Hashable] = {}  # point hash -> node
        self._nodes: set[Hashable] = set()
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._nodes

    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    def _node_points(self, node: Hashable) -> list[int]:
        return [
            _hash64(f"{node!r}#{replica}") for replica in range(self.replicas)
        ]

    def add(self, node: Hashable) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for point in self._node_points(node):
            # Collisions between 64-bit points are astronomically rare;
            # last-add-wins keeps the structure consistent if one lands.
            if point not in self._owners:
                bisect.insort(self._points, point)
            self._owners[point] = node

    def remove(self, node: Hashable) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        for point in self._node_points(node):
            if self._owners.get(point) == node:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                if index < len(self._points) and self._points[index] == point:
                    del self._points[index]

    def locate(self, key: str) -> Hashable | None:
        """The node owning ``key``, or ``None`` on an empty ring."""
        if not self._points:
            return None
        point = _hash64(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap around the circle
        return self._owners[self._points[index]]


def routing_key(payload: dict) -> str | None:
    """The shard key of one request payload, or ``None`` when the
    request is not program-addressed (batch/fuzz sweep the corpus and
    may run on any worker).

    Routing is by *program identity* — the spec's name (or path, or a
    source digest as a last resort) — NOT by content: an edited source
    resent under the same name must land on the worker holding the
    warm context so the splice-and-refresh path does its job.
    """
    program = payload.get("program")
    if not isinstance(program, dict):
        return None
    for field in ("name", "path"):
        value = program.get(field)
        if isinstance(value, str) and value:
            return value
    source = program.get("source")
    if isinstance(source, str):
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]
        return f"inline:{digest}"
    return None
