"""Entry point for ``python -m repro``."""

import sys

from repro.cli import main

# The guard matters: spawn-start-method process pools (macOS/Windows)
# re-import this module in every worker; an unguarded sys.exit(main())
# would recursively re-run the CLI command there.
if __name__ == "__main__":
    sys.exit(main())
