"""A minimal WheelFile: a ZipFile that maintains a PEP 376 RECORD."""

from __future__ import annotations

import base64
import hashlib
import os
import re
import stat
import zipfile

_WHEEL_NAME_RE = re.compile(
    r"^(?P<name>[^\s-]+?)-(?P<ver>[^\s-]+?)"
    r"(-(?P<build>\d[^\s-]*))?-(?P<pyver>[^\s-]+?)"
    r"-(?P<abi>[^\s-]+?)-(?P<plat>[^\s-]+?)\.whl$"
)


def _urlsafe_b64_nopad(digest: bytes) -> str:
    return base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")


class WheelFile(zipfile.ZipFile):
    """Supports the subset of wheel.wheelfile.WheelFile that setuptools'
    ``editable_wheel`` command uses: write/writestr/write_files plus
    RECORD generation on close."""

    def __init__(self, file, mode="r", compression=zipfile.ZIP_DEFLATED):
        basename = os.path.basename(str(file))
        match = _WHEEL_NAME_RE.match(basename)
        if match is None:
            raise ValueError(f"bad wheel filename: {basename!r}")
        self.parsed_filename = match
        self.dist_info_path = f"{match.group('name')}-{match.group('ver')}.dist-info"
        self.record_path = f"{self.dist_info_path}/RECORD"
        self._file_hashes: dict[str, tuple[str, int]] = {}
        zipfile.ZipFile.__init__(
            self, file, mode, compression=compression, allowZip64=True
        )

    def write_files(self, base_dir):
        deferred = []
        for root, _dirs, filenames in os.walk(base_dir):
            for name in sorted(filenames):
                path = os.path.join(root, name)
                if os.path.isfile(path):
                    arcname = os.path.relpath(path, base_dir).replace(os.path.sep, "/")
                    if arcname == self.record_path:
                        continue
                    if arcname.startswith(self.dist_info_path):
                        deferred.append((path, arcname))
                    else:
                        self.write(path, arcname)
        for path, arcname in sorted(deferred):
            self.write(path, arcname)

    def write(self, filename, arcname=None, compress_type=None):
        with open(filename, "rb") as f:
            data = f.read()
        if arcname is None:
            arcname = filename
        zinfo = zipfile.ZipInfo(arcname)
        zinfo.external_attr = (stat.S_IMODE(os.stat(filename).st_mode) | stat.S_IFREG) << 16
        zinfo.compress_type = compress_type if compress_type is not None else self.compression
        self.writestr(zinfo, data)

    def writestr(self, zinfo_or_arcname, data, compress_type=None):
        if isinstance(data, str):
            data = data.encode("utf-8")
        zipfile.ZipFile.writestr(self, zinfo_or_arcname, data, compress_type)
        if isinstance(zinfo_or_arcname, zipfile.ZipInfo):
            arcname = zinfo_or_arcname.filename
        else:
            arcname = zinfo_or_arcname
        if arcname != self.record_path:
            digest = hashlib.sha256(data).digest()
            self._file_hashes[arcname] = (
                f"sha256={_urlsafe_b64_nopad(digest)}",
                len(data),
            )

    def close(self):
        if self.fp is not None and self.mode == "w":
            lines = [
                f"{name},{hash_},{size}"
                for name, (hash_, size) in self._file_hashes.items()
            ]
            lines.append(f"{self.record_path},,")
            zipfile.ZipFile.writestr(self, self.record_path, "\n".join(lines) + "\n")
        zipfile.ZipFile.close(self)
