#!/usr/bin/env python
"""API-stability gate: fail when ``repro.api``'s surface drifts.

Compares the live public surface — ``repro.api.__all__`` plus every
registered wire type's schema version — against the snapshot in
``tests/data/api_surface.json``. Any undeclared change (added/removed
export, schema version bump) fails; intentional changes are declared by
regenerating the snapshot:

    PYTHONPATH=src python tools/check_api_surface.py --update
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = ROOT / "tests" / "data" / "api_surface.json"
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))


def current_surface() -> dict:
    import repro.api
    from repro.api import REPORT_KINDS

    return {
        "api_all": sorted(repro.api.__all__),
        "schema_versions": {
            kind: cls.SCHEMA_VERSION for kind, cls in sorted(REPORT_KINDS.items())
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the snapshot from the live surface")
    args = parser.parse_args()

    surface = current_surface()
    if args.update:
        SNAPSHOT.parent.mkdir(parents=True, exist_ok=True)
        SNAPSHOT.write_text(
            json.dumps(surface, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {SNAPSHOT.relative_to(ROOT)}")
        return 0

    if not SNAPSHOT.is_file():
        print(f"missing snapshot {SNAPSHOT}; run with --update", file=sys.stderr)
        return 1
    recorded = json.loads(SNAPSHOT.read_text(encoding="utf-8"))
    if recorded == surface:
        print(
            f"api surface OK: {len(surface['api_all'])} exports, "
            f"{len(surface['schema_versions'])} wire kinds"
        )
        return 0

    print("repro.api surface drifted from tests/data/api_surface.json:",
          file=sys.stderr)
    for field in ("api_all",):
        missing = sorted(set(recorded[field]) - set(surface[field]))
        added = sorted(set(surface[field]) - set(recorded[field]))
        for name in missing:
            print(f"  removed export: {name}", file=sys.stderr)
        for name in added:
            print(f"  added export:   {name}", file=sys.stderr)
    old_v, new_v = recorded["schema_versions"], surface["schema_versions"]
    for kind in sorted(set(old_v) | set(new_v)):
        if old_v.get(kind) != new_v.get(kind):
            print(
                f"  schema change:  {kind}: "
                f"{old_v.get(kind)} -> {new_v.get(kind)}",
                file=sys.stderr,
            )
    print("declare the change with: "
          "PYTHONPATH=src python tools/check_api_surface.py --update",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
