"""The `Session` facade: one stable entry point over the whole pipeline.

A :class:`Session` owns everything the pre-facade surfaces wired by
hand — compilation of :class:`~repro.registry.sources.ProgramSpec`
inputs, one shared :class:`~repro.engine.context.AnalysisContext` per
compiled program, registry dispatch over detection variants, memory
models, and explorers, the timed simulator, the batch engine, and the
differential fuzzer. Execution knobs (worker processes, serial
fallback, state bounds, result cache) live on the session; *what* to
run lives in the schema-versioned requests of
:mod:`repro.api.reports`, so a request serialized on one machine
replays on another.

Two API levels:

* **wire level** — ``analyze``/``check``/``simulate``/``batch``/
  ``fuzz`` consume a request dataclass and return a serializable
  report; this is the surface the CLI and any future service sit on.
* **mid level** — ``load``/``analysis``/``place``/``explore``/
  ``timed_simulation`` operate on IR ``Program`` objects with the
  session's shared analysis context; the experiments and examples use
  these for in-process composition.
"""

from __future__ import annotations

import threading
import time

from repro.core.machine_models import MemoryModel
from repro.core.pipeline import PipelineVariant, ProgramAnalysis
from repro.engine.context import AnalysisContext
from repro.frontend import compile_source
from repro.ir.function import Program
from repro.memmodel.sc import ExplorationResult
from repro.registry.models import get_model, weak_explorer_for
from repro.registry.sources import ProgramSpec, resolve_spec
from repro.registry.variants import get_variant, pipeline_variant_keys
from repro.api.reports import (
    AnalyzeReport,
    AnalyzeRequest,
    BatchCell,
    BatchReport,
    BatchRequest,
    CacheStats,
    CheckReport,
    CheckRequest,
    FunctionFences,
    FuzzProblem,
    FuzzReport,
    FuzzRequest,
    FuzzViolation,
    LintReport,
    LintRequest,
    SimulateReport,
    SimulateRequest,
    VariantCheck,
)


class Session:
    """A configured analysis session (see module docstring).

    ``variant`` and ``model`` are the registry-key defaults used when a
    mid-level call does not name one; requests always carry their own.
    """

    def __init__(
        self,
        variant: str = "control",
        model: str = "x86-tso",
        max_states: int = 1_000_000,
        jobs: int | None = None,
        parallel: bool = True,
        interprocedural: bool = False,
        cache_dir: str | None = None,
        query_cache_dir: str | None = None,
    ) -> None:
        get_variant(variant)  # validate eagerly: fail at construction
        get_model(model)
        self.variant = variant
        self.model = model
        self.max_states = max_states
        self.jobs = jobs
        self.parallel = parallel
        self.interprocedural = interprocedural
        self.cache_dir = cache_dir
        #: Directory for the engine's persistent query cache (fact
        #: results keyed by content fingerprint survive the session).
        self.query_cache_dir = query_cache_dir
        # Identity-keyed per-program fact cache, LRU-bounded so a
        # long-lived session serving many one-shot requests does not
        # retain every compiled program it ever saw. The lock makes
        # insert/evict/forget safe under concurrent `serve` requests.
        self._contexts: dict[Program, AnalysisContext] = {}
        self._context_cap = 32
        # Compiled-program cache keyed by (name, manual_fences): wire
        # requests for the same program resolve to the *same* Program
        # object — and therefore the same warm context. An edited
        # source is spliced function-by-function (see _adopt_source),
        # so re-analysis over the wire touches only the changed
        # functions' query subgraphs.
        self._programs: dict[
            tuple[str, bool], tuple[str, Program, AnalysisContext]
        ] = {}
        self._batch_runner = None
        self._lock = threading.RLock()
        # Batch runs share one BatchRunner (whose used_pool flag and
        # result cache are per-run state): serialize them.
        self._batch_lock = threading.Lock()
        self._requests: dict[str, int] = {}

    def _count(self, kind: str) -> None:
        with self._lock:
            self._requests[kind] = self._requests.get(kind, 0) + 1

    # --- program loading --------------------------------------------------
    def load(self, program: ProgramSpec | Program, reuse: bool = True) -> Program:
        """Resolve and compile a spec (a compiled ``Program`` passes
        through); the session tracks an analysis context for it.

        With ``reuse`` (the default), repeated loads of the same
        program name return the same warm ``Program``: an unchanged
        source is a pure cache hit, an edited one is spliced so only
        the changed functions lose their facts. Callers about to
        mutate the IR (fence insertion) pass ``reuse=False`` to get a
        private compile that never pollutes the shared cache.
        """
        if isinstance(program, Program):
            return program
        return self._load_spec(program, reuse)[0]

    def _load_spec(
        self, spec: ProgramSpec, reuse: bool
    ) -> tuple[Program, AnalysisContext, str]:
        """Resolve/compile ``spec``; returns (program, its *pinned*
        context, resolved source). The context is the one stored with
        the cache entry, so request-span locking stays meaningful even
        if the context LRU churns meanwhile."""
        resolved = resolve_spec(spec)
        if not reuse:
            ir = compile_source(
                resolved.source, resolved.name,
                include_manual_fences=spec.manual_fences,
            )
            return ir, self.context(ir), resolved.source
        key = (resolved.name, spec.manual_fences)
        with self._lock:
            cached = self._programs.get(key)
            if cached is not None and cached[0] == resolved.source:
                self._programs.pop(key)
                self._programs[key] = cached  # LRU re-insert
                self.context(cached[1])
                return cached[1], cached[2], resolved.source
        # Compile outside the lock: one client loading a large program
        # must not stall every other client's requests.
        fresh = compile_source(
            resolved.source, resolved.name,
            include_manual_fences=spec.manual_fences,
        )
        with self._lock:
            cached = self._programs.get(key)
            if cached is not None and cached[0] == resolved.source:
                self.context(cached[1])  # another thread won the race
                return cached[1], cached[2], resolved.source
            if cached is not None:
                # Pull the entry out before splicing: threads loading
                # the same name meanwhile fall back to fresh compiles.
                del self._programs[key]
            else:
                ctx = self._store_program(key, resolved.source, fresh)
                return fresh, ctx, resolved.source
        # Splice outside the session lock, but under the program's
        # pinned request lock so no in-flight analysis sees a half-edit.
        target_ctx = cached[2]
        with target_ctx.request_lock:
            ir = self._adopt_source(target_ctx, cached[1], fresh)
        with self._lock:
            self._store_program(key, resolved.source, ir, ctx=target_ctx)
        return ir, target_ctx, resolved.source

    def _store_program(
        self,
        key,
        source: str,
        ir: Program,
        ctx: AnalysisContext | None = None,
    ) -> AnalysisContext:
        """LRU-insert under the already-held session lock. Pass ``ctx``
        when the caller already owns the program's live context (the
        splice path) — looking it up again could mint a *second*
        context if the LRU churned the old one out meanwhile."""
        if ctx is None:
            ctx = self.context(ir)
        else:
            self._insert_context(ir, ctx)
        self._programs.pop(key, None)
        while len(self._programs) >= self._context_cap:
            self._programs.pop(next(iter(self._programs)))
        self._programs[key] = (source, ir, ctx)
        return ctx

    def _still_cached(self, program: Program, source: str) -> bool:
        """Is ``program`` still the cache's compile of ``source``?
        (False when a concurrent edit spliced or evicted it.)"""
        with self._lock:
            for cached_source, ir, _ in self._programs.values():
                if ir is program:
                    return cached_source == source
        return False

    def _adopt_source(
        self, context: AnalysisContext, cached: Program, fresh: Program
    ) -> Program:
        """Splice an edited recompile into the warm ``cached`` program.

        Functions whose printed IR is unchanged keep their *object
        identity* (so every query memoized for them stays a hit);
        changed/new functions come from ``fresh``, and the facts of
        replaced/removed ones are discarded from the engine. Returns
        ``cached``, mutated in place so its context stays bound.
        """
        from repro.query.engine import fingerprint_function

        engine = context.engine
        merged: dict[str, object] = {}
        for name, func in fresh.functions.items():
            old = cached.functions.get(name)
            if old is not None:
                # The engine already fingerprinted every queried
                # function; only never-queried ones need printing.
                old_fp = engine.fingerprint_of(old) or fingerprint_function(old)
                if old_fp == fingerprint_function(func):
                    merged[name] = old
                    continue
                engine.discard_input(old)
            merged[name] = func
        for name, old in cached.functions.items():
            if name not in merged:
                engine.discard_input(old)
        cached.functions = merged
        cached.globals = fresh.globals
        cached.threads = list(fresh.threads)
        # Catch structure changes (interprocedural shape) and any
        # in-place drift the fingerprints can see.
        context.refresh()
        return cached

    def context(self, program: Program) -> AnalysisContext:
        """The session's shared (memoized) facts for ``program``."""
        with self._lock:
            ctx = self._contexts.pop(program, None)
            if ctx is None:
                # A source-cached program keeps its pinned context even
                # after LRU churn: an in-flight request's locks and
                # collectors must keep pointing at the live one.
                for _, ir, pinned in self._programs.values():
                    if ir is program:
                        ctx = pinned
                        break
            if ctx is None:
                ctx = AnalysisContext(program, cache_dir=self.query_cache_dir)
            return self._insert_context(program, ctx)

    def _insert_context(self, program: Program, ctx: AnalysisContext) -> AnalysisContext:
        """(Re)insert as most recent; caller holds the session lock."""
        self._contexts.pop(program, None)
        while len(self._contexts) >= self._context_cap:
            self._contexts.pop(next(iter(self._contexts)))
        self._contexts[program] = ctx
        return ctx

    def forget(self, program: Program) -> None:
        """Drop the context for ``program`` (stale after IR mutation).

        Also evicts any source-cache entry pinning it, so the next
        ``context()``/``load()`` really starts fresh. (For in-place
        edits, :meth:`refresh` is the cheaper, incremental choice.)
        """
        with self._lock:
            self._contexts.pop(program, None)
            for key, (_, ir, _ctx) in list(self._programs.items()):
                if ir is program:
                    del self._programs[key]

    def refresh(self, program: Program) -> tuple[str, ...]:
        """Revalidate ``program``'s facts after in-place IR edits: the
        query engine evicts exactly the changed functions' subgraphs
        (see :meth:`repro.engine.context.AnalysisContext.refresh`)."""
        return self.context(program).refresh()

    def stats(self) -> dict:
        """Observable session state: request counters, the context LRU,
        and aggregated context/query-engine cache counters.

        Schema v2: ``query_stats`` now also aggregates the engines'
        dict-valued per-query-kind counters (``by_query`` and the
        ``by_query_hits``/``by_query_misses``/``by_query_evictions``
        maps the observability layer samples) key-wise; v1 dropped
        every non-int entry.
        """
        with self._lock:
            contexts = list(self._contexts.values())
            requests = dict(self._requests)
        query_totals: dict[str, object] = {}
        for ctx in contexts:
            with ctx.engine.lock:  # stable copy under concurrent writers
                payload = ctx.engine.stats.to_payload()
            for name, value in payload.items():
                if isinstance(value, int):
                    query_totals[name] = query_totals.get(name, 0) + value
                elif isinstance(value, dict):
                    merged = query_totals.setdefault(name, {})
                    for kind, count in value.items():
                        merged[kind] = merged.get(kind, 0) + count
        # The persistent query cache's effectiveness, as the serving
        # layer wants it: restores are disk hits, computes are the work
        # a better-warmed cache would have avoided.
        restored = query_totals.get("restored", 0)
        computes = query_totals.get("computes", 0)
        attempts = restored + computes
        return {
            "stats_version": 2,
            "requests": requests,
            "contexts": len(contexts),
            "context_cap": self._context_cap,
            "context_stats": {
                "hits": sum(c.stats.hits for c in contexts),
                "misses": sum(c.stats.misses for c in contexts),
            },
            "query_stats": query_totals,
            "query_cache": {
                "restored": restored,
                "computes": computes,
                "hit_rate": round(restored / attempts, 4) if attempts else 0.0,
            },
        }

    # --- mid-level operations ---------------------------------------------
    def _variant_key(self, variant: str | PipelineVariant | None) -> str:
        if variant is None:
            return self.variant
        if isinstance(variant, PipelineVariant):
            return variant.value
        return variant

    def _machine(self, model: str | None) -> MemoryModel:
        return get_model(model if model is not None else self.model).model

    def analysis(
        self,
        program: Program,
        variant: str | PipelineVariant | None = None,
        model: str | None = None,
        interprocedural: bool | None = None,
        context: AnalysisContext | None = None,
    ) -> ProgramAnalysis:
        """Run a variant's pipeline on ``program`` (no IR mutation),
        sharing the session's analysis context. Callers holding a
        pinned context (the wire layer) pass it explicitly so a cache
        churn mid-request cannot swap it out underneath them."""
        entry = get_variant(self._variant_key(variant))
        inter = self.interprocedural if interprocedural is None else interprocedural
        ctx = context if context is not None else self.context(program)
        return entry.analyze(
            program, self._machine(model), context=ctx, interprocedural=inter,
        )

    def place(
        self,
        program: Program,
        variant: str | PipelineVariant | None = None,
        model: str | None = None,
        interprocedural: bool | None = None,
        context: AnalysisContext | None = None,
        backend=None,
        synthesis: str = "greedy",
    ) -> ProgramAnalysis:
        """Run the pipeline and insert the fences (mutates ``program``;
        the context refreshes itself, so it stays valid for reuse —
        only the fenced functions' facts recompute). With an arch
        ``backend``, fences are lowered to its flavors on insertion;
        ``synthesis="optimal"`` places the min-cost plans of
        :mod:`repro.synth` instead of the greedy ones."""
        entry = get_variant(self._variant_key(variant))
        inter = self.interprocedural if interprocedural is None else interprocedural
        if context is None:
            context = self.context(program)
        # Exclude concurrent requests on this program for the whole
        # mutation, and evict it from the source-keyed cache *before*
        # inserting fences — a parallel load() of the same source must
        # compile clean IR, never see the half-fenced shared program.
        with context.request_lock:
            with self._lock:
                for key, (_, cached, _ctx) in list(self._programs.items()):
                    if cached is program:
                        del self._programs[key]
            return entry.place(
                program, self._machine(model),
                context=context, interprocedural=inter, backend=backend,
                synthesis=synthesis,
            )

    def explore(
        self,
        program: Program,
        model: str | None = None,
        max_states: int | None = None,
    ) -> ExplorationResult:
        """Exhaustively explore ``program`` under a model's explorer.

        ``model="sc"`` gives the reference semantics; weak models give
        the differencing side. Models without explorer coverage (RMO)
        raise ``KeyError``.
        """
        entry = get_model(model if model is not None else self.model)
        explorer_cls = entry.explorer_cls()
        bound = max_states if max_states is not None else self.max_states
        return explorer_cls(program, max_states=bound).explore()

    def timed_simulation(self, program: Program, costs=None):
        """Run the deterministic timed TSO simulator on ``program``."""
        from repro.simulator.costmodel import DEFAULT_COSTS
        from repro.simulator.machine import TSOSimulator

        return TSOSimulator(
            program, costs if costs is not None else DEFAULT_COSTS
        ).run()

    # --- wire-level operations --------------------------------------------
    @staticmethod
    def _backend(arch: str | None):
        if arch is None:
            return None
        from repro.arch.backend import get_backend

        return get_backend(arch)

    @staticmethod
    def _check_synthesis(synthesis: str) -> str:
        from repro.core.pipeline import SYNTHESIS_MODES

        if synthesis not in SYNTHESIS_MODES:
            raise ValueError(
                f"unknown synthesis {synthesis!r}; "
                f"known: {', '.join(SYNTHESIS_MODES)}"
            )
        return synthesis

    def analyze(self, request: AnalyzeRequest) -> AnalyzeReport:
        self._count("analyze")
        backend = self._backend(request.arch)
        synthesis = self._check_synthesis(request.synthesis)
        interprocedural = (
            request.interprocedural
            if request.interprocedural is not None
            else self.interprocedural
        )
        # emit_ir inserts fences: a private compile (reuse=False) keeps
        # the shared warm program unmutated. Warm loads re-validate
        # under the program's pinned request lock: a concurrent edit of
        # the same program name splices the shared IR, and this request
        # must not answer with the other client's source.
        reuse = not request.emit_ir
        attempts = 0
        while True:
            attempts += 1
            if attempts > 4:
                reuse = False  # racing edits: fall back to private IR
            program, context, source = self._load_spec(request.program, reuse)
            with context.request_lock, context.collect_stats() as recorded:
                if reuse and not self._still_cached(program, source):
                    continue
                if request.emit_ir:
                    analysis = self.place(
                        program, request.variant, request.model,
                        interprocedural=interprocedural, context=context,
                        backend=backend, synthesis=synthesis,
                    )
                else:
                    analysis = self.analysis(
                        program, request.variant, request.model,
                        interprocedural=interprocedural, context=context,
                    )
                break
        annotations = None
        if request.annotations:
            from repro.core.annotations import (
                render_annotations,
                suggest_annotations,
            )

            annotations = render_annotations(suggest_annotations(analysis))
        fenced_ir = None
        if request.emit_ir:
            from repro.ir.printer import format_program

            fenced_ir = format_program(program)
        if not reuse:
            # One-shot program: drop its context so per-request compiles
            # cannot thrash genuinely warm entries out of the LRU.
            self.forget(program)
        cache_stats = None
        if request.stats:
            # This request's own counters (thread-local collector): a
            # warm shared context shows up as all-hits, a cold one as
            # the full fact-construction bill.
            cache_stats = CacheStats(
                hits=recorded.hits,
                misses=recorded.misses,
                by_fact=dict(recorded.by_fact),
            )
        fence_cost = None
        flavors = None
        greedy_cost = None
        if backend is not None:
            from repro.arch.lowering import lower_analysis, summarize_lowerings

            if analysis.lowered_plans is not None:
                # emit_ir placed through the backend already: summarize
                # the plans actually inserted, don't lower twice.
                summary = summarize_lowerings(
                    backend.key, analysis.lowered_plans
                )
            elif synthesis == "optimal":
                from repro.synth import synthesize_analysis

                _, summary = synthesize_analysis(analysis, backend)
            else:
                _, summary = lower_analysis(analysis, backend)
            fence_cost = summary.cost
            flavors = dict(summary.flavors)
            if synthesis == "optimal":
                _, greedy_summary = lower_analysis(analysis, backend)
                greedy_cost = greedy_summary.cost
        functions = tuple(
            FunctionFences(
                name=name,
                escaping_reads=len(fa.escape_info.escaping_reads),
                sync_reads=len(fa.sync_reads),
                orderings=len(fa.orderings),
                pruned=len(fa.pruned),
                full_fences=fa.plan.full_count,
                compiler_fences=fa.plan.compiler_count,
            )
            for name, fa in analysis.functions.items()
        )
        return AnalyzeReport(
            program=program.name,
            variant=request.variant,
            model=request.model,
            interprocedural=interprocedural,
            functions=functions,
            escaping_reads=analysis.total_escaping_reads,
            sync_reads=analysis.total_sync_reads,
            orderings=sum(len(fa.orderings) for fa in analysis.functions.values()),
            pruned_orderings=analysis.total_orderings,
            surviving_fraction=analysis.surviving_fraction,
            full_fences=analysis.full_fence_count,
            compiler_fences=analysis.compiler_fence_count,
            annotations=annotations,
            fenced_ir=fenced_ir,
            cache_stats=cache_stats,
            arch=request.arch,
            fence_cost=fence_cost,
            flavors=flavors,
            synthesis=synthesis,
            greedy_cost=greedy_cost,
        )

    def lint(self, request: LintRequest) -> LintReport:
        from repro.diagnostics import run_lint
        from repro.diagnostics.findings import severity_rank

        self._count("lint")
        if request.fail_on != "never":
            severity_rank(request.fail_on)  # unknown threshold: fail early
        get_variant(request.variant)
        machine = get_model(request.model).model
        backend = self._backend(request.arch)
        # Lint never mutates the IR, so it always runs on the shared
        # warm program: a re-lint after an edit recomputes only the
        # spliced functions' query subgraphs. Same retry discipline as
        # analyze() against concurrent edits of the same program name.
        attempts = 0
        while True:
            attempts += 1
            reuse = attempts <= 4
            program, context, source = self._load_spec(request.program, reuse)
            with context.request_lock:
                if reuse and not self._still_cached(program, source):
                    continue
                # Lint facts flow through engine.get (not the context's
                # _fact recorder), so meter the query engine itself:
                # hits = memo hits, misses = real recomputes.
                before = context.engine.stats.to_payload()
                result = run_lint(
                    program,
                    context,
                    variant=request.variant,
                    model=machine,
                    arch=backend,
                    passes=tuple(request.passes),
                    confirm=request.confirm,
                    max_traces=request.max_traces,
                    max_actions=request.max_actions,
                )
                after = context.engine.stats.to_payload()
                break
        if not reuse:
            self.forget(program)
        fuzz_seed = None
        if result.fuzz_seed:
            from repro.validate.seeds import record_seed

            record_seed(program.name, source)
            fuzz_seed = source
        cache_stats = None
        if request.stats:
            by_query = {
                name: count - before["by_query"].get(name, 0)
                for name, count in after["by_query"].items()
                if count - before["by_query"].get(name, 0)
            }
            cache_stats = CacheStats(
                hits=after["hits"] - before["hits"],
                misses=after["computes"] - before["computes"],
                by_fact=by_query,
            )
        return LintReport(
            program=program.name,
            variant=result.variant,
            model=request.model,
            passes=result.passes,
            findings=result.findings,
            notes=result.counts.note,
            warnings=result.counts.warning,
            errors=result.counts.error,
            confirmed_races=result.confirmed_races,
            refuted_candidates=result.refuted_candidates,
            unknown_candidates=result.unknown_candidates,
            explorer_complete=result.explorer_complete,
            traces_checked=result.traces_checked,
            fuzz_seed=fuzz_seed,
            fail_on=request.fail_on,
            arch=request.arch,
            cache_stats=cache_stats,
        )

    def check(self, request: CheckRequest) -> CheckReport:
        self._count("check")
        resolved = resolve_spec(request.program)
        explorer_cls, machine = weak_explorer_for(request.model)
        # Placements are lowered through an arch backend only when the
        # model's explorer honors flavor kill-sets (arm/power) — those
        # checks then exercise the flavored fences they would ship.
        # Flavor-blind explorers (TSO/PSO) keep generic FULL, and an
        # explicit request.arch naming any *other* catalog is refused:
        # the explorer would give foreign/unmodeled flavors full-fence
        # strength, stamping the report as validating a flavor
        # selection it cannot actually model.
        from repro.registry.models import check_backend_for_model

        backend = check_backend_for_model(request.model)
        synthesis = self._check_synthesis(request.synthesis)
        if request.arch is not None:
            self._backend(request.arch)  # unknown arch: KeyError early
            if backend is None or backend.key != request.arch:
                raise ValueError(
                    f"cannot validate {request.arch!r} fence flavors on "
                    f"model {request.model!r}: its explorer "
                    + (
                        "does not model flavor kill-sets"
                        if backend is None
                        else f"honors the {backend.key!r} flavor catalog"
                    )
                )
        bound = (
            request.max_states
            if request.max_states is not None
            else self.max_states
        )

        def fresh() -> Program:
            # The spec describes the baseline program: with
            # manual_fences=True the expert fences ARE the program
            # under check, and the SC reference includes them.
            return compile_source(
                resolved.source, resolved.name,
                include_manual_fences=request.program.manual_fences,
            )

        def skipped(reason: str) -> CheckReport:
            return CheckReport(
                program=resolved.name,
                model=request.model,
                max_states=bound,
                complete=False,
                skipped=reason,
                sc_outcomes=0,
                weak_outcomes_unfenced=0,
                weak_breaks_unfenced=False,
                variants=(),
                arch=backend.key if backend is not None else None,
                synthesis=synthesis,
            )

        from repro.registry.models import EXPLORERS

        sc = EXPLORERS.get("sc")(fresh(), max_states=bound).explore()
        weak = explorer_cls(fresh(), max_states=bound).explore()
        if not (sc.complete and weak.complete):
            return skipped("state space exceeded max_states")
        sc_obs = sc.observation_sets()
        weak_obs = weak.observation_sets()

        interprocedural = (
            request.interprocedural
            if request.interprocedural is not None
            else self.interprocedural
        )
        variant_keys = request.variants or pipeline_variant_keys()
        verdicts = []
        for key in variant_keys:
            entry = get_variant(key)
            fenced = fresh()
            analysis = entry.place(
                fenced, machine, interprocedural=interprocedural,
                backend=backend, synthesis=synthesis,
            )
            if synthesis == "optimal" and analysis.lowered_plans is not None:
                full_fences = sum(
                    p.full_count for p in analysis.lowered_plans.values()
                )
            else:
                full_fences = analysis.full_fence_count
            fenced_weak = explorer_cls(fenced, max_states=bound).explore()
            # A bounded fenced exploration proves nothing: comparing a
            # truncated outcome set against sc_obs could claim (or
            # deny) restoration on evidence that isn't there.
            verdicts.append(
                VariantCheck(
                    variant=key,
                    full_fences=full_fences,
                    weak_outcomes=len(fenced_weak.observation_sets()),
                    restored_sc=fenced_weak.complete
                    and fenced_weak.observation_sets() == sc_obs,
                    complete=fenced_weak.complete,
                )
            )
        return CheckReport(
            program=resolved.name,
            model=request.model,
            max_states=bound,
            complete=True,
            skipped=None,
            sc_outcomes=len(sc_obs),
            weak_outcomes_unfenced=len(weak_obs),
            weak_breaks_unfenced=weak_obs != sc_obs,
            variants=tuple(verdicts),
            arch=backend.key if backend is not None else None,
            synthesis=synthesis,
        )

    def simulate(self, request: SimulateRequest) -> SimulateReport:
        self._count("simulate")
        backend = self._backend(request.arch)
        synthesis = self._check_synthesis(request.synthesis)
        resolved = resolve_spec(request.program)
        manual = request.placement == "manual" or request.program.manual_fences
        program = compile_source(
            resolved.source, resolved.name, include_manual_fences=manual
        )
        if request.placement != "manual":
            self.place(
                program, request.placement, request.model,
                backend=backend, synthesis=synthesis,
            )
            self.forget(program)  # per-request compile: keep the LRU warm
        costs = None
        if backend is not None:
            from repro.simulator.costmodel import arch_cost_model

            costs = arch_cost_model(backend)
        stats = self.timed_simulation(program, costs)
        observations = tuple(
            (tid, tuple(obs))
            for tid, obs in sorted(stats.observations.items())
        )
        return SimulateReport(
            program=resolved.name,
            placement=request.placement,
            model=request.model,
            cycles=stats.cycles,
            instructions=stats.instructions,
            full_fences_executed=stats.full_fences_executed,
            compiler_fences_executed=stats.compiler_fences_executed,
            fence_stall_cycles=stats.fence_stall_cycles,
            observations=observations,
            final_globals=tuple(sorted(stats.final_globals.items())),
            observe_globals=tuple(request.observe_globals),
            arch=request.arch,
            synthesis=synthesis,
        )

    def batch(self, request: BatchRequest) -> BatchReport:
        from repro.engine.batch import BatchRunner, ResultCache
        from repro.programs.registry import all_programs, get_program

        self._count("batch")
        programs = list(request.programs) if request.programs else list(all_programs())
        for name in programs:
            get_program(name)  # KeyError("unknown program ...") early
        variants = list(request.variants) if request.variants else None
        models = list(request.models) if request.models else None
        with self._lock:
            if self._batch_runner is None:
                cache = ResultCache(self.cache_dir) if self.cache_dir else None
                self._batch_runner = BatchRunner(
                    max_workers=self.jobs, parallel=self.parallel, cache=cache
                )
            runner = self._batch_runner
        if request.arch is not None:
            self._backend(request.arch)  # unknown arch: KeyError early
        synthesis = self._check_synthesis(request.synthesis)
        with self._batch_lock:
            start = time.perf_counter()
            results = runner.run_matrix(
                programs, variants, models, arch=request.arch,
                synthesis=synthesis,
            )
            wall = time.perf_counter() - start
            used_pool = runner.used_pool
        cache_stats = None
        if request.stats:
            # Only cells analyzed *this run*: result-cache replays kept
            # their original counters, and counting them would claim
            # fact work a fully-warm run never did.
            live = [r for r in results if not r.cached]
            by_fact: dict[str, int] = {}
            for r in live:
                for fact, count in r.context_by_fact.items():
                    by_fact[fact] = by_fact.get(fact, 0) + count
            cache_stats = CacheStats(
                hits=sum(r.context_hits for r in live),
                misses=sum(r.context_misses for r in live),
                by_fact=by_fact,
            )
        cells = tuple(
            BatchCell(
                program=r.program,
                variant=r.variant,
                model=r.model,
                key=r.key,
                functions=len(r.functions),
                escaping_reads=r.escaping_reads,
                sync_reads=r.sync_reads,
                orderings=r.orderings,
                pruned_orderings=r.pruned_orderings,
                surviving_fraction=r.surviving_fraction,
                full_fences=r.full_fences,
                compiler_fences=r.compiler_fences,
                elapsed=r.elapsed,
                cached=r.cached,
                fence_cost=r.fence_cost,
                flavors=dict(r.flavors),
                greedy_cost=r.greedy_cost,
                optimal_cost=r.optimal_cost,
            )
            for r in results
        )
        return BatchReport(
            programs=tuple(programs),
            variants=tuple(variants) if variants else tuple(pipeline_variant_keys()),
            models=tuple(models) if models else ("x86-tso",),
            used_pool=used_pool,
            wall=wall,
            cells=cells,
            cache_stats=cache_stats,
            arch=request.arch,
            synthesis=synthesis,
        )

    def fuzz(self, request: FuzzRequest) -> FuzzReport:
        from dataclasses import asdict

        self._count("fuzz")

        from repro.registry.variants import trusted_variant_keys
        from repro.validate.generator import SHAPES
        from repro.validate.runner import run_fuzz

        shapes = tuple(request.shapes) if request.shapes else tuple(SHAPES)
        variants = (
            tuple(request.variants) if request.variants
            else trusted_variant_keys()
        )
        raw = run_fuzz(
            seeds=request.seeds,
            shapes=shapes,
            variants=variants,
            models=tuple(request.models),
            budget=request.budget,
            jobs=self.jobs,
            parallel=self.parallel,
            shrink=request.shrink,
            max_states=(
                request.max_states
                if request.max_states is not None
                else self.max_states
            ),
        )
        problems = tuple(
            [
                FuzzProblem("error", c.shape, c.seed, c.model, c.error or "")
                for c in raw.errors
            ]
            + [
                FuzzProblem(
                    "incomplete", c.shape, c.seed, c.model,
                    (c.report.skipped if c.report is not None else None) or "",
                )
                for c in raw.incomplete
            ]
        )
        return FuzzReport(
            seeds=raw.seeds,
            shapes=tuple(raw.shapes),
            variants=tuple(raw.variants),
            models=tuple(raw.models),
            budget=raw.budget,
            cases_run=len(raw.cases),
            cases_skipped=raw.cases_skipped,
            errors=len(raw.errors),
            incomplete=len(raw.incomplete),
            budget_exhausted=raw.budget_exhausted,
            used_pool=raw.used_pool,
            wall=raw.wall,
            variant_summary=raw.variant_summary(),
            violations=tuple(
                FuzzViolation(**asdict(v)) for v in raw.violations
            ),
            problems=problems,
            cases=tuple(c.to_payload() for c in raw.cases),
        )
