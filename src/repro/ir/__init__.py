"""The IR substrate: an infinite-register load/store representation.

This is the stand-in for LLVM IR in the paper's implementation
(Section 4: "All the algorithms operate on infinite register
load-store intermediate representations").
"""

from repro.ir.builder import IRBuilder
from repro.ir.cfg import CFG
from repro.ir.function import BasicBlock, Function, GlobalVar, Program, ThreadSpec
from repro.ir.instructions import (
    Alloca,
    AtomicAdd,
    AtomicXchg,
    BinOp,
    Br,
    Call,
    Cmp,
    CmpXchg,
    Fence,
    FenceKind,
    FenceOrigin,
    Gep,
    Instruction,
    Jump,
    Load,
    Observe,
    Ret,
    Store,
)
from repro.ir.printer import format_function, format_instruction, format_program
from repro.ir.values import Constant, GlobalRef, Register, Value, get_def
from repro.ir.verifier import VerificationError, verify_function, verify_program

__all__ = [
    "Alloca",
    "AtomicAdd",
    "AtomicXchg",
    "BasicBlock",
    "BinOp",
    "Br",
    "CFG",
    "Call",
    "Cmp",
    "CmpXchg",
    "Constant",
    "Fence",
    "FenceKind",
    "FenceOrigin",
    "Function",
    "Gep",
    "GlobalRef",
    "GlobalVar",
    "IRBuilder",
    "Instruction",
    "Jump",
    "Load",
    "Observe",
    "Program",
    "Register",
    "Ret",
    "Store",
    "ThreadSpec",
    "Value",
    "VerificationError",
    "format_function",
    "format_instruction",
    "format_program",
    "get_def",
    "verify_function",
    "verify_program",
]
