"""Static race detection walkthrough: detect, explain, confirm.

This is the source of truth for the README's "Static race detection &
lint" section. The lint pipeline layers three results on top of the
paper's sync-read analysis:

1. **detect** — the static DRF gate finds conflicting access pairs no
   detected release/acquire chain orders (RACE001 candidates);
2. **explain** — each finding carries a stable code, a severity, and
   the exact IR spans of both accesses, so a report is actionable
   without the IR in hand;
3. **confirm** — the SC explorer audits every candidate: a *confirmed*
   race ships a concrete witness interleaving, an exhaustively
   *refuted* one is downgraded to a note (a static false positive,
   kept as a precision-regression marker).

The same run also demonstrates the incremental contract: a warm
re-lint through the same session recomputes nothing, and a
single-function edit recomputes only that function's query subgraph.

Run:  python examples/lint_walkthrough.py
"""

from repro.api import LintReport, LintRequest, ProgramSpec, Session

RACY = """
global int hits;

fn worker(tid) {
  hits = hits + 1;
  observe("h", hits);
}

thread worker(0);
thread worker(1);
"""

FIXED = """
global int lock;
global int hits;

fn lock_acquire(l) {
  local old = 1;
  old = cas(l, 0, 1);
  while (old != 0) {
    old = cas(l, 0, 1);
  }
}

fn lock_release(l) {
  *l = 0;
}

fn worker(tid) {
  lock_acquire(&lock);
  hits = hits + 1;
  lock_release(&lock);
}

fn reporter(tid) {
  observe("done", 1);
}

thread worker(0);
thread worker(1);
thread reporter(2);
"""


def main() -> None:
    session = Session()

    # 1. + 2. + 3. — detect, explain, confirm in one request.
    report = session.lint(
        LintRequest(program=ProgramSpec.inline(RACY, name="racy-counter"))
    )
    races = [f for f in report.findings if f.code == "RACE001"]
    assert races, "the unprotected counter increment must be flagged"
    confirmed = [f for f in races if f.verdict == "confirmed"]
    assert confirmed, "the explorer must confirm the lost update"
    finding = confirmed[0]
    assert finding.severity == "error"
    assert len(finding.spans) == 2  # both sides of the racing pair
    assert finding.witness, "confirmed races carry a witness interleaving"
    print("detected and confirmed:")
    print(finding.render())
    print()

    # The report is a schema-versioned wire artifact.
    assert LintReport.from_json(report.to_json()) == report
    assert report.exit_code == 1  # default --fail-on error gate trips

    # Locking the counter makes the program lint clean: the CAS loop is
    # detected as the acquire, the unlock store as the release.
    clean = session.lint(
        LintRequest(program=ProgramSpec.inline(FIXED, name="locked-counter"))
    )
    assert clean.errors == clean.warnings == 0
    assert clean.exit_code == 0
    print(f"locked variant: {len(clean.findings)} findings, exit code 0")

    # Warm incrementality: nothing changed, nothing recomputes.
    warm = session.lint(
        LintRequest(
            program=ProgramSpec.inline(FIXED, name="locked-counter"),
            stats=True,
        )
    )
    assert warm.cache_stats.misses == 0 and warm.cache_stats.hits > 0

    # Edit one function: only its query subgraph recomputes.
    edited = session.lint(
        LintRequest(
            program=ProgramSpec.inline(
                FIXED.replace('observe("done", 1);', 'observe("done", 2);'),
                name="locked-counter",
            ),
            stats=True,
        )
    )
    assert edited.cache_stats.misses > 0
    assert edited.cache_stats.hits > 0  # the untouched functions stayed warm
    print(
        f"warm re-lint after one edit: {edited.cache_stats.misses} "
        f"recomputes, {edited.cache_stats.hits} cache hits"
    )

    print("\nlint walkthrough OK")


if __name__ == "__main__":
    main()
