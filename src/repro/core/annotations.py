"""Alternative application: emit DRF annotations instead of fences.

Paper Section 1.3: "An alternative application would be to use this
identification to provide minimal annotations to make the program DRF,
such that a compliant compiler and the hardware will prevent incorrect
reorderings." This module turns a pipeline result into C11-style
``memory_order_acquire`` / ``memory_order_release`` annotation
suggestions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import ProgramAnalysis
from repro.ir.printer import format_instruction
from repro.util.text import format_table


@dataclass(frozen=True)
class Annotation:
    """One suggested annotation at a source access."""

    function: str
    block: str
    index: int
    order: str  # "acquire" | "release" | "acq_rel"
    text: str   # printable instruction

    def location(self) -> str:
        return f"{self.function}/{self.block}[{self.index}]"


def suggest_annotations(analysis: ProgramAnalysis) -> list[Annotation]:
    """Acquire annotations for detected sync reads; release annotations
    for escaping writes (the paper's conservative release treatment).
    RMWs detected as acquires become acq_rel."""
    annotations: list[Annotation] = []
    for name, fa in analysis.functions.items():
        func = fa.function
        for inst in fa.sync_reads:
            block_index, index = func.position(inst)
            order = "acq_rel" if inst.is_atomic_rmw() else "acquire"
            annotations.append(
                Annotation(
                    name,
                    func.blocks[block_index].label,
                    index,
                    order,
                    format_instruction(inst),
                )
            )
        for inst in fa.escape_info.escaping_writes:
            if inst in fa.sync_reads:
                continue  # already acq_rel
            block_index, index = func.position(inst)
            order = "acq_rel" if inst.is_atomic_rmw() else "release"
            annotations.append(
                Annotation(
                    name,
                    func.blocks[block_index].label,
                    index,
                    order,
                    format_instruction(inst),
                )
            )
    annotations.sort(key=lambda a: (a.function, a.block, a.index))
    return annotations


def render_annotations(annotations: list[Annotation]) -> str:
    rows = [[a.location(), a.order, a.text] for a in annotations]
    return format_table(
        ["location", "memory_order", "instruction"],
        rows,
        title="Suggested DRF annotations",
    )
