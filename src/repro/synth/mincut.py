"""Pure-python max-flow (Dinic) over the per-block delay network.

The optimal synthesizer (:mod:`repro.synth.optimal`) phrases one
block's fence problem as an s-t cut: gaps become chain edges priced at
the cheapest fence flavor sufficient for every delay interval through
the gap, and each interval pins an infinite-capacity bypass from the
source to its left endpoint and from just past its right endpoint to
the sink. Any s-t path then threads some interval end to end, so every
finite cut must sever at least one priced gap inside each interval —
a cut *is* a fence placement.

Two honest caveats, both load-bearing for how the synthesizer uses
this network:

* For *laminar* interval families (nested or disjoint — the common
  shape in straight-line litmus and corpus blocks) the minimum cut is
  a minimum-cost placement. For *crossing* families it can
  overcharge: the network forces a cut inside every pairwise overlap,
  which is why Alglave et al. ("Don't sit on the fence", CAV 2014)
  resort to an ILP for the general problem. The exact dynamic program
  in :mod:`repro.synth.optimal` closes that gap; the cut value is kept
  as an upper-bound certificate (``dp_cost <= cut_value`` always) and
  as the witness placement reported by the ``FENCE104`` lint.
* Gap prices are conservative: a cut edge is priced for the union of
  kinds crossing the gap, even if a cheaper flavor would do once the
  final assignment of intervals to fences is known. The DP prices
  flavors exactly.

No external solver: Dinic's algorithm (BFS level graph + blocking DFS
with the current-arc optimization) in plain python, O(V^2 E), far
below a millisecond at basic-block sizes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

#: Effectively-infinite capacity for interval bypass edges. Summing
#: every realistic gap price stays far below this, so a finite min cut
#: never severs a bypass.
INF = 1 << 60


@dataclass
class _Edge:
    to: int
    cap: int
    #: Index of the reverse edge in ``graph[to]``.
    rev: int
    #: Caller-side tag carried through to :meth:`FlowNetwork.min_cut`
    #: (the synthesizer tags chain edges with their gap index).
    tag: object = None


@dataclass
class FlowNetwork:
    """A directed flow network with integer capacities."""

    n: int = 0
    graph: list[list[_Edge]] = field(default_factory=list)

    def add_node(self) -> int:
        self.graph.append([])
        self.n += 1
        return self.n - 1

    def add_edge(self, u: int, v: int, cap: int, tag: object = None) -> None:
        """Add a directed edge ``u -> v``; the reverse edge starts empty."""
        self.graph[u].append(_Edge(v, cap, len(self.graph[v]), tag))
        self.graph[v].append(_Edge(u, 0, len(self.graph[u]) - 1))

    # --- Dinic ----------------------------------------------------------
    def _levels(self, s: int, t: int) -> list[int] | None:
        level = [-1] * self.n
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for e in self.graph[u]:
                if e.cap > 0 and level[e.to] < 0:
                    level[e.to] = level[u] + 1
                    queue.append(e.to)
        return level if level[t] >= 0 else None

    def _augment(
        self, u: int, t: int, pushed: int, level: list[int], it: list[int]
    ) -> int:
        if u == t:
            return pushed
        while it[u] < len(self.graph[u]):
            e = self.graph[u][it[u]]
            if e.cap > 0 and level[e.to] == level[u] + 1:
                d = self._augment(e.to, t, min(pushed, e.cap), level, it)
                if d > 0:
                    e.cap -= d
                    self.graph[e.to][e.rev].cap += d
                    return d
            it[u] += 1
        return 0

    def max_flow(self, s: int, t: int) -> int:
        flow = 0
        while True:
            level = self._levels(s, t)
            if level is None:
                return flow
            it = [0] * self.n
            while True:
                pushed = self._augment(s, t, INF, level, it)
                if pushed == 0:
                    break
                flow += pushed

    def min_cut(self, s: int, t: int) -> tuple[int, list[object]]:
        """Run max-flow, then read off the minimum cut.

        Returns ``(cut value, tags of saturated forward edges crossing
        the cut)`` — by max-flow/min-cut duality the saturated edges
        from the source's residual side to the sink's side form a
        minimum cut, and their tags are the caller's placement witness.
        """
        value = self.max_flow(s, t)
        reachable = [False] * self.n
        reachable[s] = True
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for e in self.graph[u]:
                if e.cap > 0 and not reachable[e.to]:
                    reachable[e.to] = True
                    queue.append(e.to)
        tags = [
            e.tag
            for u in range(self.n)
            if reachable[u]
            for e in self.graph[u]
            if e.cap == 0 and e.tag is not None and not reachable[e.to]
        ]
        return value, tags
