"""Ablation benchmarks for the design choices DESIGN.md calls out.

* machine-model sweep — how the target memory model changes the fence
  bill (TSO needs mfences only for w->r; PSO adds w->w; RMO everything);
* RMW-as-fence — how much the locked-instruction optimization saves;
* slicer address-chasing extension — the cost/precision of chasing load
  addresses (beyond Listing 2);
* coherence-cycle exclusion in exact delay-set analysis;
* simulator cost-model sensitivity (free-fence machine bound).
"""

import pytest

from repro.analysis.aliasing import PointsTo
from repro.analysis.escape import EscapeInfo
from repro.analysis.slicing import Slicer
from repro.core.delay_set import DelaySetAnalysis
from repro.core.machine_models import MODELS, PSO, RMO, X86_TSO, MemoryModel
from repro.core.pipeline import FencePlacer, PipelineVariant, place_fences
from repro.memmodel.litmus import LITMUS_TESTS
from repro.programs import get_program
from repro.simulator.costmodel import DEFAULT_COSTS, FREE_FENCES
from repro.simulator.machine import TSOSimulator
from repro.util.orderedset import OrderedSet


@pytest.mark.parametrize("model_name", ["x86-tso", "pso", "rmo"])
def test_memory_model_sweep(benchmark, model_name, report_sink):
    """Weaker hardware -> strictly more full fences for the same program."""
    model = MODELS[model_name]
    program_src = get_program("ocean-con")

    def run():
        placer = FencePlacer(PipelineVariant.CONTROL, model)
        return placer.analyze(program_src.compile())

    analysis = benchmark(run)
    tso_count = FencePlacer(PipelineVariant.CONTROL, X86_TSO).analyze(
        program_src.compile()
    ).full_fence_count
    assert analysis.full_fence_count >= tso_count or model is X86_TSO
    report_sink.setdefault("ablation-models", "Model sweep (ocean-con, Control):")
    report_sink["ablation-models"] += (
        f"\n  {model_name:8s}: {analysis.full_fence_count} full fences, "
        f"{analysis.compiler_fence_count} compiler directives"
    )


def test_rmw_as_fence_ablation(benchmark, report_sink):
    """Disable the locked-RMW-is-a-fence optimization: more mfences."""
    no_rmw_model = MemoryModel(
        name="tso-no-rmw-fence",
        enforced=X86_TSO.enforced,
        rmw_is_full_fence=False,
    )
    program = get_program("spanningtree")

    def run():
        return FencePlacer(PipelineVariant.CONTROL, no_rmw_model).analyze(
            program.compile()
        )

    without_opt = benchmark(run)
    with_opt = FencePlacer(PipelineVariant.CONTROL, X86_TSO).analyze(
        program.compile()
    )
    assert without_opt.full_fence_count >= with_opt.full_fence_count
    report_sink["ablation-rmw"] = (
        "RMW-as-fence ablation (spanningtree, Control): "
        f"with={with_opt.full_fence_count}, without={without_opt.full_fence_count}"
    )


def test_slicer_address_chasing_ablation(benchmark):
    """Chasing load addresses (beyond Listing 2) is monotonically more
    conservative; measure its overhead on the biggest model."""
    program = get_program("water-spatial").compile()

    def run(chase: bool):
        marked = 0
        for func in program.functions.values():
            pt = PointsTo(func)
            esc = EscapeInfo(func, pt)
            slicer = Slicer(func, pt, esc, chase_load_addresses=chase)
            seen: set = set()
            sync: OrderedSet = OrderedSet()
            for inst in func.instructions():
                if inst.is_cond_branch():
                    slicer.slice_from_values(inst.operands, seen, sync)
            marked += len(sync)
        return marked

    chased = benchmark(lambda: run(True))
    assert chased >= run(False)


def test_coherence_exclusion_ablation(benchmark):
    """Keeping coherence-enforced cycles only adds delays, never removes."""
    program = LITMUS_TESTS["dekker"].compile()

    def run():
        return DelaySetAnalysis(program, exclude_coherence_cycles=False).compute()

    raw = benchmark(run)
    refined = DelaySetAnalysis(program, exclude_coherence_cycles=True).compute()
    assert raw.total_delays >= refined.total_delays


def test_cost_model_sensitivity(benchmark, report_sink):
    """On a free-fence machine, Pensieve's penalty nearly vanishes —
    showing Fig. 10's slowdowns are fence cost, not placement artifacts."""
    program = get_program("lu-con")

    def time_pair(costs):
        manual = TSOSimulator(program.compile(manual_fences=True), costs).run().cycles
        fenced_ir = program.compile()
        place_fences(fenced_ir, PipelineVariant.PENSIEVE)
        fenced = TSOSimulator(fenced_ir, costs).run().cycles
        return fenced / manual

    expensive = benchmark.pedantic(
        lambda: time_pair(DEFAULT_COSTS), rounds=1, iterations=1
    )
    free = time_pair(FREE_FENCES)
    assert free < expensive
    report_sink["ablation-costs"] = (
        "Cost-model sensitivity (lu-con, Pensieve vs manual): "
        f"default costs {expensive:.2f}x, free fences {free:.2f}x"
    )


def test_projection_ablation(benchmark, report_sink):
    """Source-side vs target-side cross-block interval projection: both
    sound; the static fence counts differ per program shape."""
    from repro.analysis.escape import EscapeInfo
    from repro.analysis.reachability import ReachabilityTable
    from repro.core.fence_min import plan_fences
    from repro.core.orderings import generate_orderings
    from repro.core.pruning import prune_orderings
    from repro.core.signatures import Variant, detect_acquires

    program_src = get_program("barnes")

    def count(projection: str) -> int:
        program = program_src.compile()
        total = 0
        for func in program.functions.values():
            esc = EscapeInfo(func)
            orderings = generate_orderings(func, esc, ReachabilityTable(func))
            sync = detect_acquires(func, Variant.CONTROL).sync_reads
            pruned, _ = prune_orderings(orderings, sync)
            plan = plan_fences(
                func, pruned, X86_TSO, entry_fence=bool(sync), projection=projection
            )
            total += plan.full_count
        return total

    source_count = benchmark(lambda: count("source"))
    target_count = count("target")
    report_sink["ablation-projection"] = (
        "Cross-block projection (barnes, Control): "
        f"source-side={source_count} mfences, target-side={target_count} mfences"
    )


def test_exact_vs_approximate_orderings(benchmark, report_sink):
    """Exact Shasha-Snir vs the Pensieve approximation on litmus scale:
    the approximation is a superset (that is the imprecision the paper
    prunes back)."""
    from repro.core.orderings import generate_orderings

    test = LITMUS_TESTS["dekker"]
    program = test.compile()

    def exact():
        return DelaySetAnalysis(program).compute()

    exact_result = benchmark(exact)
    lines = ["Exact delay-set vs Pensieve approximation (dekker):"]
    for fn_name, func in program.functions.items():
        esc = EscapeInfo(func)
        approx = generate_orderings(func, esc)
        exact_count = len(exact_result.delays.get(fn_name, []))
        assert len(approx) >= exact_count
        lines.append(
            f"  {fn_name}: exact={exact_count}, pensieve-approx={len(approx)}"
        )
    report_sink["ablation-exact"] = "\n".join(lines)
