"""Tests for the command-line interface."""

import pytest

from repro.cli import main

MP = """
global int flag;
global int data;

fn producer(tid) { data = 1; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""

SB = """
global int x;
global int y;

fn p1(tid) { local r1 = 0; x = 1; r1 = y; observe("r1", r1); }
fn p2(tid) { local r2 = 0; y = 1; r2 = x; observe("r2", r2); }

thread p1(0);
thread p2(1);
"""


@pytest.fixture
def mp_file(tmp_path):
    path = tmp_path / "mp.c"
    path.write_text(MP)
    return str(path)


@pytest.fixture
def sb_file(tmp_path):
    path = tmp_path / "sb.c"
    path.write_text(SB)
    return str(path)


def test_analyze_default(mp_file, capsys):
    assert main(["analyze", mp_file]) == 0
    out = capsys.readouterr().out
    assert "consumer" in out
    assert "reads marked acquire" in out


def test_analyze_all_variants(mp_file, capsys):
    for variant in ("control", "address+control", "pensieve"):
        assert main(["analyze", mp_file, "--variant", variant]) == 0
    assert "mfences" in capsys.readouterr().out


def test_analyze_annotations(mp_file, capsys):
    assert main(["analyze", mp_file, "--annotations"]) == 0
    out = capsys.readouterr().out
    assert "memory_order" in out
    assert "acquire" in out


def test_analyze_emit_ir(mp_file, capsys):
    assert main(["analyze", mp_file, "--emit-ir"]) == 0
    out = capsys.readouterr().out
    assert "fenced IR" in out
    assert "func @consumer" in out


def test_analyze_model_choice(mp_file, capsys):
    assert main(["analyze", mp_file, "--model", "rmo"]) == 0
    assert main(["analyze", mp_file, "--model", "sc"]) == 0


def test_check_mp_all_restored(mp_file, capsys):
    assert main(["check", mp_file]) == 0
    out = capsys.readouterr().out
    assert "SC restored: True" in out


def test_check_sb_reports_breakage(sb_file, capsys):
    # SB is racy: Control does not (and must not) repair it -> exit 1.
    assert main(["check", sb_file]) == 1
    out = capsys.readouterr().out
    assert "NON-SC BEHAVIOUR" in out
    assert "SC restored: False" in out  # control leaves it unfenced
    assert "SC restored: True" in out  # pensieve repairs it


def test_check_state_bound(mp_file, capsys):
    assert main(["check", mp_file, "--max-states", "3"]) == 2
    assert "incomplete" in capsys.readouterr().out


def test_simulate_variants(mp_file, capsys):
    for variant in ("manual", "control", "pensieve"):
        assert main(["simulate", mp_file, "--variant", variant]) == 0
    out = capsys.readouterr().out
    assert "cycles" in out
    assert "observations T1: r=1" in out


def test_simulate_globals_filter(mp_file, capsys):
    assert main(["simulate", mp_file, "--globals", "flag", "data"]) == 0
    out = capsys.readouterr().out
    assert "flag = 1" in out
    assert "data = 1" in out


def test_experiments_quick(capsys):
    assert main(["experiments", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "Fig. 7" in out
    assert "Fig. 10" in out
    assert "matches paper: True" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


def test_fuzz_clean_run_exits_zero(capsys):
    assert main([
        "fuzz", "--seeds", "1", "--shapes", "publish", "--serial",
    ]) == 0
    out = capsys.readouterr().out
    assert "fuzz: 1 cases" in out
    assert "address+control" in out


def test_fuzz_expect_violations_mode(capsys):
    assert main([
        "fuzz", "--seeds", "1", "--shapes", "dekker",
        "--variants", "vanilla", "--serial", "--expect-violations",
    ]) == 0
    out = capsys.readouterr().out
    assert "SOUNDNESS VIOLATION" in out
    assert "LitmusTest(" in out


def test_fuzz_violations_fail_the_run_by_default(capsys):
    assert main([
        "fuzz", "--seeds", "1", "--shapes", "dekker",
        "--variants", "vanilla", "--serial", "--no-shrink",
    ]) == 1


def test_fuzz_expect_violations_fails_without_any(capsys):
    assert main([
        "fuzz", "--seeds", "1", "--shapes", "publish", "--serial",
        "--expect-violations",
    ]) == 1
    assert "expected at least one violation" in capsys.readouterr().err


def test_fuzz_json_report(capsys):
    import json

    assert main([
        "fuzz", "--seeds", "1", "--shapes", "publish", "--serial",
        "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["cases_run"] == 1
    assert payload["summary"]["violations"] == 0
    assert payload["config"]["seeds"] == 1
    assert payload["cases"][0]["report"]["well_synchronized"] is True


def test_fuzz_unknown_shape_exits_two(capsys):
    assert main(["fuzz", "--seeds", "1", "--shapes", "bogus"]) == 2
    assert "unknown shape" in capsys.readouterr().out


def test_fuzz_incomplete_cases_fail_the_gate(capsys):
    # A state bound too small for any exploration must not read as
    # "zero violations": the soundness gate would pass vacuously.
    assert main([
        "fuzz", "--seeds", "1", "--shapes", "publish", "--serial",
        "--max-states", "10",
    ]) == 1
    assert "soundness not established" in capsys.readouterr().err


# --- the repro.api facade surface ------------------------------------------


def test_analyze_json_is_a_loadable_report(mp_file, capsys):
    import json

    from repro.api import load_report

    assert main(["analyze", mp_file, "--json"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert payload["kind"] == "analyze-report"
    assert payload["schema_version"] == 4
    report = load_report(out)
    assert report.full_fences == payload["full_fences"]


def test_check_model_flag_pso(mp_file, capsys):
    # MP is TSO-safe but breaks unfenced on PSO; every variant repairs it.
    assert main(["check", mp_file, "--model", "pso"]) == 0
    out = capsys.readouterr().out
    assert "PSO unfenced" in out
    assert "NON-SC BEHAVIOUR" in out
    assert "SC restored: False" not in out


def test_simulate_model_flag_changes_placement(mp_file, capsys):
    # Placement under SC needs no hardware fences at all.
    assert main(["simulate", mp_file, "--model", "sc"]) == 0
    out = capsys.readouterr().out
    assert "mfences run    : 0" in out


def test_report_renders_saved_artifact(mp_file, tmp_path, capsys):
    assert main(["check", mp_file, "--json"]) == 0
    saved = tmp_path / "check.json"
    saved.write_text(capsys.readouterr().out)
    assert main(["report", str(saved)]) == 0
    out = capsys.readouterr().out
    assert "SC outcomes: " in out
    assert "SC restored: True" in out


def test_report_diff_identical_and_drifted(mp_file, sb_file, tmp_path, capsys):
    assert main(["analyze", mp_file, "--json"]) == 0
    a = tmp_path / "a.json"
    a.write_text(capsys.readouterr().out)
    main(["analyze", sb_file, "--json"])
    b = tmp_path / "b.json"
    b.write_text(capsys.readouterr().out)

    assert main(["report", str(a), "--diff", str(a)]) == 0
    assert "identical" in capsys.readouterr().out
    assert main(["report", str(a), "--diff", str(b)]) == 1
    assert "~ program:" in capsys.readouterr().out


def test_report_rejects_unknown_kind_and_version(tmp_path, capsys):
    import json

    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"kind": "mystery", "schema_version": 1}))
    assert main(["report", str(bogus)]) == 2
    assert "unknown report kind" in capsys.readouterr().err

    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps({"kind": "analyze-report", "schema_version": 99}))
    assert main(["report", str(stale)]) == 2
    assert "schema_version" in capsys.readouterr().err


def test_report_diff_kind_mismatch(mp_file, tmp_path, capsys):
    main(["analyze", mp_file, "--json"])
    a = tmp_path / "a.json"
    a.write_text(capsys.readouterr().out)
    main(["check", mp_file, "--json"])
    c = tmp_path / "c.json"
    c.write_text(capsys.readouterr().out)
    assert main(["report", str(a), "--diff", str(c)]) == 2
    assert "cannot diff" in capsys.readouterr().err
