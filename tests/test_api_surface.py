"""API-stability snapshot test.

``repro.api`` is the repo's stable surface: its exports and every wire
type's schema version are frozen in ``tests/data/api_surface.json``.
An undeclared change fails here (and in the CI api-stability job);
declare intentional changes with::

    PYTHONPATH=src python tools/check_api_surface.py --update
"""

import json
from pathlib import Path

import repro.api
from repro.api import REPORT_KINDS

SNAPSHOT = Path(__file__).parent / "data" / "api_surface.json"


def current_surface() -> dict:
    return {
        "api_all": sorted(repro.api.__all__),
        "schema_versions": {
            kind: cls.SCHEMA_VERSION
            for kind, cls in sorted(REPORT_KINDS.items())
        },
    }


def test_api_surface_matches_snapshot():
    recorded = json.loads(SNAPSHOT.read_text(encoding="utf-8"))
    assert recorded == current_surface(), (
        "repro.api surface changed; declare it with "
        "'PYTHONPATH=src python tools/check_api_surface.py --update'"
    )


def test_every_export_resolves():
    for name in repro.api.__all__:
        assert getattr(repro.api, name) is not None


def test_every_wire_kind_is_versioned():
    for kind, cls in REPORT_KINDS.items():
        assert cls.KIND == kind
        assert isinstance(cls.SCHEMA_VERSION, int) and cls.SCHEMA_VERSION >= 1
