"""Tests for interprocedural acquire detection (the paper's future work).

The intraprocedural algorithms miss acquires split across functions —
the paper's documented limitation (Section 4). These tests show the
summary-based extension catches both split directions, iterates through
call chains, survives recursion, and is a conservative superset of the
intraprocedural detection.
"""

import pytest

from repro.core.interprocedural import detect_acquires_interprocedural
from repro.core.signatures import Variant, detect_acquires
from repro.frontend import compile_source

# The read lives in the callee, the branch in the caller (result rule).
SPLIT_VIA_RETURN = """
global int flag;
global int data;

fn read_flag() {
  return flag;
}

fn consumer(tid) {
  local r = 0;
  r = read_flag();
  while (r == 0) { r = read_flag(); }
  r = data;
  observe("r", r);
}

fn producer(tid) {
  data = 1;
  flag = 1;
}

thread producer(0);
thread consumer(1);
"""

# The read lives in the caller, the branch in the callee (parameter rule).
SPLIT_VIA_PARAM = """
global int flag;
global int data;
global int out;

fn wait_until(v) {
  if (v == 0) { out = out + 1; }
}

fn consumer(tid) {
  local r = 0;
  r = flag;
  wait_until(r);
  r = data;
  observe("r", r);
}

thread consumer(0);
"""


def _addrs(insts):
    return {str(getattr(i, "addr", "")) for i in insts}


def test_return_split_missed_intraprocedurally():
    prog = compile_source(SPLIT_VIA_RETURN, "t")
    for fn in prog.functions.values():
        intra = detect_acquires(fn, Variant.ADDRESS_CONTROL).sync_reads
        assert "@flag" not in _addrs(intra)


def test_return_split_caught_interprocedurally():
    prog = compile_source(SPLIT_VIA_RETURN, "t")
    result = detect_acquires_interprocedural(prog, Variant.CONTROL)
    assert "@flag" in _addrs(result.acquires["read_flag"])
    # and it shows up as an interprocedural-only find
    extra = result.extra_acquires()
    assert "read_flag" in extra


def test_param_split_caught_interprocedurally():
    prog = compile_source(SPLIT_VIA_PARAM, "t")
    intra = detect_acquires(
        prog.functions["consumer"], Variant.CONTROL
    ).sync_reads
    assert "@flag" not in _addrs(intra)
    result = detect_acquires_interprocedural(prog, Variant.CONTROL)
    assert "@flag" in _addrs(result.acquires["consumer"])


TWO_LEVEL = """
global int flag;

fn inner() { return flag; }
fn middle() { return inner(); }

fn consumer(tid) {
  local r = 0;
  while (r == 0) { r = middle(); }
}

thread consumer(0);
"""


def test_two_level_call_chain():
    prog = compile_source(TWO_LEVEL, "t")
    result = detect_acquires_interprocedural(prog, Variant.CONTROL)
    assert "@flag" in _addrs(result.acquires["inner"])


RECURSIVE = """
global int flag;

fn poll(n) {
  if (n == 0) { return flag; }
  return poll(n - 1);
}

fn consumer(tid) {
  local r = 0;
  while (r == 0) { r = poll(3); }
}

thread consumer(0);
"""


def test_recursion_terminates_and_detects():
    prog = compile_source(RECURSIVE, "t")
    result = detect_acquires_interprocedural(prog, Variant.CONTROL)
    assert "@flag" in _addrs(result.acquires["poll"])


def test_no_false_positive_for_unused_results():
    # callee's reads feed its return, but the caller never branches on it
    src = """
    global int g; global int out;
    fn get() { return g; }
    fn f(tid) { out = get(); }
    thread f(0);
    """
    prog = compile_source(src, "t")
    result = detect_acquires_interprocedural(prog, Variant.CONTROL)
    assert "@g" not in _addrs(result.acquires["get"])


def test_address_variant_propagates_through_calls():
    src = """
    global int tab[8]; global int idx;
    fn get_index() { return idx; }
    fn f(tid) {
      local i = get_index();
      local r = tab[i];
      observe("r", r);
    }
    thread f(0);
    """
    prog = compile_source(src, "t")
    control = detect_acquires_interprocedural(prog, Variant.CONTROL)
    assert "@idx" not in _addrs(control.acquires["get_index"])
    addr = detect_acquires_interprocedural(prog, Variant.ADDRESS_CONTROL)
    assert "@idx" in _addrs(addr.acquires["get_index"])


@pytest.mark.parametrize(
    "program_name", ["mp", "dekker", "mp-pointers"]
)
def test_superset_of_intraprocedural_on_litmus(program_name):
    from repro.memmodel.litmus import LITMUS_TESTS

    prog = LITMUS_TESTS[program_name].compile()
    result = detect_acquires_interprocedural(prog, Variant.ADDRESS_CONTROL)
    for name, func in prog.functions.items():
        intra = detect_acquires(func, Variant.ADDRESS_CONTROL).sync_reads
        assert set(intra) <= set(result.acquires[name]), name


@pytest.mark.parametrize("kernel_name", ["dekker", "mcs-lock", "michael-scott-q"])
def test_superset_of_intraprocedural_on_kernels(kernel_name):
    from repro.programs.sync_kernels import SYNC_KERNELS

    prog = SYNC_KERNELS[kernel_name].compile()
    result = detect_acquires_interprocedural(prog, Variant.CONTROL)
    for name, func in prog.functions.items():
        intra = detect_acquires(func, Variant.CONTROL).sync_reads
        assert set(intra) <= set(result.acquires[name]), name


def test_no_splits_in_evaluation_suite():
    # The paper's empirical claim: real programs never split read and
    # branch across functions. Our models preserve that: aside from the
    # lock/barrier library (whose acquires are already intraprocedural),
    # interprocedural analysis finds nothing new in the suite's own code
    # beyond argument-flow conservatism.
    from repro.programs import get_program

    prog = get_program("fft").compile()
    result = detect_acquires_interprocedural(prog, Variant.CONTROL)
    intra_total = sum(len(v) for v in result.intraprocedural.values())
    inter_total = sum(len(v) for v in result.acquires.values())
    assert inter_total >= intra_total


def test_pipeline_interprocedural_fences_split_acquire():
    """End to end: the split-via-return program gets the w->r fence only
    with the interprocedural pipeline, and the fenced program restores
    SC data-read behaviour under TSO."""
    from repro.core.pipeline import FencePlacer, PipelineVariant
    from repro.memmodel.sc import SCExplorer
    from repro.memmodel.tso import TSOExplorer

    src = """
    global int turnA;
    global int turnB;
    global int z;

    fn read_turn(which) {
      if (which == 0) { return turnB; }
      return turnA;
    }

    fn left(tid) {
      local r = 0;
      turnA = 1;
      r = read_turn(0);
      if (r == 0) { z = z + 1; observe("in", 1); }
    }

    fn right(tid) {
      local r = 0;
      turnB = 1;
      r = read_turn(1);
      if (r == 0) { z = z + 1; observe("in", 1); }
    }

    thread left(0);
    thread right(1);
    """
    # Intraprocedural Control misses the acquire (read in callee) and
    # leaves the Dekker-style w->r unfenced: TSO breaks.
    intra_fenced = compile_source(src, "intra")
    FencePlacer(PipelineVariant.CONTROL).place(intra_fenced)
    sc = SCExplorer(compile_source(src, "base")).explore()
    tso_intra = TSOExplorer(intra_fenced).explore()
    assert tso_intra.observation_sets() != sc.observation_sets()

    # The interprocedural pipeline finds it and repairs the program.
    inter_fenced = compile_source(src, "inter")
    analysis = FencePlacer(
        PipelineVariant.CONTROL, interprocedural=True
    ).place(inter_fenced)
    assert analysis.total_sync_reads >= 1
    tso_inter = TSOExplorer(inter_fenced).explore()
    assert tso_inter.observation_sets() == sc.observation_sets()


def test_pipeline_interprocedural_superset_counts():
    from repro.core.pipeline import FencePlacer, PipelineVariant
    from repro.programs import get_program

    program = get_program("radiosity")
    intra = FencePlacer(PipelineVariant.CONTROL).analyze(program.compile())
    inter = FencePlacer(
        PipelineVariant.CONTROL, interprocedural=True
    ).analyze(program.compile())
    assert inter.total_sync_reads >= intra.total_sync_reads
    assert inter.full_fence_count >= intra.full_fence_count
