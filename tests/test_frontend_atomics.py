"""End-to-end tests for C11-style atomic qualifiers.

``atomic_store(&g, v, release)`` / ``atomic_load(&g, acquire)`` carry
their ordering in the IR, discharge the matching delay-graph
obligations (so message-passing needs *zero* fences), and stay SC on
every explorer model. ``relaxed`` marks the access atomic but orders
nothing — it needs fences exactly like a plain access.
"""

from __future__ import annotations

import pytest

from repro.core.machine_models import MODELS
from repro.frontend import ParseError, compile_source
from repro.ir.instructions import Load, Store
from repro.registry.variants import get_variant
from repro.validate.oracle import EXPLORERS, run_oracle

WEAK_MODELS = tuple(k for k in sorted(EXPLORERS) if k != "sc")

MP_ATOMIC = """
global int data;
global int flag;

fn producer(tid) {
  data = 1;
  atomic_store(&flag, 1, release);
}

fn consumer(tid) {
  local d = 0;
  while (atomic_load(&flag, acquire) == 0) { }
  d = data;
  observe("r", d);
}

thread producer(0);
thread consumer(1);
"""

MP_RELAXED = MP_ATOMIC.replace("release", "relaxed").replace(
    "acquire", "relaxed"
)


def test_qualifiers_survive_into_the_ir():
    program = compile_source(MP_ATOMIC, "mp-atomic")
    producer = program.functions["producer"]
    consumer = program.functions["consumer"]
    stores = [
        i
        for b in producer.blocks
        for i in b.instructions
        if isinstance(i, Store)
    ]
    assert [s.ordering for s in stores if s.ordering] == ["release"]
    assert None in {s.ordering for s in stores}  # plain data store
    loads = [
        i
        for b in consumer.blocks
        for i in b.instructions
        if isinstance(i, Load)
    ]
    assert "acquire" in {ld.ordering for ld in loads}
    # Plain accesses stay unqualified.
    assert None in {ld.ordering for ld in loads}


@pytest.mark.parametrize("model_key", sorted(MODELS))
def test_acquire_release_mp_needs_zero_fences(model_key):
    program = compile_source(MP_ATOMIC, "mp-atomic")
    analysis = get_variant("address+control").analyze(
        program, MODELS[model_key]
    )
    assert (
        sum(len(fa.plan.full_fences) for fa in analysis.functions.values())
        == 0
    )


def test_relaxed_atomics_still_need_fences():
    """``relaxed`` orders nothing: the same MP shape keeps its fences
    on a model that reorders both sides of the handoff."""
    program = compile_source(MP_RELAXED, "mp-atomic-relaxed")
    analysis = get_variant("address+control").analyze(
        program, MODELS["power"]
    )
    assert (
        sum(len(fa.plan.full_fences) for fa in analysis.functions.values())
        > 0
    )


@pytest.mark.parametrize("model", WEAK_MODELS)
@pytest.mark.parametrize("synthesis", ("greedy", "optimal"))
def test_atomic_mp_stays_sc_unfenced_on_every_model(model, synthesis):
    """The discharge is sound end-to-end: the qualified handoff passes
    the differential oracle on every explorer with no fences added."""
    report = run_oracle(
        MP_ATOMIC, "mp-atomic", model=model, synthesis=synthesis
    )
    assert report.complete, report.skipped
    assert report.violations == ()
    assert report.full_restores_sc


def test_bad_qualifier_is_a_parse_error():
    with pytest.raises(ParseError):
        compile_source(
            MP_ATOMIC.replace("release", "consume"), "bad-qualifier"
        )
    with pytest.raises(ParseError):
        compile_source(
            MP_ATOMIC.replace("acquire", "release"), "bad-load-qualifier"
        )
