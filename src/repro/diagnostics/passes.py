"""The built-in lint passes, registered in a pluggable catalog.

A :class:`LintPass` is a pure function from a :class:`LintContext` to
findings, registered in :data:`LINT_PASSES` (a
:class:`~repro.registry.core.Registry`, like detectors/models/arches).
``repro lint`` runs every registered pass by default; request a subset
with ``--passes``.

The shipped passes:

* ``racy-access-pair`` — the static DRF gate itself (RACE001), with
  explorer-backed verdicts and missed-race findings (RACE002);
* ``redundant-fence`` — a fence with no memory access between it and
  the previous barrier orders nothing (FENCE101);
* ``weak-flavor-insufficient`` — a flavored fence whose kill set does
  not cover the ordering kinds crossing its cut (FENCE102; needs an
  arch backend to resolve the flavor);
* ``unfenced-publish`` — a pointer published without a barrier after
  the pointee's initialization, on a model that reorders ``w->w``
  (FENCE103);
* ``suboptimal-fence-cost`` — the greedy count-minimizing plan is
  strictly costlier than the min-cost synthesis of :mod:`repro.synth`
  on the requested arch (FENCE104; reports the optimizer's witness
  cut).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.analysis.aliasing import GlobalObj
from repro.core.machine_models import MemoryModel, OrderKind
from repro.diagnostics.findings import Finding, SourceSpan, span_of
from repro.engine.context import AnalysisContext
from repro.ir.function import BasicBlock, Function, Program
from repro.ir.instructions import Fence, FenceKind, Store
from repro.races.detector import StaticRaceReport, confirm_candidates
from repro.races.mhp import ThreadStructure
from repro.registry.core import Registry

if TYPE_CHECKING:  # runtime-lazy: repro.arch itself imports repro.core
    from repro.arch.backend import ArchBackend


@dataclass
class LintContext:
    """Everything a pass may consult, plus a scratch area for
    cross-pass facts the report surfaces (explorer verdict summary,
    fuzz-seed material)."""

    program: Program
    context: AnalysisContext
    variant: str = "address+control"
    model: MemoryModel | None = None
    arch: ArchBackend | None = None
    confirm: bool = True
    max_traces: int = 400
    max_actions: int = 400
    extras: dict = field(default_factory=dict)

    def executed_functions(self) -> tuple[Function, ...]:
        structure = ThreadStructure(self.program)
        return tuple(
            self.program.functions[name]
            for name in structure.executed_functions()
        )


@dataclass(frozen=True)
class LintPass:
    """One registered pass: key, primary code, and the runner."""

    key: str
    codes: tuple[str, ...]
    description: str
    run: Callable[[LintContext], Iterable[Finding]]


LINT_PASSES: Registry[LintPass] = Registry("lint pass")


_PassRunner = Callable[[LintContext], Iterable[Finding]]


def lint_pass(
    key: str, codes: tuple[str, ...], description: str
) -> Callable[[_PassRunner], _PassRunner]:
    """Decorator registering a pass runner under ``key``."""

    def decorator(fn: _PassRunner) -> _PassRunner:
        LINT_PASSES.register(
            key, LintPass(key=key, codes=codes, description=description, run=fn)
        )
        return fn

    return decorator


# --- RACE001 / RACE002: the DRF gate ------------------------------------


def _race_severity(verdict: str) -> str:
    if verdict == "confirmed":
        return "error"
    if verdict == "refuted":
        return "note"
    return "warning"


def _pair_spans(
    ctx: LintContext, candidate_or_pair: Iterable[tuple[str, int]]
) -> tuple[SourceSpan, ...]:
    spans = []
    for func_name, uid in sorted(candidate_or_pair):
        func = ctx.program.functions[func_name]
        for inst in func.instructions():
            if inst.uid == uid:
                spans.append(span_of(func, inst))
                break
    return tuple(spans)


@lint_pass(
    "racy-access-pair",
    ("RACE001", "RACE002"),
    "statically unordered conflicting access pairs, explorer-audited",
)
def _racy_access_pair(ctx: LintContext) -> Iterable[Finding]:
    report: StaticRaceReport = ctx.context.engine.get(
        "race_candidates", ctx.variant
    )
    verdicts = None
    if ctx.confirm:
        verdicts = confirm_candidates(
            ctx.program,
            report,
            max_traces=ctx.max_traces,
            max_actions=ctx.max_actions,
        )
        ctx.extras["explorer_complete"] = verdicts.complete
        ctx.extras["traces_checked"] = verdicts.traces_checked

    confirmed = refuted = unknown = 0
    findings = []
    for candidate in report.candidates:
        verdict = verdicts.verdict_of(candidate) if verdicts else ""
        witness = ""
        if verdict == "confirmed":
            confirmed += 1
            witness = verdicts.witnesses[candidate.key].rendering
        elif verdict == "refuted":
            refuted += 1
        elif verdict == "unknown":
            unknown += 1
        severity = _race_severity(verdict) if verdict else "warning"
        findings.append(
            Finding(
                code="RACE001",
                severity=severity,
                message=(
                    f"conflicting unsynchronized accesses to "
                    f"'{candidate.location}' may race "
                    f"({candidate.first.function} vs "
                    f"{candidate.second.function})"
                ),
                spans=_pair_spans(ctx, candidate.key),
                pass_id="racy-access-pair",
                verdict=verdict,
                witness=witness,
            )
        )

    if verdicts is not None:
        for miss in verdicts.missed:
            confirmed += 1
            findings.append(
                Finding(
                    code="RACE002",
                    severity="error",
                    message=(
                        f"dynamic race on '{miss.location}' that the "
                        f"static DRF gate missed — detector gap; "
                        f"program recorded as a fuzz seed"
                    ),
                    spans=_pair_spans(ctx, miss.pair),
                    pass_id="racy-access-pair",
                    verdict="confirmed",
                    witness=miss.rendering,
                )
            )
        if verdicts.missed:
            ctx.extras["fuzz_seed"] = True
    ctx.extras["confirmed_races"] = confirmed
    ctx.extras["refuted_candidates"] = refuted
    ctx.extras["unknown_candidates"] = unknown
    return findings


# --- FENCE101: redundant fence ------------------------------------------


@lint_pass(
    "redundant-fence",
    ("FENCE101",),
    "fences with no memory access since the previous barrier",
)
def _redundant_fence(ctx: LintContext) -> Iterable[Finding]:
    findings = []
    for func in ctx.executed_functions():
        for block in func.blocks:
            barrier_fresh = False  # a barrier with nothing to order yet
            for inst in block.instructions:
                if (isinstance(inst, Fence) and inst.kind is FenceKind.FULL) or (
                    inst.is_atomic_rmw()
                    and ctx.model is not None
                    and ctx.model.rmw_is_full_fence
                ):
                    if barrier_fresh and isinstance(inst, Fence):
                        findings.append(
                            Finding(
                                code="FENCE101",
                                severity="note",
                                message=(
                                    "redundant fence: no memory access "
                                    "since the previous barrier"
                                ),
                                spans=(span_of(func, inst),),
                                pass_id="redundant-fence",
                            )
                        )
                    barrier_fresh = True
                elif inst.is_memory_access():
                    barrier_fresh = False
    return findings


# --- FENCE102: flavored fence too weak for its cut ----------------------


def _cut_kinds(block: BasicBlock, fence_index: int) -> frozenset[OrderKind]:
    """Ordering kinds crossing the fence's cut: every (access before,
    access after) pair inside the block, bounded by adjacent fences."""
    before = []
    for inst in reversed(block.instructions[:fence_index]):
        if inst.is_fence():
            break
        if inst.is_memory_access():
            before.append(inst)
    after = []
    for inst in block.instructions[fence_index + 1 :]:
        if inst.is_fence():
            break
        if inst.is_memory_access():
            after.append(inst)
    return frozenset(
        OrderKind.of(src.writes_memory(), dst.writes_memory())
        for src in before
        for dst in after
    )


@lint_pass(
    "weak-flavor-insufficient",
    ("FENCE102",),
    "flavored fences whose kill set misses orderings crossing the cut",
)
def _weak_flavor(ctx: LintContext) -> Iterable[Finding]:
    if ctx.arch is None:
        return ()
    findings = []
    for func in ctx.executed_functions():
        for block in func.blocks:
            for i, inst in enumerate(block.instructions):
                if not (isinstance(inst, Fence) and inst.kind is FenceKind.FULL):
                    continue
                if inst.flavor is None or not ctx.arch.has_flavor(inst.flavor):
                    continue
                flavor = ctx.arch.flavor(inst.flavor)
                needed = _cut_kinds(block, i)
                if ctx.model is not None:
                    needed = frozenset(
                        k for k in needed if ctx.model.needs_full_fence(k)
                    )
                if needed and not flavor.sufficient_for(needed):
                    missing = needed - flavor.kills
                    findings.append(
                        Finding(
                            code="FENCE102",
                            severity="error",
                            message=(
                                f"fence flavor '{flavor.name}' kills "
                                f"{{{', '.join(sorted(k.value for k in flavor.kills))}}} "
                                f"but the cut needs "
                                f"{{{', '.join(sorted(k.value for k in missing))}}}"
                            ),
                            spans=(span_of(func, inst),),
                            pass_id="weak-flavor-insufficient",
                        )
                    )
    return findings


# --- FENCE103: unfenced publish of an escaping location -----------------


@lint_pass(
    "unfenced-publish",
    ("FENCE103",),
    "pointer publishes with no barrier after the pointee's init",
)
def _unfenced_publish(ctx: LintContext) -> Iterable[Finding]:
    if ctx.model is None or not ctx.model.needs_full_fence(OrderKind.WW):
        return ()  # the model keeps w->w in order; publish is safe
    findings = []
    for func in ctx.executed_functions():
        points_to = ctx.context.points_to(func)
        for block in func.blocks:
            for i, inst in enumerate(block.instructions):
                if not isinstance(inst, Store):
                    continue
                published = frozenset(
                    o.name
                    for o in points_to.pointees(inst.value)
                    if isinstance(o, GlobalObj)
                )
                if not published:
                    continue  # stores a plain value, not a pointer
                addr_names = frozenset(
                    o.name
                    for o in points_to.pointees(inst.addr)
                    if isinstance(o, GlobalObj)
                )
                if not addr_names or addr_names & published:
                    continue  # not publishing through a shared cell
                # Walk back: an init write to the pointee with no
                # barrier in between means the publish can overtake it.
                barrier = False
                for prev in reversed(block.instructions[:i]):
                    if (
                        prev.is_fence() and prev.kind is FenceKind.FULL
                    ) or (
                        prev.is_atomic_rmw() and ctx.model.rmw_is_full_fence
                    ):
                        barrier = True
                        continue
                    if not isinstance(prev, Store):
                        continue
                    init_names = frozenset(
                        o.name
                        for o in points_to.pointees(prev.addr)
                        if isinstance(o, GlobalObj)
                    )
                    if init_names & published and not barrier:
                        findings.append(
                            Finding(
                                code="FENCE103",
                                severity="warning",
                                message=(
                                    f"publish of "
                                    f"'{sorted(init_names & published)[0]}' "
                                    f"through "
                                    f"'{sorted(addr_names)[0]}' without a "
                                    f"fence after its initialization: "
                                    f"'{ctx.model.name}' reorders w->w"
                                ),
                                spans=(
                                    span_of(func, prev),
                                    span_of(func, inst),
                                ),
                                pass_id="unfenced-publish",
                            )
                        )
                        break
    return findings


# --- FENCE104: greedy plan strictly costlier than optimal ---------------


@lint_pass(
    "suboptimal-fence-cost",
    ("FENCE104",),
    "greedy fence plans strictly costlier than the min-cost synthesis",
)
def _suboptimal_fence_cost(ctx: LintContext) -> Iterable[Finding]:
    if ctx.arch is None or ctx.model is None:
        return ()  # cost is only defined against a flavor catalog
    from repro.registry.variants import get_variant
    from repro.synth import synthesize_plan

    analysis = get_variant(ctx.variant).analyze(
        ctx.program, ctx.model, context=ctx.context
    )
    findings = []
    for name, fa in analysis.functions.items():
        plan = synthesize_plan(
            fa.function, fa.pruned, ctx.model, ctx.arch,
            entry_fence=fa.plan.entry_fence,
        )
        if plan.cost >= plan.greedy_cost:
            continue
        cut = ", ".join(
            f"{label}@{gap}" for label, gap in plan.witness_cut
        )
        findings.append(
            Finding(
                code="FENCE104",
                severity="note",
                message=(
                    f"greedy fence plan for '{name}' costs "
                    f"{plan.greedy_cost} cycles on '{ctx.arch.key}'; "
                    f"min-cost synthesis achieves {plan.cost} "
                    f"({plan.savings} saved"
                    + (f"; witness cut: {cut}" if cut else "")
                    + ")"
                ),
                pass_id="suboptimal-fence-cost",
            )
        )
    return findings
