"""Pensieve-style thread-escape analysis.

Per the paper (Section 2.1): "a conservative thread-escape analysis is
performed on each access in a function, to determine a set of
potentially escaping accesses E ... all references to memory that
cannot be proven to be restricted to the local function must be marked
as potentially escaping."

An access is *local* (non-escaping) only if its address provably
denotes non-escaped ``alloca`` slots; everything else — globals,
pointers from parameters, values loaded from shared memory, call
results — is potentially escaping.
"""

from __future__ import annotations

from repro.analysis.aliasing import PointsTo
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.util.orderedset import OrderedSet


class EscapeInfo:
    """Classification of every memory access in one function."""

    def __init__(self, func: Function, points_to: PointsTo | None = None) -> None:
        self.function = func
        self.points_to = points_to if points_to is not None else PointsTo(func)
        self.escaping: OrderedSet[Instruction] = OrderedSet()
        self.local: OrderedSet[Instruction] = OrderedSet()
        for inst in func.instructions():
            if not inst.is_memory_access():
                continue
            addr = inst.address_operand()
            if addr is not None and self.points_to.is_local_address(addr):
                self.local.add(inst)
            else:
                self.escaping.add(inst)

    def is_escaping(self, inst: Instruction) -> bool:
        return inst in self.escaping

    @property
    def escaping_reads(self) -> OrderedSet[Instruction]:
        """Potentially thread-escaping reads (loads and RMWs)."""
        return OrderedSet(i for i in self.escaping if i.reads_memory())

    @property
    def escaping_writes(self) -> OrderedSet[Instruction]:
        """Potentially thread-escaping writes (stores and RMWs).

        The paper treats *every* escaping write as a release
        (Section 1.3: "as in Pensieve, conservatively consider every
        shared write (escaping write) to be a release").
        """
        return OrderedSet(i for i in self.escaping if i.writes_memory())

    def summary(self) -> dict[str, int]:
        return {
            "accesses": len(self.escaping) + len(self.local),
            "escaping": len(self.escaping),
            "local": len(self.local),
            "escaping_reads": len(self.escaping_reads),
            "escaping_writes": len(self.escaping_writes),
        }
