"""Statistics helpers used by the experiment harness.

The paper reports geometric means for all normalized results
(footnote 7), so :func:`geomean` is the aggregation used throughout
:mod:`repro.experiments`.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    Raises ``ValueError`` on an empty sequence or non-positive entries,
    which would silently corrupt normalized results otherwise.
    """
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    for v in values:
        if v <= 0:
            raise ValueError(f"geomean requires positive values, got {v}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def normalize(values: Mapping[str, float], baseline: Mapping[str, float]) -> dict[str, float]:
    """Per-key ratio ``values[k] / baseline[k]``.

    Used to normalize simulated execution times against the manual
    fence placement baseline (Fig. 10).
    """
    missing = set(values) - set(baseline)
    if missing:
        raise KeyError(f"baseline missing keys: {sorted(missing)}")
    return {k: values[k] / baseline[k] for k in values}


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100.0
    lo = math.floor(pos)
    hi = math.ceil(pos)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac
