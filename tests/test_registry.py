"""Tests for the pluggable registries (repro.registry)."""

import pytest

from repro.core.machine_models import PSO, X86_TSO
from repro.core.pipeline import PipelineVariant, analyze_program
from repro.frontend import compile_source
from repro.memmodel.pso import PSOExplorer
from repro.memmodel.sc import SCExplorer
from repro.memmodel.tso import TSOExplorer
from repro.registry import (
    EXPLORERS,
    MODELS,
    ProgramSpec,
    Registry,
    VARIANTS,
    detection_variant_keys,
    get_model,
    get_variant,
    model_keys,
    pipeline_variant_keys,
    resolve_spec,
    trusted_variant_keys,
    weak_explorer_for,
    weak_model_keys,
)

MP = """
global int flag;
global int data;

fn producer(tid) { data = 1; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""


# --- generic Registry -------------------------------------------------------


def test_registry_register_and_lookup():
    reg = Registry("widget")
    reg.register("a", 1)

    @reg.register("b")
    def make_b():
        return 2

    assert reg.get("a") == 1
    assert reg.get("b") is make_b
    assert reg.keys() == ("a", "b")
    assert "a" in reg and "c" not in reg
    assert len(reg) == 2


def test_registry_unknown_key_message():
    reg = Registry("widget")
    reg.register("a", 1)
    with pytest.raises(KeyError, match="unknown widget 'z'; known: a"):
        reg.get("z")


def test_registry_duplicate_rejected():
    reg = Registry("widget")
    reg.register("a", 1)
    with pytest.raises(ValueError, match="duplicate widget 'a'"):
        reg.register("a", 2)


# --- variants ---------------------------------------------------------------


def test_variant_catalog_shape():
    assert pipeline_variant_keys() == ("pensieve", "control", "address+control")
    assert detection_variant_keys() == (
        "vanilla", "pensieve", "control", "address+control",
    )
    assert trusted_variant_keys() == ("address+control", "pensieve")
    assert set(VARIANTS.keys()) == set(detection_variant_keys())


def test_variant_entries_map_to_pipeline_variants():
    for key in pipeline_variant_keys():
        assert get_variant(key).pipeline_variant.value == key
        assert not get_variant(key).null_detector
    assert get_variant("vanilla").null_detector


def test_variant_analyze_matches_pipeline():
    program = compile_source(MP, "mp")
    entry = get_variant("control")
    via_registry = entry.analyze(program, X86_TSO)
    direct = analyze_program(
        compile_source(MP, "mp"), PipelineVariant.CONTROL, X86_TSO
    )
    assert via_registry.full_fence_count == direct.full_fence_count
    assert via_registry.total_sync_reads == direct.total_sync_reads


def test_null_detector_analyze_has_zero_acquires():
    program = compile_source(MP, "mp")
    analysis = get_variant("vanilla").analyze(program, X86_TSO)
    assert analysis.total_sync_reads == 0
    # No acquires -> nothing survives pruning into reads, so vanilla
    # can never place more full fences than pensieve.
    pensieve = get_variant("pensieve").analyze(
        compile_source(MP, "mp"), X86_TSO
    )
    assert analysis.full_fence_count <= pensieve.full_fence_count


def test_unknown_variant_message():
    with pytest.raises(KeyError, match="unknown variant 'bogus'"):
        get_variant("bogus")


# --- models and explorers ---------------------------------------------------


def test_model_catalog_shape():
    from repro.memmodel.relaxed import ARMExplorer, POWERExplorer

    assert model_keys() == ("sc", "x86-tso", "pso", "rmo", "arm", "power")
    assert weak_model_keys() == ("x86-tso", "pso", "arm", "power")
    assert EXPLORERS.get("sc") is SCExplorer
    assert EXPLORERS.get("x86-tso") is TSOExplorer
    assert EXPLORERS.get("pso") is PSOExplorer
    assert EXPLORERS.get("arm") is ARMExplorer
    assert EXPLORERS.get("power") is POWERExplorer


def test_model_entries_wrap_machine_models():
    assert get_model("x86-tso").model is X86_TSO
    assert get_model("pso").model is PSO
    assert get_model("x86-tso").display == "TSO"


def test_weak_explorer_dispatch():
    cls, machine = weak_explorer_for("pso")
    assert cls is PSOExplorer
    assert machine is PSO
    with pytest.raises(KeyError, match="no weak-memory explorer"):
        weak_explorer_for("rmo")
    with pytest.raises(KeyError, match="unknown model 'bogus'"):
        weak_explorer_for("bogus")


# --- program sources --------------------------------------------------------


def test_resolve_corpus_spec():
    resolved = resolve_spec(ProgramSpec.corpus("fft"))
    assert resolved.name == "fft"
    assert "fn " in resolved.source


def test_resolve_file_spec(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(MP)
    resolved = resolve_spec(ProgramSpec.file(str(path)))
    assert resolved.name == "prog"
    assert resolved.source == MP


def test_resolve_inline_spec():
    resolved = resolve_spec(ProgramSpec.inline(MP, name="mine"))
    assert resolved.name == "mine"
    assert resolved.source == MP


def test_resolve_litmus_spec():
    resolved = resolve_spec(ProgramSpec.litmus("dekker"))
    assert "fn " in resolved.source
    with pytest.raises(KeyError, match="unknown litmus test"):
        resolve_spec(ProgramSpec.litmus("bogus"))


def test_unknown_source_kind():
    with pytest.raises(KeyError, match="unknown program source kind"):
        resolve_spec(ProgramSpec(kind="url", name="x"))


def test_program_spec_payload_round_trip():
    spec = ProgramSpec.file("/tmp/x.c", name="x", manual_fences=True)
    assert ProgramSpec.from_payload(spec.to_payload()) == spec


def test_unknown_model_message():
    assert "rmo" in MODELS
    with pytest.raises(KeyError, match="unknown model 'bogus'"):
        get_model("bogus")


def test_oracle_variant_constants_track_the_live_registry():
    """DETECTION_VARIANTS/TRUSTED_VARIANTS are registry views, not
    import-time snapshots: a detector registered after import is
    visible to the fuzzer immediately."""
    from repro.core.pipeline import PipelineVariant
    from repro.registry.variants import DetectionVariant
    from repro.validate import oracle

    assert oracle.DETECTION_VARIANTS == detection_variant_keys()
    assert oracle.TRUSTED_VARIANTS == trusted_variant_keys()

    VARIANTS.register(
        "late-test",
        DetectionVariant(key="late-test",
                         pipeline_variant=PipelineVariant.CONTROL),
    )
    try:
        assert "late-test" in detection_variant_keys()
        assert "late-test" in oracle.DETECTION_VARIANTS
    finally:
        del VARIANTS._entries["late-test"]
    assert "late-test" not in oracle.DETECTION_VARIANTS
