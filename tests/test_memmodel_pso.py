"""Tests for the PSO explorer and PSO-targeted fence placement.

PSO relaxes w->w: message passing genuinely breaks without fences, so
the pipeline configured with the PSO machine model must fence the
*release side* — exercising the Table-I orderings beyond TSO's w->r.
"""

import pytest

from repro.core.machine_models import PSO
from repro.core.pipeline import FencePlacer, PipelineVariant
from repro.frontend import compile_source
from repro.memmodel.litmus import LITMUS_TESTS
from repro.memmodel.pso import PSOExplorer
from repro.memmodel.sc import SCExplorer
from repro.memmodel.tso import TSOExplorer


def test_mp_breaks_under_pso():
    # The flag store may drain before the data store: stale read appears.
    test = LITMUS_TESTS["mp"]
    sc = SCExplorer(test.compile()).explore()
    pso = PSOExplorer(test.compile()).explore()
    assert sc.observation_sets() == {((1, "r", 1),)}
    assert ((1, "r", 0),) in pso.observation_sets()  # the PSO-only stale read


def test_mp_safe_under_tso_but_not_pso():
    test = LITMUS_TESTS["mp"]
    tso = TSOExplorer(test.compile()).explore()
    pso = PSOExplorer(test.compile()).explore()
    assert tso.observation_sets() < pso.observation_sets()


def test_pso_superset_of_tso_on_litmus():
    for name, test in LITMUS_TESTS.items():
        if name == "iriw":
            continue  # 4-thread: covered separately with a bound
        tso = TSOExplorer(test.compile()).explore()
        pso = PSOExplorer(test.compile()).explore()
        assert tso.observation_sets() <= pso.observation_sets(), name


def test_iriw_still_sc_under_pso():
    # PSO buffers are per-thread: still multi-copy atomic.
    test = LITMUS_TESTS["iriw"]
    sc = SCExplorer(test.compile()).explore()
    pso = PSOExplorer(test.compile(), max_states=2_000_000).explore()
    assert pso.complete
    assert pso.observation_sets() == sc.observation_sets()


def test_same_address_stores_stay_ordered():
    # Coherence: a thread's stores to one location drain in order.
    src = """
    global x;
    fn w(tid) { x = 1; x = 2; }
    fn r(tid) {
      local a = 0;
      local b = 0;
      a = x;
      b = x;
      observe("a", a);
      observe("b", b);
    }
    thread w(0);
    thread r(1);
    """
    pso = PSOExplorer(compile_source(src, "coherence")).explore()
    for outcome in pso.outcomes:
        values = dict(((k, v) for _, k, v in outcome.observations))
        if values["a"] == 2:
            assert values["b"] == 2  # never 2 then an older value


@pytest.mark.parametrize(
    "variant", [PipelineVariant.CONTROL, PipelineVariant.PENSIEVE]
)
def test_pipeline_with_pso_model_repairs_mp(variant):
    test = LITMUS_TESTS["mp"]
    fenced = test.compile()
    analysis = FencePlacer(variant, PSO).place(fenced)
    assert analysis.full_fence_count >= 1  # the producer-side w->w fence
    sc = SCExplorer(test.compile()).explore()
    pso = PSOExplorer(fenced).explore()
    assert pso.observation_sets() == sc.observation_sets()


def test_tso_placement_insufficient_for_pso():
    # Fences chosen for TSO (w->r only) do not repair PSO's w->w relax:
    # the model parameter genuinely matters.
    from repro.core.machine_models import X86_TSO

    test = LITMUS_TESTS["mp"]
    fenced = test.compile()
    FencePlacer(PipelineVariant.CONTROL, X86_TSO).place(fenced)
    sc = SCExplorer(test.compile()).explore()
    pso = PSOExplorer(fenced).explore()
    assert pso.observation_sets() != sc.observation_sets()


def test_handoff_multiword_under_pso():
    src = """
    global mailbox[2];
    global ready;

    fn sender(tid) {
      mailbox[0] = 7;
      mailbox[1] = 8;
      ready = 1;
    }

    fn receiver(tid) {
      local s = 0;
      while (ready == 0) { }
      s = mailbox[0] + mailbox[1];
      observe("s", s);
    }

    thread sender(0);
    thread receiver(1);
    """
    fenced = compile_source(src, "h")
    FencePlacer(PipelineVariant.CONTROL, PSO).place(fenced)
    sc = SCExplorer(compile_source(src, "h")).explore()
    pso = PSOExplorer(fenced).explore()
    assert pso.observation_sets() == sc.observation_sets() == {((1, "s", 15),)}
