"""Exact Shasha-Snir delay-set analysis for whole (small) programs.

The practical pipeline approximates Delay-set analysis the Pensieve way
(escape analysis + pairwise orderings). This module implements the real
thing — critical-cycle enumeration over the mixed program-order /
conflict graph — at litmus scale, for three uses:

* the paper's Fig. 2 worked example (5 fences -> 2 after pruning);
* ground truth in tests (MP, SB, Dekker delay pairs);
* the ablation benchmark comparing exact vs approximated orderings.

Critical cycles are enumerated as simple cycles in the combined graph
with at most two accesses per thread (Shasha & Snir's minimality
condition; with <= 2 accesses per thread, each thread contributes at
most one transitive program-order edge, so no cycle has two
consecutive program-order edges). We do not filter chords, which can
only *add* delay pairs — a conservative over-approximation, consistent
with every practical tool built on this analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.aliasing import UNKNOWN, AllocaObj, GlobalObj, PointsTo
from repro.core.orderings import Access, Ordering, OrderingSet, logical_accesses
from repro.engine.context import AnalysisContext
from repro.ir.function import Program


@dataclass(frozen=True)
class ThreadAccess:
    """A logical access tagged with the thread (index) executing it."""

    thread: int
    access: Access

    def __repr__(self) -> str:
        return f"T{self.thread}:{self.access!r}"


@dataclass
class CriticalCycle:
    """One critical cycle plus its program-order (delay) and conflict edges."""

    nodes: tuple[ThreadAccess, ...]
    delays: tuple[tuple[ThreadAccess, ThreadAccess], ...]
    conflicts: tuple[tuple[ThreadAccess, ThreadAccess], ...] = ()


@dataclass
class DelaySetResult:
    program: Program
    cycles: list[CriticalCycle]
    # Delay (program-order) edges per function name.
    delays: dict[str, list[Ordering]] = field(default_factory=dict)

    def ordering_set(self, func_name: str) -> OrderingSet:
        func = self.program.functions[func_name]
        return OrderingSet(func, self.delays.get(func_name, []))

    @property
    def total_delays(self) -> int:
        return sum(len(v) for v in self.delays.values())


class DelaySetAnalysis:
    """Shasha-Snir critical cycles over a whole program's static accesses.

    ``exclude_coherence_cycles`` drops cycles whose conflict edges all
    sit on one provably-identical location: cache coherence already
    orders same-location accesses on every real machine (including the
    relaxed ones the paper targets), so such cycles — CoRR and
    coherence shapes — need no fences. The paper's Fig. 2 worked
    example implicitly applies the same rule.
    """

    def __init__(
        self,
        program: Program,
        max_cycle_nodes: int = 8,
        exclude_coherence_cycles: bool = True,
        context: AnalysisContext | None = None,
    ) -> None:
        self.program = program
        self.max_cycle_nodes = max_cycle_nodes
        self.exclude_coherence_cycles = exclude_coherence_cycles
        # All per-function facts come from the shared context (lazily),
        # so a pipeline run over the same IR reuses them and vice versa.
        self.context = context if context is not None else AnalysisContext(program)

    def _points_to_of(self, func_name: str) -> PointsTo:
        return self.context.points_to(self.program.functions[func_name])

    # --- cross-thread conflict oracle ---------------------------------------
    def _shared_objects(self, thread_func: str, access: Access) -> frozenset:
        """Thread-visible abstract objects an access may touch."""
        pt = self._points_to_of(thread_func)
        addr = access.inst.address_operand()
        objs = pt.pointees(addr)
        shared = set()
        for o in objs:
            if isinstance(o, GlobalObj) or o is UNKNOWN:
                shared.add(o)
            elif isinstance(o, AllocaObj) and o in pt.escaped_allocas:
                # Escaped locals are not nameable across functions;
                # conservatively treat as unknown shared memory.
                shared.add(UNKNOWN)
        return frozenset(shared)

    def _conflicts(self, a: ThreadAccess, b: ThreadAccess, fa: str, fb: str) -> bool:
        if a.thread == b.thread:
            return False
        if not (a.access.is_write or b.access.is_write):
            return False
        sa = self._shared_objects(fa, a.access)
        sb = self._shared_objects(fb, b.access)
        if not sa or not sb:
            return False
        if UNKNOWN in sa or UNKNOWN in sb:
            return True
        return bool(sa & sb)

    # --- cycle enumeration ------------------------------------------------------
    def compute(self) -> DelaySetResult:
        threads = list(self.program.threads)
        nodes: list[ThreadAccess] = []
        func_of_thread: dict[int, str] = {}
        for t_index, spec in enumerate(threads):
            func = self.program.functions[spec.func_name]
            func_of_thread[t_index] = spec.func_name
            escaping = self.context.escape_info(func).escaping
            for access in logical_accesses(escaping):
                nodes.append(ThreadAccess(t_index, access))

        shared_objs = [
            self._shared_objects(func_of_thread[n.thread], n.access) for n in nodes
        ]

        po_edges: set[tuple[int, int]] = set()
        conflict_edges: set[tuple[int, int]] = set()
        for i, a in enumerate(nodes):
            for j, b in enumerate(nodes):
                if i == j:
                    continue
                if a.thread == b.thread:
                    if a.access.inst is b.access.inst:
                        # RMW read half precedes its write half.
                        if a.access.part == "r" and b.access.part == "w":
                            po_edges.add((i, j))
                        continue
                    reach = self.context.reachability(
                        self.program.functions[func_of_thread[a.thread]]
                    )
                    if reach.exists_path(a.access.inst, b.access.inst):
                        po_edges.add((i, j))
                else:
                    if self._conflicts(
                        a, b, func_of_thread[a.thread], func_of_thread[b.thread]
                    ):
                        conflict_edges.add((i, j))

        cycles = self._enumerate_cycles(nodes, po_edges, conflict_edges)
        if self.exclude_coherence_cycles:
            cycles = [
                c for c in cycles if not self._coherence_enforced(c, nodes, shared_objs)
            ]

        result = DelaySetResult(self.program, cycles)
        seen_delays: dict[str, set[tuple[int, int, str, str]]] = {}
        for cycle in cycles:
            for u, v in cycle.delays:
                func_name = func_of_thread[u.thread]
                key = (
                    u.access.inst.uid,
                    v.access.inst.uid,
                    u.access.part,
                    v.access.part,
                )
                bucket = seen_delays.setdefault(func_name, set())
                if key in bucket:
                    continue
                bucket.add(key)
                result.delays.setdefault(func_name, []).append(
                    Ordering(u.access, v.access)
                )
        return result

    def _enumerate_cycles(
        self,
        nodes: list[ThreadAccess],
        po_edges: set[tuple[int, int]],
        conflict_edges: set[tuple[int, int]],
    ) -> list[CriticalCycle]:
        """DFS enumeration of simple cycles alternating through threads.

        Constraints making a cycle critical: at most 2 nodes per thread,
        at least 2 threads, and program-order edges never consecutive
        (enforced by the per-thread node cap).
        """
        adjacency: dict[int, list[tuple[int, str]]] = {i: [] for i in range(len(nodes))}
        for u, v in po_edges:
            adjacency[u].append((v, "po"))
        for u, v in conflict_edges:
            adjacency[u].append((v, "con"))

        cycles: list[CriticalCycle] = []
        seen_cycles: set[frozenset[int]] = set()

        def dfs(
            start: int,
            current: int,
            path: list[tuple[int, str]],
            thread_counts: dict[int, int],
            last_kind: str,
        ) -> None:
            if len(path) > self.max_cycle_nodes:
                return
            for nxt, kind in adjacency[current]:
                if kind == "po" and last_kind == "po":
                    continue  # would not be a minimal cycle
                if nxt == start and len(path) >= 2:
                    if kind == "po" and path[0][1] == "po":
                        continue
                    if len({nodes[i].thread for i, _ in path}) < 2:
                        continue
                    key = frozenset(i for i, _ in path)
                    if key in seen_cycles:
                        continue
                    seen_cycles.add(key)
                    cycles.append(self._make_cycle(nodes, path, kind))
                    continue
                if any(i == nxt for i, _ in path):
                    continue
                if nxt < start:
                    continue  # canonical start: smallest index
                t = nodes[nxt].thread
                if thread_counts.get(t, 0) >= 2:
                    continue
                thread_counts[t] = thread_counts.get(t, 0) + 1
                path.append((nxt, kind))
                dfs(start, nxt, path, thread_counts, kind)
                path.pop()
                thread_counts[t] -= 1

        for start in range(len(nodes)):
            dfs(
                start,
                start,
                [(start, "")],
                {nodes[start].thread: 1},
                "",
            )
        return cycles

    @staticmethod
    def _make_cycle(
        nodes: list[ThreadAccess],
        path: list[tuple[int, str]],
        closing_kind: str,
    ) -> CriticalCycle:
        cycle_nodes = tuple(nodes[i] for i, _ in path)
        delays: list[tuple[ThreadAccess, ThreadAccess]] = []
        conflicts: list[tuple[ThreadAccess, ThreadAccess]] = []
        # Edge kinds: path[k][1] is the kind of the edge *into* path[k];
        # closing_kind is the edge from the last node back to the first.
        for k in range(1, len(path)):
            edge = (nodes[path[k - 1][0]], nodes[path[k][0]])
            (delays if path[k][1] == "po" else conflicts).append(edge)
        closing_edge = (nodes[path[-1][0]], nodes[path[0][0]])
        (delays if closing_kind == "po" else conflicts).append(closing_edge)
        return CriticalCycle(cycle_nodes, tuple(delays), tuple(conflicts))

    def _coherence_enforced(
        self,
        cycle: CriticalCycle,
        nodes: list[ThreadAccess],
        shared_objs: list[frozenset],
    ) -> bool:
        """True if every conflict edge provably sits on one common
        location — such cycles are ordered by cache coherence alone."""
        objs_of = {node: objs for node, objs in zip(nodes, shared_objs)}
        witness: frozenset | None = None
        for a, b in cycle.conflicts:
            edge_objs = objs_of[a] & objs_of[b]
            if len(edge_objs) != 1 or UNKNOWN in edge_objs:
                return False
            if witness is None:
                witness = edge_objs
            elif edge_objs != witness:
                return False
        return witness is not None
