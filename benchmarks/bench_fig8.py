"""Regenerates Fig. 8: ordering breakdown by type for all variants."""

from repro.core.pipeline import PipelineVariant
from repro.experiments import fig8


def test_fig8(benchmark, programs, report_sink):
    result = benchmark.pedantic(
        fig8.run, args=(programs,), rounds=1, iterations=1
    )
    assert len(result.rows) == 17
    ctl = result.geomean_surviving(PipelineVariant.CONTROL)
    ac = result.geomean_surviving(PipelineVariant.ADDRESS_CONTROL)
    assert ctl < ac < 1.0  # pruning helps, Control helps more
    report_sink["fig8"] = fig8.render(result)
