"""Regenerates Table II: acquire breakdown over 9 sync kernels."""

from repro.experiments import table2


def test_table2(benchmark, report_sink):
    rows = benchmark(table2.run)
    assert len(rows) == 9
    assert all(r.matches_paper for r in rows)
    assert not any(r.has_pure_addr for r in rows)
    report_sink["table2"] = table2.render(rows)
