"""Shared per-program analysis context.

Before this module existed, every pipeline stage built its own
``PointsTo``/``EscapeInfo``/``ReachabilityTable``: the pipeline, the
exact delay-set analysis, the interprocedural fixpoint, and the
signature detectors each recomputed identical per-function facts. An
:class:`AnalysisContext` is the single construction site for those
facts: consumers ask the context, the context computes each fact at
most once per function and memoizes it.

The context is keyed by :class:`~repro.ir.function.Function` identity,
so one context serves exactly one compiled IR program (plus any helper
functions handed to it directly). Facts are variant-independent except
acquire detection, which is memoized per ``(function, Variant)``.

The context also owns the ``potential_writers`` memo shared by every
slicer over a function — previously each ``Slicer`` instance kept a
private cache, so the control and address detectors re-ran the alias
queries the other had already answered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.aliasing import PointsTo
from repro.analysis.escape import EscapeInfo
from repro.analysis.reachability import ReachabilityTable
from repro.ir.function import Function, Program
from repro.ir.instructions import Instruction

if TYPE_CHECKING:  # avoid import cycles; these are runtime-lazy below
    from repro.core.interprocedural import InterproceduralResult
    from repro.core.signatures import AcquireResult, Variant


@dataclass
class ContextStats:
    """Memoization counters (observable in tests and benchmarks)."""

    hits: int = 0
    misses: int = 0
    by_fact: dict[str, int] = field(default_factory=dict)

    def record(self, fact: str, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            self.by_fact[fact] = self.by_fact.get(fact, 0) + 1


class AnalysisContext:
    """Lazily computed, memoized per-function analysis facts.

    ``program`` is optional: a context can serve loose functions (unit
    tests, Table-II kernels), but whole-program facts — the
    interprocedural acquire fixpoint — require one.
    """

    def __init__(self, program: Program | None = None) -> None:
        self.program = program
        self.stats = ContextStats()
        self._points_to: dict[Function, PointsTo] = {}
        self._escape: dict[Function, EscapeInfo] = {}
        self._reach: dict[Function, ReachabilityTable] = {}
        self._writers: dict[Function, dict[int, list[Instruction]]] = {}
        self._acquires: dict[tuple[Function, "Variant"], "AcquireResult"] = {}
        self._interprocedural: dict["Variant", "InterproceduralResult"] = {}

    # --- per-function facts ----------------------------------------------
    def points_to(self, func: Function) -> PointsTo:
        fact = self._points_to.get(func)
        self.stats.record("points_to", fact is not None)
        if fact is None:
            fact = PointsTo(func)
            self._points_to[func] = fact
        return fact

    def escape_info(self, func: Function) -> EscapeInfo:
        fact = self._escape.get(func)
        self.stats.record("escape_info", fact is not None)
        if fact is None:
            fact = EscapeInfo(func, self.points_to(func))
            self._escape[func] = fact
        return fact

    def reachability(self, func: Function) -> ReachabilityTable:
        fact = self._reach.get(func)
        self.stats.record("reachability", fact is not None)
        if fact is None:
            fact = ReachabilityTable(func)
            self._reach[func] = fact
        return fact

    def writers_cache(self, func: Function) -> dict[int, list[Instruction]]:
        """The shared ``potential_writers`` memo for slicers over ``func``."""
        return self._writers.setdefault(func, {})

    def acquires(self, func: Function, variant: "Variant") -> "AcquireResult":
        from repro.core.signatures import detect_acquires

        key = (func, variant)
        result = self._acquires.get(key)
        self.stats.record("acquires", result is not None)
        if result is None:
            result = detect_acquires(func, variant, context=self)
            self._acquires[key] = result
        return result

    # --- whole-program facts ---------------------------------------------
    def interprocedural(self, variant: "Variant") -> "InterproceduralResult":
        from repro.core.interprocedural import detect_acquires_interprocedural

        if self.program is None:
            raise ValueError(
                "interprocedural acquire detection needs a whole program; "
                "construct the context with AnalysisContext(program)"
            )
        result = self._interprocedural.get(variant)
        self.stats.record("interprocedural", result is not None)
        if result is None:
            result = detect_acquires_interprocedural(
                self.program, variant, context=self
            )
            self._interprocedural[variant] = result
        return result
