"""Cost model for the timed x86-TSO machine.

The reproduction does not target absolute accuracy against the paper's
Intel i3-2100 — only the *relative* cost of the four fence placements.
What matters for that shape:

* an ``mfence`` costs tens of cycles plus a store-buffer drain, so
  placements that leave fences inside hot loops (Pensieve) pay heavily;
* atomic RMWs are locked instructions with a similar drain cost, paid
  by *every* placement (they bound the achievable speedup, as in the
  lock-free programs of Table III);
* compiler directives are free at run time (empty clobber asm).

Defaults are loosely calibrated to published x86 microbenchmarks
(mfence latency ~30-50 cycles, L1 hit ~4 cycles).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Per-operation cycle costs for the timed simulator.

    ``flavor_costs`` prices flavored full fences (see
    :mod:`repro.arch`): a ``(name, cycles)`` table consulted when an
    executed fence carries a flavor. Unflavored full fences — the only
    kind the generic pipeline emits — cost ``mfence`` as always.
    """

    alu: int = 1              # arithmetic / branch / local access step
    load: int = 2             # shared load (L1 hit)
    store: int = 1            # shared store issue (into the buffer)
    #: Premiums for C11-style qualified accesses: an ``acquire`` load /
    #: ``release`` store discharges an ordering obligation the plain
    #: access does not carry. Free on x86-TSO (every load is an
    #: acquire, every store a release already); arch cost models price
    #: them as the cheapest fence covering the obligation.
    acquire_load: int = 0
    release_store: int = 0
    rmw: int = 45             # locked RMW, once the buffer is empty
    mfence: int = 60          # mfence base cost, once the buffer is empty
    compiler_fence: int = 0   # no presence in the final binary
    drain_period: int = 12    # cycles for one buffer entry to reach memory
    buffer_capacity: int = 8  # store-buffer entries before stores stall
    #: Per-flavor full-fence base costs; unknown flavors fall back to
    #: ``mfence`` (conservative full-fence pricing).
    flavor_costs: tuple[tuple[str, int], ...] = ()

    def fence_cost(self, flavor: str | None) -> int:
        """Base cycle cost for a full fence of the given flavor."""
        if flavor is not None:
            for name, cycles in self.flavor_costs:
                if name == flavor:
                    return cycles
        return self.mfence


DEFAULT_COSTS = CostModel()

# A machine with free fences: used by ablations to isolate how much of
# a slowdown is fence cost vs placement-independent work.
FREE_FENCES = CostModel(mfence=0, rmw=1, drain_period=1)


def arch_cost_model(backend) -> CostModel:
    """A :class:`CostModel` priced with an arch backend's fence ISA.

    The base ``mfence`` slot takes the backend's full-flavor cost (so
    unflavored FULL fences price as that arch's full fence); every
    registered flavor gets its own entry. RMWs on backends whose model
    gives them no fence semantics price as a plain atomic (no drain
    premium baked in). Qualified accesses (``atomic_load(...,
    acquire)`` / ``atomic_store(..., release)``) are charged the
    cheapest flavor discharging their obligation on this arch — the
    relaxed subset of {r->r, r->w} after an acquire, {r->w, w->w}
    before a release — and stay free where the base model already
    orders those kinds (x86).
    """
    from repro.core.machine_models import MODELS, OrderKind

    full = backend.full_flavor()
    rmw = 45 if MODELS[backend.model_key].rmw_is_full_fence else 20
    relaxed = backend.reorderable

    def obligation(kinds: frozenset) -> int:
        needed = kinds & relaxed
        return backend.cheapest_flavor(needed).cost if needed else 0

    return CostModel(
        rmw=rmw,
        mfence=full.cost,
        flavor_costs=tuple((f.name, f.cost) for f in backend.flavors),
        acquire_load=obligation(frozenset({OrderKind.RR, OrderKind.RW})),
        release_store=obligation(frozenset({OrderKind.RW, OrderKind.WW})),
    )
