#!/usr/bin/env python3
"""Regenerate the golden expected-findings files under tests/data/lint/.

Three goldens pin the static DRF gate's output:

* ``litmus_expected.json`` — every litmus test, explorer confirmation
  on: candidate counts, verdict tallies, and per-finding summaries.
* ``corpus_expected.json`` — all 17 corpus programs, confirmation off
  (they exceed the explorer's bounds): the lint-corpus CI job replays
  ``repro lint`` against this file.
* ``arch_expected.json`` — selected corpus programs linted with a
  Power backend, messages included: pins the FENCE104
  greedy-vs-optimal cost gaps (exact cycle numbers and witness cuts).

Run ``PYTHONPATH=src python tools/gen_lint_goldens.py`` after a
deliberate detector/pass change, and review the diff like any golden.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import LintRequest, ProgramSpec, Session  # noqa: E402
from repro.memmodel.litmus import LITMUS_TESTS  # noqa: E402
from repro.programs import all_programs  # noqa: E402

OUT_DIR = Path(__file__).resolve().parent.parent / "tests" / "data" / "lint"


def finding_summary(finding, with_message: bool = False) -> dict:
    out = {
        "code": finding["code"],
        "severity": finding["severity"],
        "verdict": finding["verdict"],
        "spans": [
            [span["function"], span["uid"]] for span in finding["spans"]
        ],
    }
    if with_message:
        out["message"] = finding["message"]
    return out


def report_summary(report: dict, with_message: bool = False) -> dict:
    return {
        "errors": report["errors"],
        "warnings": report["warnings"],
        "notes": report["notes"],
        "confirmed_races": report["confirmed_races"],
        "refuted_candidates": report["refuted_candidates"],
        "unknown_candidates": report["unknown_candidates"],
        "findings": [
            finding_summary(f, with_message) for f in report["findings"]
        ],
    }


def lint_all(session: Session, specs: dict, confirm: bool) -> dict:
    out = {}
    for name, spec in specs.items():
        report = session.lint(
            LintRequest(program=spec, confirm=confirm)
        ).to_payload()
        out[name] = report_summary(report)
    return out


#: Programs whose greedy plans are strictly suboptimal on Power —
#: the FENCE104 golden pins their exact cost gaps.
ARCH_PROGRAMS = ("matrix", "raytrace")


def lint_arch(session: Session) -> dict:
    out = {}
    for name in ARCH_PROGRAMS:
        report = session.lint(
            LintRequest(
                program=ProgramSpec.corpus(name),
                model="power",
                arch="power",
                confirm=False,
            )
        ).to_payload()
        out[name] = report_summary(report, with_message=True)
    return out


def main() -> int:
    session = Session(parallel=False)
    litmus = {
        name: ProgramSpec.litmus(name) for name in LITMUS_TESTS
    }
    corpus = {
        name: ProgramSpec.corpus(name) for name in sorted(all_programs())
    }
    goldens = {
        "litmus_expected.json": {
            "schema": 1,
            "variant": "address+control",
            "model": "x86-tso",
            "confirm": True,
            "programs": lint_all(session, litmus, confirm=True),
        },
        "corpus_expected.json": {
            "schema": 1,
            "variant": "address+control",
            "model": "x86-tso",
            "confirm": False,
            "programs": lint_all(session, corpus, confirm=False),
        },
        "arch_expected.json": {
            "schema": 1,
            "variant": "address+control",
            "model": "power",
            "arch": "power",
            "confirm": False,
            "programs": lint_arch(session),
        },
    }
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    for filename, payload in goldens.items():
        path = OUT_DIR / filename
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path.relative_to(Path.cwd())}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
