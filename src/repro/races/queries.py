"""Race-detection facts as registered incremental queries.

Two query kinds join the catalog next to the analysis facts:

* ``race_access_summary`` — keyed by :class:`~repro.ir.function
  .Function`: the function's escaping accesses with their may-point-to
  locations and Eraser locksets. Depends only on that function's
  content (plus its ``points_to``), so sibling edits leave it cached.
* ``race_candidates`` — keyed by the detection-variant key string: the
  whole-program :class:`~repro.races.detector.StaticRaceReport`. Its
  recorded dependency edges reach the program shape, every executed
  function's summary, and the variant's acquire sets — a
  single-function edit evicts this one program-level value and the
  edited function's subgraph, nothing belonging to other functions.

Explorer confirmation deliberately stays *outside* the engine: witness
search is bounded dynamic work whose budget is per-request, not a pure
function of the IR.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

from repro.ir.function import Function
from repro.query.engine import QueryEngine, query

if TYPE_CHECKING:  # runtime-lazy: the detector imports the facts facade
    from repro.races.detector import AccessSummary, StaticRaceReport

#: Query kinds the lint pipeline adds on top of the analysis facts.
RACE_QUERIES = ("race_access_summary", "race_candidates")


@query("race_access_summary")
def _race_access_summary(engine: QueryEngine, func: Function) -> AccessSummary:
    from repro.races.detector import build_access_summary

    engine.touch_input(func)
    return build_access_summary(func, engine.get("points_to", func))


@query("race_candidates")
def _race_candidates(
    engine: QueryEngine, variant: Hashable
) -> StaticRaceReport:
    from repro.query.facts import _facade
    from repro.races.detector import detect_races

    if engine.program is None:
        raise ValueError("race_candidates needs a whole program")
    engine.touch_shape()
    return detect_races(engine.program, _facade(engine), str(variant))
