"""Fig. 9: static % of full fences remaining on x86-TSO vs Pensieve."""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.session import Session
from repro.core.pipeline import PipelineVariant
from repro.experiments import expected
from repro.programs.registry import BenchProgram, all_programs
from repro.util.stats import geomean
from repro.util.text import ascii_bar_chart, format_table


@dataclass(frozen=True)
class Fig9Row:
    program: str
    pensieve_fences: int
    control_fences: int
    address_control_fences: int
    manual_fences: int

    @property
    def control_fraction(self) -> float:
        return self.control_fences / max(1, self.pensieve_fences)

    @property
    def address_control_fraction(self) -> float:
        return self.address_control_fences / max(1, self.pensieve_fences)


@dataclass
class Fig9Result:
    rows: list[Fig9Row]

    @property
    def geomean_control(self) -> float:
        return geomean([max(1e-6, r.control_fraction) for r in self.rows])

    @property
    def geomean_address_control(self) -> float:
        return geomean([max(1e-6, r.address_control_fraction) for r in self.rows])


def run_program(program: BenchProgram, ir=None, session=None) -> Fig9Row:
    session = session if session is not None else Session()
    ir = ir if ir is not None else program.compile()
    fences = {}
    for variant in (
        PipelineVariant.PENSIEVE,
        PipelineVariant.CONTROL,
        PipelineVariant.ADDRESS_CONTROL,
    ):
        fences[variant] = session.analysis(ir, variant).full_fence_count
    return Fig9Row(
        program=program.name,
        pensieve_fences=fences[PipelineVariant.PENSIEVE],
        control_fences=fences[PipelineVariant.CONTROL],
        address_control_fences=fences[PipelineVariant.ADDRESS_CONTROL],
        manual_fences=program.manual_fence_count,
    )


def run(programs: dict[str, BenchProgram] | None = None) -> Fig9Result:
    programs = programs if programs is not None else all_programs()
    return Fig9Result([run_program(p) for p in programs.values()])


def render(result: Fig9Result | None = None) -> str:
    result = result if result is not None else run()
    rows = [
        [
            r.program,
            r.pensieve_fences,
            r.control_fences,
            r.address_control_fences,
            r.manual_fences,
            f"{r.control_fraction:.1%}",
            f"{r.address_control_fraction:.1%}",
        ]
        for r in result.rows
    ]
    rows.append(
        [
            "geomean",
            "",
            "",
            "",
            "",
            f"{result.geomean_control:.1%}",
            f"{result.geomean_address_control:.1%}",
        ]
    )
    table = format_table(
        ["program", "Pensieve", "Control", "A+C", "manual", "Ctl %", "A+C %"],
        rows,
        title="Fig. 9: full fences remaining on x86-TSO (static counts)",
    )
    chart = ascii_bar_chart(
        {
            r.program: {
                "Control": r.control_fraction,
                "Addr+Ctrl": r.address_control_fraction,
            }
            for r in result.rows
        },
        value_format="{:.1%}",
    )
    footer = (
        f"\npaper geomeans: Control {expected.FIG9_GEOMEAN_CONTROL:.0%}, "
        f"Address+Control {expected.FIG9_GEOMEAN_ADDRESS_CONTROL:.0%}"
    )
    return table + "\n\n" + chart + footer
