"""repro.cluster — sharded, async multi-process analysis service.

An asyncio frontend multiplexes JSON-lines client connections onto a
pool of analysis worker processes over length-prefixed framed links; a
consistent-hash ring pins program names to workers (warm caches stay
local, worker death reshards minimally), and a shared artifact store
lets cold workers warm-start from their siblings' persisted query
results. See :mod:`repro.cluster.frontend` for the full protocol and
failure-handling story.
"""

from repro.cluster.frontend import ClusterConfig, ClusterServer, render_stats
from repro.cluster.protocol import (
    MAX_FRAME,
    FrameDecodeError,
    ProtocolError,
    frame_bytes,
    read_frame,
    recv_frame,
    send_frame,
)
from repro.cluster.router import HashRing, routing_key
from repro.cluster.store import ArtifactStore
from repro.cluster.worker import (
    WorkerLoop,
    run_worker,
    spawn_worker,
    worker_main,
)

__all__ = [
    "MAX_FRAME",
    "ArtifactStore",
    "ClusterConfig",
    "ClusterServer",
    "FrameDecodeError",
    "HashRing",
    "ProtocolError",
    "WorkerLoop",
    "frame_bytes",
    "read_frame",
    "recv_frame",
    "render_stats",
    "routing_key",
    "run_worker",
    "send_frame",
    "spawn_worker",
    "worker_main",
]
