"""Incremental-correctness properties of warm re-analysis.

The paper's pipeline is deterministic, so the query engine's contract
is checkable end to end: after editing exactly one function of a
program, a warm re-analysis must (a) recompute only that function's
query subgraph — sibling functions are 100% memo hits, their fact
objects surviving by identity — and (b) produce results byte-identical
to a cold analysis of the edited program. Aggregated over the whole
17-program corpus, the warm pass must recompute fewer than half the
queries a cold pass runs (the ISSUE-4 acceptance bar).
"""

import json

import pytest

from repro.core.pipeline import PipelineVariant, analyze_program
from repro.engine.context import AnalysisContext
from repro.frontend import compile_source
from repro.ir.instructions import Observe
from repro.ir.values import Constant
from repro.programs import all_programs

CORPUS = sorted(all_programs())


def _edit_target(program):
    """The function a hypothetical developer edits: the first one."""
    return next(iter(program.functions.values()))


def _edit_in_place(func):
    func.blocks[0].insert(0, Observe("__edit__", Constant(0)))
    func.finalize()


def _summarize(analysis):
    """Canonical byte-comparable form of a whole-program analysis."""
    return json.dumps(
        {
            "functions": {
                name: {
                    "escaping_reads": len(fa.escape_info.escaping_reads),
                    "sync_reads": len(fa.sync_reads),
                    "orderings": len(fa.orderings),
                    "pruned": len(fa.pruned),
                    "full_fences": fa.plan.full_count,
                    "compiler_fences": fa.plan.compiler_count,
                }
                for name, fa in analysis.functions.items()
            },
            "surviving_fraction": analysis.surviving_fraction,
            "full_fences": analysis.full_fence_count,
        },
        sort_keys=True,
    )


def _run_incremental(name):
    """Cold-analyze, edit one function, warm-re-analyze.

    Returns (cold computes, warm computes, sibling identity ok,
    warm summary, fresh-cold summary).
    """
    source = all_programs()[name].source
    program = compile_source(source, name)
    ctx = AnalysisContext(program)
    analyze_program(program, PipelineVariant.CONTROL, context=ctx)
    cold = ctx.engine.stats.computes

    target = _edit_target(program)
    siblings = {
        fname: ctx.points_to(func)
        for fname, func in program.functions.items()
        if func is not target
    }
    _edit_in_place(target)
    assert ctx.refresh() == (target.name,)

    before = ctx.engine.stats.computes
    warm_analysis = analyze_program(program, PipelineVariant.CONTROL, context=ctx)
    warm = ctx.engine.stats.computes - before

    siblings_ok = all(
        ctx.points_to(program.functions[fname]) is fact
        for fname, fact in siblings.items()
    )
    fresh = analyze_program(
        program, PipelineVariant.CONTROL, context=AnalysisContext(program)
    )
    return cold, warm, siblings_ok, _summarize(warm_analysis), _summarize(fresh)


@pytest.mark.parametrize("name", CORPUS)
def test_edit_one_function_siblings_hit_and_results_byte_identical(name):
    cold, warm, siblings_ok, warm_summary, fresh_summary = _run_incremental(name)
    assert siblings_ok, "sibling functions must be 100% cache hits"
    assert warm_summary == fresh_summary, (
        "warm incremental results must be byte-identical to a cold analysis"
    )
    # The edited function's own facts did recompute.
    assert warm > 0
    assert warm <= cold


MP = """
global int flag;
global int data;

fn producer(tid) { data = 1; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""


def test_place_refreshes_supplied_context_for_reuse():
    """Fence insertion mutates the IR; place() now refreshes the
    context, so reusing it afterwards is correct (not stale)."""
    from repro.core.pipeline import FencePlacer

    program = compile_source(MP, "mp")
    ctx = AnalysisContext(program)
    FencePlacer(PipelineVariant.CONTROL).place(program, context=ctx)
    assert len(program.fences()) > 0
    reused = analyze_program(program, PipelineVariant.CONTROL, context=ctx)
    fresh = analyze_program(
        program, PipelineVariant.CONTROL, context=AnalysisContext(program)
    )
    assert _summarize(reused) == _summarize(fresh)


def test_corpus_warm_reanalysis_recomputes_under_half_the_queries():
    total_cold = total_warm = 0
    for name in CORPUS:
        cold, warm, _, _, _ = _run_incremental(name)
        total_cold += cold
        total_warm += warm
    assert total_cold > 0
    fraction = total_warm / total_cold
    assert fraction < 0.5, (
        f"warm re-analysis recomputed {fraction:.1%} of the corpus's "
        f"queries ({total_warm}/{total_cold}); the bar is < 50%"
    )
