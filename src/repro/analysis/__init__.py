"""Static analyses the fence-placement pipeline builds on.

These are the substrates the paper assumes from LLVM/Pensieve:
alias analysis, thread-escape analysis, CFG reachability, and the
backwards slicer of Listing 2.
"""

from repro.analysis.aliasing import (
    UNKNOWN,
    AbstractObject,
    AllocaObj,
    GlobalObj,
    PointsTo,
)
from repro.analysis.escape import EscapeInfo
from repro.analysis.reachability import ReachabilityTable
from repro.analysis.slicing import Slicer

__all__ = [
    "UNKNOWN",
    "AbstractObject",
    "AllocaObj",
    "EscapeInfo",
    "GlobalObj",
    "PointsTo",
    "ReachabilityTable",
    "Slicer",
]
