"""The demand-driven query engine (salsa/rustc-style, in miniature).

A *query* is a named computation over a hashable key — ``points_to``
keyed by a function, ``acquires`` keyed by ``(function, variant)``,
``interprocedural`` keyed by a variant over the whole program. Queries
are registered in :data:`QUERIES` (a
:class:`~repro.registry.core.Registry`, like every other pluggable
catalog in the tree) and evaluated through a :class:`QueryEngine`,
which gives them three properties the old hand-rolled memo dicts could
not:

* **recorded dependencies** — while a query computes, every input it
  touches and every sub-query it asks for is recorded as an edge, so
  the engine knows the exact derivation graph it actually used;
* **function-granularity invalidation** — inputs (IR functions) carry
  content fingerprints; :meth:`QueryEngine.refresh` re-fingerprints
  them and evicts precisely the query entries reachable from the
  changed inputs, leaving sibling functions' facts cached;
* **optional persistence** — a query that declares an encode/decode
  pair is written through to an on-disk cache keyed by its input
  fingerprint, so a *new* engine (even a new process) restores it
  without recomputing, as long as the input text is unchanged.

The engine is thread-safe: one re-entrant lock serializes evaluation
(the workload is GIL-bound pure Python, so finer locking buys
nothing), and the in-flight evaluation stack is thread-local so
concurrent requests cannot corrupt each other's dependency frames.
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Hashable

from repro.ir.function import Function, Program
from repro.ir.printer import format_function
from repro.obs import trace as obs_trace
from repro.registry.core import Registry

if TYPE_CHECKING:  # runtime-lazy: the facade imports this module
    from repro.engine.context import AnalysisContext

#: Bump when any query's semantics change so persisted entries miss.
QUERY_SCHEMA_VERSION = "1"

#: A node in the dependency graph: an input ``("fn", Function)`` /
#: ``("shape",)`` or a derived query key ``(query name, key)``.
Node = tuple

#: Distinguishes temp files from concurrent stores within one process.
_store_counter = itertools.count()


def fingerprint_function(func: Function) -> str:
    """Content fingerprint of one IR function (its printed form)."""
    return hashlib.sha256(format_function(func).encode("utf-8")).hexdigest()


def describe_key(key: Hashable) -> str:
    """A short human label for a query key (trace args, slow-query
    log): IR objects show their name, tuples recurse."""
    name = getattr(key, "name", None)
    if isinstance(name, str):
        return name
    if isinstance(key, tuple):
        return "(" + ", ".join(describe_key(part) for part in key) + ")"
    return repr(key)


def fingerprint_program_shape(program: Program) -> str:
    """Fingerprint of the program's cross-function structure: function
    names, globals, and static threads — everything a whole-program
    query depends on *besides* the per-function bodies."""
    parts = [
        ",".join(sorted(program.functions)),
        ";".join(
            f"{name}[{var.size}]={list(var.init)!r}"
            for name, var in sorted(program.globals.items())
        ),
        ";".join(f"{t.func_name}{t.args!r}" for t in program.threads),
    ]
    return hashlib.sha256("\x00".join(parts).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class QuerySpec:
    """One registered query kind.

    ``compute(engine, key)`` produces the value. The optional
    persistence triple (``input_of``, ``encode``, ``decode``) makes the
    query durable: ``input_of(key)`` names the function whose
    fingerprint keys the disk entry (plus ``suffix(key)`` for
    multi-part keys), ``encode(key, value)`` reduces the value to JSON
    data, and ``decode(engine, key, payload)`` rebuilds it against the
    current (fingerprint-identical) IR.
    """

    name: str
    compute: Callable[["QueryEngine", Hashable], Any]
    input_of: Callable[[Hashable], Function] | None = None
    suffix: Callable[[Hashable], str] | None = None
    encode: Callable[[Hashable, Any], Any] | None = None
    decode: Callable[["QueryEngine", Hashable, Any], Any] | None = None

    @property
    def persistable(self) -> bool:
        return (
            self.input_of is not None
            and self.encode is not None
            and self.decode is not None
        )


#: The query catalog; fact queries register at import of repro.query.
QUERIES: Registry[QuerySpec] = Registry("query")


def query(
    name: str,
    input_of: Callable[[Hashable], Function] | None = None,
    suffix: Callable[[Hashable], str] | None = None,
    encode: Callable[[Hashable, Any], Any] | None = None,
    decode: Callable[["QueryEngine", Hashable, Any], Any] | None = None,
):
    """Decorator registering a compute function as a named query."""

    def decorator(fn: Callable[["QueryEngine", Hashable], Any]):
        QUERIES.register(
            name,
            QuerySpec(
                name=name, compute=fn, input_of=input_of, suffix=suffix,
                encode=encode, decode=decode,
            ),
        )
        return fn

    return decorator


@dataclass
class QueryStats:
    """Engine counters (observable in tests, benchmarks, `serve` stats)."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    #: Misses answered by actually running ``compute``.
    computes: int = 0
    #: Misses answered from the persistent (on-disk) cache.
    restored: int = 0
    #: Entries evicted by refresh()/invalidation.
    evictions: int = 0
    #: Per-query-kind counts; ``by_query`` keeps its historical meaning
    #: (computes per kind) — the observability layer reads the rest.
    by_query: dict[str, int] = field(default_factory=dict)
    by_query_hits: dict[str, int] = field(default_factory=dict)
    by_query_misses: dict[str, int] = field(default_factory=dict)
    by_query_evictions: dict[str, int] = field(default_factory=dict)

    def record_compute(self, name: str) -> None:
        self.computes += 1
        self.by_query[name] = self.by_query.get(name, 0) + 1

    def record_hit(self, name: str) -> None:
        self.hits += 1
        self.by_query_hits[name] = self.by_query_hits.get(name, 0) + 1

    def record_miss(self, name: str) -> None:
        self.misses += 1
        self.by_query_misses[name] = self.by_query_misses.get(name, 0) + 1

    def record_eviction(self, name: str) -> None:
        self.evictions += 1
        self.by_query_evictions[name] = (
            self.by_query_evictions.get(name, 0) + 1
        )

    def to_payload(self) -> dict:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "computes": self.computes,
            "restored": self.restored,
            "evictions": self.evictions,
            "by_query": dict(self.by_query),
            "by_query_hits": dict(self.by_query_hits),
            "by_query_misses": dict(self.by_query_misses),
            "by_query_evictions": dict(self.by_query_evictions),
        }


class PersistentQueryCache:
    """On-disk query results, one JSON file per (query, fingerprint).

    The disk layer is an optimization: unreadable/corrupt entries are
    misses, unwritable directories are ignored.

    Safe for concurrent use from many processes sharing one directory
    (the cluster's shared artifact store): entries are published with a
    write-to-temp + atomic rename, so a reader can never observe a
    half-written file, and same-fingerprint writers racing each other
    simply replace one complete entry with another complete entry of
    identical content.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, name: str, fingerprint: str) -> Path:
        safe = name.replace("/", "_")
        return self.directory / f"{safe}.{fingerprint}.json"

    def load(self, name: str, fingerprint: str) -> Any | None:
        path = self._path(name, fingerprint)
        if not path.is_file():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            return None

    def store(self, name: str, fingerprint: str, payload: Any) -> None:
        path = self._path(name, fingerprint)
        # The temp file must live in the target directory: os.replace is
        # only atomic within one filesystem.
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{next(_store_counter)}.tmp"
        )
        try:
            tmp.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, path)
        except OSError:
            with contextlib.suppress(OSError):
                tmp.unlink()


class QueryEngine:
    """Evaluates registered queries with memoization, dependency
    tracking, fingerprint invalidation, and optional persistence."""

    def __init__(
        self,
        program: Program | None = None,
        cache_dir: str | Path | None = None,
        registry: Registry[QuerySpec] | None = None,
    ) -> None:
        if registry is None:
            import repro.query  # noqa: F401  (registers the fact queries)

            registry = QUERIES
        self.registry = registry
        self.program = program
        self.stats = QueryStats()
        self.persistent = (
            PersistentQueryCache(cache_dir) if cache_dir is not None else None
        )
        #: Back-reference set by the owning AnalysisContext so query
        #: computes can hand consumers the facade they expect.
        self.context: "AnalysisContext | None" = None
        self._lock = threading.RLock()
        self._local = threading.local()
        self._values: dict[tuple, Any] = {}
        self._deps: dict[tuple, frozenset] = {}
        self._rdeps: dict[Node, set] = {}
        self._fingerprints: dict[Function, str] = {}
        self._shape: str | None = None

    @property
    def lock(self) -> threading.RLock:
        """The engine's re-entrant evaluation lock. Hold it across a
        multi-query span (e.g. one request's whole analysis) when the
        span's view of the memo counters must be contamination-free."""
        return self._lock

    # --- dependency frames (thread-local) ---------------------------------
    def _frames(self) -> list:
        frames = getattr(self._local, "frames", None)
        if frames is None:
            frames = self._local.frames = []
        return frames

    def _note(self, node: Node) -> None:
        frames = self._frames()
        if frames:
            frames[-1][1].add(node)

    def touch_input(self, func: Function) -> None:
        """Record that the in-flight query read ``func``'s content,
        fingerprinting it on first sight."""
        with self._lock:
            if func not in self._fingerprints:
                self._fingerprints[func] = fingerprint_function(func)
            self._note(("fn", func))

    def touch_shape(self) -> None:
        """Record a read of the program's cross-function structure."""
        with self._lock:
            if self._shape is None and self.program is not None:
                self._shape = fingerprint_program_shape(self.program)
            self._note(("shape",))

    # --- evaluation -------------------------------------------------------
    def get(self, name: str, key: Hashable) -> Any:
        return self.lookup(name, key)[0]

    def lookup(self, name: str, key: Hashable) -> tuple[Any, bool]:
        """Evaluate query ``name`` at ``key``; returns ``(value, hit)``.

        A hit is an in-memory memo hit; persistent-cache restores and
        fresh computes both count as misses (they do input work).
        """
        node = (name, key)
        with self._lock:
            self.stats.lookups += 1
            self._note(node)
            if node in self._values:
                self.stats.record_hit(name)
                return self._values[node], True
            self.stats.record_miss(name)
            spec = self.registry.get(name)
            frames = self._frames()
            if any(frame_node == node for frame_node, _ in frames):
                raise RuntimeError(f"query cycle at {name!r}")
            frames.append((node, set()))
            # The span opens inside this thread's dependency frame, so
            # nested sub-query spans stack under it in the trace; the
            # miss path always times itself (the slow-query log works
            # with tracing off), but key description is skipped unless
            # someone will read it.
            eval_span = (
                obs_trace.span(
                    "query.eval", cat="query",
                    query=name, key=describe_key(key),
                )
                if obs_trace.enabled()
                else obs_trace.NOOP_SPAN
            )
            started = time.perf_counter()
            try:
                with eval_span:
                    value, restored = self._evaluate(spec, key)
            finally:
                _, deps = frames.pop()
            elapsed = time.perf_counter() - started
            threshold = obs_trace.SLOW_QUERIES.threshold
            if threshold is not None and elapsed >= threshold:
                fingerprint = None
                if spec.input_of is not None:
                    with contextlib.suppress(Exception):
                        fingerprint = self._fingerprints.get(
                            spec.input_of(key)
                        )
                obs_trace.SLOW_QUERIES.note(
                    query=name, key=describe_key(key),
                    fingerprint=fingerprint, seconds=elapsed,
                )
            self._values[node] = value
            self._deps[node] = frozenset(deps)
            for dep in deps:
                self._rdeps.setdefault(dep, set()).add(node)
            if restored:
                self.stats.restored += 1
            else:
                self.stats.record_compute(name)
                self._persist(spec, key, value)
            return value, False

    def _evaluate(self, spec: QuerySpec, key: Hashable) -> tuple[Any, bool]:
        if self.persistent is not None and spec.persistable:
            fingerprint = self._persist_fingerprint(spec, key)
            payload = self.persistent.load(spec.name, fingerprint)
            if payload is not None:
                try:
                    return spec.decode(self, key, payload), True
                except (ValueError, KeyError, TypeError, IndexError):
                    pass  # corrupt/stale entry: fall through to compute
        return spec.compute(self, key), False

    def _persist_fingerprint(self, spec: QuerySpec, key: Hashable) -> str:
        func = spec.input_of(key)
        self.touch_input(func)
        suffix = spec.suffix(key) if spec.suffix is not None else ""
        raw = f"{QUERY_SCHEMA_VERSION}:{self._fingerprints[func]}:{suffix}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()

    def _persist(self, spec: QuerySpec, key: Hashable, value: Any) -> None:
        if self.persistent is None or not spec.persistable:
            return
        self.persistent.store(
            spec.name,
            self._persist_fingerprint(spec, key),
            spec.encode(key, value),
        )

    # --- introspection ----------------------------------------------------
    def cached(self, name: str, key: Hashable) -> bool:
        with self._lock:
            return (name, key) in self._values

    def deps_of(self, name: str, key: Hashable) -> frozenset:
        with self._lock:
            return self._deps.get((name, key), frozenset())

    def known_functions(self) -> tuple[Function, ...]:
        with self._lock:
            return tuple(self._fingerprints)

    def fingerprint_of(self, func: Function) -> str | None:
        """The stored input fingerprint, if ``func`` has been queried."""
        with self._lock:
            return self._fingerprints.get(func)

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    # --- invalidation -----------------------------------------------------
    def refresh(self) -> tuple[str, ...]:
        """Re-fingerprint every known input; evict the query subgraph
        of each changed one. Returns the changed functions' names
        (``"<program>"`` for a structure change)."""
        with self._lock:
            dirty: list[Node] = []
            changed: list[str] = []
            for func, old in list(self._fingerprints.items()):
                new = fingerprint_function(func)
                if new != old:
                    self._fingerprints[func] = new
                    dirty.append(("fn", func))
                    changed.append(func.name)
            if self._shape is not None and self.program is not None:
                new = fingerprint_program_shape(self.program)
                if new != self._shape:
                    self._shape = new
                    dirty.append(("shape",))
                    changed.append("<program>")
            self._evict_from(dirty)
            return tuple(changed)

    def invalidate_function(self, func: Function) -> None:
        """Force-evict everything derived from ``func`` (and refresh
        its stored fingerprint)."""
        with self._lock:
            if func in self._fingerprints:
                self._fingerprints[func] = fingerprint_function(func)
            self._evict_from([("fn", func)])

    def discard_input(self, func: Function) -> None:
        """Drop ``func`` as an input entirely: evict its subgraph and
        forget its fingerprint (the function left the program)."""
        with self._lock:
            self._fingerprints.pop(func, None)
            self._evict_from([("fn", func)])
            self._rdeps.pop(("fn", func), None)

    def clear(self) -> None:
        with self._lock:
            for node in self._values:
                self.stats.record_eviction(node[0])
            self._values.clear()
            self._deps.clear()
            self._rdeps.clear()
            self._fingerprints.clear()
            self._shape = None

    def _evict_from(self, dirty: list[Node]) -> None:
        doomed: set[tuple] = set()
        stack = list(dirty)
        while stack:
            node = stack.pop()
            for dependent in self._rdeps.get(node, ()):
                if dependent not in doomed:
                    doomed.add(dependent)
                    stack.append(dependent)
        for node in doomed:
            self._values.pop(node, None)
            for dep in self._deps.pop(node, ()):
                dependents = self._rdeps.get(dep)
                if dependents is not None:
                    dependents.discard(node)
            self._rdeps.pop(node, None)
            # Doomed nodes are always derived (query name, key) pairs:
            # the dirty inputs themselves are roots, never dependents.
            self.stats.record_eviction(node[0])
