"""Tests for the schema-versioned wire format (repro.api.reports).

Covers: byte-identical JSON round-trips for every registered wire
type, golden-file schema stability, schema_version/kind gating,
unknown/missing field rejection, kind dispatch, payload diffing, and
the warn-once deprecation shims.
"""

import json
import warnings
from pathlib import Path

import pytest

from repro.api import (
    REPORT_KINDS,
    AnalyzeReport,
    SchemaError,
    diff_payloads,
    load_report,
)
from repro.frontend import compile_source

from _report_fixtures import sample_payloads

GOLDEN_DIR = Path(__file__).parent / "data" / "reports"

MP = """
global int flag;
global int data;

fn producer(tid) { data = 1; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""


@pytest.fixture(scope="module")
def samples():
    return sample_payloads()


def test_every_registered_kind_has_a_sample(samples):
    assert set(samples) == set(REPORT_KINDS.keys())


@pytest.mark.parametrize("kind", sorted(sample_payloads()))
def test_json_round_trip_is_byte_identical(samples, kind):
    original = samples[kind]
    wire = original.to_json()
    restored = type(original).from_json(wire)
    assert restored.to_json() == wire
    # And a second hop stays stable too.
    assert type(original).from_json(restored.to_json()).to_json() == wire


@pytest.mark.parametrize("kind", sorted(sample_payloads()))
def test_golden_file_schema_stability(samples, kind):
    """The serialized form of each wire type is frozen in a golden
    file; an intentional format change must regenerate the goldens
    (python tools/gen_golden_reports.py) and bump SCHEMA_VERSION."""
    golden = (GOLDEN_DIR / f"{kind}.json").read_text(encoding="utf-8")
    assert samples[kind].to_json() + "\n" == golden
    assert load_report(golden).to_json() + "\n" == golden


@pytest.mark.parametrize("kind", sorted(sample_payloads()))
def test_unknown_schema_version_rejected(samples, kind):
    payload = samples[kind].to_payload()
    payload["schema_version"] = 999
    with pytest.raises(SchemaError, match="schema_version 999"):
        type(samples[kind]).from_payload(payload)
    with pytest.raises(SchemaError, match="schema_version 999"):
        load_report(json.dumps(payload))


def test_kind_mismatch_rejected(samples):
    payload = samples["analyze-report"].to_payload()
    payload["kind"] = "batch-report"  # same schema_version, wrong kind
    with pytest.raises(SchemaError, match="unknown fields"):
        load_report(json.dumps(payload))  # dispatches to BatchReport
    with pytest.raises(SchemaError, match="cannot be read as"):
        AnalyzeReport.from_payload(payload)
    # A kind whose schema version differs trips the version gate first.
    payload = samples["analyze-report"].to_payload()
    payload["kind"] = "simulate-report"
    with pytest.raises(SchemaError, match="schema_version"):
        load_report(json.dumps(payload))


def test_unknown_and_missing_fields_rejected(samples):
    payload = samples["analyze-report"].to_payload()
    payload["bonus"] = 1
    with pytest.raises(SchemaError, match="unknown fields: bonus"):
        AnalyzeReport.from_payload(payload)
    payload = samples["analyze-report"].to_payload()
    del payload["bonus" if "bonus" in payload else "full_fences"]
    with pytest.raises(SchemaError, match="missing fields: full_fences"):
        AnalyzeReport.from_payload(payload)


def test_load_report_rejects_garbage():
    with pytest.raises(SchemaError, match="not valid JSON"):
        load_report("{nope")
    with pytest.raises(SchemaError, match="'kind'"):
        load_report(json.dumps({"schema_version": 1}))
    # Unknown kinds are SchemaErrors too — the one documented exception
    # type covers every unreadable payload.
    with pytest.raises(SchemaError, match="unknown report kind"):
        load_report(json.dumps({"kind": "mystery", "schema_version": 1}))


def test_malformed_nested_payloads_raise_schema_error(samples):
    # Extra key inside an embedded program spec.
    payload = samples["analyze-request"].to_payload()
    payload["program"]["bogus"] = 1
    with pytest.raises(SchemaError, match="malformed ProgramSpec"):
        load_report(json.dumps(payload))
    # Missing field inside a nested per-variant record.
    payload = samples["check-report"].to_payload()
    del payload["variants"][0]["restored_sc"]
    with pytest.raises(SchemaError, match="malformed VariantCheck"):
        load_report(json.dumps(payload))
    # Wrong shape entirely.
    payload = samples["check-report"].to_payload()
    payload["variants"] = "nope"
    with pytest.raises(SchemaError, match="expected an array"):
        load_report(json.dumps(payload))


def test_fuzz_report_rejects_unknown_fields(samples):
    for where, mutate in (
        ("payload", lambda p: p.__setitem__("extra_field", 123)),
        ("config", lambda p: p["config"].__setitem__("extra", 1)),
        ("summary", lambda p: p["summary"].__setitem__("extra", 1)),
    ):
        payload = samples["fuzz-report"].to_payload()
        mutate(payload)
        with pytest.raises(SchemaError, match="unknown fields"):
            load_report(json.dumps(payload))


def test_diff_payloads_reports_scalar_list_and_nested_changes(samples):
    a = samples["batch-report"].to_payload()
    b = json.loads(json.dumps(a))
    b["wall"] = 0.5
    b["cells"][0]["full_fences"] = 9
    lines = diff_payloads(a, b)
    assert any(line.startswith("~ wall: 0.25 -> 0.5") for line in lines)
    assert any("cells[0].full_fences: 4 -> 9" in line for line in lines)
    assert diff_payloads(a, a) == []


def test_reports_render_without_registry_lookups_failing(samples):
    for sample in samples.values():
        assert isinstance(sample.render(), str)


# --- deprecation shims ------------------------------------------------------


def _collect_deprecations(fn):
    from repro.util.deprecation import reset_warned

    reset_warned()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = fn()
    reset_warned()
    return result, [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]


def test_analyze_program_shim_warns_once_and_matches_facade():
    import repro
    from repro.api import Session

    program = compile_source(MP, "mp")

    def call_twice():
        first = repro.analyze_program(program)
        second = repro.analyze_program(program)
        return first, second

    (first, second), warned = _collect_deprecations(call_twice)
    assert len(warned) == 1
    assert "deprecated" in str(warned[0].message)

    facade = Session().analysis(compile_source(MP, "mp"), "control")
    for shim in (first, second):
        assert shim.full_fence_count == facade.full_fence_count
        assert shim.compiler_fence_count == facade.compiler_fence_count
        assert shim.total_sync_reads == facade.total_sync_reads


def test_place_fences_shim_warns_once_and_matches_facade():
    import repro
    from repro.api import Session

    def call_twice():
        a = repro.place_fences(compile_source(MP, "mp"))
        b = repro.place_fences(compile_source(MP, "mp"))
        return a, b

    (first, _), warned = _collect_deprecations(call_twice)
    assert len(warned) == 1

    fenced = compile_source(MP, "mp")
    facade = Session().place(fenced, "control")
    assert first.full_fence_count == facade.full_fence_count


def test_variants_by_value_shim_warns_once():
    from repro.core import pipeline

    def access_twice():
        return pipeline.VARIANTS_BY_VALUE, pipeline.VARIANTS_BY_VALUE

    (first, second), warned = _collect_deprecations(access_twice)
    assert len(warned) == 1
    assert first == second
    assert set(first) == {"pensieve", "control", "address+control"}


def test_weak_explorers_shim_warns_once():
    from repro.memmodel.pso import PSOExplorer
    from repro.memmodel.relaxed import ARMExplorer, POWERExplorer
    from repro.memmodel.tso import TSOExplorer
    from repro.validate import oracle

    (value, _), warned = _collect_deprecations(
        lambda: (oracle.WEAK_EXPLORERS, oracle.WEAK_EXPLORERS)
    )
    assert len(warned) == 1
    # The shim mirrors the live registry, so backend-registered models
    # (arm/power) show up here exactly like the built-ins.
    assert value == {
        "x86-tso": TSOExplorer,
        "pso": PSOExplorer,
        "arm": ARMExplorer,
        "power": POWERExplorer,
    }
