"""Tests for the shared AnalysisContext (repro.engine.context)."""

import pytest

from repro.core.delay_set import DelaySetAnalysis
from repro.core.interprocedural import detect_acquires_interprocedural
from repro.core.pipeline import FencePlacer, PipelineVariant, analyze_program
from repro.core.signatures import Variant, detect_acquires
from repro.engine.context import AnalysisContext
from repro.frontend import compile_source

SRC = """
global int flag;
global int data;

fn producer(tid) { data = 1; flag = 1; }
fn consumer(tid) {
  local r = 0;
  while (flag == 0) { }
  r = data;
  observe("r", r);
}

thread producer(0);
thread consumer(1);
"""


@pytest.fixture
def program():
    return compile_source(SRC, "ctx")


def test_facts_memoized_per_function(program):
    ctx = AnalysisContext(program)
    func = program.functions["consumer"]
    assert ctx.points_to(func) is ctx.points_to(func)
    assert ctx.escape_info(func) is ctx.escape_info(func)
    assert ctx.reachability(func) is ctx.reachability(func)
    assert ctx.writers_cache(func) is ctx.writers_cache(func)
    assert ctx.stats.hits > 0 and ctx.stats.misses > 0


def test_facts_distinct_across_functions(program):
    ctx = AnalysisContext(program)
    p = program.functions["producer"]
    c = program.functions["consumer"]
    assert ctx.points_to(p) is not ctx.points_to(c)


def test_escape_info_shares_points_to(program):
    ctx = AnalysisContext(program)
    func = program.functions["consumer"]
    assert ctx.escape_info(func).points_to is ctx.points_to(func)


def test_acquires_memoized_per_variant(program):
    ctx = AnalysisContext(program)
    func = program.functions["consumer"]
    a = ctx.acquires(func, Variant.CONTROL)
    assert ctx.acquires(func, Variant.CONTROL) is a
    b = ctx.acquires(func, Variant.ADDRESS_CONTROL)
    assert b is not a


def test_context_acquires_match_standalone(program):
    ctx = AnalysisContext(program)
    func = program.functions["consumer"]
    via_ctx = ctx.acquires(func, Variant.CONTROL).sync_reads
    standalone = detect_acquires(func, Variant.CONTROL).sync_reads
    assert list(via_ctx) == list(standalone)


def test_pipeline_uses_supplied_context(program):
    ctx = AnalysisContext(program)
    analysis = FencePlacer(PipelineVariant.CONTROL).analyze(program, context=ctx)
    for name, fa in analysis.functions.items():
        func = program.functions[name]
        # The analysis result holds exactly the context's memoized facts.
        assert fa.points_to is ctx.points_to(func)
        assert fa.escape_info is ctx.escape_info(func)


def test_shared_context_across_variants_same_results(program):
    ctx = AnalysisContext(program)
    shared = [
        analyze_program(program, v, context=ctx).full_fence_count
        for v in PipelineVariant
    ]
    fresh = [
        analyze_program(compile_source(SRC, "ctx"), v).full_fence_count
        for v in PipelineVariant
    ]
    assert shared == fresh


def test_delay_set_with_shared_context(program):
    ctx = AnalysisContext(program)
    shared = DelaySetAnalysis(program, context=ctx).compute()
    fresh = DelaySetAnalysis(program).compute()
    assert shared.total_delays == fresh.total_delays
    # The pipeline afterwards reuses the delay-set run's facts.
    misses_before = ctx.stats.by_fact.get("points_to", 0)
    analyze_program(program, PipelineVariant.CONTROL, context=ctx)
    assert ctx.stats.by_fact.get("points_to", 0) == misses_before


def test_interprocedural_with_shared_context(program):
    ctx = AnalysisContext(program)
    shared = detect_acquires_interprocedural(
        program, Variant.CONTROL, context=ctx
    )
    fresh = detect_acquires_interprocedural(program, Variant.CONTROL)
    assert {k: len(v) for k, v in shared.acquires.items()} == {
        k: len(v) for k, v in fresh.acquires.items()
    }


def test_context_interprocedural_memoized(program):
    ctx = AnalysisContext(program)
    first = ctx.interprocedural(Variant.CONTROL)
    assert ctx.interprocedural(Variant.CONTROL) is first


def test_interprocedural_requires_program():
    ctx = AnalysisContext()
    with pytest.raises(ValueError):
        ctx.interprocedural(Variant.CONTROL)


def test_interprocedural_pipeline_shares_context(program):
    ctx = AnalysisContext(program)
    placer = FencePlacer(PipelineVariant.CONTROL, interprocedural=True)
    analysis = placer.analyze(program, context=ctx)
    assert analysis.total_sync_reads >= 0
    # The fixpoint result was cached on the context.
    assert ctx.interprocedural(Variant.CONTROL) is ctx.interprocedural(
        Variant.CONTROL
    )


def test_context_rejects_foreign_program(program):
    other = compile_source(SRC, "other")
    ctx = AnalysisContext(other)
    with pytest.raises(ValueError):
        analyze_program(program, PipelineVariant.CONTROL, context=ctx)
