"""Flavored fence lowering: delay cuts -> cheapest sufficient ISA fence.

:func:`repro.core.fence_min.plan_fences` ends with a
:class:`~repro.core.fence_min.FencePlan` whose full fences each carry
the set of ordering kinds they are relied on to enforce
(``PlannedFence.covers``). Lowering maps every such cut to the
*cheapest sufficient flavor* of an :class:`~repro.arch.backend
.ArchBackend` — ``lwsync`` instead of ``sync`` wherever no ``w->r``
delay crosses the cut, ``eieio``/``dmbst``/``sfence`` for pure store
ordering — instead of the always-FULL placement the generic pipeline
emits. Compiler directives stay free and unflavored.

Function-entry fences enforce *interprocedural* orderings whose kinds
the intraprocedural plan cannot see, so they conservatively lower to
the backend's full flavor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.backend import ArchBackend
from repro.core.fence_min import FencePlan, PlannedFence
from repro.core.machine_models import OrderKind
from repro.ir.function import Function
from repro.ir.instructions import Fence, FenceKind, FenceOrigin


@dataclass(frozen=True)
class LoweredFence:
    """One planned fence after flavor selection."""

    block_label: str
    gap: int
    kind: FenceKind
    #: ISA flavor for full fences; ``None`` for compiler directives.
    flavor: str | None
    cost: int
    covers: frozenset[OrderKind] = frozenset()


@dataclass
class LoweredPlan:
    """A function's fence plan lowered onto one architecture."""

    function: Function
    arch: str
    fences: list[LoweredFence] = field(default_factory=list)
    entry_fence: bool = False
    entry_flavor: str | None = None
    entry_cost: int = 0

    @property
    def full_count(self) -> int:
        full = sum(1 for f in self.fences if f.kind is FenceKind.FULL)
        return full + (1 if self.entry_fence else 0)

    @property
    def compiler_count(self) -> int:
        return sum(1 for f in self.fences if f.kind is FenceKind.COMPILER)

    @property
    def cost(self) -> int:
        """Total cycle cost of the lowered placement (entry included)."""
        return sum(f.cost for f in self.fences) + self.entry_cost

    def flavor_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.fences:
            if f.flavor is not None:
                counts[f.flavor] = counts.get(f.flavor, 0) + 1
        if self.entry_fence and self.entry_flavor is not None:
            counts[self.entry_flavor] = counts.get(self.entry_flavor, 0) + 1
        return counts


def lower_fence(fence: PlannedFence, backend: ArchBackend) -> LoweredFence:
    """Pick the cheapest sufficient flavor for one planned fence."""
    if fence.kind is FenceKind.COMPILER:
        return LoweredFence(
            fence.block_label, fence.gap, fence.kind, None, 0, fence.covers
        )
    if fence.covers:
        flavor = backend.cheapest_flavor(fence.covers)
    else:
        # No recorded kill-set (hand-built plans, every-delay upper
        # bound): stay conservative, take the full fence.
        flavor = backend.full_flavor()
    return LoweredFence(
        fence.block_label, fence.gap, fence.kind,
        flavor.name, flavor.cost, fence.covers,
    )


def lower_plan(plan: FencePlan, backend: ArchBackend) -> LoweredPlan:
    """Lower every fence of one function's plan onto ``backend``."""
    lowered = LoweredPlan(plan.function, backend.key)
    lowered.fences = [lower_fence(f, backend) for f in plan.fences]
    if plan.entry_fence:
        full = backend.full_flavor()
        lowered.entry_fence = True
        lowered.entry_flavor = full.name
        lowered.entry_cost = full.cost
    return lowered


def apply_lowered_plan(func: Function, plan: LoweredPlan) -> int:
    """Insert the lowered (flavored) fences; returns fences inserted.

    Mirrors :func:`repro.core.fence_min.apply_plan` exactly — same
    insertion order, same re-finalization — differing only in the
    flavor stamped on each full fence.
    """
    inserted = 0
    by_block: dict[str, list[LoweredFence]] = {}
    for fence in plan.fences:
        by_block.setdefault(fence.block_label, []).append(fence)
    for label, fences in by_block.items():
        block = func.block(label)
        for fence in sorted(fences, key=lambda f: f.gap, reverse=True):
            block.insert(
                fence.gap,
                Fence(fence.kind, FenceOrigin.INSERTED, flavor=fence.flavor),
            )
            inserted += 1
    if plan.entry_fence:
        func.entry.insert(
            0,
            Fence(FenceKind.FULL, FenceOrigin.INSERTED, flavor=plan.entry_flavor),
        )
        inserted += 1
    func.finalize()
    return inserted


@dataclass(frozen=True)
class ArchLoweringSummary:
    """Aggregate lowering statistics for one program on one arch."""

    arch: str
    full_fences: int
    compiler_fences: int
    cost: int
    #: flavor name -> count across the whole program (entry included).
    flavors: dict[str, int]


def summarize_lowerings(
    arch: str, lowerings: "dict[str, LoweredPlan]"
) -> ArchLoweringSummary:
    flavors: dict[str, int] = {}
    for plan in lowerings.values():
        for name, count in plan.flavor_counts().items():
            flavors[name] = flavors.get(name, 0) + count
    return ArchLoweringSummary(
        arch=arch,
        full_fences=sum(p.full_count for p in lowerings.values()),
        compiler_fences=sum(p.compiler_count for p in lowerings.values()),
        cost=sum(p.cost for p in lowerings.values()),
        flavors=flavors,
    )


def lower_analysis(analysis, backend: ArchBackend):
    """Lower a whole :class:`~repro.core.pipeline.ProgramAnalysis`.

    Returns ``(per-function LoweredPlans, ArchLoweringSummary)``; no IR
    mutation — pair with :func:`apply_lowered_plan` to insert.
    """
    lowerings = {
        name: lower_plan(fa.plan, backend)
        for name, fa in analysis.functions.items()
    }
    return lowerings, summarize_lowerings(backend.key, lowerings)
