"""Acquire detection: the paper's two signature-matching algorithms.

* :func:`detect_control_acquires` — Listing 1 (``Control``): for each
  conditional branch, backwards-slice from the defs of its operands;
  every escaping read in such a slice matches the *control* signature.

* :func:`detect_address_acquires` — the address half of Listing 3: for
  each address calculation, slice from its **offset**; for each
  dereference (computed-address load/store/RMW), slice from its address
  operand. Escaping reads found match the *address* signature.

* :func:`detect_acquires` — the public entry point; variant
  ``ADDRESS_CONTROL`` is Listing 3 (union of both signatures, shared
  ``seen`` set), variant ``CONTROL`` is Listing 1.

Theorem 3.1 guarantees every true acquire matches at least one
signature, so the detected set is a conservative over-approximation of
the synchronization reads (within the paper's same-function assumption,
Section 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.aliasing import PointsTo
from repro.analysis.escape import EscapeInfo
from repro.analysis.slicing import Slicer
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.util.orderedset import OrderedSet

if TYPE_CHECKING:
    from repro.engine.context import AnalysisContext


class Variant(enum.Enum):
    """Which acquire-detection algorithm to run."""

    CONTROL = "control"
    ADDRESS_CONTROL = "address+control"


@dataclass
class AcquireResult:
    """Acquire detection output for one function."""

    function: Function
    variant: Variant
    sync_reads: OrderedSet[Instruction]
    seen: set[Instruction] = field(default_factory=set)

    def is_acquire(self, inst: Instruction) -> bool:
        return inst in self.sync_reads


def detect_control_acquires(
    func: Function,
    points_to: PointsTo,
    escape_info: EscapeInfo,
    seen: set[Instruction] | None = None,
    sync_reads: OrderedSet[Instruction] | None = None,
    slicer: Slicer | None = None,
) -> OrderedSet[Instruction]:
    """Listing 1: escaping reads with a conditional branch in their
    forward slice, found by slicing backwards from each branch."""
    slicer = slicer if slicer is not None else Slicer(func, points_to, escape_info)
    seen = seen if seen is not None else set()
    sync_reads = sync_reads if sync_reads is not None else OrderedSet()
    for inst in func.instructions():
        if inst.is_cond_branch():
            slicer.slice_from_values(inst.operands, seen, sync_reads)
    return sync_reads


def detect_address_acquires(
    func: Function,
    points_to: PointsTo,
    escape_info: EscapeInfo,
    seen: set[Instruction] | None = None,
    sync_reads: OrderedSet[Instruction] | None = None,
    slicer: Slicer | None = None,
) -> OrderedSet[Instruction]:
    """The address-signature half of Listing 3: slice from every
    address calculation's offset and every dereference's address."""
    slicer = slicer if slicer is not None else Slicer(func, points_to, escape_info)
    seen = seen if seen is not None else set()
    sync_reads = sync_reads if sync_reads is not None else OrderedSet()
    for inst in func.instructions():
        if inst.is_address_calculation():
            slicer.slice_from_values((inst.offset,), seen, sync_reads)
        elif inst.is_dereference():
            slicer.slice_from_values((inst.address_operand(),), seen, sync_reads)
    return sync_reads


def _resolve_facts(
    func: Function,
    points_to: PointsTo | None,
    escape_info: EscapeInfo | None,
    context: "AnalysisContext | None",
) -> tuple[PointsTo, EscapeInfo, "dict | None"]:
    """Fill in missing per-function facts — from the shared context
    when one is supplied, built fresh otherwise."""
    writers_cache = None
    if context is not None:
        points_to = points_to if points_to is not None else context.points_to(func)
        escape_info = (
            escape_info if escape_info is not None else context.escape_info(func)
        )
        writers_cache = context.writers_cache(func)
    points_to = points_to if points_to is not None else PointsTo(func)
    escape_info = (
        escape_info if escape_info is not None else EscapeInfo(func, points_to)
    )
    return points_to, escape_info, writers_cache


def detect_acquires(
    func: Function,
    variant: Variant,
    points_to: PointsTo | None = None,
    escape_info: EscapeInfo | None = None,
    context: "AnalysisContext | None" = None,
) -> AcquireResult:
    """Run the requested detection algorithm on one function.

    For ``ADDRESS_CONTROL`` (Listing 3), control and address anchors
    share one ``seen`` set — slices overlap heavily and the paper notes
    the shared set "prevents reiteration".

    With a ``context``, the per-function facts come from (and are
    memoized in) the shared :class:`~repro.engine.context.AnalysisContext`
    instead of being rebuilt here.
    """
    points_to, escape_info, writers_cache = _resolve_facts(
        func, points_to, escape_info, context
    )
    slicer = Slicer(func, points_to, escape_info, writers_cache=writers_cache)
    seen: set[Instruction] = set()
    sync_reads: OrderedSet[Instruction] = OrderedSet()
    detect_control_acquires(func, points_to, escape_info, seen, sync_reads, slicer)
    if variant is Variant.ADDRESS_CONTROL:
        detect_address_acquires(func, points_to, escape_info, seen, sync_reads, slicer)
    return AcquireResult(func, variant, sync_reads, seen)


@dataclass
class SignatureBreakdown:
    """Which signature(s) each acquire in a function matches.

    This is what Table II of the paper reports per synchronization
    primitive: has control acquires / has address acquires / has
    *pure*-address acquires (address signature only). Separate ``seen``
    sets per signature are required here — the sets must not suppress
    each other's traversals.
    """

    function: Function
    control: OrderedSet[Instruction]
    address: OrderedSet[Instruction]

    @property
    def pure_address(self) -> OrderedSet[Instruction]:
        return self.address - self.control

    @property
    def all_acquires(self) -> OrderedSet[Instruction]:
        return self.control | self.address

    @property
    def has_control(self) -> bool:
        return bool(self.control)

    @property
    def has_address(self) -> bool:
        return bool(self.address)

    @property
    def has_pure_address(self) -> bool:
        return bool(self.pure_address)


def signature_breakdown(
    func: Function,
    points_to: PointsTo | None = None,
    escape_info: EscapeInfo | None = None,
    context: "AnalysisContext | None" = None,
) -> SignatureBreakdown:
    """Classify every acquire by the signature(s) it matches."""
    points_to, escape_info, writers_cache = _resolve_facts(
        func, points_to, escape_info, context
    )
    # Separate seen sets per signature (see the class docstring), but
    # the potential-writers memo is safely shared across both slicers.
    control = detect_control_acquires(
        func, points_to, escape_info,
        slicer=Slicer(func, points_to, escape_info, writers_cache=writers_cache),
    )
    address = detect_address_acquires(
        func, points_to, escape_info,
        slicer=Slicer(func, points_to, escape_info, writers_cache=writers_cache),
    )
    return SignatureBreakdown(func, control, address)
