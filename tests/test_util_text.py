"""Unit tests for text table / bar-chart rendering."""

import pytest

from repro.util.text import ascii_bar_chart, format_table


def test_format_table_alignment():
    out = format_table(["name", "n"], [["alpha", 1], ["b", 22]])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert "alpha" in lines[2]
    # Columns align: 'n' header column starts at same offset as values.
    assert lines[0].index("n", 4) == lines[2].index("1")


def test_format_table_title():
    out = format_table(["a"], [["x"]], title="My Table")
    assert out.splitlines()[0] == "My Table"
    assert out.splitlines()[1] == "=" * len("My Table")


def test_format_table_bad_row_width():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_bar_chart_scales_to_max():
    out = ascii_bar_chart({"g": {"a": 1.0, "b": 0.5}}, width=10)
    lines = out.splitlines()
    assert lines[1].count("#") == 10
    assert lines[2].count("#") == 5


def test_bar_chart_zero_value_has_no_bar():
    out = ascii_bar_chart({"g": {"a": 1.0, "z": 0.0}}, width=10)
    assert out.splitlines()[2].count("#") == 0


def test_bar_chart_empty():
    assert ascii_bar_chart({}) == ""
    assert ascii_bar_chart({}, title="t") == "t"


def test_bar_chart_value_format():
    out = ascii_bar_chart({"g": {"a": 0.5}}, value_format="{:.0%}")
    assert "50%" in out
