"""Tests for the arch-backend registry (repro.arch.backend)."""

import itertools

import pytest

from repro.arch.backend import (
    ALL_KINDS,
    BACKENDS,
    ArchBackend,
    FenceFlavor,
    backend_keys,
    get_backend,
    register_backend,
)
from repro.core.machine_models import OrderKind

RR, RW, WR, WW = OrderKind.RR, OrderKind.RW, OrderKind.WR, OrderKind.WW


def all_kind_subsets():
    kinds = sorted(OrderKind, key=lambda k: k.value)
    for n in range(1, len(kinds) + 1):
        for combo in itertools.combinations(kinds, n):
            yield frozenset(combo)


# --- catalog shape -----------------------------------------------------------


def test_backend_catalog_shape():
    assert backend_keys() == ("x86", "arm", "power")
    for key in backend_keys():
        backend = get_backend(key)
        assert any(f.is_full for f in backend.flavors)
        assert backend.full_flavor().kills == ALL_KINDS


def test_reorderable_follows_machine_model():
    assert get_backend("x86").reorderable == frozenset({WR})
    assert get_backend("arm").reorderable == ALL_KINDS
    assert get_backend("power").reorderable == ALL_KINDS


def test_unknown_backend_and_flavor_messages():
    with pytest.raises(KeyError, match="unknown arch 'mips'"):
        get_backend("mips")
    with pytest.raises(KeyError, match="unknown power fence flavor 'dmb'"):
        get_backend("power").flavor("dmb")
    assert get_backend("power").has_flavor("lwsync")
    assert not get_backend("power").has_flavor("dmb")


# --- cheapest sufficient flavor, per delay-kind combination ------------------


@pytest.mark.parametrize("key", ["x86", "arm", "power"])
@pytest.mark.parametrize(
    "kinds", list(all_kind_subsets()), ids=lambda s: "+".join(sorted(k.name for k in s))
)
def test_cheapest_flavor_is_minimal_sufficient(key, kinds):
    """Acceptance: lowering never picks FULL (or any stronger flavor)
    where a registered cheaper sufficient flavor exists — for every
    backend and every non-empty delay-kind combination."""
    backend = get_backend(key)
    chosen = backend.cheapest_flavor(kinds)
    assert chosen.sufficient_for(kinds)
    sufficient = [f for f in backend.flavors if f.sufficient_for(kinds)]
    assert chosen.cost == min(f.cost for f in sufficient)
    # Nothing sufficient is strictly cheaper than the choice.
    assert not any(f.cost < chosen.cost for f in sufficient)


def test_power_flavor_selection_table():
    power = get_backend("power")
    assert power.cheapest_flavor(frozenset({WW})).name == "eieio"
    assert power.cheapest_flavor(frozenset({RR})).name == "lwsync"
    assert power.cheapest_flavor(frozenset({RW})).name == "lwsync"
    assert power.cheapest_flavor(frozenset({RR, RW, WW})).name == "lwsync"
    assert power.cheapest_flavor(frozenset({WR})).name == "sync"
    assert power.cheapest_flavor(ALL_KINDS).name == "sync"


def test_arm_flavor_selection_table():
    arm = get_backend("arm")
    assert arm.cheapest_flavor(frozenset({WW})).name == "dmbst"
    for kinds in (frozenset({RR}), frozenset({WR}), frozenset({RR, WW})):
        assert arm.cheapest_flavor(kinds).name == "dmb"


def test_x86_flavor_selection_table():
    x86 = get_backend("x86")
    assert x86.cheapest_flavor(frozenset({WW})).name == "sfence"
    assert x86.cheapest_flavor(frozenset({WR})).name == "mfence"
    assert x86.cheapest_flavor(ALL_KINDS).name == "mfence"


def test_empty_kill_requirement_rejected():
    with pytest.raises(ValueError, match="no fence needed"):
        get_backend("power").cheapest_flavor(frozenset())


def test_cost_of_defaults_to_full_flavor():
    power = get_backend("power")
    assert power.cost_of(None) == power.full_flavor().cost == 80
    assert power.cost_of("lwsync") == 33


# --- registration validation -------------------------------------------------


def _flavor(name, kills, cost):
    return FenceFlavor(name=name, kills=frozenset(kills), cost=cost)


def test_register_backend_requires_full_flavor():
    with pytest.raises(ValueError, match="full fence flavor"):
        register_backend(
            ArchBackend(
                key="weakling", display="W", model_key="rmo",
                flavors=(_flavor("half", {WW, RR}, 1),),
            )
        )
    assert "weakling" not in BACKENDS


def test_register_backend_rejects_unknown_model():
    with pytest.raises(ValueError, match="unknown machine model"):
        register_backend(
            ArchBackend(
                key="ghost", display="G", model_key="no-such-model",
                flavors=(_flavor("all", ALL_KINDS, 1),),
            )
        )


def test_register_backend_rejects_duplicate_flavor_names():
    with pytest.raises(ValueError, match="duplicate flavor names"):
        register_backend(
            ArchBackend(
                key="twice", display="T", model_key="rmo",
                flavors=(
                    _flavor("f", ALL_KINDS, 1),
                    _flavor("f", {WW}, 1),
                ),
            )
        )


def test_registered_backend_is_discoverable_and_lowerable():
    """A new backend plugs in end to end: registry lookup + selection."""
    key = "test-risc"
    try:
        register_backend(
            ArchBackend(
                key=key, display="RISC", model_key="rmo",
                flavors=(
                    _flavor("fence-rw", ALL_KINDS, 10),
                    _flavor("fence-w", {WW}, 2),
                ),
            )
        )
        backend = get_backend(key)
        assert backend.cheapest_flavor(frozenset({WW})).name == "fence-w"
        assert backend.cheapest_flavor(frozenset({RR})).name == "fence-rw"
    finally:
        BACKENDS._entries.pop(key, None)  # keep the global catalog clean
