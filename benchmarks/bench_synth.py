"""Fence-synthesis benchmarks: greedy vs optimal lowering cost.

Sweeps every (corpus program, arch backend) cell through both fence
planners — the count-first greedy stab lowered per-fence
(:func:`repro.arch.lowering.lower_analysis`) and the min-cost DP
(:func:`repro.synth.synthesize_analysis`) — and records both cycle
totals. Costs are deterministic (no timing lands in the artifact), so
the committed ``BENCH_synth.json`` doubles as a regression gate: CI
regenerates it (freshness) and replays ``--check`` against the
committed baseline, failing when any cell's optimal cost exceeds its
greedy cost, when no cell improves strictly, or when an optimal cost
regresses over the baseline.

Runs two ways: under pytest-benchmark like the other bench modules, or
as a script emitting the machine-readable artifact::

    PYTHONPATH=src python benchmarks/bench_synth.py --out BENCH_synth.json
    PYTHONPATH=src python benchmarks/bench_synth.py --check BENCH_synth.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.arch import backend_keys, get_backend  # noqa: E402
from repro.arch.lowering import lower_analysis  # noqa: E402
from repro.core.machine_models import MODELS  # noqa: E402
from repro.programs import all_programs  # noqa: E402
from repro.registry.variants import get_variant  # noqa: E402
from repro.synth import synthesize_analysis  # noqa: E402

#: Detection variant the sweep analyzes under — the paper's headline
#: configuration, matching the lint and batch defaults.
VARIANT = "address+control"


def _synth_cell(name: str, arch_key: str) -> dict:
    backend = get_backend(arch_key)
    model = MODELS[backend.model_key]
    analysis = get_variant(VARIANT).analyze(
        all_programs()[name].compile(), model
    )
    _, greedy = lower_analysis(analysis, backend)
    _, optimal = synthesize_analysis(analysis, backend)
    return {
        "program": name,
        "arch": arch_key,
        "greedy_cost": greedy.cost,
        "optimal_cost": optimal.cost,
        "saved": greedy.cost - optimal.cost,
    }


def run_suite() -> dict:
    entries = [
        _synth_cell(name, arch_key)
        for name in sorted(all_programs())
        for arch_key in sorted(backend_keys())
    ]
    arches = {}
    for arch_key in sorted(backend_keys()):
        cells = [e for e in entries if e["arch"] == arch_key]
        arches[arch_key] = {
            "greedy_cost": sum(e["greedy_cost"] for e in cells),
            "optimal_cost": sum(e["optimal_cost"] for e in cells),
            "strict_cells": sum(1 for e in cells if e["saved"] > 0),
        }
    return {
        "schema": 1,
        "variant": VARIANT,
        "arches": arches,
        "entries": entries,
    }


def verify(report: dict) -> list[str]:
    """Internal consistency of one suite run: the hard optimality gate."""
    problems = []
    for e in report["entries"]:
        if e["optimal_cost"] > e["greedy_cost"]:
            problems.append(
                f"{e['program']}/{e['arch']}: optimal cost "
                f"{e['optimal_cost']} exceeds greedy {e['greedy_cost']} "
                "(optimizer is not optimal)"
            )
    if not any(e["saved"] > 0 for e in report["entries"]):
        problems.append(
            "no cell improves strictly over greedy — the synthesizer "
            "is buying nothing on the whole corpus"
        )
    return problems


def check_against(baseline: dict, current: dict) -> list[str]:
    """Compare a fresh run against the committed artifact."""
    problems = verify(current)
    recorded = {
        (e["program"], e["arch"]): e for e in baseline.get("entries", [])
    }
    for e in current["entries"]:
        old = recorded.get((e["program"], e["arch"]))
        if old is None:
            continue  # new cell: no baseline to regress from
        if e["optimal_cost"] > old["optimal_cost"]:
            problems.append(
                f"{e['program']}/{e['arch']}: optimal cost "
                f"{e['optimal_cost']} regressed over committed baseline "
                f"{old['optimal_cost']}"
            )
    return problems


# --- pytest-benchmark entry point --------------------------------------------


def test_synth_costs(benchmark, report_sink):
    report = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    assert verify(report) == []
    lines = ["Fence synthesis, greedy vs optimal lowering cost:"]
    for arch_key, totals in report["arches"].items():
        lines.append(
            f"  {arch_key:6s} greedy {totals['greedy_cost']:6d} -> "
            f"optimal {totals['optimal_cost']:6d} "
            f"({totals['strict_cells']} cells strictly cheaper)"
        )
    report_sink["synth"] = "\n".join(lines)


# --- script entry point ------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=None,
        help="write the artifact here (e.g. BENCH_synth.json)",
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="re-run the sweep and fail when any cell's optimal cost "
        "exceeds greedy, no cell improves strictly, or an optimal "
        "cost regressed against BASELINE",
    )
    args = parser.parse_args(argv)

    start = time.perf_counter()
    report = run_suite()
    elapsed = time.perf_counter() - start
    for e in report["entries"]:
        flag = f"  saved {e['saved']}" if e["saved"] else ""
        print(
            f"{e['program']:16s} {e['arch']:6s} "
            f"greedy {e['greedy_cost']:6d}  optimal "
            f"{e['optimal_cost']:6d}{flag}"
        )
    for arch_key, totals in report["arches"].items():
        print(
            f"total {arch_key:6s} greedy {totals['greedy_cost']:6d} -> "
            f"optimal {totals['optimal_cost']:6d} "
            f"({totals['strict_cells']} strict cells)"
        )
    print(f"solved {len(report['entries'])} cells in {elapsed:.2f}s")

    if args.check is not None:
        baseline = json.loads(Path(args.check).read_text(encoding="utf-8"))
        problems = check_against(baseline, report)
        if problems:
            for p in problems:
                print(f"FAIL: {p}", file=sys.stderr)
            return 1
        print(f"check OK against {args.check}")

    if args.out is not None:
        problems = verify(report)
        if problems:
            for p in problems:
                print(f"FAIL: {p}", file=sys.stderr)
            return 1
        Path(args.out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
