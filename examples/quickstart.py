"""Quickstart: fence a legacy producer/consumer program.

Compiles a small well-synchronized (legacy DRF) program, runs the
paper's Control pipeline against the Pensieve baseline, shows which
read was detected as an acquire and where fences land, then verifies
on the exhaustive x86-TSO model that the fenced program has exactly
the SC behaviours of the original.

Run:  python examples/quickstart.py
"""

from repro import (
    PipelineVariant,
    SCExplorer,
    TSOExplorer,
    Variant,
    analyze_program,
    compile_source,
    detect_acquires,
    place_fences,
)
from repro.ir import format_program

SOURCE = """
global int flag;
global int payload[3];

fn producer(tid) {
  payload[0] = 10;
  payload[1] = 20;
  payload[2] = 30;
  flag = 1;
}

fn consumer(tid) {
  local total = 0;
  while (flag == 0) { }
  total = payload[0] + payload[1] + payload[2];
  observe("total", total);
}

thread producer(0);
thread consumer(1);
"""


def main() -> None:
    # 1. Which reads are synchronization reads?
    program = compile_source(SOURCE, "quickstart")
    for name, func in program.functions.items():
        acquires = detect_acquires(func, Variant.CONTROL).sync_reads
        labels = [str(getattr(i, "addr", i)) for i in acquires]
        print(f"{name}: control acquires -> {labels or 'none'}")

    # 2. Compare the fence bill: Pensieve vs the paper's Control.
    for variant in (PipelineVariant.PENSIEVE, PipelineVariant.CONTROL):
        analysis = analyze_program(compile_source(SOURCE, "q"), variant)
        print(
            f"{variant.value:12s}: {analysis.total_orderings} orderings kept, "
            f"{analysis.full_fence_count} full fences, "
            f"{analysis.compiler_fence_count} compiler directives"
        )

    # 3. Insert the Control fences and show the final IR.
    fenced = compile_source(SOURCE, "quickstart-fenced")
    place_fences(fenced, PipelineVariant.CONTROL)
    print("\n--- fenced IR ---")
    print(format_program(fenced))

    # 4. Verify: TSO outcomes of the fenced program == SC of the original.
    sc = SCExplorer(compile_source(SOURCE, "q2")).explore()
    tso = TSOExplorer(fenced).explore()
    print("\nSC outcomes  :", sorted(sc.observation_sets()))
    print("TSO (fenced) :", sorted(tso.observation_sets()))
    assert tso.observation_sets() == sc.observation_sets()
    print("fenced program preserves SC behaviour: OK")


if __name__ == "__main__":
    main()
